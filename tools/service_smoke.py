#!/usr/bin/env python
"""CI ``service-smoke`` driver: boot ``repro serve``, prove the economics.

Boots the real service as a subprocess on an ephemeral port, submits the
canonical smoke sweep twice (the second submission must dedup against
the first), waits for the job, writes the fetched ``/v1/results/<key>``
bytes to ``--out`` (CI then ``cmp``'s them against a ``repro sweep
workload --results-out`` artifact for byte-identity), scrapes
``/metrics`` — asserting the exposition parses back and the dedup
counter reads 1 — and finally SIGTERMs the server, requiring a clean
exit.

Usage::

    PYTHONPATH=src python tools/service_smoke.py \
        --store-dir /tmp/svc-store --out service.json \
        --metrics-out metrics.prom
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from typing import Any, Optional, Tuple

PAYLOAD = {
    "workloads": ["tpcc", "oltp"],
    "rpm_steps": 2,
    "requests": 200,
    "seed": 11,
    "backend": "serial",
}


def request(
    port: int, method: str, path: str, payload: Optional[Any] = None
) -> Tuple[int, bytes]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        body = None if payload is None else json.dumps(payload)
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def start_server(store_dir: str, port_file: str) -> "subprocess.Popen[bytes]":
    argv = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--port",
        "0",
        "--port-file",
        port_file,
        "--store-dir",
        store_dir,
        "--backend",
        "serial",
    ]
    return subprocess.Popen(argv, env=dict(os.environ, PYTHONPATH="src"))


def wait_for_port(port_file: str, proc: "subprocess.Popen[bytes]") -> int:
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(f"server died during startup: {proc.returncode}")
        try:
            with open(port_file, "r", encoding="utf-8") as handle:
                text = handle.read().strip()
            if text:
                return int(text)
        except FileNotFoundError:
            pass
        time.sleep(0.05)
    raise SystemExit("server did not write its port file in 30 s")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--store-dir", required=True)
    parser.add_argument(
        "--out", required=True, help="where the fetched results bytes land"
    )
    parser.add_argument(
        "--metrics-out", default=None, help="optional raw /metrics dump"
    )
    args = parser.parse_args()

    from repro.reporting import parse_prometheus_text

    port_file = os.path.join(tempfile.mkdtemp(prefix="repro-svc-"), "port")
    proc = start_server(args.store_dir, port_file)
    try:
        port = wait_for_port(port_file, proc)
        print(f"service up on port {port}")

        status, body = request(port, "POST", "/v1/jobs", PAYLOAD)
        assert status == 201, (status, body)
        first = json.loads(body)
        assert first["deduplicated"] is False

        status, body = request(port, "POST", "/v1/jobs", PAYLOAD)
        assert status == 200, (status, body)
        second = json.loads(body)
        assert second["deduplicated"] is True, second
        assert second["id"] == first["id"]
        print(f"dedup confirmed: both submissions map to {first['id']}")

        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            status, body = request(port, "GET", f"/v1/jobs/{first['id']}")
            assert status == 200, (status, body)
            doc = json.loads(body)
            if doc["state"] in ("done", "failed"):
                break
            time.sleep(0.2)
        assert doc["state"] == "done", doc
        progress = doc["progress"]
        print(
            f"job done: {progress['done']}/{progress['total']} tasks "
            f"({progress['cached']} cached)"
        )

        status, results = request(
            port, "GET", f"/v1/results/{first['key']}"
        )
        assert status == 200, status
        with open(args.out, "wb") as handle:
            handle.write(results)
        print(f"results: {len(results)} bytes -> {args.out}")

        status, metrics = request(port, "GET", "/metrics")
        assert status == 200, status
        text = metrics.decode("utf-8")
        if args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as handle:
                handle.write(text)
        parsed = parse_prometheus_text(text)
        dedup = parsed["repro_service_dedup_hits_total"]["samples"]
        assert list(dedup.values()) == [1.0], dedup
        assert "repro_service_jobs_completed_total" in parsed
        assert "repro_service_jobs_by_workload_total" in parsed
        print(f"metrics: {len(parsed)} families parsed back, dedup_hits=1")
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                raise SystemExit("server ignored SIGTERM for 30 s")
    assert proc.returncode == 0, f"server exit code {proc.returncode}"
    print("clean SIGTERM shutdown; service smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
