#!/usr/bin/env python3
"""Bench-regression gate: compare a fresh bench run against the baseline.

CI runs ``benchmarks/bench_sweep.py`` on every push, then invokes this
script to diff the fresh JSON against the committed ``BENCH_PR1.json``.
Two families of checks with very different tolerances:

* **Correctness invariants** — ``parallel_identical`` / ``identical``
  flags and the deterministic Figure 4 ``mean_ms`` ladder.  These are
  machine-independent: the simulator is seeded and the parallel path is
  byte-identical by design, so any drift is a real regression and the
  tolerance is tight (``--mean-tolerance``, relative, default 1e-6).

* **Performance factors** — wall-clock sections (``serial_s``,
  ``cached_s``) and derived speedups vary with the host, so they are
  compared as *ratios* against a generous ``--perf-tolerance`` (default
  2.0: fail only when the fresh run is more than 2x slower than the
  committed baseline).  That catches order-of-magnitude hot-path
  regressions without flaking on CI-runner noise.

Exit status: 0 when every check passes, 1 on any regression or on
malformed input (CI treats both as failures).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

#: Sections whose wall-clock keys are ratio-checked against the baseline.
PERF_KEYS = (
    ("figure2_roadmap", "serial_s"),
    ("figure4_replay", "serial_s"),
    ("stats_hot_path", "resort_s"),
    ("stats_hot_path", "cached_s"),
)

#: Sections that must report bit-identical serial/parallel results.
IDENTITY_KEYS = (
    ("figure2_roadmap", "parallel_identical"),
    ("figure4_replay", "parallel_identical"),
    ("stats_hot_path", "identical"),
)


#: repro.bench_fastpath/1 wall-clock keys ratio-checked against baseline.
FASTPATH_PERF_KEYS = (
    ("analytic_sweep", "analytic_serial_s"),
    ("vectorized_replay", "vectorized_serial_s"),
)

#: Minimum analytic-engine speedup on the full ladder (PR6 acceptance).
FASTPATH_MIN_SPEEDUP = 10.0


class CheckFailure(Exception):
    """A single failed comparison (collected, not raised to the top)."""


def _load(path: Path) -> dict:
    try:
        with path.open(encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckFailure(f"cannot read {path}: {exc}") from exc
    if not isinstance(data, dict) or "schema" not in data:
        raise CheckFailure(f"{path}: not a bench JSON (missing 'schema')")
    return data


def _section(data: dict, name: str, path: Path) -> dict:
    section = data.get(name)
    if not isinstance(section, dict):
        raise CheckFailure(f"{path}: missing section {name!r}")
    return section


def check(
    baseline: dict,
    fresh: dict,
    baseline_path: Path,
    fresh_path: Path,
    mean_tolerance: float,
    perf_tolerance: float,
) -> List[str]:
    """All failed checks, as human-readable messages (empty = pass)."""
    failures: List[str] = []

    if fresh.get("schema") != baseline.get("schema"):
        failures.append(
            f"schema mismatch: baseline {baseline.get('schema')!r} "
            f"vs fresh {fresh.get('schema')!r}"
        )
        return failures  # nothing below is comparable

    if fresh.get("schema") == "repro.bench_fastpath/1":
        return check_fastpath(
            baseline, fresh, baseline_path, fresh_path, perf_tolerance
        )

    # -- correctness: the deterministic Figure 4 response-time ladder ------
    try:
        base_replay = _section(baseline, "figure4_replay", baseline_path)
        fresh_replay = _section(fresh, "figure4_replay", fresh_path)
        base_means = base_replay.get("mean_ms") or []
        fresh_means = fresh_replay.get("mean_ms") or []
        comparable = (
            base_replay.get("workload") == fresh_replay.get("workload")
            and base_replay.get("requests") == fresh_replay.get("requests")
            and len(base_means) == len(fresh_means)
        )
        if not comparable:
            failures.append(
                "figure4_replay shape mismatch: baseline "
                f"({base_replay.get('workload')}, n={base_replay.get('requests')}, "
                f"{len(base_means)} rungs) vs fresh "
                f"({fresh_replay.get('workload')}, n={fresh_replay.get('requests')}, "
                f"{len(fresh_means)} rungs)"
            )
        else:
            for i, (base, new) in enumerate(zip(base_means, fresh_means)):
                rel = abs(new - base) / abs(base) if base else abs(new)
                if rel > mean_tolerance:
                    failures.append(
                        f"figure4_replay.mean_ms[{i}]: {new:.6f} drifted from "
                        f"baseline {base:.6f} (rel {rel:.2e} > {mean_tolerance:.0e})"
                    )
    except CheckFailure as exc:
        failures.append(str(exc))

    # -- correctness: serial/parallel identity invariants ------------------
    for section_name, key in IDENTITY_KEYS:
        try:
            section = _section(fresh, section_name, fresh_path)
        except CheckFailure as exc:
            failures.append(str(exc))
            continue
        if section.get(key) is not True:
            failures.append(
                f"{section_name}.{key} is {section.get(key)!r}; "
                "serial and parallel paths must agree exactly"
            )

    # -- performance: ratio checks against a generous tolerance ------------
    for section_name, key in PERF_KEYS:
        try:
            base_val = _section(baseline, section_name, baseline_path).get(key)
            fresh_val = _section(fresh, section_name, fresh_path).get(key)
        except CheckFailure as exc:
            failures.append(str(exc))
            continue
        if not isinstance(base_val, (int, float)) or not isinstance(
            fresh_val, (int, float)
        ):
            failures.append(f"{section_name}.{key}: non-numeric value")
            continue
        if base_val <= 0:
            continue  # degenerate baseline; nothing to ratio against
        ratio = fresh_val / base_val
        if ratio > perf_tolerance:
            failures.append(
                f"{section_name}.{key}: {fresh_val:.4f}s is {ratio:.2f}x the "
                f"baseline {base_val:.4f}s (tolerance {perf_tolerance:.2f}x)"
            )

    # -- performance: the cached-statistics speedup must not collapse ------
    try:
        hot = _section(fresh, "stats_hot_path", fresh_path)
        speedup = hot.get("speedup")
        if isinstance(speedup, (int, float)) and speedup < 2.0:
            failures.append(
                f"stats_hot_path.speedup fell to {speedup:.2f}x; the cached "
                "statistics path should stay well ahead of re-sorting"
            )
    except CheckFailure as exc:
        failures.append(str(exc))

    return failures


def check_fastpath(
    baseline: dict,
    fresh: dict,
    baseline_path: Path,
    fresh_path: Path,
    perf_tolerance: float,
) -> List[str]:
    """Gate a ``repro.bench_fastpath/1`` artifact (``BENCH_PR6.json``).

    Correctness is absolute: the vectorized engine must report byte
    identity and the analytic engine must sit inside its documented
    tolerance.  The >=10x analytic speedup is enforced only on full
    (non-quick) runs — quick smoke ladders are too small to time fairly —
    and wall-clock sections are ratio-checked against the baseline like
    the PR1 schema's.
    """
    failures: List[str] = []

    try:
        vec = _section(fresh, "vectorized_replay", fresh_path)
        if vec.get("byte_identical") is not True:
            failures.append(
                f"vectorized_replay.byte_identical is "
                f"{vec.get('byte_identical')!r}; the vectorized engine "
                "must match the exact engine exactly"
            )
    except CheckFailure as exc:
        failures.append(str(exc))

    try:
        ana = _section(fresh, "analytic_sweep", fresh_path)
        if ana.get("within_tolerance") is not True:
            failures.append(
                f"analytic_sweep.within_tolerance is "
                f"{ana.get('within_tolerance')!r} (mean_rel_err_max "
                f"{ana.get('mean_rel_err_max')!r} vs rtol {ana.get('mean_rtol')!r})"
            )
        speedup = ana.get("speedup")
        if not fresh.get("quick") and (
            not isinstance(speedup, (int, float))
            or speedup < FASTPATH_MIN_SPEEDUP
        ):
            failures.append(
                f"analytic_sweep.speedup is {speedup!r}; the full ladder "
                f"must show >= {FASTPATH_MIN_SPEEDUP:.0f}x over the exact engine"
            )
    except CheckFailure as exc:
        failures.append(str(exc))

    for section_name, key in FASTPATH_PERF_KEYS:
        try:
            base_val = _section(baseline, section_name, baseline_path).get(key)
            fresh_val = _section(fresh, section_name, fresh_path).get(key)
        except CheckFailure as exc:
            failures.append(str(exc))
            continue
        if not isinstance(base_val, (int, float)) or not isinstance(
            fresh_val, (int, float)
        ):
            failures.append(f"{section_name}.{key}: non-numeric value")
            continue
        if base_val <= 0 or bool(fresh.get("quick")) != bool(
            baseline.get("quick")
        ):
            continue  # degenerate or differently sized runs; no fair ratio
        ratio = fresh_val / base_val
        if ratio > perf_tolerance:
            failures.append(
                f"{section_name}.{key}: {fresh_val:.4f}s is {ratio:.2f}x the "
                f"baseline {base_val:.4f}s (tolerance {perf_tolerance:.2f}x)"
            )

    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path(__file__).resolve().parents[1] / "BENCH_PR1.json",
        help="committed baseline JSON (default: repo BENCH_PR1.json)",
    )
    parser.add_argument(
        "--fresh",
        type=Path,
        required=True,
        help="freshly produced bench JSON to validate",
    )
    parser.add_argument(
        "--mean-tolerance",
        type=float,
        default=1e-6,
        help="relative tolerance for the deterministic mean_ms ladder",
    )
    parser.add_argument(
        "--perf-tolerance",
        type=float,
        default=2.0,
        help="max allowed fresh/baseline wall-clock ratio",
    )
    parser.add_argument(
        "--report",
        type=Path,
        default=None,
        help="also write the verdict as JSON here (for CI artifacts)",
    )
    args = parser.parse_args(argv)

    try:
        baseline = _load(args.baseline)
        fresh = _load(args.fresh)
    except CheckFailure as exc:
        print(f"bench-check: {exc}", file=sys.stderr)
        return 1

    failures = check(
        baseline,
        fresh,
        args.baseline,
        args.fresh,
        mean_tolerance=args.mean_tolerance,
        perf_tolerance=args.perf_tolerance,
    )

    if args.report is not None:
        verdict = {
            "ok": not failures,
            "baseline": str(args.baseline),
            "fresh": str(args.fresh),
            "mean_tolerance": args.mean_tolerance,
            "perf_tolerance": args.perf_tolerance,
            "failures": failures,
        }
        args.report.write_text(
            json.dumps(verdict, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    if failures:
        print(f"bench-check: {len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(
        f"bench-check: OK ({args.fresh} within tolerance of {args.baseline})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
