"""Cross-file symbol extraction for the deep (project-wide) analysis.

The deep pass never re-walks an AST twice: each source file is distilled
once into a :class:`ModuleSummary` — its functions, their call sites, and
every *candidate* determinism hazard (nondeterministic calls, set
iteration, unsorted directory listings, float accumulation over unordered
collections, mutable-global reads).  Summaries are plain JSON-shaped data,
which is what makes the incremental cache sound: a summary is a pure
function of the file's bytes, so it can be keyed by content digest and
reused across runs (see :mod:`thermolint.cache`).

The downstream stages — :mod:`thermolint.callgraph` (edge resolution,
keyed-zone reachability) and :mod:`thermolint.taint` (the TL007–TL012
rules) — consume only summaries, never ASTs.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

#: Bump whenever summary extraction changes shape or semantics; stale
#: cache entries (written by another analyzer version) are ignored.
ANALYZER_VERSION = "thermolint-deep/1"

#: Call-site argument flags (bit names kept symbolic for JSON clarity).
ARG_LAMBDA = "lambda"
ARG_NESTED_FUNC = "nested_func"


def content_digest(path_label: str, source: str) -> str:
    """Cache key of one source file: path + content + analyzer version.

    The path participates so a file moved verbatim re-extracts (summaries
    embed path-derived qualnames); the analyzer version participates so an
    engine upgrade invalidates every entry at once.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(ANALYZER_VERSION.encode("utf-8"))
    h.update(b"\x00")
    h.update(path_label.encode("utf-8"))
    h.update(b"\x00")
    h.update(source.encode("utf-8"))
    return h.hexdigest()


def file_digest(source: str) -> str:
    """Content-only digest used by the keyed-zone schema-drift manifest."""
    return hashlib.blake2b(source.encode("utf-8"), digest_size=16).hexdigest()


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body.

    ``dotted`` is the alias-resolved dotted target when the base of the
    call is a plain name (``np.random.random`` -> ``numpy.random.random``);
    ``attr`` is the final attribute/name, kept even when the base is a
    dynamic expression (``spec.generate(...)`` -> attr ``generate``,
    dotted ``None``) so the call graph can fall back to name matching.
    ``seeded`` is True when the call carries any argument (the TL004/TL007
    convention: RNG constructors are safe exactly when given a seed).
    ``arg_flags`` records lambda / nested-function arguments for TL011;
    ``func_args`` records plain-name arguments that resolve to local
    functions (worker functions handed to ``run_sweep``).
    ``wrapped_in_sorted`` is True when the call is directly the argument
    of a ``sorted(...)`` call (the TL009 escape hatch).
    """

    dotted: Optional[str]
    attr: str
    line: int
    col: int
    seeded: bool = False
    arg_flags: Tuple[str, ...] = ()
    func_args: Tuple[str, ...] = ()
    wrapped_in_sorted: bool = False

    def as_dict(self) -> Dict[str, Any]:
        return {
            "dotted": self.dotted,
            "attr": self.attr,
            "line": self.line,
            "col": self.col,
            "seeded": self.seeded,
            "arg_flags": list(self.arg_flags),
            "func_args": list(self.func_args),
            "sorted": self.wrapped_in_sorted,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "CallSite":
        return CallSite(
            dotted=data["dotted"],
            attr=data["attr"],
            line=data["line"],
            col=data["col"],
            seeded=data["seeded"],
            arg_flags=tuple(data["arg_flags"]),
            func_args=tuple(data["func_args"]),
            wrapped_in_sorted=data["sorted"],
        )


@dataclass(frozen=True)
class Site:
    """A plain (line, col, detail) hazard location inside a function."""

    line: int
    col: int
    detail: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {"line": self.line, "col": self.col, "detail": self.detail}

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "Site":
        return Site(line=data["line"], col=data["col"], detail=data["detail"])


@dataclass
class FunctionSummary:
    """Everything the deep rules need to know about one function."""

    qualname: str  #: fully qualified, e.g. ``repro.store.store.ResultStore.put``
    name: str  #: bare name
    line: int
    end_line: int
    col: int
    is_method: bool
    calls: List[CallSite] = field(default_factory=list)
    #: module-level names read (Name loads that are neither locals nor
    #: imports), candidates for the TL012 mutable-global rule.
    global_reads: List[Site] = field(default_factory=list)
    #: iteration over set-typed expressions (TL008).
    set_iterations: List[Site] = field(default_factory=list)
    #: ``sum``/``math.fsum`` over set-typed expressions (TL010).
    unordered_accumulations: List[Site] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "name": self.name,
            "line": self.line,
            "end_line": self.end_line,
            "col": self.col,
            "is_method": self.is_method,
            "calls": [c.as_dict() for c in self.calls],
            "global_reads": [s.as_dict() for s in self.global_reads],
            "set_iterations": [s.as_dict() for s in self.set_iterations],
            "unordered_accumulations": [
                s.as_dict() for s in self.unordered_accumulations
            ],
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "FunctionSummary":
        return FunctionSummary(
            qualname=data["qualname"],
            name=data["name"],
            line=data["line"],
            end_line=data["end_line"],
            col=data["col"],
            is_method=data["is_method"],
            calls=[CallSite.from_dict(c) for c in data["calls"]],
            global_reads=[Site.from_dict(s) for s in data["global_reads"]],
            set_iterations=[Site.from_dict(s) for s in data["set_iterations"]],
            unordered_accumulations=[
                Site.from_dict(s) for s in data["unordered_accumulations"]
            ],
        )


@dataclass
class ModuleSummary:
    """The distilled facts of one source file."""

    module: str  #: dotted module name, e.g. ``repro.simulation.sweep``
    path: str  #: path as given to the engine (repo-relative in practice)
    digest: str  #: content-only digest (schema-drift manifest currency)
    functions: List[FunctionSummary] = field(default_factory=list)
    #: class name -> method bare names (for call-graph name matching).
    classes: Dict[str, List[str]] = field(default_factory=dict)
    #: module-level names bound to mutable containers (list/dict/set/...).
    module_mutables: List[str] = field(default_factory=list)
    #: module-level names that are *mutated* anywhere in the file
    #: (augmented assignment, subscript store, or a mutating method call).
    mutated_globals: List[str] = field(default_factory=list)

    def function(self, qualname: str) -> Optional[FunctionSummary]:
        for fn in self.functions:
            if fn.qualname == qualname:
                return fn
        return None

    def context_at(self, line: int) -> str:
        """Qualname of the innermost function containing ``line`` ('' if none)."""
        best = ""
        best_span = None
        for fn in self.functions:
            if fn.line <= line <= fn.end_line:
                span = fn.end_line - fn.line
                if best_span is None or span < best_span:
                    best, best_span = fn.qualname, span
        return best

    def as_dict(self) -> Dict[str, Any]:
        return {
            "module": self.module,
            "path": self.path,
            "digest": self.digest,
            "functions": [f.as_dict() for f in self.functions],
            "classes": {k: list(v) for k, v in self.classes.items()},
            "module_mutables": list(self.module_mutables),
            "mutated_globals": list(self.mutated_globals),
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "ModuleSummary":
        return ModuleSummary(
            module=data["module"],
            path=data["path"],
            digest=data["digest"],
            functions=[FunctionSummary.from_dict(f) for f in data["functions"]],
            classes={k: list(v) for k, v in data["classes"].items()},
            module_mutables=list(data["module_mutables"]),
            mutated_globals=list(data["mutated_globals"]),
        )


# ---------------------------------------------------------------------------
# Extraction
# ---------------------------------------------------------------------------

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter", "OrderedDict"}
_MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "pop", "popleft", "popitem",
    "clear", "update", "setdefault", "add", "discard", "sort", "reverse",
}
#: Directory-listing callables whose result order is filesystem-dependent.
LISTING_ATTRS = {"listdir", "scandir", "iterdir", "glob", "iglob", "rglob"}


def _dotted_from(node: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    """Alias-resolved dotted name of an attribute chain rooted at a Name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(aliases.get(node.id, node.id))
    return ".".join(reversed(parts))


def _collect_aliases(tree: ast.Module) -> Dict[str, str]:
    """local name -> dotted target, over *every* import in the file.

    Function-local imports are folded into one module-wide map; genuinely
    conflicting aliases across scopes are rare enough that last-wins is an
    acceptable approximation for a linter.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name != "*":
                    aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


class _SetTracker:
    """Best-effort local type tracking: which names are bound to sets."""

    def __init__(self) -> None:
        self.set_names: set = set()

    def is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in {"set", "frozenset"}:
                return True
        if isinstance(node, ast.Name) and node.id in self.set_names:
            return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            # set algebra (a | b, a - b) preserves set-ness when either
            # side is known to be a set.
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        return False

    def note_assign(self, target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            if self.is_set_expr(value):
                self.set_names.add(target.id)
            else:
                self.set_names.discard(target.id)


def _local_names(fn: ast.AST) -> set:
    """Names bound inside a function (params, assignments, loops, withs)."""
    bound: set = set()
    assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
    args = fn.args
    for a in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ):
        bound.add(a.arg)
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            bound.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node is not fn:
                bound.add(node.name)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add((alias.asname or alias.name).split(".")[0])
    return bound


def _iter_functions(
    tree: ast.Module, module_name: str
) -> Iterator[Tuple[ast.AST, str, bool, Optional[str]]]:
    """Yield (node, qualname, is_method, owning class) for every def.

    Nested functions get ``outer.<locals>.inner``-free simple dotted
    qualnames (``outer.inner``) — unambiguous enough for reporting, and
    nested defs are not call-graph targets anyway.
    """

    def walk(body: Sequence[ast.stmt], prefix: str, cls: Optional[str]) -> Iterator:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{node.name}"
                yield node, qual, cls is not None, cls
                yield from walk(node.body, qual, None)
            elif isinstance(node, ast.ClassDef):
                yield from walk(node.body, f"{prefix}.{node.name}", node.name)

    yield from walk(tree.body, module_name, None)


def extract_module(path: str, module_name: str, source: str) -> ModuleSummary:
    """Distill one parsed source file into a :class:`ModuleSummary`.

    Raises ``SyntaxError`` on unparsable input — the caller (the deep
    runner) converts that into a TL000 finding exactly like the shallow
    engine does.
    """
    tree = ast.parse(source)
    aliases = _collect_aliases(tree)
    summary = ModuleSummary(
        module=module_name, path=path, digest=file_digest(source)
    )

    # -- module-level state ------------------------------------------------
    module_assigned: Dict[str, bool] = {}  # name -> bound to a mutable?
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            mutable = isinstance(value, _MUTABLE_LITERALS) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in _MUTABLE_CALLS
            )
            # A later immutable rebind clears the flag; last wins.
            module_assigned[target.id] = mutable
    summary.module_mutables = sorted(
        name for name, mutable in module_assigned.items() if mutable
    )

    # -- mutations of module-level names (anywhere in the file) -----------
    mutated: set = set()
    mutable_set = set(summary.module_mutables)
    for node in ast.walk(tree):
        if isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
            if node.target.id in mutable_set:
                mutated.add(node.target.id)
        elif isinstance(node, (ast.Assign, ast.Delete)):
            targets = node.targets
            for target in targets:
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    if target.value.id in mutable_set:
                        mutated.add(target.value.id)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if (
                node.func.attr in _MUTATING_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in mutable_set
            ):
                mutated.add(node.func.value.id)
    summary.mutated_globals = sorted(mutated)

    # -- classes -----------------------------------------------------------
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            methods = [
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
            summary.classes[node.name] = methods

    # -- functions ---------------------------------------------------------
    #: (line, col) of calls that sit directly inside sorted(...).
    sorted_wrapped: set = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sorted"
            and node.args
        ):
            inner = node.args[0]
            if isinstance(inner, ast.Call):
                sorted_wrapped.add((inner.lineno, inner.col_offset))

    for fn_node, qualname, is_method, cls in _iter_functions(tree, module_name):
        assert isinstance(fn_node, (ast.FunctionDef, ast.AsyncFunctionDef))
        fs = FunctionSummary(
            qualname=qualname,
            name=fn_node.name,
            line=fn_node.lineno,
            end_line=getattr(fn_node, "end_lineno", fn_node.lineno) or fn_node.lineno,
            col=fn_node.col_offset,
            is_method=is_method,
        )
        locals_ = _local_names(fn_node)
        tracker = _SetTracker()
        nested_defs = {
            n.name
            for n in ast.walk(fn_node)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef)) and n is not fn_node
        }

        own_class = cls
        for node in ast.walk(fn_node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    tracker.note_assign(target, node.value)
            elif isinstance(node, ast.Call):
                dotted = _dotted_from(node.func, aliases)
                attr = (
                    node.func.attr
                    if isinstance(node.func, ast.Attribute)
                    else (node.func.id if isinstance(node.func, ast.Name) else "")
                )
                if not attr:
                    continue
                # self.method() -> resolve against the owning class when
                # that class defines the method.
                if (
                    dotted is not None
                    and dotted.startswith("self.")
                    and own_class is not None
                ):
                    dotted = f"{module_name}.{own_class}.{dotted[len('self.'):]}"
                arg_flags: List[str] = []
                func_args: List[str] = []
                # Keyword args carry their name in the flag ("lambda@on_result")
                # so TL011 can exempt parent-side callbacks of project sinks.
                labeled = [(arg, "") for arg in node.args] + [
                    (kw.value, kw.arg or "**") for kw in node.keywords
                ]
                for arg, kwarg in labeled:
                    suffix = f"@{kwarg}" if kwarg else ""
                    if isinstance(arg, ast.Lambda):
                        arg_flags.append(ARG_LAMBDA + suffix)
                    elif isinstance(arg, ast.Name):
                        if arg.id in nested_defs:
                            arg_flags.append(ARG_NESTED_FUNC + suffix)
                        func_args.append(aliases.get(arg.id, arg.id))
                    elif isinstance(arg, ast.Attribute):
                        arg_dotted = _dotted_from(arg, aliases)
                        if arg_dotted is not None:
                            func_args.append(arg_dotted)
                fs.calls.append(
                    CallSite(
                        dotted=dotted,
                        attr=attr,
                        line=node.lineno,
                        col=node.col_offset,
                        seeded=bool(node.args or node.keywords),
                        arg_flags=tuple(sorted(set(arg_flags))),
                        func_args=tuple(func_args),
                        wrapped_in_sorted=(node.lineno, node.col_offset)
                        in sorted_wrapped,
                    )
                )
                # sum(...) / math.fsum(...) over an unordered collection.
                if attr in {"sum", "fsum"} and node.args:
                    if tracker.is_set_expr(node.args[0]):
                        fs.unordered_accumulations.append(
                            Site(
                                line=node.lineno,
                                col=node.col_offset,
                                detail=f"{attr}() over a set",
                            )
                        )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if tracker.is_set_expr(node.iter):
                    fs.set_iterations.append(
                        Site(
                            line=node.lineno,
                            col=node.col_offset,
                            detail="for-loop over a set",
                        )
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    if tracker.is_set_expr(gen.iter):
                        fs.set_iterations.append(
                            Site(
                                line=node.lineno,
                                col=node.col_offset,
                                detail="comprehension over a set",
                            )
                        )
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if (
                    node.id not in locals_
                    and node.id not in aliases
                    and node.id in module_assigned
                ):
                    fs.global_reads.append(
                        Site(line=node.lineno, col=node.col_offset, detail=node.id)
                    )
        summary.functions.append(fs)
    return summary


# ---------------------------------------------------------------------------
# Project layout
# ---------------------------------------------------------------------------


def module_name_for(path: Path, package_root: Path) -> Optional[str]:
    """Dotted module name of ``path`` under ``package_root`` (None if outside).

    ``src/repro/simulation/sweep.py`` under package root ``src`` becomes
    ``repro.simulation.sweep``; ``__init__.py`` maps to its package.
    """
    try:
        rel = path.resolve().relative_to(package_root.resolve())
    except ValueError:
        return None
    parts = list(rel.parts)
    if not parts or not parts[-1].endswith(".py"):
        return None
    parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    if not parts:
        return None
    return ".".join(parts)


def iter_project_files(package_root: Path) -> Iterator[Path]:
    """Every ``.py`` file under ``package_root``, sorted, caches skipped."""
    for candidate in sorted(package_root.rglob("*.py")):
        if any(
            part in {"__pycache__", ".git", ".thermolint_cache"}
            for part in candidate.parts
        ):
            continue
        yield candidate
