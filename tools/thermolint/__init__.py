"""thermolint — a domain-aware static-analysis pass for the repro codebase.

The paper's integrated model mixes imperial recording units (BPI/TPI,
inches), SI thermal units (W, K, m) and storage marketing units (decimal GB,
binary MB/s).  ``repro/units.py`` centralizes every conversion; thermolint
*enforces* that centralization plus the determinism invariants the
byte-identity contract depends on.

Shallow rules (per file)
------------------------
TL001  bare unit-conversion magic number outside ``units.py``/``constants.py``
TL002  float ``==``/``!=`` comparison in model code
TL003  Kelvin/Celsius arithmetic mixing heuristic
TL004  unseeded ``random``/``numpy.random`` use in simulation code
TL005  mutable default argument
TL006  missing ``__all__`` in a public package ``__init__``

Deep rules (cross-file, ``--deep``)
-----------------------------------
TL007  nondeterminism source reachable inside the keyed zone
TL008  set-iteration-order dependence inside the keyed zone
TL009  unsorted directory listing inside the keyed zone
TL010  float accumulation over an unordered collection in the keyed zone
TL011  non-picklable callable (lambda/nested def) handed to an executor
TL012  mutated module-global read inside worker-reachable code
TL013  keyed-zone file edited without a ``CODE_SCHEMA_VERSION`` bump

Suppress a finding on one line with ``# thermolint: disable=TL001`` (comma
separated ids, or ``all``); suppress for a whole file with
``# thermolint: disable-file=TL004``.  Deep findings can also live in the
reviewed baseline (``tools/thermolint/baseline.json``).
"""

from thermolint.engine import Finding, LintContext, ParsedModule, Rule, lint_source, run_paths
from thermolint.reporters import render_json, render_text
from thermolint.rules import ALL_RULES, rule_by_id

__version__ = "2.0.0"

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintContext",
    "ParsedModule",
    "Rule",
    "__version__",
    "lint_source",
    "render_json",
    "render_text",
    "rule_by_id",
    "run_paths",
]
