"""Flow-aware determinism rules (TL007–TL013) over the project call graph.

The byte-identity contract (PR 5's differential suite, PR 6's engine
equivalence) holds only if nothing nondeterministic can flow into the
**keyed zone** — the functions whose execution produces canonical store
keys, result-envelope bytes, or worker-computed results:

* everything in ``repro.store.canonical`` (key discipline itself);
* ``workload_task_key`` and the result codec / results-document builders
  in ``repro.simulation.sweep``;
* envelope construction and verification in ``repro.store.store``;
* manifest construction (``SweepRunReport.manifest``);
* every worker task function handed to the sweep executors, plus its
  transitive callees (the whole simulator, when replaying a trace).

Rules TL007–TL010 fire on hazard sites *inside* that zone; TL011/TL012
guard the parallel fabric itself; TL013 is the schema-drift gate: editing
a key-affecting module without bumping ``CODE_SCHEMA_VERSION`` silently
reuses stale cached results, so the digests of those files are pinned in
a checked-in manifest.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from thermolint.callgraph import CallGraph, Reach, discover_roots
from thermolint.engine import Finding
from thermolint.symbols import ARG_LAMBDA, ARG_NESTED_FUNC, LISTING_ATTRS, ModuleSummary, file_digest

# ---------------------------------------------------------------------------
# Keyed-zone configuration (the defaults describe this repository; tests
# override them to analyze synthetic packages)
# ---------------------------------------------------------------------------

#: Functions whose execution defines keyed bytes: key derivation, result
#: codecs, envelope and manifest construction.
DEFAULT_ROOT_PATTERNS: Tuple[str, ...] = (
    "repro.store.canonical.*",
    "repro.simulation.sweep.workload_task_key",
    "repro.simulation.sweep.workload_result_to_payload",
    "repro.simulation.sweep.workload_result_from_payload",
    "repro.simulation.sweep.results_document",
    "repro.simulation.sweep.results_json_bytes",
    "repro.store.store.ResultStore.put",
    "repro.store.store.ResultStore.get",
    "repro.store.store.ResultStore._validate",
    "repro.simulation.resilience.SweepRunReport.manifest",
)

#: Executor front-ends: a project function passed to one of these by name
#: runs inside a worker process and is a keyed-zone root.
DEFAULT_WORKER_SINKS: Tuple[str, ...] = (
    "*.run_sweep",
    "*.run_sweep_resilient",
    "*.run_sweep_cached",
)

#: Files whose content defines what a store key *means*.  Editing any of
#: them without bumping CODE_SCHEMA_VERSION risks stale cache hits; their
#: digests are pinned in the keyed-zone manifest (TL013).
DEFAULT_KEY_AFFECTING_FILES: Tuple[str, ...] = (
    "src/repro/store/canonical.py",
    "src/repro/store/store.py",
    "src/repro/simulation/sweep.py",
    "src/repro/faults/models.py",
    "src/repro/fleet/sweep.py",
)

#: Where the current CODE_SCHEMA_VERSION lives (parsed statically).
DEFAULT_VERSION_FILE = "src/repro/store/canonical.py"
VERSION_SYMBOL = "CODE_SCHEMA_VERSION"

#: Schema identifier of the keyed-zone manifest document.
MANIFEST_SCHEMA = "thermolint.keyed_zone/1"

#: Default manifest location, relative to the project root.
DEFAULT_MANIFEST_PATH = "tools/thermolint/keyed_zone_manifest.json"


# ---------------------------------------------------------------------------
# Nondeterminism sources (TL007)
# ---------------------------------------------------------------------------

#: Dotted callables whose return value differs across runs/processes.
NONDET_CALLS = {
    "time.time": "wall-clock time",
    "time.time_ns": "wall-clock time",
    "time.monotonic": "monotonic clock",
    "time.monotonic_ns": "monotonic clock",
    "time.perf_counter": "performance counter",
    "time.perf_counter_ns": "performance counter",
    "time.process_time": "process clock",
    "datetime.datetime.now": "wall-clock datetime",
    "datetime.datetime.utcnow": "wall-clock datetime",
    "datetime.datetime.today": "wall-clock datetime",
    "datetime.date.today": "wall-clock date",
    "os.urandom": "OS entropy",
    "uuid.uuid1": "host/time-derived UUID",
    "uuid.uuid4": "random UUID",
    "os.getenv": "environment variable",
    "secrets.token_bytes": "OS entropy",
    "secrets.token_hex": "OS entropy",
}

#: Dotted prefixes that read the process environment (``os.environ[...]``,
#: ``os.environ.get(...)``).
ENVIRON_PREFIX = "os.environ"

#: Builtins whose value is process-local (CPython salts str/bytes hashing
#: per process unless PYTHONHASHSEED pins it; id() is an address).
NONDET_BUILTINS = {
    "id": "object identity (address, differs per process)",
    "hash": "builtin hash (str/bytes hashing is salted per process)",
}

#: Global-RNG modules: any draw is nondeterministic across workers.
GLOBAL_RNG_PREFIXES = ("random.", "numpy.random.")

#: Constructors that are deterministic exactly when given a seed.
SEEDABLE_CONSTRUCTORS = {
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.Generator",
}


def classify_nondet(dotted: Optional[str], seeded: bool) -> Optional[str]:
    """Human-readable hazard description of a call target, or None."""
    if dotted is None:
        return None
    if dotted in NONDET_CALLS:
        return NONDET_CALLS[dotted]
    if dotted == ENVIRON_PREFIX or dotted.startswith(ENVIRON_PREFIX + "."):
        return "environment variable"
    if dotted in NONDET_BUILTINS:
        return NONDET_BUILTINS[dotted]
    if dotted in SEEDABLE_CONSTRUCTORS:
        return None if seeded else "unseeded RNG constructor"
    for prefix in GLOBAL_RNG_PREFIXES:
        if dotted.startswith(prefix):
            # Seeding the *global* RNG (random.seed) is itself a cross-
            # worker hazard; every other global draw certainly is.
            return "global RNG state"
    return None


# ---------------------------------------------------------------------------
# The deep rule set
# ---------------------------------------------------------------------------

#: id -> one-line summary (feeds --list-rules, reporters and SARIF).
DEEP_RULE_SUMMARIES: Dict[str, str] = {
    "TL007": "nondeterminism source reachable inside the keyed zone",
    "TL008": "set-iteration-order dependence inside the keyed zone",
    "TL009": "unsorted directory listing inside the keyed zone",
    "TL010": "float accumulation over an unordered collection in the keyed zone",
    "TL011": "non-picklable callable (lambda/nested def) handed to an executor",
    "TL012": "mutated module-global read inside worker-reachable code",
    "TL013": "keyed-zone file edited without a CODE_SCHEMA_VERSION bump",
}

DEEP_RULE_IDS: Tuple[str, ...] = tuple(sorted(DEEP_RULE_SUMMARIES))


def _fmt_chain(chain: Sequence[str]) -> str:
    if len(chain) <= 1:
        return chain[0] if chain else ""
    return " -> ".join(chain)


def run_taint_rules(
    graph: CallGraph,
    zone: Dict[str, Reach],
) -> List[Finding]:
    """TL007–TL010: hazard sites inside keyed-zone functions."""
    findings: List[Finding] = []
    for qualname in sorted(zone):
        entry = graph.functions.get(qualname)
        if entry is None:
            continue
        mod, fn = entry
        chain = _fmt_chain(graph.chain(zone, qualname))
        for call in fn.calls:
            hazard = classify_nondet(call.dotted, call.seeded)
            if hazard is not None:
                findings.append(
                    Finding(
                        rule_id="TL007",
                        message=(
                            f"{call.dotted}() injects {hazard} into the keyed "
                            f"zone (keyed via {chain}); derive the value from "
                            "task inputs or move it out of the keyed path"
                        ),
                        path=mod.path,
                        line=call.line,
                        col=call.col,
                    )
                )
            if call.attr in LISTING_ATTRS and not call.wrapped_in_sorted:
                findings.append(
                    Finding(
                        rule_id="TL009",
                        message=(
                            f"{call.attr}() order is filesystem-dependent and "
                            f"this call is keyed via {chain}; wrap it in "
                            "sorted(...)"
                        ),
                        path=mod.path,
                        line=call.line,
                        col=call.col,
                    )
                )
        for site in fn.set_iterations:
            findings.append(
                Finding(
                    rule_id="TL008",
                    message=(
                        f"{site.detail} inside the keyed zone (keyed via "
                        f"{chain}); iterate sorted(...) for a stable order"
                    ),
                    path=mod.path,
                    line=site.line,
                    col=site.col,
                )
            )
        for site in fn.unordered_accumulations:
            findings.append(
                Finding(
                    rule_id="TL010",
                    message=(
                        f"{site.detail} accumulates floats in set order, which "
                        f"is unstable across processes (keyed via {chain}); "
                        "sum over sorted(...) instead"
                    ),
                    path=mod.path,
                    line=site.line,
                    col=site.col,
                )
            )
    return findings


#: Keyword names of project worker-sink parameters whose value is pickled
#: into pool processes (anything else passed by keyword is a parent-side
#: callback and may legitimately be a closure).
_PICKLED_KWARGS = frozenset({"worker", "fn", "func", "task", "initializer"})


def run_fabric_rules(
    graph: CallGraph,
    worker_zone: Dict[str, Reach],
    worker_sinks: Sequence[str] = DEFAULT_WORKER_SINKS,
) -> List[Finding]:
    """TL011/TL012: hazards of the process-pool fabric itself."""
    from thermolint.callgraph import match_patterns

    findings: List[Finding] = []
    # TL011 — lambdas / nested defs submitted to executors don't pickle
    # under the spawn start method (and capture ambient state under fork).
    # For executor.submit/map every argument crosses the process boundary;
    # for the project's run_sweep* sinks only the worker callable does —
    # keyword callbacks (on_result=..., key_fn=...) stay parent-side,
    # except the ones every pool pickles anyway (worker/initializer).
    for qualname in sorted(graph.functions):
        mod, fn = graph.functions[qualname]
        for call in fn.calls:
            dotted = call.dotted or ""
            is_raw_executor = call.attr in {"submit", "map"}
            is_sink = any(
                match_patterns(c, worker_sinks)
                for c in (dotted, f"{mod.module}.{dotted}")
                if c
            )
            if not (is_raw_executor or is_sink) or not call.arg_flags:
                continue
            flags = []
            for flag in call.arg_flags:
                kind, _, kwarg = flag.partition("@")
                if kwarg and not is_raw_executor and kwarg not in _PICKLED_KWARGS:
                    continue
                flags.append(kind)
            if not flags:
                continue
            kinds = []
            if ARG_LAMBDA in flags:
                kinds.append("a lambda")
            if ARG_NESTED_FUNC in flags:
                kinds.append("a nested function")
            findings.append(
                Finding(
                    rule_id="TL011",
                    message=(
                        f"{call.attr}() receives {' and '.join(kinds)}; worker "
                        "callables must be module-level to pickle under any "
                        "start method"
                    ),
                    path=mod.path,
                    line=call.line,
                    col=call.col,
                )
            )
    # TL012 — worker-reachable code reading a module-global that the
    # module also mutates: each pool process sees its own copy, so any
    # order-dependent content diverges silently between serial/parallel.
    mutated_by_module: Dict[str, set] = {}
    for mod in graph.summaries():
        mutated_by_module[mod.module] = set(mod.mutated_globals)
    for qualname in sorted(worker_zone):
        entry = graph.functions.get(qualname)
        if entry is None:
            continue
        mod, fn = entry
        mutated = mutated_by_module.get(mod.module, set())
        chain = _fmt_chain(graph.chain(worker_zone, qualname))
        seen: set = set()
        for site in fn.global_reads:
            name = site.detail
            if name not in mutated or name in seen:
                continue
            seen.add(name)
            findings.append(
                Finding(
                    rule_id="TL012",
                    message=(
                        f"module-global '{name}' is mutated in this module and "
                        f"read inside worker-reachable code ({chain}); "
                        "per-process copies can diverge — pass state through "
                        "the task or make it immutable"
                    ),
                    path=mod.path,
                    line=site.line,
                    col=site.col,
                )
            )
    return findings


# ---------------------------------------------------------------------------
# TL013 — schema drift
# ---------------------------------------------------------------------------


def read_code_schema_version(project_root: Path, version_file: str = DEFAULT_VERSION_FILE) -> Optional[int]:
    """Statically parse ``CODE_SCHEMA_VERSION = <int>`` (no import needed)."""
    path = project_root / version_file
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return None
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id == VERSION_SYMBOL
                and isinstance(value, ast.Constant)
                and isinstance(value.value, int)
            ):
                return value.value
    return None


def build_keyed_manifest(
    project_root: Path,
    key_files: Sequence[str] = DEFAULT_KEY_AFFECTING_FILES,
    version_file: str = DEFAULT_VERSION_FILE,
) -> Dict[str, object]:
    """The manifest document pinning key-affecting file digests."""
    version = read_code_schema_version(project_root, version_file)
    files: Dict[str, str] = {}
    for rel in sorted(key_files):
        path = project_root / rel
        if path.is_file():
            files[rel] = file_digest(path.read_text(encoding="utf-8"))
    return {
        "schema": MANIFEST_SCHEMA,
        "code_schema_version": version,
        "version_file": version_file,
        "files": files,
    }


def write_keyed_manifest(
    project_root: Path,
    manifest_path: str = DEFAULT_MANIFEST_PATH,
    key_files: Sequence[str] = DEFAULT_KEY_AFFECTING_FILES,
    version_file: str = DEFAULT_VERSION_FILE,
) -> Path:
    """Regenerate the checked-in manifest (the --update-keyed-manifest path)."""
    manifest = build_keyed_manifest(project_root, key_files, version_file)
    out = project_root / manifest_path
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return out


def check_schema_drift(
    project_root: Path,
    manifest_path: str = DEFAULT_MANIFEST_PATH,
    key_files: Sequence[str] = DEFAULT_KEY_AFFECTING_FILES,
    version_file: str = DEFAULT_VERSION_FILE,
) -> List[Finding]:
    """TL013: compare key-affecting files against the pinned manifest.

    Cases, in decreasing severity:

    * a pinned file's digest changed while ``CODE_SCHEMA_VERSION`` did
      not — the drift the rule exists for (stale cache hits);
    * the version *was* bumped but the manifest still records the old
      state — benign, but the manifest must be refreshed so the next
      edit is attributable;
    * a key-affecting file is missing from the manifest (or the manifest
      is absent/unreadable) — the gate has a hole.
    """
    manifest_file = project_root / manifest_path
    current = build_keyed_manifest(project_root, key_files, version_file)
    if not manifest_file.is_file():
        return [
            Finding(
                rule_id="TL013",
                message=(
                    f"keyed-zone manifest {manifest_path} is missing; run "
                    "thermolint --update-keyed-manifest and commit it"
                ),
                path=manifest_path,
                line=1,
                col=0,
            )
        ]
    try:
        pinned = json.loads(manifest_file.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        pinned = None
    if not isinstance(pinned, dict) or pinned.get("schema") != MANIFEST_SCHEMA:
        return [
            Finding(
                rule_id="TL013",
                message=(
                    f"keyed-zone manifest {manifest_path} is unreadable or has "
                    "the wrong schema; regenerate with --update-keyed-manifest"
                ),
                path=manifest_path,
                line=1,
                col=0,
            )
        ]
    findings: List[Finding] = []
    pinned_version = pinned.get("code_schema_version")
    pinned_files = pinned.get("files", {})
    current_files = current["files"]
    assert isinstance(current_files, dict)
    version_bumped = pinned_version != current["code_schema_version"]
    for rel in sorted(set(pinned_files) | set(current_files)):
        pinned_digest = pinned_files.get(rel)
        current_digest = current_files.get(rel)
        if pinned_digest is None:
            findings.append(
                Finding(
                    rule_id="TL013",
                    message=(
                        f"key-affecting file {rel} is not pinned by the keyed-"
                        "zone manifest; refresh it with --update-keyed-manifest"
                    ),
                    path=rel,
                    line=1,
                    col=0,
                )
            )
        elif current_digest is None:
            findings.append(
                Finding(
                    rule_id="TL013",
                    message=(
                        f"pinned keyed-zone file {rel} no longer exists; "
                        "refresh the manifest with --update-keyed-manifest"
                    ),
                    path=rel,
                    line=1,
                    col=0,
                )
            )
        elif pinned_digest != current_digest:
            if version_bumped:
                findings.append(
                    Finding(
                        rule_id="TL013",
                        message=(
                            f"{rel} changed and {VERSION_SYMBOL} was bumped; "
                            "refresh the manifest with --update-keyed-manifest "
                            "to pin the new state"
                        ),
                        path=rel,
                        line=1,
                        col=0,
                    )
                )
            else:
                findings.append(
                    Finding(
                        rule_id="TL013",
                        message=(
                            f"{rel} changed without a {VERSION_SYMBOL} bump: "
                            "cached results keyed under the old semantics "
                            "would be served for the new code — bump it in "
                            f"{version_file} (or, for a provably key-neutral "
                            "edit, refresh the manifest with "
                            "--update-keyed-manifest and say why in review)"
                        ),
                        path=rel,
                        line=1,
                        col=0,
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# Zone assembly (the deep runner's entry points)
# ---------------------------------------------------------------------------


def keyed_zone(
    graph: CallGraph,
    root_patterns: Sequence[str] = DEFAULT_ROOT_PATTERNS,
    worker_sinks: Sequence[str] = DEFAULT_WORKER_SINKS,
) -> Tuple[List[str], Dict[str, Reach]]:
    """(roots, closure) of the keyed zone for this graph."""
    roots = discover_roots(graph, root_patterns, worker_sinks)
    return roots, graph.reachable_from(roots)


def worker_zone(
    graph: CallGraph,
    worker_sinks: Sequence[str] = DEFAULT_WORKER_SINKS,
) -> Dict[str, Reach]:
    """Closure of just the worker-task roots (TL012's scope)."""
    roots = discover_roots(graph, (), worker_sinks)
    return graph.reachable_from(roots)
