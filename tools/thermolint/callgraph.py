"""Project call graph over :class:`~thermolint.symbols.ModuleSummary` facts.

Edges are resolved three ways, in decreasing order of confidence:

1. **Direct** — the alias-resolved dotted target names a project function
   (``repro.scaling.roadmap.thermal_roadmap``) or a method through an
   explicit receiver (``self.gc`` inside ``ResultStore`` ->
   ``repro.store.store.ResultStore.gc``).
2. **Constructor** — the dotted target names a project class; the edge
   goes to its ``__init__`` when one exists.
3. **Name matching (CHA-lite)** — a method call through a dynamic
   receiver (``spec.generate(...)``) links to every project method of
   that bare name, provided the name is *distinctive*: defined by at most
   :data:`CHA_MAX_OWNERS` classes and not in the generic-name stoplist.
   This over-approximates on purpose — for a determinism gate, a false
   edge costs a reviewed suppression, a missed edge costs a silent
   nondeterministic key.

Reachability from the keyed-zone roots is a plain BFS that records parent
pointers, so every taint finding can print the call chain that drags the
offending function into the zone.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from thermolint.symbols import CallSite, FunctionSummary, ModuleSummary

#: A dynamic method name links only when at most this many classes define it.
CHA_MAX_OWNERS = 6

#: Ubiquitous method names that would wire the graph into a hairball —
#: container/protocol vocabulary carried by dozens of unrelated types.
CHA_STOPLIST = frozenset(
    {
        "get", "put", "add", "pop", "append", "extend", "update", "items",
        "keys", "values", "copy", "clear", "sort", "reverse", "join",
        "split", "strip", "read", "write", "open", "close", "flush",
        "encode", "decode", "format", "count", "index", "insert",
        "remove", "discard", "setdefault", "popleft", "popitem",
        "as_dict", "from_dict", "render",
    }
)


@dataclass
class Reach:
    """Why a function is in the keyed zone: its BFS parent and root."""

    parent: Optional[str]  #: caller qualname (None for roots)
    root: str  #: the root whose closure pulled this function in


@dataclass
class CallGraph:
    """Resolved project call graph plus lookup indexes."""

    #: qualname -> (module summary, function summary)
    functions: Dict[str, Tuple[ModuleSummary, FunctionSummary]] = field(
        default_factory=dict
    )
    #: caller qualname -> sorted callee qualnames
    edges: Dict[str, List[str]] = field(default_factory=dict)
    #: bare method name -> owning qualnames (for CHA diagnostics/tests)
    by_name: Dict[str, List[str]] = field(default_factory=dict)

    def summaries(self) -> List[ModuleSummary]:
        seen: Dict[str, ModuleSummary] = {}
        for mod, _fn in self.functions.values():
            seen[mod.module] = mod
        return [seen[name] for name in sorted(seen)]

    # -- construction --------------------------------------------------------

    @staticmethod
    def build(summaries: Sequence[ModuleSummary]) -> "CallGraph":
        graph = CallGraph()
        class_methods: Dict[str, List[str]] = {}  # bare name -> qualnames
        class_inits: Dict[str, str] = {}  # module.Class -> __init__ qualname
        for mod in summaries:
            for fn in mod.functions:
                graph.functions[fn.qualname] = (mod, fn)
                if fn.is_method:
                    class_methods.setdefault(fn.name, []).append(fn.qualname)
                    if fn.name == "__init__":
                        class_inits[fn.qualname.rsplit(".", 1)[0]] = fn.qualname
        graph.by_name = {
            name: sorted(quals) for name, quals in class_methods.items()
        }

        for mod in summaries:
            for fn in mod.functions:
                callees: Set[str] = set()
                for call in fn.calls:
                    callees.update(
                        _resolve_call(call, mod, graph, class_inits)
                    )
                graph.edges[fn.qualname] = sorted(callees)
        return graph

    # -- reachability --------------------------------------------------------

    def reachable_from(self, roots: Iterable[str]) -> Dict[str, Reach]:
        """BFS closure of ``roots`` through resolved edges.

        Returns {qualname: Reach} for every function in the closure,
        including the roots themselves.  Deterministic: the frontier is
        processed in sorted order, so parent attribution is stable.
        """
        zone: Dict[str, Reach] = {}
        frontier: List[str] = []
        for root in sorted(set(roots)):
            if root in self.functions and root not in zone:
                zone[root] = Reach(parent=None, root=root)
                frontier.append(root)
        while frontier:
            current = frontier.pop(0)
            for callee in self.edges.get(current, []):
                if callee not in zone:
                    zone[callee] = Reach(parent=current, root=zone[current].root)
                    frontier.append(callee)
        return zone

    def chain(self, zone: Dict[str, Reach], qualname: str) -> List[str]:
        """Root-to-function call chain (for finding messages)."""
        chain: List[str] = []
        cursor: Optional[str] = qualname
        while cursor is not None:
            chain.append(cursor)
            reach = zone.get(cursor)
            if reach is None:
                break
            cursor = reach.parent
        return list(reversed(chain))


def _resolve_call(
    call: CallSite,
    mod: ModuleSummary,
    graph: CallGraph,
    class_inits: Dict[str, str],
) -> List[str]:
    """All plausible project-internal targets of one call site."""
    targets: Set[str] = set()
    dotted = call.dotted
    if dotted is not None:
        # 1. Exact function/method qualname.
        if dotted in graph.functions:
            targets.add(dotted)
        # Bare local name: a module-level function of this module.
        local = f"{mod.module}.{dotted}"
        if "." not in dotted and local in graph.functions:
            targets.add(local)
        # 2. Class constructor.
        init = class_inits.get(dotted) or class_inits.get(local)
        if init is not None:
            targets.add(init)
        # A class without __init__ still "calls into" nothing extractable.
        if targets:
            return sorted(targets)
    # 3. CHA-lite: dynamic receiver, match by distinctive method name.
    attr = call.attr
    if attr.startswith("__") or attr in CHA_STOPLIST:
        return []
    owners = graph.by_name.get(attr, [])
    if owners and len({q.rsplit(".", 1)[0] for q in owners}) <= CHA_MAX_OWNERS:
        targets.update(owners)
    return sorted(targets)


# ---------------------------------------------------------------------------
# Root discovery
# ---------------------------------------------------------------------------


def match_patterns(qualname: str, patterns: Sequence[str]) -> bool:
    """fnmatch ``qualname`` against dotted glob patterns."""
    return any(fnmatch.fnmatch(qualname, pat) for pat in patterns)


def discover_roots(
    graph: CallGraph,
    root_patterns: Sequence[str],
    worker_sink_patterns: Sequence[str],
) -> List[str]:
    """The keyed-zone roots: explicit patterns + worker functions.

    A *worker function* is any project function passed by name to a sweep
    executor front-end (``run_sweep`` / ``run_sweep_resilient`` /
    ``run_sweep_cached`` — the ``worker_sink_patterns``); those functions
    execute inside pool processes and produce the bytes the store keys,
    so they are roots whether or not a pattern names them.
    """
    roots: Set[str] = set()
    for qualname in graph.functions:
        if match_patterns(qualname, root_patterns):
            roots.add(qualname)
    for mod_fn in graph.functions.values():
        mod, fn = mod_fn
        for call in fn.calls:
            dotted = call.dotted or ""
            candidates = [dotted, f"{mod.module}.{dotted}"] if dotted else []
            if not any(
                match_patterns(c, worker_sink_patterns) for c in candidates
            ):
                continue
            for arg in call.func_args:
                for candidate in (arg, f"{mod.module}.{arg}"):
                    if candidate in graph.functions:
                        roots.add(candidate)
    return sorted(roots)
