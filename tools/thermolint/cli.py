"""thermolint command line: ``python -m thermolint [paths...]``.

Exit-status contract (regression-tested):

* **0** — clean (no unbaselined findings);
* **1** — findings were reported;
* **2** — the *analyzer* failed: usage error (missing paths, unknown rule
  ids, malformed baseline) or an internal crash.  A crash prints its
  traceback to stderr so CI logs show what broke; it never masquerades
  as "clean" or "dirty".

``--deep`` switches from per-file shallow linting to the project-wide
pass: cross-file call graph, keyed-zone taint rules TL007–TL012, and the
TL013 schema-drift gate, with an incremental content-hash cache and a
reviewed baseline.  Positional paths then act as *report* filters only —
the analysis always covers the whole project, because a partial call
graph would under-approximate the keyed zone.
"""

from __future__ import annotations

import argparse
import sys
import traceback
from pathlib import Path
from typing import List, Optional, Sequence

from thermolint.engine import PARSE_ERROR_RULE, run_paths
from thermolint.reporters import render_json, render_text
from thermolint.rules import ALL_RULES

#: Default on-disk artifacts, relative to --project-root.
DEFAULT_BASELINE = "tools/thermolint/baseline.json"
DEFAULT_CACHE_DIR = ".thermolint_cache"


def _id_list(text: str) -> List[str]:
    return [part.strip().upper() for part in text.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    """Construct the thermolint argument parser."""
    parser = argparse.ArgumentParser(
        prog="thermolint",
        description="domain-aware determinism and unit-safety linter for the repro codebase",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=[],
        help=(
            "files or directories to lint (default: src/repro); with --deep "
            "these only filter which findings are reported"
        ),
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        type=_id_list,
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        type=_id_list,
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="append per-rule violation counts to the text report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    deep = parser.add_argument_group("deep analysis")
    deep.add_argument(
        "--deep",
        action="store_true",
        help="run the project-wide pass (call graph, taint rules TL007-TL013)",
    )
    deep.add_argument(
        "--project-root",
        type=Path,
        default=Path("."),
        metavar="DIR",
        help="repository root for --deep (default: current directory)",
    )
    deep.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            f"baseline file (default: {DEFAULT_BASELINE} under the project "
            "root, when present)"
        ),
    )
    deep.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    deep.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to the current findings and exit",
    )
    deep.add_argument(
        "--update-keyed-manifest",
        action="store_true",
        help="regenerate the keyed-zone schema-drift manifest and exit",
    )
    deep.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help=(
            f"per-file summary cache directory (default: {DEFAULT_CACHE_DIR} "
            "under the project root)"
        ),
    )
    deep.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental summary cache",
    )
    return parser


def _known_rule_ids() -> set:
    from thermolint.taint import DEEP_RULE_SUMMARIES

    known = {rule.rule_id for rule in ALL_RULES}
    known.update(DEEP_RULE_SUMMARIES)
    known.add(PARSE_ERROR_RULE)
    return known


def _list_rules() -> None:
    from thermolint.taint import DEEP_RULE_SUMMARIES

    for rule in ALL_RULES:
        print(f"{rule.rule_id}  {rule.summary}")
    for rule_id in sorted(DEEP_RULE_SUMMARIES):
        print(f"{rule_id}  {DEEP_RULE_SUMMARIES[rule_id]} [deep]")


def _render(args: argparse.Namespace, findings, deep_section=None) -> None:
    if args.format == "json":
        print(render_json(findings, deep=deep_section))
    elif args.format == "sarif":
        from thermolint.sarif import render_sarif

        print(render_sarif(findings))
    else:
        report = render_text(
            findings, statistics=args.statistics, deep=deep_section
        )
        if report:
            print(report)


def _run_shallow(args: argparse.Namespace) -> int:
    paths = args.paths or ["src/repro"]
    try:
        findings = run_paths(paths, select=args.select, ignore=args.ignore)
    except FileNotFoundError as exc:
        print(f"thermolint: {exc}", file=sys.stderr)
        return 2
    _render(args, findings)
    return 1 if findings else 0


def _deep_config(args: argparse.Namespace):
    from thermolint.deep import DeepConfig

    root = args.project_root
    if args.no_baseline:
        baseline: Optional[Path] = None
    elif args.baseline is not None:
        baseline = args.baseline
    else:
        candidate = root / DEFAULT_BASELINE
        baseline = candidate if candidate.is_file() else None
    if args.update_baseline and baseline is None:
        baseline = args.baseline or root / DEFAULT_BASELINE
    cache_dir: Optional[Path]
    if args.no_cache:
        cache_dir = None
    else:
        cache_dir = args.cache_dir or root / DEFAULT_CACHE_DIR
    return DeepConfig(
        project_root=root,
        baseline_path=baseline,
        cache_dir=cache_dir,
        select=args.select,
        ignore=args.ignore,
        report_paths=args.paths or None,
    )


def _run_deep(args: argparse.Namespace) -> int:
    from thermolint.deep import run_deep, update_baseline_file

    config = _deep_config(args)
    if not config.project_root.is_dir():
        print(
            f"thermolint: no such project root: {config.project_root}",
            file=sys.stderr,
        )
        return 2
    try:
        if args.update_baseline:
            count = update_baseline_file(config)
            print(f"thermolint: wrote {count} entries to {config.baseline_path}")
            return 0
        result = run_deep(config)
    except (FileNotFoundError, ValueError) as exc:
        print(f"thermolint: {exc}", file=sys.stderr)
        return 2
    for entry in result.stale_entries:
        print(
            "thermolint: stale baseline entry "
            f"{entry.get('fingerprint')} ({entry.get('rule')} at "
            f"{entry.get('path')}) — run --update-baseline to expire it",
            file=sys.stderr,
        )
    _render(
        args,
        result.findings,
        deep_section=result.deep_section(config.baseline_path),
    )
    return 1 if result.findings else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        _list_rules()
        return 0
    known = _known_rule_ids()
    for requested in (args.select or []) + (args.ignore or []):
        if requested not in known:
            print(f"thermolint: unknown rule id {requested}", file=sys.stderr)
            return 2
    if args.update_keyed_manifest:
        from thermolint.taint import write_keyed_manifest

        try:
            out = write_keyed_manifest(args.project_root)
        except FileNotFoundError as exc:
            print(f"thermolint: {exc}", file=sys.stderr)
            return 2
        print(f"thermolint: wrote keyed-zone manifest to {out}")
        return 0
    if args.update_baseline and not args.deep:
        print("thermolint: --update-baseline requires --deep", file=sys.stderr)
        return 2
    try:
        if args.deep:
            return _run_deep(args)
        return _run_shallow(args)
    except Exception:  # noqa: BLE001 — the exit-code contract demands it
        print("thermolint: internal error", file=sys.stderr)
        traceback.print_exc()
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
