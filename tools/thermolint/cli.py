"""thermolint command line: ``python -m thermolint [paths...]``.

Exit status is 0 when clean, 1 when findings were reported, 2 on usage
errors (missing paths, unknown rules) — mirroring grep-style conventions so
``make lint`` and CI can distinguish "dirty tree" from "broken invocation".
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from thermolint.engine import run_paths
from thermolint.reporters import render_json, render_text
from thermolint.rules import ALL_RULES


def _id_list(text: str) -> List[str]:
    return [part.strip().upper() for part in text.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    """Construct the thermolint argument parser."""
    parser = argparse.ArgumentParser(
        prog="thermolint",
        description="domain-aware unit-safety linter for the repro codebase",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        type=_id_list,
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        type=_id_list,
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="append per-rule violation counts to the text report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.summary}")
        return 0
    known = {rule.rule_id for rule in ALL_RULES}
    for requested in (args.select or []) + (args.ignore or []):
        if requested not in known:
            print(f"thermolint: unknown rule id {requested}", file=sys.stderr)
            return 2
    try:
        findings = run_paths(args.paths, select=args.select, ignore=args.ignore)
    except FileNotFoundError as exc:
        print(f"thermolint: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(findings))
    else:
        report = render_text(findings, statistics=args.statistics)
        if report:
            print(report)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
