"""Reviewed-findings baseline: accepted findings, tracked and expiring.

A project-wide analyzer lands on a tree with history; the baseline file
is how pre-existing accepted findings are carried without suppression
comments scattered through code the current PR doesn't touch.  Every
entry is a *fingerprint* of one finding — rule id, path, enclosing
function, a hash of the offending source line's text, and an occurrence
ordinal — deliberately excluding line numbers, so unrelated edits above a
finding don't orphan its entry.

Semantics:

* a finding whose fingerprint appears in the baseline is filtered from
  the report (counted as ``applied``);
* a baseline entry matching no current finding is **stale** — the code
  was fixed — and is reported so it can be expired (``--update-baseline``
  rewrites the file to the current state, preserving recorded reasons);
* everything else is a *new* finding and fails the gate.

Entries should carry a ``reason``; the baseline is a reviewed artifact
(it lives in git next to the analyzer), not a dumping ground.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from thermolint.engine import Finding

#: Schema identifier of the baseline document.
BASELINE_SCHEMA = "thermolint.baseline/1"

#: Default baseline location, relative to the project root.
DEFAULT_BASELINE_PATH = "tools/thermolint/baseline.json"


def _line_hash(text: str) -> str:
    return hashlib.blake2b(text.strip().encode("utf-8"), digest_size=8).hexdigest()


class _SourceLines:
    """Lazy line-text lookup with a per-file cache (for fingerprints)."""

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = root
        self._files: Dict[str, List[str]] = {}

    def line(self, path: str, lineno: int) -> str:
        lines = self._files.get(path)
        if lines is None:
            candidates = [Path(path)]
            if self.root is not None:
                candidates.insert(0, self.root / path)
            lines = []
            for candidate in candidates:
                try:
                    lines = candidate.read_text(encoding="utf-8").splitlines()
                    break
                except OSError:
                    continue
            self._files[path] = lines
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1]
        return ""


def fingerprint_findings(
    findings: Sequence[Finding],
    contexts: Optional[Dict[Tuple[str, int], str]] = None,
    root: Optional[Path] = None,
) -> List[Tuple[Finding, str]]:
    """Pair each finding with its stable fingerprint.

    ``contexts`` maps (path, line) to the enclosing function qualname
    (the deep runner supplies it from module summaries); findings at
    module scope get an empty context.  Identical (rule, path, context,
    line-text) tuples are disambiguated by an occurrence ordinal in
    report order, so two textually identical violations in one function
    baseline independently.
    """
    contexts = contexts or {}
    sources = _SourceLines(root)
    ordinals: Counter = Counter()
    out: List[Tuple[Finding, str]] = []
    for finding in findings:
        context = contexts.get((finding.path, finding.line), "")
        base = (
            finding.rule_id,
            finding.path.replace("\\", "/"),
            context,
            _line_hash(sources.line(finding.path, finding.line)),
        )
        ordinal = ordinals[base]
        ordinals[base] += 1
        digest = hashlib.blake2b(
            "\x00".join(list(base) + [str(ordinal)]).encode("utf-8"),
            digest_size=12,
        ).hexdigest()
        out.append((finding, digest))
    return out


def load_baseline(path: Path) -> List[Dict[str, object]]:
    """Baseline entries from ``path`` ([] when absent).

    Raises ``ValueError`` on a malformed document — a broken reviewed
    artifact should fail loudly, not silently admit every finding.
    """
    if not path.is_file():
        return []
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("schema") != BASELINE_SCHEMA:
        raise ValueError(f"{path} is not a {BASELINE_SCHEMA} document")
    entries = data.get("entries")
    if not isinstance(entries, list):
        raise ValueError(f"{path} has no entries list")
    return entries


def apply_baseline(
    fingerprinted: Sequence[Tuple[Finding, str]],
    entries: Sequence[Dict[str, object]],
) -> Tuple[List[Finding], int, List[Dict[str, object]]]:
    """(new findings, applied count, stale entries).

    Matching is by fingerprint; each entry absorbs at most one finding
    (fingerprints already carry occurrence ordinals, so duplicates are
    distinct).
    """
    by_fp = {str(entry.get("fingerprint")): entry for entry in entries}
    new: List[Finding] = []
    used: set = set()
    applied = 0
    for finding, fp in fingerprinted:
        if fp in by_fp and fp not in used:
            used.add(fp)
            applied += 1
        else:
            new.append(finding)
    stale = [
        entry
        for entry in entries
        if str(entry.get("fingerprint")) not in used
    ]
    return new, applied, stale


def write_baseline(
    path: Path,
    fingerprinted: Sequence[Tuple[Finding, str]],
    previous_entries: Sequence[Dict[str, object]] = (),
) -> int:
    """Rewrite the baseline to exactly the current findings.

    Reasons recorded on surviving entries are preserved; new entries get
    a ``reason`` of ``"TODO: justify"`` so review can't miss them.
    Returns the number of entries written.
    """
    reasons = {
        str(entry.get("fingerprint")): entry.get("reason")
        for entry in previous_entries
        if entry.get("reason")
    }
    entries = []
    for finding, fp in fingerprinted:
        entries.append(
            {
                "fingerprint": fp,
                "rule": finding.rule_id,
                "path": finding.path.replace("\\", "/"),
                "line": finding.line,  # informational; not part of the match
                "message": finding.message,
                "reason": reasons.get(fp, "TODO: justify"),
            }
        )
    entries.sort(key=lambda e: (e["path"], e["rule"], e["fingerprint"]))
    document = {"schema": BASELINE_SCHEMA, "entries": entries}
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(entries)
