"""The project-wide (``--deep``) analysis runner.

One deep run:

1. walks the project's package directories, loading each file's
   :class:`~thermolint.symbols.ModuleSummary` + shallow findings from the
   content-hash cache (or extracting and caching them);
2. builds the cross-file call graph and computes the keyed zone / worker
   zone closures;
3. runs the flow rules (TL007–TL012) and the schema-drift gate (TL013);
4. applies per-file suppression pragmas to the deep findings, then the
   reviewed baseline;
5. returns a :class:`DeepResult` the CLI renders as text/JSON/SARIF.

Everything is deterministic: files are visited in sorted order, the BFS
frontier is sorted, and findings sort by location — two runs over the
same tree produce byte-identical reports, which is the least a
determinism analyzer owes its users.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from thermolint.baseline import (
    apply_baseline,
    fingerprint_findings,
    load_baseline,
    write_baseline,
)
from thermolint.cache import SummaryCache
from thermolint.callgraph import CallGraph
from thermolint.engine import (
    Finding,
    is_suppressed,
    lint_source,
    parse_suppressions,
)
from thermolint.symbols import (
    ModuleSummary,
    content_digest,
    extract_module,
    iter_project_files,
    module_name_for,
)
from thermolint.taint import (
    DEFAULT_KEY_AFFECTING_FILES,
    DEFAULT_MANIFEST_PATH,
    DEFAULT_ROOT_PATTERNS,
    DEFAULT_VERSION_FILE,
    DEFAULT_WORKER_SINKS,
    check_schema_drift,
    keyed_zone,
    run_fabric_rules,
    run_taint_rules,
    worker_zone,
)


@dataclass
class DeepConfig:
    """Everything one deep run needs to know (defaults fit this repo)."""

    project_root: Path
    package_dirs: Tuple[str, ...] = ("src",)
    root_patterns: Tuple[str, ...] = DEFAULT_ROOT_PATTERNS
    worker_sinks: Tuple[str, ...] = DEFAULT_WORKER_SINKS
    key_files: Tuple[str, ...] = DEFAULT_KEY_AFFECTING_FILES
    version_file: str = DEFAULT_VERSION_FILE
    manifest_path: str = DEFAULT_MANIFEST_PATH
    baseline_path: Optional[Path] = None
    cache_dir: Optional[Path] = None
    select: Optional[Sequence[str]] = None
    ignore: Optional[Sequence[str]] = None
    #: restrict *reported* findings to these path prefixes (the analysis
    #: itself always covers the whole project — a partial graph lies).
    report_paths: Optional[Sequence[str]] = None


@dataclass
class DeepResult:
    """Outcome of one deep run."""

    findings: List[Finding]  #: unbaselined findings (the gate's currency)
    baselined: int  #: findings absorbed by the baseline
    stale_entries: List[Dict[str, object]]  #: baseline entries now unmatched
    roots: List[str]  #: keyed-zone root qualnames
    keyed_zone: List[str]  #: full closure qualnames
    modules: int  #: project modules analyzed
    cache: Dict[str, int] = field(default_factory=dict)
    #: (finding, fingerprint) for *all* findings pre-baseline, so the CLI
    #: can implement --update-baseline without re-running.
    fingerprinted: List[Tuple[Finding, str]] = field(default_factory=list)

    def deep_section(self, baseline_path: Optional[Path]) -> Dict[str, object]:
        """The ``deep`` block of the ``thermolint/2`` JSON report."""
        return {
            "enabled": True,
            "modules": self.modules,
            "roots": list(self.roots),
            "keyed_zone_size": len(self.keyed_zone),
            "cache": dict(self.cache),
            "baseline": {
                "path": str(baseline_path) if baseline_path else None,
                "applied": self.baselined,
                "stale": [
                    str(entry.get("fingerprint")) for entry in self.stale_entries
                ],
            },
        }


def _rel_posix(path: Path, root: Path) -> str:
    return path.resolve().relative_to(root.resolve()).as_posix()


def run_deep(config: DeepConfig) -> DeepResult:
    """Execute one full deep analysis (see module docstring)."""
    root = config.project_root
    cache = SummaryCache(config.cache_dir)
    summaries: List[ModuleSummary] = []
    shallow: List[Finding] = []
    suppressions: Dict[str, Tuple[Dict[int, Set[str]], Set[str]]] = {}

    for package_dir in config.package_dirs:
        package_root = root / package_dir
        if not package_root.is_dir():
            raise FileNotFoundError(
                f"package directory {package_dir!r} not found under {root}"
            )
        for file_path in iter_project_files(package_root):
            rel = _rel_posix(file_path, root)
            module_name = module_name_for(file_path, package_root)
            if module_name is None:
                continue
            source = file_path.read_text(encoding="utf-8")
            digest = content_digest(rel, source)
            artifact = cache.load(digest)
            if artifact is None:
                per_line, whole_file = parse_suppressions(source)
                file_findings = lint_source(source, path=rel)
                try:
                    summary: Optional[ModuleSummary] = extract_module(
                        rel, module_name, source
                    )
                except SyntaxError:
                    # lint_source already produced the TL000 finding.
                    summary = None
                cache.store(
                    digest,
                    {
                        "summary": summary.as_dict() if summary else None,
                        "shallow": [f.as_dict() for f in file_findings],
                        "suppress_lines": {
                            str(line): sorted(ids)
                            for line, ids in per_line.items()
                        },
                        "suppress_file": sorted(whole_file),
                    },
                )
            else:
                summary = (
                    ModuleSummary.from_dict(artifact["summary"])
                    if artifact["summary"] is not None
                    else None
                )
                file_findings = [
                    Finding(
                        rule_id=str(f["rule"]),
                        message=str(f["message"]),
                        path=str(f["path"]),
                        line=int(f["line"]),
                        col=int(f["col"]),
                    )
                    for f in artifact["shallow"]
                ]
                per_line = {
                    int(line): set(ids)
                    for line, ids in artifact["suppress_lines"].items()
                }
                whole_file = set(artifact["suppress_file"])
            suppressions[rel] = (per_line, whole_file)
            shallow.extend(file_findings)
            if summary is not None:
                summaries.append(summary)

    graph = CallGraph.build(summaries)
    roots, zone = keyed_zone(graph, config.root_patterns, config.worker_sinks)
    wzone = worker_zone(graph, config.worker_sinks)

    deep_findings = run_taint_rules(graph, zone)
    deep_findings += run_fabric_rules(graph, wzone, config.worker_sinks)
    deep_findings += check_schema_drift(
        root,
        manifest_path=config.manifest_path,
        key_files=config.key_files,
        version_file=config.version_file,
    )

    # Pragmas apply to deep findings exactly as to shallow ones.
    kept: List[Finding] = []
    for finding in deep_findings:
        per_line, whole_file = suppressions.get(finding.path, ({}, set()))
        if not is_suppressed(finding, per_line, whole_file):
            kept.append(finding)

    findings = sorted(shallow + kept, key=Finding.sort_key)
    if config.select:
        selected = {rule_id.upper() for rule_id in config.select}
        findings = [f for f in findings if f.rule_id in selected]
    if config.ignore:
        ignored = {rule_id.upper() for rule_id in config.ignore}
        findings = [f for f in findings if f.rule_id not in ignored]
    if config.report_paths:
        prefixes = [p.rstrip("/") for p in config.report_paths]
        findings = [
            f
            for f in findings
            if any(
                f.path == p or f.path.startswith(p + "/") for p in prefixes
            )
        ]

    contexts: Dict[Tuple[str, int], str] = {}
    by_path = {summary.path: summary for summary in summaries}
    for finding in findings:
        summary = by_path.get(finding.path)
        if summary is not None:
            key = (finding.path, finding.line)
            if key not in contexts:
                contexts[key] = summary.context_at(finding.line)

    fingerprinted = fingerprint_findings(findings, contexts, root=root)
    baselined = 0
    stale: List[Dict[str, object]] = []
    if config.baseline_path is not None:
        entries = load_baseline(config.baseline_path)
        new_findings, baselined, stale = apply_baseline(fingerprinted, entries)
        findings = new_findings

    cache.prune()
    return DeepResult(
        findings=findings,
        baselined=baselined,
        stale_entries=stale,
        roots=roots,
        keyed_zone=sorted(zone),
        modules=len(summaries),
        cache=cache.stats(),
        fingerprinted=fingerprinted,
    )


def update_baseline_file(config: DeepConfig) -> int:
    """Run the analysis and rewrite the baseline to its findings.

    Returns the number of entries written.  Reasons on surviving entries
    are preserved (matching by fingerprint).
    """
    assert config.baseline_path is not None
    previous = (
        load_baseline(config.baseline_path)
        if config.baseline_path.is_file()
        else []
    )
    # Baseline must capture findings pre-filtering, so run without one.
    probe = DeepConfig(**{**config.__dict__, "baseline_path": None})
    result = run_deep(probe)
    return write_baseline(config.baseline_path, result.fingerprinted, previous)
