"""Finding reporters: aligned text for humans, JSON for tooling.

The JSON report is schema ``thermolint/2``: version 1's flat finding list
plus a ``deep`` section describing the project-wide pass (keyed-zone
roots and size, cache hit rate, baseline accounting).  Shallow-only runs
emit ``deep.enabled: false`` so consumers need no mode detection.
SARIF output lives in :mod:`thermolint.sarif`.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Dict, List, Optional, Sequence

from thermolint.engine import Finding

#: JSON report schema identifier (``schema_version`` stays the integer twin).
REPORT_SCHEMA = "thermolint/2"
REPORT_SCHEMA_VERSION = 2


def render_text(
    findings: Sequence[Finding],
    statistics: bool = False,
    deep: Optional[Dict[str, Any]] = None,
) -> str:
    """ruff/flake8-style ``path:line:col: RULE message`` lines."""
    lines: List[str] = [finding.render() for finding in findings]
    if statistics:
        counts = Counter(finding.rule_id for finding in findings)
        for rule_id in sorted(counts):
            lines.append(f"{counts[rule_id]:>5}  {rule_id}")
        lines.append(f"{len(findings):>5}  total")
    elif findings:
        lines.append(f"found {len(findings)} issue{'s' if len(findings) != 1 else ''}")
    if deep is not None and deep.get("enabled"):
        cache = deep.get("cache", {})
        baseline = deep.get("baseline", {})
        summary = (
            f"deep: {deep.get('modules', 0)} modules, "
            f"{len(deep.get('roots', []))} roots, "
            f"{deep.get('keyed_zone_size', 0)} keyed-zone functions, "
            f"cache {cache.get('hits', 0)} hit(s) / "
            f"{cache.get('misses', 0)} miss(es)"
        )
        applied = baseline.get("applied", 0)
        stale = baseline.get("stale", [])
        if baseline.get("path"):
            summary += f", baseline applied {applied}"
            if stale:
                summary += f" ({len(stale)} stale entr{'y' if len(stale) == 1 else 'ies'})"
        lines.append(summary)
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    deep: Optional[Dict[str, Any]] = None,
) -> str:
    """Stable machine-readable report (schema documented in docs/static_analysis.md)."""
    counts = Counter(finding.rule_id for finding in findings)
    payload = {
        "tool": "thermolint",
        "schema": REPORT_SCHEMA,
        "schema_version": REPORT_SCHEMA_VERSION,
        "findings": [finding.as_dict() for finding in findings],
        "counts": {rule_id: counts[rule_id] for rule_id in sorted(counts)},
        "total": len(findings),
        "deep": deep if deep is not None else {"enabled": False},
    }
    return json.dumps(payload, indent=2, sort_keys=True)
