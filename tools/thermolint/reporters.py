"""Finding reporters: aligned text for humans, JSON for tooling."""

from __future__ import annotations

import json
from collections import Counter
from typing import List, Sequence

from thermolint.engine import Finding


def render_text(findings: Sequence[Finding], statistics: bool = False) -> str:
    """ruff/flake8-style ``path:line:col: RULE message`` lines."""
    lines: List[str] = [finding.render() for finding in findings]
    if statistics:
        counts = Counter(finding.rule_id for finding in findings)
        for rule_id in sorted(counts):
            lines.append(f"{counts[rule_id]:>5}  {rule_id}")
        lines.append(f"{len(findings):>5}  total")
    elif findings:
        lines.append(f"found {len(findings)} issue{'s' if len(findings) != 1 else ''}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Stable machine-readable report (schema documented in docs/static_analysis.md)."""
    counts = Counter(finding.rule_id for finding in findings)
    payload = {
        "tool": "thermolint",
        "schema_version": 1,
        "findings": [finding.as_dict() for finding in findings],
        "counts": {rule_id: counts[rule_id] for rule_id in sorted(counts)},
        "total": len(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
