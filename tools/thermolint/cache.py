"""Incremental per-file analysis cache, keyed by content hash.

A deep run over the whole tree re-parses nothing that hasn't changed:
for each source file the cache stores the extracted
:class:`~thermolint.symbols.ModuleSummary`, the file's shallow findings
(all rules, unfiltered — select/ignore are applied at report time), and
its suppression maps.  The key is
:func:`thermolint.symbols.content_digest` — analyzer version + path +
bytes — so an engine upgrade or a file move invalidates exactly the right
entries, and a poisoned/stale cache can never change results, only cost a
re-parse.

Entries are one JSON file each under the cache directory (default
``<project>/.thermolint_cache``), written atomically.  ``prune()`` drops
entries not touched by the current run, bounding growth.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Set

from thermolint.symbols import ANALYZER_VERSION

#: Default cache directory name (created under the project root).
CACHE_DIR_NAME = ".thermolint_cache"


class SummaryCache:
    """Content-addressed store of per-file analysis artifacts."""

    def __init__(self, directory: Optional[Path]) -> None:
        #: None disables caching entirely (--no-cache).
        self.directory = directory
        self.hits = 0
        self.misses = 0
        self._touched: Set[str] = set()

    def _entry_path(self, digest: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{digest}.json"

    def load(self, digest: str) -> Optional[Dict[str, Any]]:
        """The cached artifact dict for ``digest``, or None."""
        if self.directory is None:
            return None
        path = self._entry_path(digest)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(data, dict) or data.get("analyzer") != ANALYZER_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        self._touched.add(digest)
        return data

    def store(self, digest: str, artifact: Dict[str, Any]) -> None:
        """Persist one artifact atomically (best-effort: cache IO never raises)."""
        if self.directory is None:
            return
        artifact = dict(artifact)
        artifact["analyzer"] = ANALYZER_VERSION
        self._touched.add(digest)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                mode="w",
                encoding="utf-8",
                dir=str(self.directory),
                prefix=f".{digest[:8]}.",
                suffix=".tmp",
                delete=False,
            )
            with handle:
                json.dump(artifact, handle, sort_keys=True)
            os.replace(handle.name, self._entry_path(digest))
        except OSError:
            try:
                os.unlink(handle.name)
            except (OSError, UnboundLocalError):
                pass

    def prune(self) -> int:
        """Drop entries not loaded/stored this run; returns count removed."""
        if self.directory is None or not self.directory.is_dir():
            return 0
        removed = 0
        for path in sorted(self.directory.glob("*.json")):
            if path.stem not in self._touched:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}
