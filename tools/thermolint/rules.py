"""The TL001–TL006 rule set.

Each rule encodes a failure mode this codebase (and the paper's model) is
actually exposed to; ``docs/static_analysis.md`` carries the full rationale.
"""

from __future__ import annotations

import ast
import math
from typing import Dict, Iterator, List, Optional, Tuple, Union

from thermolint.engine import Finding, LintContext, ParsedModule, Rule

Number = Union[int, float]

# ---------------------------------------------------------------------------
# TL001 — bare unit-conversion magic numbers
# ---------------------------------------------------------------------------

#: Magic value -> the ``repro.units``/``repro.constants`` symbol to use instead.
#: Integer literals hash/compare equal to their float forms, so one table
#: covers ``1e9`` and ``1_000_000_000`` alike.  This table is the one place
#: outside units.py allowed to spell these numbers:
# thermolint: disable-file=TL001
MAGIC_UNIT_CONSTANTS: Dict[float, str] = {
    0.0254: "units.METERS_PER_INCH",
    25.4: "units.MM_PER_INCH",
    273.15: "units.KELVIN_OFFSET",
    1_000_000: "units.MB_DECIMAL (decimal interface megabytes)",
    1_000_000_000: "units.GB_MARKETING (decimal datasheet gigabytes)",
    1_048_576: "units.MIB (binary 2**20 megabytes)",
    1_073_741_824: "units.GIB (binary 2**30 gigabytes)",
    60000.0: "units.rotation_time_ms / units.seconds_to_ms",
    2.0 * math.pi / 60.0: "units.rpm_to_rad_per_sec",
    60.0 / (2.0 * math.pi): "units.rad_per_sec_to_rpm",
}


def _fold_constant(node: ast.expr) -> Optional[Number]:
    """Constant-fold +,-,*,/,** expressions over numeric literals and pi."""
    if isinstance(node, ast.Constant):
        value = node.value
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return value
        return None
    if (
        isinstance(node, ast.Attribute)
        and node.attr == "pi"
        and isinstance(node.value, ast.Name)
        and node.value.id in {"math", "np", "numpy"}
    ):
        return math.pi
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.UAdd, ast.USub)):
        inner = _fold_constant(node.operand)
        if inner is None:
            return None
        return -inner if isinstance(node.op, ast.USub) else inner
    if isinstance(node, ast.BinOp):
        left = _fold_constant(node.left)
        right = _fold_constant(node.right)
        if left is None or right is None:
            return None
        try:
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.Div):
                return left / right
            if isinstance(node.op, ast.Pow):
                return left**right
        except (ZeroDivisionError, OverflowError):
            return None
    return None


def _mult_chain_factors(node: ast.expr) -> List[Number]:
    """Constant leaf factors of a pure-multiplication chain (else [])."""
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        return _mult_chain_factors(node.left) + _mult_chain_factors(node.right)
    value = _fold_constant(node)
    return [value] if value is not None else []


def _chain_constant_product(node: ast.expr) -> Tuple[Optional[float], bool]:
    """(product of the constant factors of a ``*``/``/`` chain, saw-nonconst).

    ``rpm * 2.0 * math.pi / 60.0`` -> (2*pi/60, True): the constant part of
    the chain is exactly the rpm->rad/s factor even though ``rpm`` itself is
    not a constant.  Returns ``(None, ...)`` when there is no constant part.
    """
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Mult, ast.Div)):
        left, left_nonconst = _chain_constant_product(node.left)
        right, right_nonconst = _chain_constant_product(node.right)
        nonconst = left_nonconst or right_nonconst
        if left is None and right is None:
            return None, nonconst
        left = 1.0 if left is None else left
        right = 1.0 if right is None else right
        try:
            product = left * right if isinstance(node.op, ast.Mult) else left / right
        except ZeroDivisionError:
            return None, nonconst
        return product, nonconst
    value = _fold_constant(node)
    if value is None:
        return None, True
    return float(value), False


class MagicUnitConstantRule(Rule):
    """TL001: a unit conversion spelled as a bare number.

    Fires on literals (or constant-foldable expressions) equal to a known
    conversion factor, and on multiplication chains that spell a binary byte
    factor inline (``4 * 1024 * 1024``).  ``units.py``/``constants.py`` are
    exempt — they are where these numbers are *allowed* to live.
    """

    rule_id = "TL001"
    summary = "bare unit-conversion magic number outside units.py/constants.py"
    exempt_paths = ("*/units.py", "*/constants.py", "units.py", "constants.py")

    def check(self, module: ParsedModule, ctx: LintContext) -> Iterator[Finding]:
        reported: set = set()

        def report(node: ast.AST, message: str) -> Iterator[Finding]:
            key = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))
            if key not in reported:
                reported.add(key)
                # One finding per expression: a flagged chain claims its own
                # literals so they do not re-fire at a different column.
                for child in ast.walk(node):  # type: ignore[arg-type]
                    reported.add(
                        (getattr(child, "lineno", 0), getattr(child, "col_offset", 0))
                    )
                yield self.finding(module, node, message)

        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp):
                folded = _fold_constant(node)
                if folded is not None and folded in MAGIC_UNIT_CONSTANTS:
                    yield from report(
                        node,
                        f"expression folds to unit factor {folded!r}; "
                        f"use {MAGIC_UNIT_CONSTANTS[folded]}",
                    )
                    continue
                factors = _mult_chain_factors(node)
                if factors.count(1024) >= 2:
                    yield from report(
                        node,
                        "binary byte factor spelled inline; use units.MIB/units.GIB",
                    )
                    continue
                if isinstance(node.op, (ast.Mult, ast.Div)):
                    product, saw_nonconst = _chain_constant_product(node)
                    if (
                        product is not None
                        and saw_nonconst
                        and product in MAGIC_UNIT_CONSTANTS
                    ):
                        yield from report(
                            node,
                            f"constant part of this expression is the unit "
                            f"factor {product!r}; use "
                            f"{MAGIC_UNIT_CONSTANTS[product]}",
                        )
            elif isinstance(node, ast.Constant):
                value = node.value
                if (
                    isinstance(value, (int, float))
                    and not isinstance(value, bool)
                    and value in MAGIC_UNIT_CONSTANTS
                ):
                    yield from report(
                        node,
                        f"magic unit constant {value!r}; "
                        f"use {MAGIC_UNIT_CONSTANTS[value]}",
                    )


# ---------------------------------------------------------------------------
# TL002 — float equality
# ---------------------------------------------------------------------------


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.UAdd, ast.USub)):
        return _is_float_literal(node.operand)
    return False


def _is_int_truncation_call(node: ast.expr) -> bool:
    """``int(x)`` / ``round(x)`` — the classic float-integrality idiom."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"int", "round"}
        and len(node.args) == 1
    )


class FloatEqualityRule(Rule):
    """TL002: ``==``/``!=`` against a float literal, or ``x == int(x)``.

    Exact float comparison silently breaks when a value arrives via
    arithmetic instead of assignment; use ``math.isclose``, a tolerance, or
    ``float.is_integer()``.
    """

    rule_id = "TL002"
    summary = "exact float ==/!= comparison in model code"

    def check(self, module: ParsedModule, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_literal(left) or _is_float_literal(right):
                    yield self.finding(
                        module,
                        node,
                        "exact float comparison; use math.isclose or an "
                        "explicit tolerance",
                    )
                    break
                if _is_int_truncation_call(left) or _is_int_truncation_call(right):
                    yield self.finding(
                        module,
                        node,
                        "float integrality check via int()/round(); use "
                        "float.is_integer()",
                    )
                    break


# ---------------------------------------------------------------------------
# TL003 — Kelvin/Celsius mixing
# ---------------------------------------------------------------------------

_CELSIUS_SUFFIXES = ("_c", "_celsius", "_degc")
_KELVIN_SUFFIXES = ("_k", "_kelvin")


def _identifier(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _temperature_flavor(node: ast.expr) -> Optional[str]:
    name = _identifier(node)
    if name is None:
        return None
    lowered = name.lower()
    if lowered.endswith(_CELSIUS_SUFFIXES):
        return "celsius"
    if lowered.endswith(_KELVIN_SUFFIXES):
        return "kelvin"
    return None


class KelvinCelsiusMixRule(Rule):
    """TL003: arithmetic or comparison between ``*_c`` and ``*_k`` names.

    A Celsius/Kelvin slip is invisible at runtime — both are plain floats —
    but shifts every temperature by 273.15.  Convert explicitly through
    ``units.celsius_to_kelvin``/``units.kelvin_to_celsius`` first.
    """

    rule_id = "TL003"
    summary = "Kelvin/Celsius mixing heuristic (*_c vs *_k arithmetic)"

    def _pairs(self, node: ast.AST) -> Iterator[Tuple[ast.expr, ast.expr]]:
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
            yield node.left, node.right
        elif isinstance(node, ast.Compare):
            operands = [node.left] + list(node.comparators)
            for left, right in zip(operands, operands[1:]):
                yield left, right

    def check(self, module: ParsedModule, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            for left, right in self._pairs(node):
                flavors = {_temperature_flavor(left), _temperature_flavor(right)}
                if flavors == {"celsius", "kelvin"}:
                    yield self.finding(
                        module,
                        node,
                        "arithmetic mixes Celsius- and Kelvin-suffixed values; "
                        "convert via units.celsius_to_kelvin/kelvin_to_celsius",
                    )
                    break


# ---------------------------------------------------------------------------
# TL004 — unseeded randomness in simulation code
# ---------------------------------------------------------------------------

#: Constructors that are fine *when called with a seed argument*.
_SEEDABLE_CONSTRUCTORS = {
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.Generator",
}


class UnseededRandomRule(Rule):
    """TL004: global/unseeded RNG use inside the simulator.

    PR 1's sweep runner guarantees serial == parallel results; any draw from
    the process-global RNG (or an unseeded generator) silently breaks that
    determinism across worker processes.
    """

    rule_id = "TL004"
    summary = "unseeded random/numpy.random use in simulation code"
    scope_paths = ("*/simulation/*", "*/simulation.py")

    def check(self, module: ParsedModule, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted_name(node.func)
            if dotted is None:
                continue
            if dotted in _SEEDABLE_CONSTRUCTORS:
                if not node.args and not node.keywords:
                    yield self.finding(
                        module,
                        node,
                        f"{dotted}() constructed without a seed; pass an "
                        "explicit seed for reproducible sweeps",
                    )
                continue
            if dotted.startswith("random."):
                yield self.finding(
                    module,
                    node,
                    f"{dotted}() draws from the process-global RNG; use a "
                    "seeded random.Random instance",
                )
            elif dotted.startswith("numpy.random."):
                yield self.finding(
                    module,
                    node,
                    f"{dotted}() uses numpy's global RNG; use a seeded "
                    "numpy.random.default_rng generator",
                )


# ---------------------------------------------------------------------------
# TL005 — mutable default arguments
# ---------------------------------------------------------------------------

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray"}


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
        and not node.args
        and not node.keywords
    )


class MutableDefaultRule(Rule):
    """TL005: ``def f(x=[])`` — the default is shared across calls."""

    rule_id = "TL005"
    summary = "mutable default argument"

    def check(self, module: ParsedModule, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield self.finding(
                        module,
                        default,
                        f"mutable default argument in {node.name}(); default "
                        "to None and create the object inside the function",
                    )


# ---------------------------------------------------------------------------
# TL006 — missing __all__ in public packages
# ---------------------------------------------------------------------------


class MissingAllRule(Rule):
    """TL006: a non-trivial public ``__init__.py`` without ``__all__``.

    Without ``__all__`` the package's re-export surface is implicit, and
    strict-typing's ``no_implicit_reexport`` (plus ``from pkg import *``)
    behaves unpredictably.
    """

    rule_id = "TL006"
    summary = "missing __all__ in a public package __init__.py"

    def check(self, module: ParsedModule, ctx: LintContext) -> Iterator[Finding]:
        if not module.is_package_init:
            return
        norm = module.path.replace("\\", "/")
        package_name = norm.rsplit("/", 2)[-2] if "/" in norm else ""
        if package_name.startswith("_"):
            return
        has_content = False
        for node in module.tree.body:
            if isinstance(
                node,
                (ast.Import, ast.ImportFrom, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                has_content = True
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    return
        if has_content:
            yield self.finding(
                module,
                module.tree.body[0] if module.tree.body else module.tree,
                "public package __init__.py has re-exports but no __all__",
            )


ALL_RULES: Tuple[Rule, ...] = (
    MagicUnitConstantRule(),
    FloatEqualityRule(),
    KelvinCelsiusMixRule(),
    UnseededRandomRule(),
    MutableDefaultRule(),
    MissingAllRule(),
)


def rule_by_id(rule_id: str) -> Rule:
    """Look up a rule instance by its ``TLxxx`` id."""
    for rule in ALL_RULES:
        if rule.rule_id == rule_id.upper():
            return rule
    raise KeyError(f"unknown rule id: {rule_id}")
