"""SARIF 2.1.0 output, so CI can annotate PRs inline.

One run object, one driver, the full TL rule catalog (shallow + deep),
and one result per finding with a physical location.  The document shape
follows the OASIS SARIF 2.1.0 standard closely enough for GitHub code
scanning upload (``github/codeql-action/upload-sarif``); the test suite
validates the structural contract.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from thermolint.engine import PARSE_ERROR_RULE, Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
INFORMATION_URI = "https://example.invalid/thermolint"  # docs live in-repo


def _rule_catalog() -> List[Dict[str, Any]]:
    from thermolint.rules import ALL_RULES
    from thermolint.taint import DEEP_RULE_SUMMARIES

    catalog: List[Dict[str, Any]] = [
        {
            "id": PARSE_ERROR_RULE,
            "shortDescription": {"text": "file could not be parsed"},
        }
    ]
    for rule in ALL_RULES:
        catalog.append(
            {
                "id": rule.rule_id,
                "shortDescription": {"text": rule.summary},
            }
        )
    for rule_id in sorted(DEEP_RULE_SUMMARIES):
        catalog.append(
            {
                "id": rule_id,
                "shortDescription": {"text": DEEP_RULE_SUMMARIES[rule_id]},
            }
        )
    return catalog


def sarif_document(
    findings: Sequence[Finding],
    tool_version: Optional[str] = None,
) -> Dict[str, Any]:
    """The SARIF 2.1.0 document for one run's findings."""
    if tool_version is None:
        from thermolint import __version__ as tool_version
    rules = _rule_catalog()
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}
    results: List[Dict[str, Any]] = []
    for finding in findings:
        entry: Dict[str, Any] = {
            "ruleId": finding.rule_id,
            "level": "error" if finding.rule_id == PARSE_ERROR_RULE else "warning",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            # SARIF columns are 1-based; ast's are 0-based.
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if finding.rule_id in rule_index:
            entry["ruleIndex"] = rule_index[finding.rule_id]
        results.append(entry)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "thermolint",
                        "version": tool_version,
                        "informationUri": INFORMATION_URI,
                        "rules": rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }


def render_sarif(
    findings: Sequence[Finding], tool_version: Optional[str] = None
) -> str:
    """Serialized SARIF document (stable key order)."""
    return json.dumps(
        sarif_document(findings, tool_version), indent=2, sort_keys=True
    )
