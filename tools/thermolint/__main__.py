"""Allow ``python -m thermolint`` when ``tools/`` is on the path."""

import sys

from thermolint.cli import main

if __name__ == "__main__":
    sys.exit(main())
