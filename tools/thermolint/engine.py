"""Rule engine: findings, suppression comments, path scoping, file runner.

The engine is deliberately dependency-free (stdlib ``ast`` + ``re``) so it
can run anywhere the test suite runs, including the tier-1 gate.
"""

from __future__ import annotations

import ast
import fnmatch
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: Inline suppression: ``# thermolint: disable=TL001,TL002`` or ``disable=all``.
_SUPPRESS_RE = re.compile(r"#\s*thermolint:\s*disable=([A-Za-z0-9,\s]+|all)")
#: Whole-file suppression: ``# thermolint: disable-file=TL004`` (or ``all``).
_SUPPRESS_FILE_RE = re.compile(r"#\s*thermolint:\s*disable-file=([A-Za-z0-9,\s]+|all)")

#: Rule id used for files the engine cannot parse.
PARSE_ERROR_RULE = "TL000"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule_id: str
    message: str
    path: str
    line: int
    col: int

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


@dataclass
class ParsedModule:
    """A parsed source file handed to each rule."""

    path: str
    source: str
    tree: ast.Module

    @property
    def is_package_init(self) -> bool:
        return Path(self.path).name == "__init__.py"


class LintContext:
    """Per-file helpers shared by rules (import aliases, path predicates)."""

    def __init__(self, module: ParsedModule) -> None:
        self.module = module
        #: local alias -> fully qualified module name, for plain imports
        #: (``import numpy as np`` -> {"np": "numpy"}).
        self.module_aliases: Dict[str, str] = {}
        #: local name -> "module.attr" for from-imports
        #: (``from random import Random`` -> {"Random": "random.Random"}).
        self.from_imports: Dict[str, str] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name != "*":
                        self.from_imports[alias.asname or alias.name] = (
                            f"{node.module}.{alias.name}"
                        )

    def dotted_name(self, node: ast.expr) -> Optional[str]:
        """Resolve ``np.random.random`` to ``numpy.random.random`` if possible."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        if root in self.module_aliases:
            parts.append(self.module_aliases[root])
        elif root in self.from_imports:
            parts.append(self.from_imports[root])
        else:
            parts.append(root)
        return ".".join(reversed(parts))


class Rule:
    """Base class for lint rules.

    Subclasses set ``rule_id``/``summary`` and implement :meth:`check`.
    ``exempt_paths`` are glob patterns (matched against a ``/``-normalized
    path) where the rule never applies; ``scope_paths``, when non-empty,
    restricts the rule to matching paths only.
    """

    rule_id: str = "TL999"
    summary: str = ""
    exempt_paths: Tuple[str, ...] = ()
    scope_paths: Tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        norm = path.replace("\\", "/")
        if any(fnmatch.fnmatch(norm, pat) for pat in self.exempt_paths):
            return False
        if self.scope_paths:
            return any(fnmatch.fnmatch(norm, pat) for pat in self.scope_paths)
        return True

    def check(self, module: ParsedModule, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: ParsedModule, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            message=message,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )


def _parse_suppressions(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Return (line -> suppressed ids, file-wide suppressed ids).

    ``{"all"}`` in a set means every rule is suppressed there.
    """
    per_line: Dict[int, Set[str]] = {}
    whole_file: Set[str] = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        file_match = _SUPPRESS_FILE_RE.search(text)
        if file_match:
            whole_file.update(_split_ids(file_match.group(1)))
            continue
        match = _SUPPRESS_RE.search(text)
        if match:
            ids = _split_ids(match.group(1))
            per_line.setdefault(lineno, set()).update(ids)
            if text.lstrip().startswith("#"):
                # A comment-only suppression also covers the next line, so
                # long statements can carry the pragma above themselves.
                per_line.setdefault(lineno + 1, set()).update(ids)
    return per_line, whole_file


def _split_ids(blob: str) -> Set[str]:
    return {part.strip().upper() for part in blob.split(",") if part.strip()}


def parse_suppressions(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Public suppression-map accessor for the deep runner.

    Returns (line -> suppressed ids, file-wide suppressed ids); the deep
    pass generates findings long after per-file parsing, so it applies
    these maps itself via :func:`is_suppressed`.
    """
    return _parse_suppressions(source)


def is_suppressed(
    finding: Finding, per_line: Dict[int, Set[str]], whole_file: Set[str]
) -> bool:
    """Public twin of the engine's internal suppression check."""
    return _is_suppressed(finding, per_line, whole_file)


def _is_suppressed(
    finding: Finding, per_line: Dict[int, Set[str]], whole_file: Set[str]
) -> bool:
    if "ALL" in whole_file or finding.rule_id in whole_file:
        return True
    at_line = per_line.get(finding.line, set())
    return "ALL" in at_line or finding.rule_id in at_line


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one in-memory source blob as if it lived at ``path``."""
    if rules is None:
        from thermolint.rules import ALL_RULES

        rules = ALL_RULES
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                rule_id=PARSE_ERROR_RULE,
                message=f"could not parse file: {exc.msg}",
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
            )
        ]
    module = ParsedModule(path=path, source=source, tree=tree)
    ctx = LintContext(module)
    per_line, whole_file = _parse_suppressions(source)
    findings: List[Finding] = []
    for rule in rules:
        if not rule.applies_to(path):
            continue
        for finding in rule.check(module, ctx):
            if not _is_suppressed(finding, per_line, whole_file):
                findings.append(finding)
    return sorted(findings, key=Finding.sort_key)


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files or directories)."""
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            if root.suffix == ".py":
                yield root
            continue
        if not root.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for candidate in sorted(root.rglob("*.py")):
            if any(
                part in {"__pycache__", ".git", ".thermolint_cache"}
                for part in candidate.parts
            ):
                continue
            yield candidate


def run_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint files/directories; ``select``/``ignore`` filter by rule id."""
    from thermolint.rules import ALL_RULES

    selected = {rule_id.upper() for rule_id in select} if select else None
    ignored = {rule_id.upper() for rule_id in ignore} if ignore else set()
    rules = [
        rule
        for rule in ALL_RULES
        if (selected is None or rule.rule_id in selected) and rule.rule_id not in ignored
    ]
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        findings.extend(lint_source(source, path=str(file_path), rules=rules))
    return sorted(findings, key=Finding.sort_key)
