#!/usr/bin/env python
"""Regenerate the golden regression fixtures under tests/golden/.

The fixtures pin the *current* model outputs so that any future change to
the capacity, performance or thermal models shows up as an explicit,
reviewable diff instead of a silent drift:

* ``tests/golden/table1.json`` — the Table 1 validation set: datasheet
  figures, the paper's published model predictions, and this library's
  modeled capacity/IDR for all thirteen drives.
* ``tests/golden/roadmap_2002_2012.json`` — the Figure 2 thermal roadmap
  (every year x platter size x platter count point, with the cooling
  budgets that anchor each platter count to the envelope).
* ``tests/golden/fleet_2rack.json`` — a 2-rack / 24-drive fleet run
  through the rack-coupled environment, fleet DTM coordination, tiering
  and the AFR/availability model (the full canonical results document).

Run via ``make regen-golden`` (which refuses on a dirty working tree, so
a regeneration is always its own reviewable commit), or directly::

    PYTHONPATH=src python tools/regen_golden.py

Intentionally deterministic: no clocks, no RNG, no environment inputs.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.constants import (
    ROADMAP_FIRST_YEAR,
    ROADMAP_LAST_YEAR,
    ROADMAP_PLATTER_COUNTS,
    ROADMAP_PLATTER_SIZES_IN,
)
from repro.drives import PAPER_MODEL_PREDICTIONS, TABLE1_DRIVES
from repro.faults import FaultConfig
from repro.fleet import (
    FleetDTMPolicy,
    ReliabilityParams,
    TieringPolicy,
    build_rack_tasks,
    fleet_results_document,
    fleet_task_key,
    uniform_fleet,
)
from repro.fleet.sweep import _run_rack_task
from repro.scaling.roadmap import cooling_budget_ambient_c, thermal_roadmap

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "tests" / "golden"

TABLE1_SCHEMA = "repro.golden.table1/1"
ROADMAP_SCHEMA = "repro.golden.roadmap/1"
FLEET_SCHEMA = "repro.golden.fleet/1"


def table1_document() -> dict:
    """Current model outputs for the Table 1 validation drives."""
    rows = []
    for drive in TABLE1_DRIVES:
        paper_cap, paper_idr = PAPER_MODEL_PREDICTIONS[drive.model]
        rows.append(
            {
                "model": drive.model,
                "year": drive.year,
                "rpm": drive.rpm,
                "datasheet_capacity_gb": drive.datasheet_capacity_gb,
                "datasheet_idr_mb_per_s": drive.datasheet_idr_mb_per_s,
                "paper_model_capacity_gb": paper_cap,
                "paper_model_idr_mb_per_s": paper_idr,
                "modeled_capacity_gb": drive.modeled_capacity_gb(),
                "modeled_capacity_paper_gb": drive.modeled_capacity_paper_gb(),
                "modeled_idr_mb_per_s": drive.modeled_idr_mb_per_s(),
            }
        )
    return {"schema": TABLE1_SCHEMA, "drives": rows}


def roadmap_document() -> dict:
    """The full thermal roadmap, one panel per platter count."""
    panels = []
    for count in ROADMAP_PLATTER_COUNTS:
        points = thermal_roadmap(platter_count=count)
        panels.append(
            {
                "platter_count": count,
                "cooling_budget_ambient_c": cooling_budget_ambient_c(count),
                "points": [
                    {
                        "year": p.year,
                        "diameter_in": p.diameter_in,
                        "platter_count": p.platter_count,
                        "max_rpm": p.max_rpm,
                        "max_idr_mb_s": p.max_idr_mb_s,
                        "capacity_gb": p.capacity_gb,
                        "target_idr_mb_s": p.target_idr_mb_s,
                        "meets_target": p.meets_target,
                    }
                    for p in points
                ],
            }
        )
    return {
        "schema": ROADMAP_SCHEMA,
        "years": [ROADMAP_FIRST_YEAR, ROADMAP_LAST_YEAR],
        "platter_sizes_in": list(ROADMAP_PLATTER_SIZES_IN),
        "panels": panels,
    }


def fleet_document() -> dict:
    """A fixed 2-rack / 24-drive fleet run, pinned end to end.

    Exercises every fleet subsystem at once — rack-coupled inlets with
    recirculation, per-enclosure cooling budgets, the DTM throttle
    ladder, seeded extent tiering, fault injection and the
    AFR/availability rollup — so any drift in any of them moves a field
    here.  The content-addressed task keys are pinned too: a key change
    without a deliberate schema bump is exactly the silent cache
    poisoning the store exists to prevent.
    """
    fleet = uniform_fleet(
        racks=2,
        enclosures_per_rack=4,
        drives_per_enclosure=3,
        airflow_m3_per_s=0.018,
        cooling_budget_w=200.0,
        recirculation=0.25,
    )
    tasks = build_rack_tasks(
        fleet,
        policy=FleetDTMPolicy(),
        reliability=ReliabilityParams(),
        tiering=TieringPolicy(extents=48, seed=7, target_utilization=0.7),
        fault_config=FaultConfig(seed=13, media_rate=0.05, servo_rate=0.01),
        accesses_per_drive=64,
    )
    results = [_run_rack_task(task) for task in tasks]
    document = fleet_results_document(results)
    return {
        "schema": FLEET_SCHEMA,
        "task_keys": [fleet_task_key(task) for task in tasks],
        "results": document,
    }


def write_fixture(path: Path, document: dict) -> None:
    # Human-reviewable formatting; the comparator parses, so whitespace
    # carries no meaning — but a stable layout keeps diffs minimal.
    text = json.dumps(document, indent=2, sort_keys=True, allow_nan=False)
    path.write_text(text + "\n", encoding="utf-8")
    print(f"wrote {path}")


def _warn_if_keyed_manifest_stale() -> None:
    """Remind the operator when thermolint's schema-drift gate will fire.

    Regenerating goldens usually means result *content* changed on
    purpose.  If a key-affecting module changed too, the TL013 manifest
    (tools/thermolint/keyed_zone_manifest.json) needs either a
    ``CODE_SCHEMA_VERSION`` bump or a reviewed
    ``thermolint --update-keyed-manifest`` refresh — say so here instead
    of letting CI discover it.
    """
    root = Path(__file__).resolve().parents[1]
    try:
        sys.path.insert(0, str(root / "tools"))
        from thermolint.taint import check_schema_drift

        drift = check_schema_drift(root)
    except Exception:
        return
    for finding in drift:
        print(f"warning: {finding.render()}", file=sys.stderr)
    if drift:
        print(
            "warning: goldens regenerated while the keyed-zone manifest is "
            "stale; bump CODE_SCHEMA_VERSION or run "
            "`python -m thermolint --update-keyed-manifest` before committing",
            file=sys.stderr,
        )


def main() -> int:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    write_fixture(GOLDEN_DIR / "table1.json", table1_document())
    write_fixture(GOLDEN_DIR / "roadmap_2002_2012.json", roadmap_document())
    write_fixture(GOLDEN_DIR / "fleet_2rack.json", fleet_document())
    _warn_if_keyed_manifest_stale()
    return 0


if __name__ == "__main__":
    sys.exit(main())
