#!/usr/bin/env python3
"""One-shot reproduction driver.

Runs the full test suite and the complete benchmark harness (every table
and figure of the paper plus the extension studies), tees the outputs to
``test_output.txt`` and ``bench_output.txt``, and prints a short index of
the regenerated artifacts in ``benchmarks/results/``.  Finally the
parallel-sweep benchmark (benchmarks/bench_sweep.py) regenerates
``BENCH_PR1.json``, the machine-readable perf-trajectory anchor.

Usage:  python reproduce.py [--skip-tests] [--skip-benches] [--skip-sweep]
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).parent


def run(label: str, command: list, tee_to: Path) -> int:
    print(f"\n=== {label}: {' '.join(command)} ===")
    process = subprocess.Popen(
        command, cwd=ROOT, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True
    )
    lines = []
    assert process.stdout is not None
    for line in process.stdout:
        sys.stdout.write(line)
        lines.append(line)
    process.wait()
    tee_to.write_text("".join(lines), encoding="utf-8")
    return process.returncode


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--skip-tests", action="store_true")
    parser.add_argument("--skip-benches", action="store_true")
    parser.add_argument("--skip-sweep", action="store_true")
    args = parser.parse_args()

    status = 0
    if not args.skip_tests:
        status |= run(
            "test suite",
            [sys.executable, "-m", "pytest", "tests/"],
            ROOT / "test_output.txt",
        )
    if not args.skip_benches:
        status |= run(
            "benchmark harness",
            [sys.executable, "-m", "pytest", "benchmarks/", "--benchmark-only"],
            ROOT / "bench_output.txt",
        )
        results = sorted((ROOT / "benchmarks" / "results").glob("*.txt"))
        print(f"\nregenerated {len(results)} artifacts in benchmarks/results/:")
        for path in results:
            print(f"  {path.name}")
    if not args.skip_sweep:
        status |= run(
            "sweep benchmark",
            [sys.executable, "benchmarks/bench_sweep.py"],
            ROOT / "bench_sweep_output.txt",
        )
        print(f"perf trajectory written to {ROOT / 'BENCH_PR1.json'}")
    print("\nsee EXPERIMENTS.md for the paper-vs-measured comparison.")
    return status


if __name__ == "__main__":
    sys.exit(main())
