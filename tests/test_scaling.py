"""Scaling/roadmap tests: trends, Table 3, Figure 2, cooling, form factor."""

import pytest

from repro.errors import RoadmapError
from repro.scaling import (
    PAPER_TRENDS,
    TechnologyTrends,
    capacity_series,
    cooling_budget_ambient_c,
    cooling_study,
    extra_cooling_needed_c,
    first_shortfall_year,
    formfactor_study,
    idr_series,
    plan_roadmap,
    required_rpm_table,
    roadmap_extension_years,
    thermal_roadmap,
)


class TestTrends:
    def test_1999_anchors(self):
        assert PAPER_TRENDS.kbpi(1999) == pytest.approx(270)
        assert PAPER_TRENDS.ktpi(1999) == pytest.approx(20)
        assert PAPER_TRENDS.target_idr_mb_s(1999) == pytest.approx(47)

    def test_early_growth_rates(self):
        assert PAPER_TRENDS.kbpi(2000) / PAPER_TRENDS.kbpi(1999) == pytest.approx(1.30)
        assert PAPER_TRENDS.ktpi(2000) / PAPER_TRENDS.ktpi(1999) == pytest.approx(1.50)

    def test_late_growth_rates(self):
        assert PAPER_TRENDS.kbpi(2006) / PAPER_TRENDS.kbpi(2005) == pytest.approx(1.14)
        assert PAPER_TRENDS.ktpi(2006) / PAPER_TRENDS.ktpi(2005) == pytest.approx(1.28)

    def test_terabit_reached_in_2010(self):
        # Industry projection the paper calibrates to: 1 Tb/in^2 in 2010.
        assert PAPER_TRENDS.terabit_year() == 2010

    def test_2010_density_near_terabit_point(self):
        tech = PAPER_TRENDS.technology(2010)
        assert tech.areal_density == pytest.approx(1.0e12, rel=0.12)
        # BAR approaches ~3.4.
        assert 3.0 < tech.bit_aspect_ratio < 4.0

    def test_bar_declines(self):
        assert PAPER_TRENDS.bit_aspect_ratio(2012) < PAPER_TRENDS.bit_aspect_ratio(2002)

    def test_idr_target_2002(self):
        # Table 3: 128.97 MB/s required in 2002.
        assert PAPER_TRENDS.target_idr_mb_s(2002) == pytest.approx(128.97, rel=1e-3)

    def test_idr_target_2012(self):
        # Table 3: 3730.46 MB/s required in 2012.
        assert PAPER_TRENDS.target_idr_mb_s(2012) == pytest.approx(3730.46, rel=1e-3)

    def test_rejects_pre_anchor_year(self):
        with pytest.raises(RoadmapError):
            PAPER_TRENDS.kbpi(1995)

    def test_rejects_inconsistent_config(self):
        with pytest.raises(RoadmapError):
            TechnologyTrends(base_year=2000, slowdown_year=1999)


class TestRequiredRpmTable:
    @pytest.fixture(scope="class")
    def cells(self):
        return required_rpm_table(years=(2002, 2005, 2009, 2010, 2012))

    def _cell(self, cells, year, size):
        for cell in cells:
            if cell.year == year and cell.diameter_in == size:
                return cell
        raise KeyError((year, size))

    PAPER_RPM = {
        (2002, 2.6): 15098,
        (2005, 2.6): 24534,
        (2009, 2.6): 55819,
        (2010, 2.6): 95094,
        (2012, 2.6): 143470,
        (2005, 2.1): 30367,
        (2012, 1.6): 233050,
    }

    @pytest.mark.parametrize("key", sorted(PAPER_RPM))
    def test_required_rpm_matches_paper(self, cells, key):
        year, size = key
        cell = self._cell(cells, year, size)
        assert cell.required_rpm == pytest.approx(self.PAPER_RPM[key], rel=0.01)

    def test_idr_density_2002(self, cells):
        cell = self._cell(cells, 2002, 2.6)
        assert cell.idr_density_mb_s == pytest.approx(128.14, rel=0.01)

    def test_terabit_ecc_jump_shows_in_2010(self, cells):
        # IDR_density *drops* from 2009 to 2010 despite BPI growth (ECC
        # jumps from 10% to 35%): paper reports 365.34 -> 300.23.
        idr_2009 = self._cell(cells, 2009, 2.6).idr_density_mb_s
        idr_2010 = self._cell(cells, 2010, 2.6).idr_density_mb_s
        assert idr_2010 < idr_2009
        assert idr_2010 / idr_2009 == pytest.approx(300.23 / 365.34, rel=0.02)

    def test_terabit_rpm_jump_about_70_percent(self, cells):
        rpm_2009 = self._cell(cells, 2009, 2.6).required_rpm
        rpm_2010 = self._cell(cells, 2010, 2.6).required_rpm
        assert rpm_2010 / rpm_2009 == pytest.approx(1.70, abs=0.05)

    def test_envelope_flag(self, cells):
        assert self._cell(cells, 2002, 2.6).within_envelope in (True, False)
        assert not self._cell(cells, 2012, 2.6).within_envelope

    def test_smaller_platter_needs_higher_rpm_but_runs_cooler(self, cells):
        big = self._cell(cells, 2005, 2.6)
        small = self._cell(cells, 2005, 2.1)
        assert small.required_rpm > big.required_rpm
        assert small.steady_temp_c < big.steady_temp_c


class TestThermalRoadmap:
    @pytest.fixture(scope="class")
    def points(self):
        return thermal_roadmap(platter_count=1)

    def test_one_point_per_year_and_size(self, points):
        assert len(points) == 11 * 3

    def test_max_idr_grows_with_density_until_terabit(self, points):
        series = idr_series(points, 1.6)
        years = [y for y, _ in series]
        values = [v for _, v in series]
        # Monotone growth except the 2010 ECC dip.
        for (y0, v0), (y1, v1) in zip(series, series[1:]):
            if y1 == 2010:
                assert v1 < v0
            else:
                assert v1 > v0
        assert years == sorted(years)
        assert all(v > 0 for v in values)

    def test_16_holds_target_through_2006(self, points):
        # Paper: the 40% CGR is sustainable until ~2006, via the 1.6" size.
        for point in points:
            if point.diameter_in == 1.6 and point.year <= 2006:
                assert point.meets_target

    def test_first_shortfall_2007(self, points):
        assert first_shortfall_year(points) == 2007

    def test_26_falls_off_first(self, points):
        meets = [p.year for p in points if p.diameter_in == 2.6 and p.meets_target]
        assert not meets or max(meets) <= 2003

    def test_21_falls_off_mid(self, points):
        meets = [p.year for p in points if p.diameter_in == 2.1 and p.meets_target]
        assert meets and 2004 <= max(meets) <= 2005

    def test_capacity_series_grows_with_density(self, points):
        series = capacity_series(points, 2.6)
        values = [v for _, v in series]
        assert values == sorted(values)

    def test_smaller_platters_sacrifice_capacity(self, points):
        by_size = {d: dict(capacity_series(points, d)) for d in (2.6, 2.1, 1.6)}
        for year in (2002, 2007, 2012):
            assert by_size[2.6][year] > by_size[2.1][year] > by_size[1.6][year]

    def test_2005_capacity_values_near_paper(self, points):
        # Paper: 61.13 GB (2.1") and 35.48 GB (1.6") for 1 platter in 2005.
        caps = {p.diameter_in: p.capacity_gb for p in points if p.year == 2005}
        assert caps[2.1] == pytest.approx(61.13, rel=0.06)
        assert caps[1.6] == pytest.approx(35.48, rel=0.06)

    def test_multi_platter_capacity_scales(self):
        two = thermal_roadmap(platter_count=2, years=(2005,), sizes=(1.6,))[0]
        one = thermal_roadmap(platter_count=1, years=(2005,), sizes=(1.6,))[0]
        assert two.capacity_gb == pytest.approx(2 * one.capacity_gb, rel=0.01)

    def test_cooling_budget_increases_with_platters(self):
        budgets = [cooling_budget_ambient_c(n) for n in (1, 2, 4)]
        assert budgets[0] > budgets[1] > budgets[2]
        assert budgets[0] == pytest.approx(28.0, abs=0.2)

    def test_multi_platter_roadmap_starts_on_envelope(self):
        # With its cooling budget, the 4-platter 2.6" design supports the
        # 2002 required RPM (~15.1K) at the envelope.
        points = thermal_roadmap(platter_count=4, years=(2002,), sizes=(2.6,))
        assert points[0].max_rpm == pytest.approx(15098, rel=0.02)


class TestPlanRoadmap:
    @pytest.fixture(scope="class")
    def designs(self):
        return plan_roadmap(years=tuple(range(2002, 2013)))

    def test_one_design_per_year(self, designs):
        assert [d.year for d in designs] == list(range(2002, 2013))

    def test_meets_target_until_2006(self, designs):
        for design in designs:
            if design.year <= 2006:
                assert design.met_target

    def test_falls_off_after_2006(self, designs):
        late = [d for d in designs if d.year >= 2008]
        assert late and all(not d.met_target for d in late)

    def test_platter_shrink_over_time(self, designs):
        # Once the target gets hard, the planner moves to smaller media.
        first = designs[0].point.diameter_in
        last = designs[-1].point.diameter_in
        assert last <= first

    def test_achieved_idr_capped_at_target_when_met(self, designs):
        for design in designs:
            if design.met_target:
                assert design.achieved_idr_mb_s == pytest.approx(
                    design.point.target_idr_mb_s
                )


class TestCoolingStudy:
    @pytest.fixture(scope="class")
    def scenarios(self):
        return cooling_study()

    def test_three_scenarios(self, scenarios):
        assert set(scenarios) == {0.0, 5.0, 10.0}

    def test_better_cooling_never_hurts(self, scenarios):
        for diameter in (2.6, 2.1, 1.6):
            base = scenarios[0.0].last_year_meeting_target(diameter) or 0
            five = scenarios[5.0].last_year_meeting_target(diameter) or 0
            ten = scenarios[10.0].last_year_meeting_target(diameter) or 0
            assert ten >= five >= base

    def test_extension_about_one_two_years(self, scenarios):
        # Paper: 5 C / 10 C cooler extends the (1.6") roadmap by ~1 / ~2
        # years.
        extensions = roadmap_extension_years(scenarios, 1.6)
        assert 0 <= extensions[5.0] <= 2
        assert 1 <= extensions[10.0] <= 3
        assert extensions[10.0] >= extensions[5.0]

    def test_26_recovers_lost_years_with_cooling(self, scenarios):
        base = scenarios[0.0].last_year_meeting_target(2.6) or 2001
        cooled = scenarios[10.0].last_year_meeting_target(2.6) or 2001
        assert cooled > base

    def test_terabit_transition_not_rescued(self, scenarios):
        # Paper: even aggressive cooling cannot sustain the terabit ECC jump.
        for scenario in scenarios.values():
            shortfall = scenario.first_shortfall_year()
            assert shortfall is not None and shortfall <= 2010


class TestFormFactor:
    def test_small_enclosure_falls_off_at_2002(self):
        comparison = formfactor_study(years=(2002, 2003))
        assert not comparison.small_meets_target_ever()
        # The 3.5-inch enclosure sits essentially on the 2002 target
        # (within 1%); the 2.5-inch one is nowhere near it.
        large_2002 = comparison.large[0]
        small_2002 = comparison.small[0]
        assert large_2002.max_idr_mb_s >= 0.99 * large_2002.target_idr_mb_s
        assert small_2002.max_idr_mb_s < 0.8 * small_2002.target_idr_mb_s

    def test_small_enclosure_lower_idr(self):
        comparison = formfactor_study(years=(2002,))
        assert comparison.small[0].max_idr_mb_s < comparison.large[0].max_idr_mb_s

    def test_extra_cooling_needed_is_large(self):
        # Paper: ~15 C more cooling needed before the 2.5" enclosure is
        # comparable.
        delta = extra_cooling_needed_c()
        assert 8.0 <= delta <= 25.0
