"""Cross-cutting tests: error hierarchy, package surface, controller
guards, and paper-constant regressions."""

import pytest

import repro
from repro import constants, errors


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "GeometryError",
            "RecordingError",
            "ThermalError",
            "EnvelopeError",
            "RoadmapError",
            "SimulationError",
            "TraceError",
            "DTMError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_envelope_is_thermal(self):
        assert issubclass(errors.EnvelopeError, errors.ThermalError)

    def test_catchable_as_base(self):
        from repro.thermal import viscous_power_w

        with pytest.raises(errors.ReproError):
            viscous_power_w(-1, 2.6)


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_subpackages_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None or name in (
                "AMBIENT_TEMPERATURE_C",
                "THERMAL_ENVELOPE_C",
                "__version__",
            )

    def test_headline_constants(self):
        assert repro.THERMAL_ENVELOPE_C == pytest.approx(45.22)
        assert repro.AMBIENT_TEMPERATURE_C == pytest.approx(28.0)


class TestPaperConstants:
    def test_fd_step_is_600_per_minute(self):
        assert constants.FD_STEPS_PER_MINUTE == 600
        assert constants.FD_TIME_STEP_S == pytest.approx(0.1)

    def test_stroke_efficiency_two_thirds(self):
        assert constants.STROKE_EFFICIENCY == pytest.approx(2 / 3)

    def test_ecc_constants(self):
        assert constants.ECC_BITS_SUBTERABIT == 416
        assert constants.ECC_BITS_TERABIT == 1440

    def test_viscous_exponents(self):
        assert constants.VISCOUS_RPM_EXPONENT == pytest.approx(2.8)
        assert constants.VISCOUS_DIAMETER_EXPONENT == pytest.approx(4.8)

    def test_roadmap_span(self):
        assert constants.ROADMAP_FIRST_YEAR == 2002
        assert constants.ROADMAP_LAST_YEAR == 2012
        assert constants.ROADMAP_PLATTER_SIZES_IN == (2.6, 2.1, 1.6)
        assert constants.ROADMAP_PLATTER_COUNTS == (1, 2, 4)


class TestControllerGuards:
    def test_unrecoverable_gate_raises_instead_of_hanging(self):
        """A resume threshold below the cooling-mode steady temperature can
        never be reached; the controller must fail loudly, not spin."""
        from repro.dtm import DTMPolicy, ThermallyManagedSystem
        from repro.errors import DTMError
        from repro.thermal import DriveThermalModel
        from repro.workloads import workload

        spec = workload("search_engine")
        # 26K RPM: the VCM-off steady state (~45.6 C) already exceeds the
        # envelope, so a gate-only policy is unrecoverable by construction.
        system = spec.build_system(rpm=26000)
        thermal = DriveThermalModel(platter_diameter_in=2.6, rpm=26000, vcm_active=False)
        thermal.settle()
        thermal.set_operating_state(vcm_active=True)
        managed = ThermallyManagedSystem(
            system,
            thermal,
            DTMPolicy(trigger_margin_c=0.05, resume_margin_c=0.15, check_interval_ms=50.0),
        )
        trace = spec.generate(num_requests=300, seed=4)
        with pytest.raises(DTMError):
            managed.run_trace(trace, max_extra_ms=20_000)

    def test_policy_guard_parallels(self):
        from repro.dtm import PolicyManagedSystem, ReactiveGatePolicy
        from repro.errors import DTMError
        from repro.thermal import DriveThermalModel
        from repro.workloads import workload

        spec = workload("search_engine")
        system = spec.build_system(rpm=26000)
        thermal = DriveThermalModel(platter_diameter_in=2.6, rpm=26000, vcm_active=False)
        thermal.settle()
        thermal.set_operating_state(vcm_active=True)
        managed = PolicyManagedSystem(
            system,
            thermal,
            ReactiveGatePolicy(trigger_margin_c=0.05, resume_margin_c=0.15),
            check_interval_ms=50.0,
        )
        trace = spec.generate(num_requests=300, seed=4)
        with pytest.raises(DTMError):
            managed.run_trace(trace, max_extra_ms=20_000)


class TestRoadmapPaperDiscussion:
    """Regressions for the quantitative claims in the paper's §4.1 prose."""

    def test_idr_requirement_grows_29x(self):
        from repro.scaling import PAPER_TRENDS

        growth = PAPER_TRENDS.target_idr_mb_s(2012) / PAPER_TRENDS.target_idr_mb_s(2002)
        assert growth == pytest.approx(29.0, rel=0.01)

    def test_rpm_requirement_grows_9_5x(self):
        from repro.scaling import required_rpm_table

        cells = {
            (c.year, c.diameter_in): c
            for c in required_rpm_table(years=(2002, 2012), sizes=(2.6,))
        }
        ratio = cells[(2012, 2.6)].required_rpm / cells[(2002, 2.6)].required_rpm
        assert ratio == pytest.approx(9.5, rel=0.02)

    def test_viscous_2002_to_2003(self):
        # Paper: windage grows from 0.91 W (2002) to 1.13 W (2003).
        from repro.thermal import viscous_power_w

        assert viscous_power_w(15098, 2.6) == pytest.approx(0.91, rel=0.01)
        assert viscous_power_w(16263, 2.6) == pytest.approx(1.13, rel=0.02)

    def test_2005_options_narrative(self):
        """Paper §4.1: in 2005, the 2.1-inch size needs 30,367 RPM (1,543
        over its envelope limit); shrinking to 1.6-inch achieves the rate
        at 39,857 RPM but drops capacity 61.13 -> 35.48 GB; a second
        platter buys it back to 70.97 GB."""
        from repro.scaling import required_rpm_table, thermal_roadmap
        from repro.thermal import max_rpm_within_envelope

        cells = {
            (c.year, c.diameter_in): c
            for c in required_rpm_table(years=(2005,), sizes=(2.1, 1.6))
        }
        need_21 = cells[(2005, 2.1)].required_rpm
        limit_21 = max_rpm_within_envelope(2.1)
        assert need_21 > limit_21  # over the envelope limit
        assert need_21 - limit_21 == pytest.approx(1543, abs=1000)
        one = thermal_roadmap(platter_count=1, years=(2005,), sizes=(2.1, 1.6))
        two = thermal_roadmap(platter_count=2, years=(2005,), sizes=(1.6,))
        caps = {p.diameter_in: p.capacity_gb for p in one}
        assert caps[2.1] == pytest.approx(61.13, rel=0.06)
        assert caps[1.6] == pytest.approx(35.48, rel=0.06)
        assert two[0].capacity_gb == pytest.approx(70.97, rel=0.06)
