"""Performance-model tests: seek curves, IDR, rotation."""

import pytest

from repro.errors import ReproError
from repro.performance import (
    SeekModel,
    SeekParameters,
    angle_at,
    average_rotational_latency_ms,
    full_rotation_ms,
    idr_mb_per_s,
    media_rate_mb_per_s,
    required_rpm_for_idr,
    seek_model_for_platter,
    seek_parameters_for_platter,
    surface_idr_mb_per_s,
    wait_for_angle_ms,
)


class TestSeekParameters:
    def test_ordering_enforced(self):
        with pytest.raises(ReproError):
            SeekParameters(track_to_track_ms=5.0, average_ms=3.0, full_stroke_ms=8.0)

    def test_positive_enforced(self):
        with pytest.raises(ReproError):
            SeekParameters(track_to_track_ms=0.0, average_ms=3.0, full_stroke_ms=8.0)

    def test_anchors_shrink_with_platter(self):
        small = seek_parameters_for_platter(1.6)
        large = seek_parameters_for_platter(3.7)
        assert small.average_ms < large.average_ms
        assert small.full_stroke_ms < large.full_stroke_ms

    def test_interpolation_between_table_points(self):
        mid = seek_parameters_for_platter(2.35)
        lo = seek_parameters_for_platter(2.1)
        hi = seek_parameters_for_platter(2.6)
        assert lo.average_ms < mid.average_ms < hi.average_ms

    def test_clamped_below_table(self):
        assert seek_parameters_for_platter(1.0) == seek_parameters_for_platter(1.6)

    def test_clamped_above_table(self):
        assert seek_parameters_for_platter(5.0) == seek_parameters_for_platter(3.7)

    def test_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            seek_parameters_for_platter(0)


class TestSeekModel:
    @pytest.fixture
    def model(self):
        return SeekModel(
            SeekParameters(track_to_track_ms=0.4, average_ms=3.6, full_stroke_ms=7.5),
            cylinders=30000,
        )

    def test_zero_distance_is_free(self, model):
        assert model.seek_time_ms(0) == 0.0

    def test_single_track(self, model):
        assert model.seek_time_ms(1) == pytest.approx(0.4)

    def test_full_stroke(self, model):
        assert model.seek_time_ms(29999) == pytest.approx(7.5)

    def test_average_at_third_of_stroke(self, model):
        assert model.seek_time_ms(10000) == pytest.approx(3.6, rel=0.01)

    def test_monotone_nondecreasing(self, model):
        times = [model.seek_time_ms(d) for d in range(1, 29999, 500)]
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_beyond_full_stroke_clamped(self, model):
        assert model.seek_time_ms(10**6) == pytest.approx(7.5)

    def test_rejects_negative(self, model):
        with pytest.raises(ReproError):
            model.seek_time_ms(-1)

    def test_requires_two_cylinders(self):
        with pytest.raises(ReproError):
            SeekModel(
                SeekParameters(track_to_track_ms=0.4, average_ms=3.6, full_stroke_ms=7.5),
                cylinders=1,
            )

    def test_factory(self):
        model = seek_model_for_platter(2.6, cylinders=20000)
        assert model.seek_time_ms(1) == pytest.approx(0.4)

    @pytest.mark.parametrize(
        "cylinders", [2, 3, 5, 7, 10, 50, 100, 1234, 30000, 100001]
    )
    def test_average_seek_is_the_anchor_exactly(self, cylinders):
        # Regression: an earlier revision rounded the mean random-seek
        # distance to an int and re-interpolated, drifting off the
        # datasheet anchor for small cylinder counts.
        params = SeekParameters(
            track_to_track_ms=0.4, average_ms=3.6, full_stroke_ms=7.5
        )
        assert SeekModel(params, cylinders).average_seek_ms() == 3.6

    @pytest.mark.parametrize("cylinders", [2, 3, 5, 100, 30000])
    def test_batch_seek_bitwise_matches_scalar(self, cylinders):
        np = pytest.importorskip("numpy")
        model = SeekModel(
            SeekParameters(track_to_track_ms=0.4, average_ms=3.6, full_stroke_ms=7.5),
            cylinders=cylinders,
        )
        distances = np.arange(cylinders + 2, dtype=np.int64)
        batch = model.seek_time_ms_batch(distances)
        for d, got in zip(distances.tolist(), batch.tolist()):
            assert got == model.seek_time_ms(d), (cylinders, d)

    def test_batch_seek_rejects_negative(self):
        np = pytest.importorskip("numpy")
        model = seek_model_for_platter(2.6, cylinders=20000)
        with pytest.raises(ReproError):
            model.seek_time_ms_batch(np.asarray([-1]))


class TestIDR:
    def test_eq4_value(self):
        # IDR = (rpm/60) * ntz0 * 512 / 2^20
        assert idr_mb_per_s(15000, 1024) == pytest.approx(250 * 1024 * 512 / 2**20)

    def test_linear_in_rpm(self):
        assert idr_mb_per_s(20000, 500) == pytest.approx(2 * idr_mb_per_s(10000, 500))

    def test_inverse(self):
        rpm = required_rpm_for_idr(idr_mb_per_s(12345, 777), 777)
        assert rpm == pytest.approx(12345)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ReproError):
            idr_mb_per_s(0, 100)
        with pytest.raises(ReproError):
            idr_mb_per_s(10000, 0)
        with pytest.raises(ReproError):
            required_rpm_for_idr(0, 100)

    def test_surface_idr_uses_zone0(self, surface_2002):
        direct = idr_mb_per_s(15000, surface_2002.sectors_per_track_zone0)
        assert surface_idr_mb_per_s(surface_2002, 15000) == pytest.approx(direct)

    def test_inner_zones_slower(self, surface_2002):
        outer = media_rate_mb_per_s(surface_2002, 15000, 0)
        inner = media_rate_mb_per_s(surface_2002, 15000, surface_2002.cylinders - 1)
        assert inner < outer

    def test_2002_idr_density_matches_table3(self, surface_2002):
        # Paper Table 3: 128.14 MB/s at the 15K reference for 2.6" in 2002
        # (50 zones).
        assert surface_idr_mb_per_s(surface_2002, 15000) == pytest.approx(128.14, rel=0.01)


class TestRotation:
    def test_full_rotation(self):
        assert full_rotation_ms(10000) == pytest.approx(6.0)

    def test_average_latency_is_half(self):
        assert average_rotational_latency_ms(10000) == pytest.approx(3.0)

    def test_angle_wraps(self):
        assert angle_at(6.0, 10000) == pytest.approx(0.0)
        assert angle_at(9.0, 10000) == pytest.approx(0.5)

    def test_angle_with_phase(self):
        assert angle_at(0.0, 10000, phase=0.25) == pytest.approx(0.25)

    def test_wait_for_angle_zero_when_aligned(self):
        assert wait_for_angle_ms(6.0, 0.0, 10000) == pytest.approx(0.0)

    def test_wait_for_angle_less_than_period(self):
        for target in (0.1, 0.5, 0.9):
            wait = wait_for_angle_ms(1.234, target, 10000)
            assert 0 <= wait < 6.0

    def test_wait_reaches_target(self):
        now = 2.345
        target = 0.7
        wait = wait_for_angle_ms(now, target, 10000)
        assert angle_at(now + wait, 10000) == pytest.approx(target)

    def test_rejects_bad_angle(self):
        with pytest.raises(ReproError):
            wait_for_angle_ms(0.0, 1.5, 10000)

    def test_rejects_negative_time(self):
        with pytest.raises(ReproError):
            angle_at(-1.0, 10000)
