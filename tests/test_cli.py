"""CLI tests: every subcommand produces its table and exits cleanly."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["defrag"])

    def test_t_cool_list_parsing(self):
        args = build_parser().parse_args(
            ["throttle", "--rpm-high", "24534", "--t-cool", "0.5,1,2"]
        )
        assert args.t_cool == [0.5, 1.0, 2.0]

    def test_t_cool_rejects_garbage(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["throttle", "--rpm-high", "24534", "--t-cool", "fast"]
            )

    def test_workload_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["workload", "exchange"])

    def test_sweep_requires_axis(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep"])

    def test_sweep_platter_list_parsing(self):
        args = build_parser().parse_args(["sweep", "roadmap", "-p", "1,4"])
        assert args.platters == [1, 4]

    def test_sweep_name_list_parsing(self):
        args = build_parser().parse_args(["sweep", "workload", "tpcc, oltp"])
        assert args.names == ["tpcc", "oltp"]


class TestCommands:
    def test_validate(self, capsys):
        code, out, err = run_cli(capsys, "validate")
        assert code == 0
        assert "Cheetah 15K.3" in out
        assert "IDR ours" in out

    def test_envelope(self, capsys):
        code, out, _ = run_cli(capsys, "envelope", "-d", "2.6")
        assert code == 0
        # ~15,000 RPM for the 2.6" envelope design.
        tokens = out.split()
        assert any(t.startswith(("149", "150")) and len(t) == 5 for t in tokens)
        assert "45.22" in out

    def test_envelope_vcm_off(self, capsys):
        code, out, _ = run_cli(capsys, "envelope", "-d", "2.6", "--vcm-off")
        assert code == 0
        assert "off" in out

    def test_envelope_infeasible_design_reports_error(self, capsys):
        code, out, err = run_cli(
            capsys, "envelope", "-d", "2.6", "-p", "4", "--envelope", "30"
        )
        assert code == 1
        assert "error:" in err

    def test_transient(self, capsys):
        code, out, _ = run_cli(capsys, "transient", "-m", "30")
        assert code == 0
        assert "steady state" in out

    def test_roadmap(self, capsys):
        code, out, _ = run_cli(capsys, "roadmap")
        assert code == 0
        assert "2012" in out
        assert "*" in out  # some year meets the target

    def test_roadmap_with_cooling(self, capsys):
        code, out, _ = run_cli(capsys, "roadmap", "--cooling", "5")
        assert code == 0

    def test_workload(self, capsys):
        code, out, _ = run_cli(
            capsys, "workload", "oltp", "-n", "400", "--steps", "2"
        )
        assert code == 0
        assert "OLTP" in out
        assert "15000" in out

    def test_throttle(self, capsys):
        code, out, _ = run_cli(
            capsys, "throttle", "--rpm-high", "24534", "--t-cool", "1,4"
        )
        assert code == 0
        assert "ratio" in out

    def test_throttle_infeasible(self, capsys):
        code, out, err = run_cli(
            capsys, "throttle", "--rpm-high", "12000", "--t-cool", "1"
        )
        assert code == 1
        assert "error:" in err

    def test_slack(self, capsys):
        code, out, _ = run_cli(capsys, "slack")
        assert code == 0
        assert '2.6"' in out

    def test_sweep_workload(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "sweep", "workload", "tpcc", "-n", "300", "--steps", "2", "-w", "1",
        )
        assert code == 0
        assert "tpcc" in out
        assert "mean ms" in out

    def test_sweep_workload_unknown_name_reports_error(self, capsys):
        code, _, err = run_cli(
            capsys, "sweep", "workload", "exchange", "-n", "100"
        )
        assert code == 1
        assert "error:" in err

    def test_sweep_roadmap(self, capsys):
        code, out, _ = run_cli(capsys, "sweep", "roadmap", "-p", "1", "-w", "1")
        assert code == 0
        assert "1-platter roadmap:" in out
        assert "meets the 40% IDR growth target" in out
