"""Scheduler edge cases and drain-exactly-once properties (PR 1).

Covers the corners the seed suite missed: LOOK direction reversal when the
head sits beyond every queued request, requests exactly at the head
cylinder (ahead in *both* sweep directions), SSTF tie-breaking between
equidistant cylinders, and a property test that every scheduler serves
each enqueued request exactly once.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.simulation.request import Request
from repro.simulation.scheduler import (
    LookScheduler,
    SSTFScheduler,
    make_scheduler,
)


def _request(lba, arrival=0.0):
    return Request(arrival_ms=arrival, lba=lba, sectors=4)


IDENTITY = lambda lba: lba  # noqa: E731 - cylinder_of for direct-lba tests


class TestLookExtremes:
    def test_head_above_all_requests_reverses_immediately(self):
        scheduler = LookScheduler(cylinder_of=IDENTITY)
        for lba in (10, 30, 5):
            scheduler.add(_request(lba))
        # Head at 100 sweeping up: nothing ahead, reverse, serve downward.
        assert scheduler.next(100).lba == 30
        assert scheduler.next(30).lba == 10
        assert scheduler.next(10).lba == 5

    def test_head_below_all_requests_sweeps_up(self):
        scheduler = LookScheduler(cylinder_of=IDENTITY)
        for lba in (10, 30, 5):
            scheduler.add(_request(lba))
        assert scheduler.next(0).lba == 5
        assert scheduler.next(5).lba == 10
        assert scheduler.next(10).lba == 30

    def test_reversal_at_both_extremes_round_trip(self):
        scheduler = LookScheduler(cylinder_of=IDENTITY)
        for lba in (1, 50):
            scheduler.add(_request(lba))
        assert scheduler.next(20).lba == 50  # up
        scheduler.add(_request(2))
        scheduler.add(_request(60))
        assert scheduler.next(50).lba == 60  # still up
        assert scheduler.next(60).lba == 2  # reverse at top
        assert scheduler.next(2).lba == 1

    def test_request_at_head_served_while_sweeping_up(self):
        scheduler = LookScheduler(cylinder_of=IDENTITY)
        scheduler.add(_request(20))
        scheduler.add(_request(40))
        assert scheduler.next(20).lba == 20  # distance 0 is "ahead"

    def test_request_at_head_served_while_sweeping_down(self):
        scheduler = LookScheduler(cylinder_of=IDENTITY)
        scheduler.add(_request(100))
        assert scheduler.next(200).lba == 100  # forces direction down
        scheduler.add(_request(50))
        scheduler.add(_request(30))
        assert scheduler.next(50).lba == 50  # at-head match going down
        assert scheduler.next(50).lba == 30

    def test_same_cylinder_served_in_insertion_order(self):
        scheduler = LookScheduler(cylinder_of=IDENTITY)
        first = _request(10, arrival=0.0)
        second = _request(10, arrival=1.0)
        scheduler.add(first)
        scheduler.add(second)
        assert scheduler.next(10) is first
        assert scheduler.next(10) is second


class TestSSTFTies:
    def test_equidistant_cylinders_break_by_arrival(self):
        scheduler = SSTFScheduler(cylinder_of=IDENTITY)
        scheduler.add(_request(10, arrival=2.0))  # distance 5 below
        scheduler.add(_request(20, arrival=1.0))  # distance 5 above
        assert scheduler.next(15).lba == 20  # earlier arrival wins
        assert scheduler.next(15).lba == 10

    def test_equidistant_equal_arrival_break_by_insertion(self):
        scheduler = SSTFScheduler(cylinder_of=IDENTITY)
        below = _request(10, arrival=1.0)
        above = _request(20, arrival=1.0)
        scheduler.add(above)
        scheduler.add(below)
        assert scheduler.next(15) is above  # added first
        assert scheduler.next(15) is below

    def test_request_at_head_beats_everything(self):
        scheduler = SSTFScheduler(cylinder_of=IDENTITY)
        scheduler.add(_request(14, arrival=0.0))
        scheduler.add(_request(15, arrival=9.0))
        assert scheduler.next(15).lba == 15

    def test_same_cylinder_ordered_by_arrival_then_insertion(self):
        scheduler = SSTFScheduler(cylinder_of=IDENTITY)
        late = _request(7, arrival=5.0)
        early_b = _request(7, arrival=1.0)
        early_a = _request(7, arrival=1.0)
        scheduler.add(late)
        scheduler.add(early_a)
        scheduler.add(early_b)
        assert scheduler.next(7) is early_a
        assert scheduler.next(7) is early_b
        assert scheduler.next(7) is late


class TestDrainExactlyOnce:
    """Every scheduler must serve each enqueued request exactly once."""

    @given(
        lbas=st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=40),
        head=st.integers(min_value=0, max_value=500),
    )
    def test_all_schedulers_drain_every_request_once(self, lbas, head):
        for name in ("fcfs", "sstf", "look"):
            scheduler = make_scheduler(name, lambda lba: lba // 10)
            requests = [
                _request(lba, arrival=float(i)) for i, lba in enumerate(lbas)
            ]
            for request in requests:
                scheduler.add(request)
            served = []
            position = head
            while len(scheduler):
                request = scheduler.next(position)
                assert request is not None
                position = request.lba // 10  # head follows the served request
                served.append(request.request_id)
            assert scheduler.next(position) is None
            assert sorted(served) == sorted(r.request_id for r in requests)
            assert len(set(served)) == len(requests)

    @given(
        adds=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=300),
                st.integers(min_value=0, max_value=2),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_interleaved_add_and_dispatch(self, adds):
        """Requests added between dispatches are neither lost nor duplicated."""
        for name in ("fcfs", "sstf", "look"):
            scheduler = make_scheduler(name, lambda lba: lba)
            expected = []
            served = []
            position = 0
            for i, (lba, dispatches) in enumerate(adds):
                request = _request(lba, arrival=float(i))
                scheduler.add(request)
                expected.append(request.request_id)
                for _ in range(dispatches):
                    picked = scheduler.next(position)
                    if picked is None:
                        break
                    position = picked.lba
                    served.append(picked.request_id)
            while len(scheduler):
                picked = scheduler.next(position)
                position = picked.lba
                served.append(picked.request_id)
            assert sorted(served) == sorted(expected)
