"""Integration tests: telemetry wired through the simulator, DTM
controllers, the parallel sweep, and the CLI — plus the tier-1 no-op
overhead guard (acceptance: within 2% of the untelemetered baseline)."""

import json
import time

import pytest

from repro.cli import main as cli_main
from repro.dtm import (
    DTMPolicy,
    ThermallyManagedSystem,
    ThrottlingScenario,
    slack_by_platter_size,
    throttling_trace,
)
from repro.simulation.sweep import sweep_workloads
from repro.telemetry import Telemetry
from repro.thermal.model import DriveThermalModel
from repro.workloads import workload


def _replay(spec_name, requests, seed, telemetry=None, rpm=None):
    spec = workload(spec_name)
    trace = spec.generate(num_requests=requests, seed=seed)
    system = spec.build_system(rpm, telemetry=telemetry)
    return system.run_trace(trace)


class TestSystemIntegration:
    def test_replay_emits_full_event_taxonomy(self):
        tel = Telemetry(probe_interval_ms=50.0)
        report = _replay("tpcc", 500, 7, telemetry=tel)
        kinds = tel.trace.counts_by_kind()
        for kind in (
            "request_issue",
            "request_dispatch",
            "request_complete",
            "logical_complete",
            "cache_miss",
            "seek",
        ):
            assert kinds.get(kind, 0) > 0, f"no {kind} events recorded"
        # every logical request produced exactly one issue + one completion
        assert tel.registry.get("logical_requests").value == report.requests

    def test_metrics_agree_with_report(self):
        tel = Telemetry()
        report = _replay("oltp", 400, 3, telemetry=tel)
        per_disk = sum(
            m.value
            for m in tel.registry
            if m.name.endswith(".requests")
        )
        # physical per-disk requests >= logical (RAID5 writes fan out)
        assert per_disk >= report.requests
        hist = tel.registry.get("response_ms")
        assert hist.count == report.requests
        assert hist.mean() == pytest.approx(report.stats.mean_ms(), rel=1e-9)

    def test_probes_sample_time_series(self):
        tel = Telemetry(probe_interval_ms=25.0)
        _replay("tpcc", 400, 1, telemetry=tel)
        util = tel.probes.probe("disk0.utilization")
        assert len(util.series) > 10
        times = util.times_ms()
        assert times == sorted(times)
        assert all(0.0 <= v <= 1.0 for v in util.values())

    def test_results_identical_with_and_without_telemetry(self):
        base = _replay("tpcc", 300, 11)
        instrumented = _replay("tpcc", 300, 11, telemetry=Telemetry())
        disabled = _replay("tpcc", 300, 11, telemetry=Telemetry(enabled=False))
        assert instrumented.stats.mean_ms() == base.stats.mean_ms()
        assert disabled.stats.mean_ms() == base.stats.mean_ms()
        assert list(instrumented.stats.samples_ms) == list(base.stats.samples_ms)

    def test_noop_overhead_within_two_percent(self):
        """Acceptance criterion: with telemetry disabled, the smoke sweep
        stays within 2% of the untelemetered baseline.

        A disabled Telemetry normalizes to None inside every component, so
        the two paths execute identical code; min-of-N wall clocks bound
        scheduler noise.  One escalating retry keeps slow hosts honest
        without flaking.
        """

        def measure(telemetry_factory, repeats):
            best = float("inf")
            for _ in range(repeats):
                spec = workload("tpcc")
                trace = spec.generate(num_requests=800, seed=2)
                system = spec.build_system(telemetry=telemetry_factory())
                t0 = time.perf_counter()
                system.run_trace(trace)
                best = min(best, time.perf_counter() - t0)
            return best

        for repeats in (3, 7):  # escalate once before failing
            baseline = measure(lambda: None, repeats)
            disabled = measure(lambda: Telemetry(enabled=False), repeats)
            if disabled <= baseline * 1.02:
                return
        assert disabled <= baseline * 1.02, (
            f"disabled-telemetry replay {disabled:.4f}s exceeds 2% over "
            f"baseline {baseline:.4f}s"
        )


class TestDTMIntegration:
    def _managed(self, telemetry, envelope_delta=0.05):
        spec = workload("search_engine")
        system = spec.build_system(rpm=24500, telemetry=telemetry)
        thermal = DriveThermalModel(
            platter_diameter_in=2.6, rpm=24500, vcm_active=False
        )
        thermal.settle()
        thermal.set_operating_state(vcm_active=True)
        policy = DTMPolicy(
            envelope_c=thermal.air_c() + envelope_delta,
            trigger_margin_c=0.01,
            resume_margin_c=0.04,
            check_interval_ms=20.0,
        )
        managed = ThermallyManagedSystem(system, thermal, policy, telemetry=telemetry)
        return managed, spec.generate(num_requests=600, seed=5)

    def test_controller_traces_throttle_decisions(self):
        tel = Telemetry()
        managed, trace = self._managed(tel)
        report = managed.run_trace(trace)
        assert report.throttle_events > 0
        kinds = tel.trace.counts_by_kind()
        assert kinds.get("dtm_check", 0) > 0
        assert kinds.get("dtm_throttle", 0) == report.throttle_events
        assert tel.registry.get("dtm.throttle_engagements").value == (
            report.throttle_events
        )
        # thermal probes rode the controller's check cadence
        air = tel.probes.probe("thermal.air_c")
        assert len(air.series) > 0
        assert max(air.values()) == pytest.approx(report.max_air_c, abs=1e-6)

    def test_throttling_trace_telemetry(self):
        tel = Telemetry()
        scenario = ThrottlingScenario(
            diameter_in=2.6, platter_count=4, rpm_high=15000.0
        )
        result = throttling_trace(
            scenario, t_cool_s=2.0, cycles=2, dt_s=0.05, telemetry=tel
        )
        kinds = tel.trace.counts_by_kind()
        assert kinds == {"dtm_throttle": 2, "dtm_resume": 2}
        probe = tel.probes.probe("throttle.air_c")
        # every saw-tooth sample also landed in the probe series
        assert len(probe.series) == len(result.times_s)

    def test_slack_telemetry_gauges(self):
        tel = Telemetry()
        points = slack_by_platter_size(sizes=(2.6, 1.6), telemetry=tel)
        for point in points:
            gauge = tel.registry.get(f"slack.{point.diameter_in}in.envelope_rpm")
            assert gauge.value == pytest.approx(point.envelope_rpm)
        assert tel.trace.counts_by_kind() == {"dtm_check": 2}


class TestSweepIntegration:
    def test_sweep_ships_telemetry_snapshots(self):
        results = sweep_workloads(
            names=["tpcc"],
            rpm_steps=2,
            requests=300,
            seed=1,
            workers=2,  # must survive pickling across processes
            telemetry=True,
            probe_interval_ms=50.0,
            trace_capacity=512,
        )
        assert len(results) == 2
        for result in results:
            snap = result.telemetry
            assert snap is not None
            assert snap["schema"] == "repro.telemetry/1"
            assert snap["trace"]["capacity"] == 512
            assert len(snap["trace"]["events"]) <= 512
            assert snap["probes"]
            json.dumps(snap)  # remains JSON-serializable after the pickle hop

    def test_sweep_without_telemetry_ships_none(self):
        results = sweep_workloads(
            names=["tpcc"], rpm_steps=1, requests=200, seed=1, workers=1
        )
        assert results[0].telemetry is None


class TestCLI:
    def test_trace_subcommand_prints_panel(self, capsys):
        assert cli_main(["trace", "tpcc", "-n", "300", "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "event trace:" in out
        assert "disk0.utilization" in out

    def test_trace_subcommand_writes_json(self, tmp_path, capsys):
        out_path = tmp_path / "tel.json"
        assert (
            cli_main(
                ["trace", "oltp", "-n", "200", "-o", str(out_path), "--limit", "1"]
            )
            == 0
        )
        doc = json.loads(out_path.read_text())
        assert doc["schema"] == "repro.telemetry/1"
        assert doc["probes"]

    def test_sweep_telemetry_flag_emits_time_series_and_trace(
        self, tmp_path, capsys
    ):
        """Acceptance criterion: `repro sweep --telemetry` emits a JSON
        time-series + trace artifact."""
        out_path = tmp_path / "sweep_tel.json"
        rc = cli_main(
            [
                "sweep",
                "workload",
                "tpcc",
                "-n",
                "300",
                "--steps",
                "2",
                "-w",
                "1",
                "--telemetry-out",
                str(out_path),
            ]
        )
        assert rc == 0
        doc = json.loads(out_path.read_text())
        assert doc["schema"] == "repro.sweep_telemetry/1"
        assert len(doc["points"]) == 2
        point = doc["points"][0]["telemetry"]
        assert point["trace"]["events"], "trace output missing"
        probes = point["probes"]
        assert any(series["values"] for series in probes.values()), (
            "time-series output missing"
        )
