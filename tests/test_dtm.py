"""DTM tests: thermal slack, dynamic throttling, multi-speed profiles,
and the reactive controller."""

import pytest

from repro.constants import THERMAL_ENVELOPE_C
from repro.dtm import (
    DTMPolicy,
    ThermallyManagedSystem,
    ThrottlingScenario,
    drpm_profile,
    paper_scenario_vcm_and_rpm,
    paper_scenario_vcm_only,
    required_ratio_for_utilization,
    slack_by_platter_size,
    slack_roadmap,
    throttle_cycle,
    throttling_ratio_curve,
    throttling_trace,
    two_level_profile,
)
from repro.errors import DTMError
from repro.thermal import DriveThermalModel


class TestSlack:
    @pytest.fixture(scope="class")
    def points(self):
        return slack_by_platter_size()

    def test_three_sizes(self, points):
        assert [p.diameter_in for p in points] == [2.6, 2.1, 1.6]

    def test_26_slack_rpm_near_paper(self, points):
        # Paper Figure 5(a): 15,020 -> 26,750 RPM for the 2.6" size.
        p26 = points[0]
        assert p26.envelope_rpm == pytest.approx(15020, rel=0.02)
        assert p26.vcm_off_rpm == pytest.approx(26750, rel=0.08)

    def test_slack_fraction_shrinks_with_size(self, points):
        fractions = [p.rpm_gain_fraction for p in points]
        assert fractions[0] > fractions[1] > fractions[2]

    def test_vcm_power_column(self, points):
        assert points[0].vcm_power_w == pytest.approx(3.9)
        assert points[2].vcm_power_w == pytest.approx(0.618)

    def test_slack_always_positive(self, points):
        assert all(p.rpm_gain > 0 for p in points)


class TestSlackRoadmap:
    @pytest.fixture(scope="class")
    def roadmap(self):
        return slack_roadmap(years=(2002, 2005, 2008), sizes=(2.6, 1.6))

    def test_slack_roadmap_dominates_envelope_design(self, roadmap):
        for base, slack in zip(roadmap.envelope_design, roadmap.vcm_off):
            assert slack.max_idr_mb_s > base.max_idr_mb_s

    def test_26_slack_beats_nonslack_21(self):
        # Paper §5.2: the 2.6" slack design surpasses a non-slack 2.1".
        roadmap = slack_roadmap(years=(2003,), sizes=(2.6, 2.1))
        slack_26 = next(
            p for p in roadmap.vcm_off if p.diameter_in == 2.6 and p.year == 2003
        )
        plain_21 = next(
            p
            for p in roadmap.envelope_design
            if p.diameter_in == 2.1 and p.year == 2003
        )
        assert slack_26.max_idr_mb_s > plain_21.max_idr_mb_s
        assert slack_26.capacity_gb > plain_21.capacity_gb

    def test_16_late_gain_small(self, roadmap):
        # Paper: ~5.6% extra for the small platter late in the roadmap.
        gain = roadmap.idr_gain_fraction(2008, 1.6)
        assert 0.02 < gain < 0.12

    def test_gain_lookup_missing_raises(self, roadmap):
        with pytest.raises(KeyError):
            roadmap.idr_gain_fraction(1999, 2.6)


class TestThrottlingScenario:
    def test_paper_scenarios_validate(self):
        paper_scenario_vcm_only().validate()
        paper_scenario_vcm_and_rpm().validate()

    def test_scenario_a_steady_states(self):
        scenario = paper_scenario_vcm_only()
        # Paper: 48.26 C with VCM on, 44.07 C with VCM off.
        assert scenario.heating_steady_air_c() == pytest.approx(48.26, rel=0.03)
        assert scenario.cooling_steady_air_c() < THERMAL_ENVELOPE_C

    def test_scenario_b_needs_rpm_drop(self):
        # At 37,001 RPM even VCM-off is above the envelope...
        vcm_only = ThrottlingScenario(diameter_in=2.6, rpm_high=37001.0)
        with pytest.raises(DTMError):
            vcm_only.validate()
        # ...but dropping to 22,001 RPM while cooling works.
        paper_scenario_vcm_and_rpm().validate()

    def test_in_envelope_design_rejected(self):
        scenario = ThrottlingScenario(diameter_in=2.6, rpm_high=12000.0)
        with pytest.raises(DTMError):
            scenario.validate()

    def test_rpm_low_must_be_below_high(self):
        with pytest.raises(DTMError):
            ThrottlingScenario(diameter_in=2.6, rpm_high=20000, rpm_low=25000)

    def test_utilization_ratio_helper(self):
        assert required_ratio_for_utilization(0.5) == pytest.approx(1.0)
        assert required_ratio_for_utilization(0.75) == pytest.approx(3.0)
        with pytest.raises(DTMError):
            required_ratio_for_utilization(1.0)


class TestThrottleCycle:
    @pytest.fixture(scope="class")
    def curve_a(self):
        return throttling_ratio_curve(
            paper_scenario_vcm_only(), (0.5, 2.0, 8.0), dt_s=0.02
        )

    def test_ratio_decreases_with_t_cool(self, curve_a):
        ratios = [c.ratio for c in curve_a]
        assert ratios[0] > ratios[1] > ratios[2]

    def test_cooling_goes_below_envelope(self, curve_a):
        assert all(c.min_air_c < THERMAL_ENVELOPE_C for c in curve_a)

    def test_longer_cooling_cools_deeper(self, curve_a):
        depths = [c.min_air_c for c in curve_a]
        assert depths[0] > depths[1] > depths[2]

    def test_utilization_consistent_with_ratio(self, curve_a):
        for cycle in curve_a:
            assert cycle.utilization == pytest.approx(
                cycle.ratio / (1 + cycle.ratio)
            )

    def test_scenario_b_also_decreasing(self):
        curve = throttling_ratio_curve(
            paper_scenario_vcm_and_rpm(), (0.5, 4.0), dt_s=0.02
        )
        assert curve[0].ratio > curve[1].ratio

    def test_sustained_mode_bounded_by_energy_balance(self):
        # Long-run duty cannot exceed the sustainable duty; with the
        # paper's scenario (a) that bound is well below 50%.
        cycle = throttle_cycle(
            paper_scenario_vcm_only(), 1.0, dt_s=0.02, mode="sustained"
        )
        assert cycle.utilization < 0.5

    def test_rejects_bad_mode(self):
        with pytest.raises(DTMError):
            throttle_cycle(paper_scenario_vcm_only(), 1.0, mode="magic")

    def test_rejects_bad_t_cool(self):
        with pytest.raises(DTMError):
            throttle_cycle(paper_scenario_vcm_only(), 0.0)


class TestThrottlingTrace:
    def test_sawtooth_stays_near_envelope(self):
        trace = throttling_trace(
            paper_scenario_vcm_only(), t_cool_s=1.0, cycles=3, dt_s=0.02
        )
        assert max(trace.air_c) <= THERMAL_ENVELOPE_C + 0.1
        assert min(trace.air_c) < THERMAL_ENVELOPE_C
        assert any(trace.throttled) and not all(trace.throttled)

    def test_lengths_consistent(self):
        trace = throttling_trace(
            paper_scenario_vcm_only(), t_cool_s=0.5, cycles=2, dt_s=0.02
        )
        assert len(trace.times_s) == len(trace.air_c) == len(trace.throttled)

    def test_rejects_zero_cycles(self):
        with pytest.raises(DTMError):
            throttling_trace(paper_scenario_vcm_only(), t_cool_s=1.0, cycles=0)


class TestMultiSpeed:
    def test_two_level(self):
        profile = two_level_profile(24534, 15000)
        assert profile.top_rpm == 24534
        assert profile.bottom_rpm == 15000
        assert not profile.serves_at_lower_levels

    def test_two_level_validation(self):
        with pytest.raises(DTMError):
            two_level_profile(10000, 20000)

    def test_drpm_ladder(self):
        profile = drpm_profile(15000, levels=4, step_rpm=3000)
        assert profile.rpm_levels == (6000, 9000, 12000, 15000)
        assert profile.serves_at_lower_levels

    def test_transition_time_scales(self):
        profile = two_level_profile(24534, 15000)
        assert profile.transition_time_s(15000, 24534) == pytest.approx(
            (24534 - 15000) / 1000 * 0.4
        )

    def test_transition_requires_known_levels(self):
        profile = two_level_profile(24534, 15000)
        with pytest.raises(DTMError):
            profile.transition_time_s(15000, 20000)

    def test_nearest_level(self):
        profile = drpm_profile(15000, levels=4, step_rpm=3000)
        assert profile.nearest_level_at_or_below(10000) == 9000
        with pytest.raises(DTMError):
            profile.nearest_level_at_or_below(1000)

    def test_ladder_validation(self):
        with pytest.raises(DTMError):
            drpm_profile(5000, levels=4, step_rpm=2000)


class TestController:
    def make_managed(self, rpm=24500, profile=None, trigger=0.05):
        from repro.workloads import workload

        spec = workload("search_engine")
        system = spec.build_system(rpm=rpm)
        thermal = DriveThermalModel(
            platter_diameter_in=2.6, rpm=rpm, vcm_active=False
        )
        thermal.settle()
        thermal.set_operating_state(vcm_active=True)
        policy = DTMPolicy(
            trigger_margin_c=trigger,
            resume_margin_c=trigger + 0.1,
            check_interval_ms=20.0,
            speed_profile=profile,
        )
        managed = ThermallyManagedSystem(system, thermal, policy)
        trace = spec.generate(num_requests=600, seed=5)
        return managed, trace

    def test_policy_validation(self):
        with pytest.raises(DTMError):
            DTMPolicy(trigger_margin_c=0.2, resume_margin_c=0.1)
        with pytest.raises(DTMError):
            DTMPolicy(check_interval_ms=0)

    def test_run_completes_all_requests(self):
        managed, trace = self.make_managed()
        report = managed.run_trace(trace)
        assert report.stats.count == len(trace)
        assert report.simulated_ms > 0

    def test_temperature_tracked(self):
        managed, trace = self.make_managed()
        report = managed.run_trace(trace)
        assert report.max_air_c > 0
        assert 0.0 <= report.throttled_fraction <= 1.0

    def test_throttling_engages_on_hot_design(self):
        # Force throttling by an artificially low envelope.
        from repro.workloads import workload

        spec = workload("search_engine")
        system = spec.build_system(rpm=24500)
        thermal = DriveThermalModel(platter_diameter_in=2.6, rpm=24500, vcm_active=False)
        thermal.settle()
        thermal.set_operating_state(vcm_active=True)
        envelope = thermal.air_c() + 0.05  # just above the idle temperature
        policy = DTMPolicy(
            envelope_c=envelope,
            trigger_margin_c=0.01,
            resume_margin_c=0.04,
            check_interval_ms=20.0,
        )
        managed = ThermallyManagedSystem(system, thermal, policy)
        report = managed.run_trace(spec.generate(num_requests=600, seed=5))
        assert report.throttle_events > 0
        assert report.stats.count == 600

    def test_speed_profile_must_match_rpm(self):
        from repro.workloads import workload

        spec = workload("search_engine")
        system = spec.build_system(rpm=24500)
        thermal = DriveThermalModel(platter_diameter_in=2.6, rpm=24500)
        profile = two_level_profile(20000, 12000)  # top != 26000
        with pytest.raises(DTMError):
            ThermallyManagedSystem(
                system,
                thermal,
                DTMPolicy(speed_profile=profile),
            )
