"""Workload tests: trace format, synthetic generator, catalog."""

import pytest

from repro.errors import TraceError
from repro.workloads import (
    Trace,
    TraceRecord,
    WorkloadShape,
    catalog,
    generate_trace,
    workload,
)


class TestTraceRecord:
    def test_valid(self):
        record = TraceRecord(time_ms=1.0, lba=100, sectors=8, is_write=True)
        assert record.is_write

    def test_rejects_bad_fields(self):
        with pytest.raises(TraceError):
            TraceRecord(time_ms=-1, lba=0, sectors=1, is_write=False)
        with pytest.raises(TraceError):
            TraceRecord(time_ms=0, lba=-1, sectors=1, is_write=False)
        with pytest.raises(TraceError):
            TraceRecord(time_ms=0, lba=0, sectors=0, is_write=False)


class TestTrace:
    def make(self):
        return Trace(
            name="t",
            records=[
                TraceRecord(0.0, 0, 8, False),
                TraceRecord(1.0, 100, 4, True),
                TraceRecord(2.0, 50, 16, False),
            ],
        )

    def test_enforces_time_order(self):
        with pytest.raises(TraceError):
            Trace(
                name="bad",
                records=[TraceRecord(5.0, 0, 1, False), TraceRecord(1.0, 0, 1, False)],
            )

    def test_summary_statistics(self):
        trace = self.make()
        assert len(trace) == 3
        assert trace.duration_ms == pytest.approx(2.0)
        assert trace.max_lba() == 104
        assert trace.write_fraction() == pytest.approx(1 / 3)
        assert trace.mean_request_sectors() == pytest.approx(28 / 3)
        assert trace.arrival_rate_per_s() == pytest.approx(1000.0)

    def test_save_load_roundtrip(self, tmp_path):
        trace = self.make()
        path = tmp_path / "t.trace"
        trace.save(path)
        loaded = Trace.load(path)
        assert len(loaded) == len(trace)
        for a, b in zip(trace, loaded):
            assert (a.time_ms, a.lba, a.sectors, a.is_write) == (
                b.time_ms,
                b.lba,
                b.sectors,
                b.is_write,
            )

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("1.0 2 3\n")
        with pytest.raises(TraceError):
            Trace.load(path)

    def test_load_skips_comments(self, tmp_path):
        path = tmp_path / "c.trace"
        path.write_text("# header\n1.0 0 8 R\n\n2.0 8 8 W\n")
        loaded = Trace.load(path)
        assert len(loaded) == 2

    def test_from_records_sorts(self):
        trace = Trace.from_records(
            "s", [TraceRecord(5.0, 0, 1, False), TraceRecord(1.0, 0, 1, False)]
        )
        assert trace.records[0].time_ms == 1.0

    def test_scaled_rate(self):
        trace = self.make().scaled_rate(2.0)
        assert trace.duration_ms == pytest.approx(1.0)
        with pytest.raises(TraceError):
            self.make().scaled_rate(0)


class TestWorkloadShape:
    def test_validation(self):
        with pytest.raises(TraceError):
            WorkloadShape(name="x", mean_interarrival_ms=0)
        with pytest.raises(TraceError):
            WorkloadShape(name="x", mean_interarrival_ms=1, burstiness=0.5)
        with pytest.raises(TraceError):
            WorkloadShape(name="x", mean_interarrival_ms=1, read_fraction=1.5)
        with pytest.raises(TraceError):
            WorkloadShape(name="x", mean_interarrival_ms=1, size_mix=())
        with pytest.raises(TraceError):
            WorkloadShape(name="x", mean_interarrival_ms=1, sequential_fraction=1.0)

    def test_scaled_rate(self):
        shape = WorkloadShape(name="x", mean_interarrival_ms=4.0)
        assert shape.scaled_rate(2.0).mean_interarrival_ms == pytest.approx(2.0)


class TestGenerateTrace:
    @pytest.fixture
    def shape(self):
        return WorkloadShape(
            name="test",
            mean_interarrival_ms=2.0,
            burstiness=2.0,
            read_fraction=0.7,
            size_mix=((8, 0.5), (16, 0.5)),
            sequential_fraction=0.3,
            hot_fraction=0.5,
            hot_region_fraction=0.1,
        )

    def test_deterministic_given_seed(self, shape):
        a = generate_trace(shape, 500, 100_000, seed=7)
        b = generate_trace(shape, 500, 100_000, seed=7)
        assert [(r.time_ms, r.lba) for r in a] == [(r.time_ms, r.lba) for r in b]

    def test_different_seeds_differ(self, shape):
        a = generate_trace(shape, 500, 100_000, seed=7)
        b = generate_trace(shape, 500, 100_000, seed=8)
        assert [(r.time_ms, r.lba) for r in a] != [(r.time_ms, r.lba) for r in b]

    def test_request_count(self, shape):
        assert len(generate_trace(shape, 321, 100_000, seed=1)) == 321

    def test_addresses_in_range(self, shape):
        trace = generate_trace(shape, 2000, 50_000, seed=2)
        assert trace.max_lba() <= 50_000

    def test_mean_interarrival_near_target(self, shape):
        trace = generate_trace(shape, 5000, 100_000, seed=3)
        mean = trace.duration_ms / (len(trace) - 1)
        assert mean == pytest.approx(2.0, rel=0.15)

    def test_write_fraction_near_target(self, shape):
        trace = generate_trace(shape, 5000, 100_000, seed=4)
        assert trace.write_fraction() == pytest.approx(0.3, abs=0.03)

    def test_sizes_from_mix(self, shape):
        trace = generate_trace(shape, 1000, 100_000, seed=5)
        assert {r.sectors for r in trace} == {8, 16}

    def test_burstiness_raises_variance(self):
        base = WorkloadShape(name="p", mean_interarrival_ms=2.0, burstiness=1.0)
        bursty = WorkloadShape(name="b", mean_interarrival_ms=2.0, burstiness=8.0)

        def cv2(trace):
            gaps = [
                b.time_ms - a.time_ms for a, b in zip(trace.records, trace.records[1:])
            ]
            mean = sum(gaps) / len(gaps)
            var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
            return var / mean**2

        assert cv2(generate_trace(bursty, 4000, 100_000, seed=6)) > 1.5 * cv2(
            generate_trace(base, 4000, 100_000, seed=6)
        )

    def test_sequentiality_produces_adjacent_requests(self):
        seq = WorkloadShape(
            name="s", mean_interarrival_ms=1.0, sequential_fraction=0.9, stream_count=1
        )
        trace = generate_trace(seq, 2000, 1_000_000, seed=7)
        adjacent = sum(
            1
            for a, b in zip(trace.records, trace.records[1:])
            if b.lba == a.lba + a.sectors
        )
        assert adjacent / len(trace) > 0.5

    def test_hot_region_concentrates_accesses(self):
        hot = WorkloadShape(
            name="h",
            mean_interarrival_ms=1.0,
            hot_fraction=0.9,
            hot_region_fraction=0.05,
        )
        trace = generate_trace(hot, 3000, 1_000_000, seed=8)
        in_hot = sum(1 for r in trace if r.lba < 50_000)
        assert in_hot / len(trace) > 0.75

    def test_rejects_tiny_capacity(self, shape):
        with pytest.raises(TraceError):
            generate_trace(shape, 10, 8, seed=0)

    def test_rejects_zero_requests(self, shape):
        with pytest.raises(TraceError):
            generate_trace(shape, 0, 100_000, seed=0)


class TestCatalog:
    def test_five_workloads(self):
        assert set(catalog()) == {"openmail", "oltp", "search_engine", "tpcc", "tpch"}

    def test_unknown_raises(self):
        with pytest.raises(TraceError):
            workload("exchange")

    def test_figure4a_configurations(self):
        # The workload table of Figure 4(a).
        om = workload("openmail")
        assert (om.disk_count, om.base_rpm, om.raid5) == (8, 10000.0, True)
        assert om.disk_capacity_gb == pytest.approx(9.29)
        oltp = workload("oltp")
        assert (oltp.disk_count, oltp.base_rpm, oltp.raid5) == (24, 10000.0, False)
        se = workload("search_engine")
        assert (se.disk_count, se.base_rpm) == (6, 10000.0)
        tpcc = workload("tpcc")
        assert (tpcc.disk_count, tpcc.raid5) == (4, True)
        tpch = workload("tpch")
        assert (tpch.disk_count, tpch.base_rpm) == (15, 7200.0)

    def test_rpm_sweep_steps_of_5000(self):
        sweep = workload("tpch").rpm_sweep()
        assert sweep == (7200.0, 12200.0, 17200.0, 22200.0)

    def test_build_system_capacity_clipped(self):
        spec = workload("openmail")
        system = spec.build_system()
        per_disk = system.array.geometry.disk_sectors
        assert per_disk * 512 <= spec.disk_capacity_gb * 1e9 + 512

    def test_generate_fits_system(self):
        spec = workload("tpcc")
        trace = spec.generate(num_requests=200, seed=0)
        assert trace.max_lba() <= spec.build_system().array.logical_sectors

    def test_raid5_uses_16_sector_stripes(self):
        assert workload("tpcc").stripe_unit_sectors == 16
        assert workload("oltp").stripe_unit_sectors == 2048

    def test_with_shape_override(self):
        spec = workload("oltp").with_shape(mean_interarrival_ms=9.9)
        assert spec.shape.mean_interarrival_ms == 9.9
        # original untouched
        assert workload("oltp").shape.mean_interarrival_ms != 9.9
