"""Interoperability tests: DiskSim trace format and the drive-spec bridge."""

import pytest

from repro.drives import drive_by_model
from repro.errors import TraceError
from repro.simulation import EventQueue, Request
from repro.workloads import (
    Trace,
    TraceRecord,
    read_disksim,
    write_disksim,
)


class TestDiskSimFormat:
    def make_trace(self):
        return Trace(
            name="t",
            records=[
                TraceRecord(0.0, 0, 8, False),
                TraceRecord(1500.0, 4096, 16, True),
                TraceRecord(2000.0, 128, 4, False),
            ],
        )

    def test_roundtrip(self, tmp_path):
        trace = self.make_trace()
        path = tmp_path / "t.dsim"
        write_disksim(trace, path)
        loaded = read_disksim(path)
        assert len(loaded) == 3
        for a, b in zip(trace, loaded):
            assert a.lba == b.lba
            assert a.sectors == b.sectors
            assert a.is_write == b.is_write
            assert a.time_ms == pytest.approx(b.time_ms, abs=1e-3)

    def test_format_fields(self, tmp_path):
        path = tmp_path / "t.dsim"
        write_disksim(self.make_trace(), path, device=3)
        line = path.read_text().splitlines()[0].split()
        assert len(line) == 5
        assert line[1] == "3"
        assert line[4] == "1"  # read flag

    def test_read_flag_semantics(self, tmp_path):
        path = tmp_path / "t.dsim"
        path.write_text("0.0 0 100 8 1\n0.5 0 200 8 0\n")
        loaded = read_disksim(path)
        assert not loaded.records[0].is_write  # flag 1 = read
        assert loaded.records[1].is_write

    def test_device_filter(self, tmp_path):
        path = tmp_path / "multi.dsim"
        path.write_text("0.0 0 100 8 1\n0.5 1 200 8 1\n1.0 0 300 8 1\n")
        only0 = read_disksim(path, device=0)
        assert len(only0) == 2
        assert {r.lba for r in only0} == {100, 300}

    def test_multi_device_flattening(self, tmp_path):
        path = tmp_path / "multi.dsim"
        path.write_text("0.0 0 100 8 1\n0.5 1 200 8 1\n")
        flat = read_disksim(path, sectors_per_device=10_000)
        assert {r.lba for r in flat} == {100, 10_200}

    def test_multi_device_without_stride_rejected(self, tmp_path):
        path = tmp_path / "multi.dsim"
        path.write_text("0.0 0 100 8 1\n0.5 1 200 8 1\n")
        with pytest.raises(TraceError):
            read_disksim(path)

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.dsim"
        path.write_text("0.0 0 100\n")
        with pytest.raises(TraceError):
            read_disksim(path)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.dsim"
        path.write_text("# only comments\n")
        with pytest.raises(TraceError):
            read_disksim(path)

    def test_out_of_order_times_sorted(self, tmp_path):
        path = tmp_path / "unordered.dsim"
        path.write_text("1.0 0 100 8 1\n0.5 0 200 8 1\n")
        loaded = read_disksim(path)
        times = [r.time_ms for r in loaded]
        assert times == sorted(times)

    def test_loaded_trace_replays(self, tmp_path):
        from repro.simulation import build_system

        path = tmp_path / "replay.dsim"
        write_disksim(self.make_trace(), path)
        trace = read_disksim(path)
        system = build_system(disk_count=1, rpm=10000, disk_capacity_gb=1.0)
        report = system.run_trace(trace)
        assert report.requests == 3


class TestDriveSpecBridge:
    def test_simulated_disk_matches_spec(self):
        spec = drive_by_model("Seagate Cheetah 15K.3")
        events = EventQueue()
        disk = spec.simulated_disk(events)
        assert disk.rpm == spec.rpm
        assert disk.name == spec.model
        # The simulator sees the same capacity as the capacity model.
        assert disk.total_sectors * 512 == pytest.approx(
            spec.modeled_capacity_gb() * 1e9, rel=0.01
        )

    def test_simulated_disk_serves_requests(self):
        spec = drive_by_model("Quantum Atlas 10K")
        events = EventQueue()
        disk = spec.simulated_disk(events, name="atlas")
        done = []
        disk.on_complete = lambda r, t: done.append(r)
        disk.submit(Request(arrival_ms=0.0, lba=0, sectors=8))
        disk.submit(Request(arrival_ms=0.0, lba=disk.total_sectors // 2, sectors=8))
        events.run()
        assert len(done) == 2

    def test_faster_spec_faster_service(self):
        slow_spec = drive_by_model("Seagate Barracuda 180")  # 7200 RPM
        fast_spec = drive_by_model("Seagate Cheetah X15")  # 15000 RPM

        def mean_random_ms(spec, n=60):
            import random

            events = EventQueue()
            disk = spec.simulated_disk(events)
            times = []
            disk.on_complete = lambda r, t: times.append(r.response_time_ms)
            rng = random.Random(9)
            for i in range(n):
                disk.submit(
                    Request(
                        arrival_ms=0.0,
                        lba=rng.randrange(disk.total_sectors - 8),
                        sectors=8,
                    )
                )
            events.run()
            return sum(times) / len(times)

        # Queueing dominates (all arrive at 0), but per-request service of
        # the 15K 2.6" drive is far below the 7.2K 3.7" drive's.
        assert mean_random_ms(fast_spec) < mean_random_ms(slow_spec)
