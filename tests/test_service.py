"""Tests for the sweep job service (:mod:`repro.service`).

Three layers:

* schema/key tests — strict parsing, the material-fields-only dedup key;
* :class:`JobManager` lifecycle — run-to-done byte-identity with the CLI
  sweep path, concurrent duplicate submissions computing once, graceful
  drain followed by a zero-recompute resume on a fresh manager;
* HTTP tests against an in-process :class:`ServiceApp` on an ephemeral
  port — submit/dedup/status/events/results/metrics plus the error
  surface (404/405/400/503).
"""

import http.client
import json
import threading
import time

import pytest

from repro.errors import ServiceError
from repro.service import (
    JobManager,
    ServiceApp,
    SweepJobConfig,
    job_config_key,
    parse_job_request,
)
from repro.service.jobs import JOB_DONE, JOB_FAILED, TASK_CACHED, TASK_DONE
from repro.simulation.sweep import results_json_bytes, sweep_workloads
from repro.store import ResultStore
from repro.telemetry import Telemetry

#: Small-but-not-instant sweep: two tasks at ~0.1 s each on the serial
#: backend, enough room for the drain test to interrupt reliably.
PAYLOAD = {
    "workloads": ["tpcc"],
    "rpm_steps": 2,
    "requests": 120,
    "seed": 11,
    "backend": "serial",
}


def _store(tmp_path, name="store"):
    return ResultStore(root=tmp_path / name)


def _manager(tmp_path, name="store"):
    telemetry = Telemetry()
    return JobManager(_store(tmp_path, name), telemetry=telemetry, retries=0)


def _counter(manager, name):
    metric = manager.telemetry.registry.get(name)
    return 0.0 if metric is None else metric.value


class TestSchemas:
    def test_unknown_field_rejected(self):
        with pytest.raises(ServiceError) as exc:
            parse_job_request({"workloads": ["tpcc"], "rqeuests": 5})
        assert exc.value.status == 400
        assert "rqeuests" in str(exc.value)

    def test_non_object_rejected(self):
        with pytest.raises(ServiceError):
            parse_job_request(["tpcc"])

    def test_missing_workloads_rejected(self):
        with pytest.raises(ServiceError):
            parse_job_request({"requests": 10})

    def test_bool_does_not_pass_as_count(self):
        with pytest.raises(ServiceError):
            parse_job_request({"workloads": ["tpcc"], "requests": True})

    def test_wrong_types_rejected(self):
        for bad in (
            {"workloads": "tpcc"},
            {"workloads": ["tpcc"], "rpms": "fast"},
            {"workloads": ["tpcc"], "rpms": [True]},
            {"workloads": ["tpcc"], "engine": 5},
            {"workloads": [""]},
            {"workloads": []},
            {"workloads": ["tpcc"], "requests": 0},
            {"workloads": ["tpcc"], "rpm_steps": -1},
            {"workloads": ["tpcc"], "retries": -1},
        ):
            with pytest.raises(ServiceError):
                parse_job_request(bad)

    def test_execution_knobs_do_not_enter_key(self):
        base = parse_job_request(PAYLOAD)
        tweaked = parse_job_request(
            dict(PAYLOAD, backend="process", retries=5, workers=3)
        )
        assert job_config_key(base) == job_config_key(tweaked)

    def test_material_fields_change_key(self):
        base = parse_job_request(PAYLOAD)
        for delta in (
            {"seed": 12},
            {"requests": 121},
            {"rpm_steps": 3},
            {"workloads": ["oltp"]},
            {"engine": "analytic"},
            {"inject_faults": True},
        ):
            other = parse_job_request(dict(PAYLOAD, **delta))
            assert job_config_key(base) != job_config_key(other), delta

    def test_fault_fields_fold_away_when_injection_off(self):
        base = parse_job_request(PAYLOAD)
        noisy = parse_job_request(
            dict(PAYLOAD, fault_seed=99, media_rate=0.5, servo_rate=0.5)
        )
        assert job_config_key(base) == job_config_key(noisy)
        on = parse_job_request(dict(PAYLOAD, inject_faults=True, fault_seed=99))
        assert job_config_key(base) != job_config_key(on)

    def test_defaults_match_cli_sweep_defaults(self):
        config = parse_job_request({"workloads": ["tpcc"]})
        assert config == SweepJobConfig(workloads=("tpcc",))
        assert config.requests == 6000
        assert config.rpm_steps == 4
        assert config.media_rate == 0.01
        assert config.servo_rate == 0.0


class TestJobManager:
    def test_job_runs_to_done_with_cli_byte_identity(self, tmp_path):
        manager = _manager(tmp_path)
        job, deduped = manager.submit(PAYLOAD)
        assert not deduped
        manager.wait_for_job(job.id, timeout_s=60.0)
        assert job.state == JOB_DONE
        assert job.error is None
        assert job.done_tasks == len(job.task_keys) == 2
        assert all(s in (TASK_DONE, TASK_CACHED) for s in job.task_states)
        # The service's stored document is byte-for-byte what the CLI
        # sweep path would write for the same config.
        expected = results_json_bytes(
            sweep_workloads(
                ["tpcc"], rpm_steps=2, requests=120, seed=11
            )
        )
        assert manager.results_bytes(job.key) == expected
        manager.drain(timeout_s=10.0)

    def test_concurrent_duplicate_submissions_compute_once(self, tmp_path):
        manager = _manager(tmp_path)
        barrier = threading.Barrier(2)
        outcomes = []

        def submit():
            barrier.wait()
            outcomes.append(manager.submit(PAYLOAD))

        threads = [threading.Thread(target=submit) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(outcomes) == 2
        (job_a, dedup_a), (job_b, dedup_b) = outcomes
        assert job_a.id == job_b.id
        assert sorted([dedup_a, dedup_b]) == [False, True]
        assert len(manager.jobs()) == 1
        assert _counter(manager, "service.dedup_hits") == 1.0
        manager.wait_for_job(job_a.id, timeout_s=60.0)
        assert job_a.state == JOB_DONE
        # The one computation has zero store hits: nothing was cached.
        assert job_a.store_hits == 0
        assert job_a.store_misses == 2
        manager.drain(timeout_s=10.0)

    def test_resubmit_after_done_is_deduped(self, tmp_path):
        manager = _manager(tmp_path)
        job, _ = manager.submit(PAYLOAD)
        manager.wait_for_job(job.id, timeout_s=60.0)
        again, deduped = manager.submit(PAYLOAD)
        assert deduped
        assert again.id == job.id
        manager.drain(timeout_s=10.0)

    def test_drain_then_restart_resumes_with_zero_recompute(self, tmp_path):
        manager = _manager(tmp_path)
        # Four ~0.1 s tasks leave the watcher ample room to trip the
        # drain flag between the first landing and the last.
        payload = dict(PAYLOAD, rpm_steps=4)
        job, _ = manager.submit(payload)

        def drain_after_first_task():
            with manager._cond:
                while not any(e["event"] == "task_done" for e in job.events):
                    manager._cond.wait(30.0)
            manager._draining.set()

        watcher = threading.Thread(target=drain_after_first_task)
        watcher.start()
        deadline = time.monotonic() + 60.0
        with manager._cond:
            while not job.terminal and time.monotonic() < deadline:
                manager._cond.wait(1.0)
        watcher.join(10.0)
        manager.drain(timeout_s=10.0)
        assert job.state == JOB_FAILED
        assert job.error in ("drained", "drained before start")
        completed = job.done_tasks
        total = len(job.task_keys)
        assert 0 < completed < total
        # While draining, submissions are refused with a 503.
        with pytest.raises(ServiceError) as exc:
            manager.submit(payload)
        assert exc.value.status == 503

        # A fresh manager over the same store resumes the job: every
        # task that landed before the drain replays as a store hit.
        restarted = _manager(tmp_path)
        resumed, deduped = restarted.submit(payload)
        assert not deduped  # failed jobs don't absorb resubmissions
        assert resumed is not job
        assert resumed.key == job.key
        restarted.wait_for_job(resumed.id, timeout_s=60.0)
        assert resumed.state == JOB_DONE
        assert resumed.store_hits == completed
        assert resumed.store_misses == total - completed
        assert resumed.cached_hits == completed
        restarted.drain(timeout_s=10.0)

    def test_results_bytes_rejects_bad_and_missing_keys(self, tmp_path):
        manager = _manager(tmp_path)
        with pytest.raises(ServiceError) as exc:
            manager.results_bytes("not hex!")
        assert exc.value.status == 400
        with pytest.raises(ServiceError) as exc:
            manager.results_bytes("0" * 32)
        assert exc.value.status == 404
        manager.drain(timeout_s=10.0)

    def test_get_unknown_job_is_404(self, tmp_path):
        manager = _manager(tmp_path)
        with pytest.raises(ServiceError) as exc:
            manager.get("job-999999-deadbeef")
        assert exc.value.status == 404
        manager.drain(timeout_s=10.0)

    def test_unknown_workload_rejected_before_queueing(self, tmp_path):
        manager = _manager(tmp_path)
        with pytest.raises(ServiceError) as exc:
            manager.submit({"workloads": ["no-such-workload"]})
        assert exc.value.status == 400
        assert manager.jobs() == []
        manager.drain(timeout_s=10.0)

    def test_metrics_text_round_trips_with_labels(self, tmp_path):
        from repro.reporting import parse_prometheus_text
        from repro.reporting.telemetry_export import parse_label_set

        manager = _manager(tmp_path)
        job, _ = manager.submit(PAYLOAD)
        manager.wait_for_job(job.id, timeout_s=60.0)
        labels = {"instance": 'replica "one"\n'}
        text = manager.metrics_text(labels=labels)
        parsed = parse_prometheus_text(text)
        submitted = parsed["repro_service_jobs_submitted_total"]
        (suffix,) = submitted["samples"]
        assert parse_label_set(suffix) == labels
        assert submitted["samples"][suffix] == 1.0
        per_workload = parsed["repro_service_jobs_by_workload_total"]
        (suffix,) = per_workload["samples"]
        assert parse_label_set(suffix) == dict(labels, workload="tpcc")
        assert per_workload["samples"][suffix] == 1.0
        manager.drain(timeout_s=10.0)


class _Service:
    """An in-process service on an ephemeral port, for HTTP tests."""

    def __init__(self, tmp_path):
        self.app = ServiceApp(
            _store(tmp_path, "http-store"),
            telemetry=Telemetry(),
            port=0,
            retries=0,
            drain_timeout_s=10.0,
            metric_labels={"instance": "t-http"},
        )
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)

    def _serve(self):
        import asyncio

        async def main():
            await self.app.start()
            self._ready.set()
            assert self.app._stop is not None
            await self.app._stop.wait()
            await self.app.shutdown()

        asyncio.run(main())

    def __enter__(self):
        self._thread.start()
        if not self._ready.wait(10.0):
            raise RuntimeError("service did not start")
        return self

    def __exit__(self, *exc):
        self.app.request_stop()
        self._thread.join(30.0)

    def request(self, method, path, payload=None):
        conn = http.client.HTTPConnection("127.0.0.1", self.app.port, timeout=60)
        try:
            body = None if payload is None else json.dumps(payload)
            conn.request(method, path, body=body)
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    def json(self, method, path, payload=None):
        status, body = self.request(method, path, payload)
        return status, json.loads(body)


class TestHTTP:
    def test_full_lifecycle_over_http(self, tmp_path):
        with _Service(tmp_path) as service:
            status, health = service.json("GET", "/healthz")
            assert (status, health["status"]) == (200, "ok")

            status, doc = service.json("POST", "/v1/jobs", PAYLOAD)
            assert status == 201
            assert doc["deduplicated"] is False
            assert doc["schema"] == "repro.service.job/1"
            job_id, key = doc["id"], doc["key"]

            # Idempotent resubmission: same job, dedup flagged.
            status, doc2 = service.json("POST", "/v1/jobs", PAYLOAD)
            assert status == 200
            assert doc2["deduplicated"] is True
            assert doc2["id"] == job_id

            # The chunked event stream runs queued -> terminal.
            status, body = service.request(
                "GET", f"/v1/jobs/{job_id}/events"
            )
            assert status == 200
            events = [json.loads(line) for line in body.splitlines()]
            kinds = [e["event"] for e in events]
            assert kinds[0] == "job_queued"
            assert kinds[-1] == "job_done"
            assert kinds.count("task_done") == 2
            assert [e["seq"] for e in events] == list(range(len(events)))

            status, doc = service.json("GET", f"/v1/jobs/{job_id}")
            assert status == 200
            assert doc["state"] == "done"
            assert doc["progress"]["done"] == doc["progress"]["total"] == 2

            status, listing = service.json("GET", "/v1/jobs")
            assert status == 200
            assert [j["id"] for j in listing["jobs"]] == [job_id]

            # Results bytes match the CLI sweep path exactly.
            status, body = service.request("GET", f"/v1/results/{key}")
            assert status == 200
            expected = results_json_bytes(
                sweep_workloads(["tpcc"], rpm_steps=2, requests=120, seed=11)
            )
            assert body == expected

            # Metrics carry the instance label and parse back.
            from repro.reporting import parse_prometheus_text
            from repro.reporting.telemetry_export import parse_label_set

            status, body = service.request("GET", "/metrics")
            assert status == 200
            parsed = parse_prometheus_text(body.decode("utf-8"))
            dedup = parsed["repro_service_dedup_hits_total"]
            (suffix,) = dedup["samples"]
            assert parse_label_set(suffix) == {"instance": "t-http"}
            assert dedup["samples"][suffix] == 1.0

    def test_http_error_surface(self, tmp_path):
        with _Service(tmp_path) as service:
            status, body = service.json("GET", "/v1/jobs/job-000042-cafebabe")
            assert status == 404
            assert "no such job" in body["error"]

            status, body = service.json("DELETE", "/v1/jobs")
            assert status == 405

            status, body = service.json("GET", "/no/such/route")
            assert status == 404

            status, body = service.json(
                "POST", "/v1/jobs", {"workloads": ["tpcc"], "bogus": 1}
            )
            assert status == 400
            assert "bogus" in body["error"]

            status, _ = service.request("POST", "/v1/jobs", None)
            assert status == 400  # empty body is not valid JSON
