"""Regression tests for the findings the first thermolint run surfaced.

Each test pins the *semantics* of a site that previously spelled a unit
conversion inline (TL001) or compared floats exactly (TL002), so the rewrites
through ``repro.units`` can never silently change a modeled number, and the
decimal-vs-binary megabyte distinction stays explicit.
"""

from __future__ import annotations

import inspect

import pytest

from repro import units
from repro.capacity.model import CapacityModel
from repro.drives import TABLE1_DRIVES
from repro.drives.spec import DriveSpec
from repro.simulation.cache import DiskCache
from repro.simulation.disk import SimulatedDisk, standard_disk
from repro.simulation.events import EventQueue
from repro.simulation.system import build_system
from repro.workloads import workload


class TestInterfaceRateUnits:
    """disk._bus_ms previously hard-coded ``* 1e6 * 1e3`` inline."""

    def test_interface_mb_is_decimal_not_binary(self):
        # Ultra160 means 160e6 B/s (decimal), not 160 * 2**20.
        assert units.interface_mb_per_s_to_bytes_per_s(160.0) == 160.0 * 1e6
        assert units.interface_mb_per_s_to_bytes_per_s(160.0) != 160.0 * units.MIB

    def test_bus_time_matches_closed_form(self):
        disk = standard_disk("d", EventQueue(), rpm=10000.0)
        sectors = 128
        expected_ms = sectors * units.BYTES_PER_SECTOR / (disk.bus_mb_per_s * 1e6) * 1e3
        assert disk._bus_ms(sectors) == pytest.approx(expected_ms, rel=1e-12)

    def test_one_mib_at_one_decimal_mb_per_s_takes_over_a_second(self):
        # The two megabyte conventions differ by 4.86%; this gap is why the
        # factor lives in units.py with an explicit name.
        disk = standard_disk("d", EventQueue(), rpm=10000.0)
        disk.bus_mb_per_s = 1.0
        one_mib_sectors = units.MIB // units.BYTES_PER_SECTOR
        ms = disk._bus_ms(one_mib_sectors)
        assert ms == pytest.approx(units.MIB / units.MB_DECIMAL * 1000.0)
        assert ms > 1000.0


class TestCacheSizeDefaults:
    """The paper's 4 MB buffer cache default, previously ``4 * 1024 * 1024``."""

    def test_disk_cache_default_is_four_binary_megabytes(self):
        default = inspect.signature(DiskCache.__init__).parameters["size_bytes"].default
        assert default == 4 * units.MIB == 4 * 1024 * 1024

    @pytest.mark.parametrize("func", [standard_disk, build_system, DriveSpec.simulated_disk])
    def test_factory_cache_defaults_agree(self, func):
        default = inspect.signature(func).parameters["cache_bytes"].default
        assert default == 4 * units.MIB

    def test_default_cache_capacity_in_sectors(self):
        cache = DiskCache()
        assert cache.capacity_sectors == 4 * units.MIB // units.BYTES_PER_SECTOR


class TestBinaryCapacityAccessor:
    """usable_capacity_gib previously divided by a bare ``1024**3``."""

    def test_gib_accessor_uses_binary_gigabytes(self):
        drive = TABLE1_DRIVES[0]
        model: CapacityModel = drive.capacity_model()
        gib = model.usable_capacity_gib()
        gb = model.usable_capacity_gb()
        # Identical byte count read through the two unit systems.
        assert gib * units.GIB == pytest.approx(gb * units.GB_MARKETING)
        assert gib == pytest.approx(gb * units.GB_MARKETING / units.GIB)
        # Decimal-to-binary ratio the docstring quotes (0.9313).
        assert gib / gb == pytest.approx(units.GB_MARKETING / units.GIB)


class TestFloatEqualitySites:
    """The two TL002 sites: transient row filter and rate_scale fast path."""

    def test_transient_minute_filter_handles_float_drift(self):
        # 0.1 + 0.2 style drift: 59.99999999999999 / 60 is not an integer
        # minute, (600 * 0.1) accumulated in floats often isn't 60.0 either.
        minute = sum([0.1] * 600) / 60.0 * 60.0  # 59.99999999999859-ish
        assert not minute.is_integer()
        exact = 3600.0 / 60.0
        assert exact.is_integer()

    def test_rate_scale_default_is_exact_sentinel(self):
        spec = workload("tpcc")
        # Scaling by exactly 1.0 must be a no-op, so the == 1.0 fast path in
        # WorkloadSpec.generate (suppressed TL002 sentinel) is safe.
        assert spec.shape.scaled_rate(1.0).mean_interarrival_ms == pytest.approx(
            spec.shape.mean_interarrival_ms
        )
        scaled = spec.shape.scaled_rate(2.0)
        assert scaled.mean_interarrival_ms == pytest.approx(
            spec.shape.mean_interarrival_ms / 2.0
        )


class TestSimulatedDiskUnchanged:
    """End-to-end guard: service times are bit-identical to the seed path."""

    def test_write_service_time_includes_bus_transfer(self):
        events = EventQueue()
        disk = standard_disk("d", events, rpm=10000.0)
        assert isinstance(disk, SimulatedDisk)
        bus_ms = disk._bus_ms(8)
        assert bus_ms == pytest.approx(8 * 512 / (160.0 * 1e6) * 1e3, rel=1e-12)
