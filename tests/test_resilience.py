"""Tests for the resilient sweep executor (repro.simulation.resilience).

The contract under test: a sweep always yields *per-task outcomes* — a
raising worker, a hung worker, or a worker process that dies outright may
fail its own task, but every healthy point completes and the failure is
named in the manifest.  Process-killing tests use a real 2-worker pool.
"""

import os
import time

import pytest

from repro.errors import SimulationError, SweepExecutionError
from repro.simulation.resilience import (
    MANIFEST_SCHEMA,
    STATUS_ERROR,
    STATUS_TIMEOUT,
    SweepRunReport,
    TaskEnvelope,
    run_sweep_resilient,
)


def _square(x):
    return x * x


def _raise_if_negative(x):
    if x < 0:
        raise ValueError(f"injected failure for task {x}")
    return x * x


def _exit_if_negative(x):
    if x < 0:
        os._exit(17)  # kill the worker process outright -> BrokenProcessPool
    return x * x


def _hang_if_negative(x):
    if x < 0:
        time.sleep(300.0)
    return x * x


def _fail_until_marker(arg):
    """Fail on the first attempt, succeed once the marker file exists."""
    x, marker = arg
    if os.path.exists(marker):
        return x * x
    with open(marker, "w", encoding="utf-8"):
        pass
    raise RuntimeError("transient fault (first attempt)")


class TestSerialPath:
    def test_all_ok(self):
        report = run_sweep_resilient([1, 2, 3], _square, workers=1)
        assert report.ok_results() == [1, 4, 9]
        assert report.results() == [1, 4, 9]
        assert not report.failed

    def test_empty(self):
        report = run_sweep_resilient([], _square, workers=1)
        assert report.envelopes == []

    def test_error_captured_with_traceback(self):
        report = run_sweep_resilient(
            [2, -1, 3], _raise_if_negative, workers=1, retries=0
        )
        assert report.results() == [4, None, 9]
        (failure,) = report.failed
        assert failure.index == 1
        assert failure.status == STATUS_ERROR
        assert failure.error_type == "ValueError"
        assert "injected failure" in failure.error_message
        assert "ValueError" in failure.traceback_text

    def test_retry_recovers_transient_failure(self, tmp_path):
        marker = str(tmp_path / "attempted")
        report = run_sweep_resilient(
            [(3, marker)], _fail_until_marker, workers=1, retries=1
        )
        assert report.ok_results() == [9]
        assert report.envelopes[0].attempts == 2
        assert report.retries == 1

    def test_retry_budget_exhausts(self):
        report = run_sweep_resilient([-1], _raise_if_negative, workers=1, retries=2)
        (failure,) = report.failed
        assert failure.attempts == 3

    def test_invalid_arguments(self):
        with pytest.raises(SimulationError):
            run_sweep_resilient([1], _square, retries=-1)
        with pytest.raises(SimulationError):
            run_sweep_resilient([1], _square, backoff_s=-0.1)
        with pytest.raises(SimulationError):
            run_sweep_resilient([1], _square, timeout_s=0.0)


class TestParallelPath:
    def test_parallel_matches_serial(self):
        tasks = list(range(12))
        serial = run_sweep_resilient(tasks, _square, workers=1)
        parallel = run_sweep_resilient(tasks, _square, workers=2)
        assert serial.ok_results() == parallel.ok_results()

    def test_worker_raises_other_tasks_survive(self):
        tasks = [1, 2, -1, 4, 5]
        report = run_sweep_resilient(
            tasks, _raise_if_negative, workers=2, retries=0
        )
        assert report.results() == [1, 4, None, 16, 25]
        (failure,) = report.failed
        assert failure.index == 2
        assert "injected failure" in failure.error_message

    def test_pool_break_mid_sweep_returns_every_healthy_point(self):
        """A task that kills its worker process must not take the sweep
        (or any healthy point) down with it."""
        tasks = [1, 2, 3, -1, 5, 6, 7, 8]
        report = run_sweep_resilient(
            tasks, _exit_if_negative, workers=2, retries=0
        )
        assert report.pool_breaks >= 1
        assert report.results() == [1, 4, 9, None, 25, 36, 49, 64]
        (failure,) = report.failed
        assert failure.index == 3
        assert failure.error_type == "BrokenProcessPool"

    def test_pool_break_victims_are_retried_without_consuming_budget(self):
        """Tasks in flight when a neighbour breaks the pool are requeued
        at their current attempt count and still complete."""
        tasks = [-1] + list(range(1, 10))
        report = run_sweep_resilient(
            tasks, _exit_if_negative, workers=2, retries=0
        )
        assert report.ok_count == 9
        for envelope in report.envelopes:
            if envelope.ok:
                assert envelope.result == envelope.index**2

    def test_timeout_marks_task_and_survivors_complete(self):
        tasks = [1, -1, 3, 4]
        report = run_sweep_resilient(
            tasks, _hang_if_negative, workers=2, retries=0, timeout_s=1.0
        )
        assert report.timeouts >= 1
        assert report.results() == [1, None, 9, 16]
        (failure,) = report.failed
        assert failure.status == STATUS_TIMEOUT
        assert "deadline" in failure.error_message

    def test_telemetry_counters_mirrored(self):
        from repro.telemetry import Telemetry

        tel = Telemetry()
        report = run_sweep_resilient(
            [1, -1, 3], _raise_if_negative, workers=2, retries=1, telemetry=tel
        )
        assert len(report.failed) == 1

        def value(name):
            metric = tel.registry.get(name)
            return metric.value if metric is not None else 0.0

        assert value("sweep.tasks_total") == 3.0
        assert value("sweep.tasks_ok") == 2.0
        assert value("sweep.tasks_failed_total") == 1.0
        assert value("sweep.task_errors_total") == 2.0  # two failed attempts
        assert value("sweep.retries_total") == 1.0


class TestStrictFrontEnd:
    def test_run_sweep_raises_typed_error_with_traceback(self):
        from repro.simulation.sweep import run_sweep

        with pytest.raises(SweepExecutionError) as excinfo:
            run_sweep([1, -1], _raise_if_negative, workers=1)
        assert "ValueError" in str(excinfo.value)
        assert "injected failure" in excinfo.value.traceback_text

    def test_run_sweep_unchanged_on_success(self):
        from repro.simulation.sweep import run_sweep

        assert run_sweep([2, 3], _square, workers=1) == [4, 9]


class TestManifest:
    def test_manifest_names_failed_task(self):
        report = run_sweep_resilient(
            [1, -1, 3], _raise_if_negative, workers=1, retries=0
        )
        manifest = report.manifest(task_labels=["a", "b", "c"])
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["tasks_total"] == 3
        assert manifest["tasks_ok"] == 2
        assert manifest["tasks_failed"] == 1
        (entry,) = manifest["failures"]
        assert entry["task"] == "b"
        assert entry["index"] == 1
        assert entry["error_type"] == "ValueError"

    def test_manifest_is_json_serializable(self):
        import json

        report = run_sweep_resilient([-1], _raise_if_negative, workers=1)
        text = json.dumps(report.manifest(), allow_nan=False)
        assert json.loads(text)["tasks_failed"] == 1

    def test_envelope_as_dict_roundtrip_fields(self):
        envelope = TaskEnvelope(index=4, status=STATUS_ERROR, error_type="X")
        out = envelope.as_dict()
        assert out["index"] == 4
        assert out["status"] == STATUS_ERROR
        assert out["error_type"] == "X"

    def test_report_results_alignment(self):
        report = SweepRunReport(
            envelopes=[
                TaskEnvelope(index=0, result=10),
                TaskEnvelope(index=1, status=STATUS_ERROR),
            ]
        )
        assert report.results() == [10, None]
        assert report.ok_results() == [10]
