"""Differential sweep matrix: every execution mode, one set of bytes.

PR 1 established serial == parallel; PR 4 extended it to fault-injected
runs; this suite extends it to the result store.  For each workload the
same sweep is executed six ways —

* **serial** (in-process, no store),
* **parallel** (2-worker process pool, no store),
* **fault-injected** (serial and parallel, deterministic fault plan),
* **cold store** (empty store: all misses, results persisted),
* **warm store** (same store: all hits, nothing computed),
* **resumed** (store pre-populated with *part* of the sweep, simulating
  a run that crashed halfway; the rest recomputed)

— and all of them must serialize to byte-identical canonical result JSON
(:func:`repro.simulation.sweep.results_json_bytes`).  Anything weaker
than byte equality would let a lossy codec or an unstable serialization
hide behind float tolerances.

The pluggable-backend PR widens the matrix along a second axis: the same
contract must hold under every execution backend (``serial``,
``process``, ``shared-store``) × {cold, warm, resumed, fault-injected},
and — because results are content-addressed by *configuration*, never by
transport — entries written under one backend must be warm hits under
every other.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultConfig
from repro.simulation.sweep import (
    build_workload_tasks,
    results_json_bytes,
    sweep_workloads,
    sweep_workloads_resilient,
)
from repro.store import ResultStore

#: ≥3 catalog workloads, as the differential contract requires.
WORKLOADS = ["tpcc", "oltp", "openmail"]

#: Small but non-trivial: two spindle speeds, a few hundred requests.
RPMS = [10000.0, 15000.0]
REQUESTS = 250
SEED = 7


def _sweep_kwargs(name: str) -> dict:
    return dict(names=[name], rpms=RPMS, requests=REQUESTS, seed=SEED)


@pytest.mark.parametrize("name", WORKLOADS)
def test_differential_matrix(name, tmp_path):
    kwargs = _sweep_kwargs(name)

    serial = sweep_workloads(workers=0, **kwargs)
    parallel = sweep_workloads(workers=2, **kwargs)

    cold_store = ResultStore(root=tmp_path / "cold")
    cold = sweep_workloads(workers=2, store=cold_store, **kwargs)
    assert cold_store.hits == 0 and cold_store.puts == len(serial)

    warm = sweep_workloads(workers=0, store=cold_store, **kwargs)
    assert cold_store.hits == len(serial), "warm run must be all hits"

    # Resume-after-crash: a store holding only the first point, as if the
    # original run died after completing one task.  (Results persist as
    # they finish, so a killed run really does leave exactly this state.)
    crashed_store = ResultStore(root=tmp_path / "crashed")
    sweep_workloads(
        names=[name], rpms=RPMS[:1], requests=REQUESTS, seed=SEED,
        workers=0, store=crashed_store,
    )
    assert crashed_store.puts == 1
    resumed = sweep_workloads(workers=2, store=crashed_store, **kwargs)
    assert crashed_store.hits == 1, "the surviving point must be a hit"

    reference = results_json_bytes(serial)
    for label, run in (
        ("parallel", parallel),
        ("cold-store", cold),
        ("warm-store", warm),
        ("resumed", resumed),
    ):
        assert results_json_bytes(run) == reference, (
            f"{label} run of {name} diverged from the serial bytes"
        )


@pytest.mark.parametrize("name", WORKLOADS)
def test_differential_matrix_fault_injected(name, tmp_path):
    """The same matrix under deterministic fault injection."""
    fault = FaultConfig(seed=3, media_rate=0.05, servo_rate=0.01)
    kwargs = dict(_sweep_kwargs(name), fault_config=fault)

    serial = sweep_workloads(workers=0, **kwargs)
    parallel = sweep_workloads(workers=2, **kwargs)
    store = ResultStore(root=tmp_path / "store")
    cold = sweep_workloads(workers=2, store=store, **kwargs)
    warm = sweep_workloads(workers=0, store=store, **kwargs)
    assert store.hits == len(serial)

    assert any((r.fault_summary or {}).get("total_injected", 0) > 0
               for r in serial), "fault plan must actually inject"
    reference = results_json_bytes(serial)
    for label, run in (
        ("parallel", parallel), ("cold-store", cold), ("warm-store", warm),
    ):
        assert results_json_bytes(run) == reference, (
            f"fault-injected {label} run of {name} diverged"
        )


def test_fault_config_is_part_of_the_key(tmp_path):
    """A faulty and a healthy replay of the same point must never share
    a cache entry — the fault plan is a material key field."""
    store = ResultStore(root=tmp_path)
    healthy = sweep_workloads(
        workers=0, store=store, **_sweep_kwargs("tpcc")
    )
    injected = sweep_workloads(
        workers=0, store=store,
        fault_config=FaultConfig(seed=3, media_rate=0.05),
        **_sweep_kwargs("tpcc"),
    )
    assert store.hits == 0, "different fault plans must not collide"
    assert results_json_bytes(healthy) != results_json_bytes(injected)


def test_resilient_path_matches_strict_path_bytes(tmp_path):
    """The partial-results executor (with store) produces the same bytes
    as the strict one, holes permitting."""
    kwargs = _sweep_kwargs("tpcc")
    strict = sweep_workloads(workers=0, **kwargs)
    store = ResultStore(root=tmp_path)
    with_holes, report = sweep_workloads_resilient(
        workers=2, store=store, **kwargs
    )
    assert report.ok_count == len(strict)
    assert results_json_bytes(with_holes) == results_json_bytes(strict)
    # The manifest's store section names every task key.
    tasks = build_workload_tasks(**kwargs)
    manifest = report.manifest(task_labels=[t.label() for t in tasks])
    assert manifest["store"]["misses"] == len(tasks)
    assert len(manifest["store"]["task_keys"]) == len(tasks)


def test_telemetry_snapshots_round_trip_byte_identically(tmp_path):
    """Telemetry-instrumented results (the heaviest payloads: metric
    snapshots, event traces, probe series) survive the store exactly."""
    kwargs = dict(
        names=["tpcc"], rpms=RPMS[:1], requests=200, seed=SEED,
        telemetry=True, probe_interval_ms=50.0, trace_capacity=512,
    )
    direct = sweep_workloads(workers=0, **kwargs)
    store = ResultStore(root=tmp_path)
    sweep_workloads(workers=0, store=store, **kwargs)
    cached = sweep_workloads(workers=0, store=store, **kwargs)
    assert store.hits == 1
    assert results_json_bytes(cached) == results_json_bytes(direct)
    assert cached[0].telemetry is not None


# ---------------------------------------------------------------------------
# Cross-backend matrix: every backend, the same bytes (tentpole gate)
# ---------------------------------------------------------------------------

BACKENDS = ("serial", "process", "shared-store")


@pytest.mark.parametrize("backend", BACKENDS)
def test_cross_backend_matrix(backend, tmp_path):
    """{cold, warm, resumed, fault-injected} under each backend must all
    reproduce the serial reference bytes."""
    kwargs = _sweep_kwargs("tpcc")
    reference = results_json_bytes(sweep_workloads(workers=0, **kwargs))

    cold_store = ResultStore(root=tmp_path / "cold")
    cold = sweep_workloads(
        workers=2, store=cold_store, backend=backend, **kwargs
    )
    assert cold_store.hits == 0 and cold_store.puts == len(RPMS)
    warm = sweep_workloads(
        workers=2, store=cold_store, backend=backend, **kwargs
    )
    assert cold_store.hits == len(RPMS), "warm run must be all hits"
    assert cold_store.puts == len(RPMS), "warm run must compute nothing"

    crashed_store = ResultStore(root=tmp_path / "crashed")
    sweep_workloads(
        names=["tpcc"], rpms=RPMS[:1], requests=REQUESTS, seed=SEED,
        workers=0, store=crashed_store,
    )
    resumed = sweep_workloads(
        workers=2, store=crashed_store, backend=backend, **kwargs
    )
    assert crashed_store.hits == 1, "the surviving point must be a hit"

    fault = FaultConfig(seed=3, media_rate=0.05, servo_rate=0.01)
    fault_reference = results_json_bytes(
        sweep_workloads(workers=0, fault_config=fault, **kwargs)
    )
    fault_store = ResultStore(root=tmp_path / "fault")
    injected = sweep_workloads(
        workers=2, store=fault_store, backend=backend,
        fault_config=fault, **kwargs
    )

    for label, run, want in (
        ("cold", cold, reference),
        ("warm", warm, reference),
        ("resumed", resumed, reference),
        ("fault-injected", injected, fault_reference),
    ):
        assert results_json_bytes(run) == want, (
            f"{label} run on the {backend} backend diverged"
        )


def test_backend_is_not_part_of_the_key(tmp_path):
    """Entries written under one backend must be warm hits under every
    other — transport choice never enters the content key."""
    store = ResultStore(root=tmp_path)
    kwargs = _sweep_kwargs("oltp")
    cold = sweep_workloads(workers=0, store=store, backend="serial", **kwargs)
    assert store.puts == len(cold) and store.hits == 0
    reference = results_json_bytes(cold)
    for other in ("process", "shared-store"):
        warm = sweep_workloads(workers=2, store=store, backend=other, **kwargs)
        assert results_json_bytes(warm) == reference, (
            f"warm {other} run diverged from the serial-written entries"
        )
    assert store.hits == 2 * len(cold), "every backend must hit peer entries"
    assert store.puts == len(cold), "cross-backend warm runs computed nothing"


def test_resilient_report_records_backend(tmp_path):
    """The manifest (schema /2) names the backend that actually ran; the
    store section is unchanged by the backend choice."""
    store = ResultStore(root=tmp_path)
    kwargs = _sweep_kwargs("tpcc")
    _, report = sweep_workloads_resilient(
        workers=2, store=store, backend="shared-store", **kwargs
    )
    assert report.backend == "shared-store"
    manifest = report.manifest()
    assert manifest["schema"] == "repro.sweep_manifest/2"
    assert manifest["backend"] == "shared-store"
    assert manifest["store"]["misses"] == len(RPMS)


# ---------------------------------------------------------------------------
# Fleet matrix: rack tasks under every backend, one set of bytes
# ---------------------------------------------------------------------------


def _fleet_tasks():
    """A 3-enclosure fleet with every feature lit: recirculation,
    tiering, deterministic faults."""
    from repro.fleet import TieringPolicy, build_rack_tasks, uniform_fleet

    fleet = uniform_fleet(
        racks=2, enclosures_per_rack=3, drives_per_enclosure=2,
        recirculation=0.3,
    )
    return build_rack_tasks(
        fleet,
        tiering=TieringPolicy(extents=24, seed=5),
        fault_config=FaultConfig(seed=3, media_rate=0.05, servo_rate=0.01),
        accesses_per_drive=64,
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_fleet_cross_backend_matrix(backend, tmp_path):
    """A fleet sweep's canonical results JSON must be byte-identical
    across {cold, warm, resumed} on every execution backend."""
    from repro.fleet import fleet_results_json_bytes, run_fleet_sweep

    tasks = _fleet_tasks()
    serial_results, _ = run_fleet_sweep(tasks, backend="serial")
    reference = fleet_results_json_bytes(serial_results)

    cold_store = ResultStore(root=tmp_path / "cold")
    cold, cold_report = run_fleet_sweep(
        tasks, workers=2, store=cold_store, backend=backend
    )
    assert cold_report.store_misses == len(tasks)
    warm, warm_report = run_fleet_sweep(
        tasks, workers=2, store=cold_store, backend=backend
    )
    assert warm_report.store_hits == len(tasks), "warm run must be all hits"

    # Resume-after-crash: only the first rack survived the original run.
    crashed_store = ResultStore(root=tmp_path / "crashed")
    run_fleet_sweep(tasks[:1], store=crashed_store, backend="serial")
    assert crashed_store.puts == 1
    resumed, resumed_report = run_fleet_sweep(
        tasks, workers=2, store=crashed_store, backend=backend
    )
    assert resumed_report.store_hits == 1, "the surviving rack must be a hit"

    for label, run in (
        ("cold", cold), ("warm", warm), ("resumed", resumed),
    ):
        assert fleet_results_json_bytes(run) == reference, (
            f"fleet {label} run on the {backend} backend diverged"
        )


def test_fleet_task_keys_are_backend_independent(tmp_path):
    """Fleet entries written under one backend must be warm hits under
    every other — and the key never mentions the backend at all."""
    from repro.fleet import fleet_results_json_bytes, fleet_task_key, run_fleet_sweep

    tasks = _fleet_tasks()
    keys = [fleet_task_key(t) for t in tasks]
    assert len(set(keys)) == len(keys), "rack keys must be distinct"

    store = ResultStore(root=tmp_path)
    cold, _ = run_fleet_sweep(tasks, store=store, backend="serial")
    reference = fleet_results_json_bytes(cold)
    for other in ("process", "shared-store"):
        warm, report = run_fleet_sweep(
            tasks, workers=2, store=store, backend=other
        )
        assert [fleet_task_key(t) for t in tasks] == keys
        assert report.store_hits == len(tasks), (
            f"{other} run must hit the serial-written entries"
        )
        assert fleet_results_json_bytes(warm) == reference
    assert store.puts == len(tasks), "cross-backend warm runs computed nothing"
