"""Drive thermal model tests: calibration anchors, Figure 1, Table 3
temperatures, the envelope search, and thermal slack."""

import pytest

from repro.constants import AMBIENT_TEMPERATURE_C, THERMAL_ENVELOPE_C
from repro.drives import cheetah15k3
from repro.errors import EnvelopeError, ThermalError
from repro.thermal import (
    DEFAULT_CALIBRATION,
    DriveThermalModel,
    calibrated,
    max_rpm_within_envelope,
    steady_air_temperature_c,
    thermal_slack_c,
)
from repro.thermal.model import NODE_AIR, NODE_BASE, NODE_STACK, NODE_VCM


class TestCalibration:
    def test_pinned_constant_matches_fit(self):
        assert calibrated().spm_power_w == pytest.approx(
            DEFAULT_CALIBRATION.spm_power_w, rel=1e-9
        )

    def test_reference_drive_hits_envelope(self):
        model = cheetah15k3.thermal_model()
        assert model.steady_air_c() == pytest.approx(THERMAL_ENVELOPE_C, abs=0.01)

    def test_spm_power_physically_plausible(self):
        assert 5.0 < DEFAULT_CALIBRATION.spm_power_w < 20.0

    def test_with_helpers(self):
        cal = DEFAULT_CALIBRATION.with_spm_power(8.0)
        assert cal.spm_power_w == 8.0
        cal2 = DEFAULT_CALIBRATION.with_airflow_quality(1.5)
        assert cal2.airflow_quality == 1.5


class TestFigure1Transient:
    """The Cheetah warm-up of Figure 1: 28 C -> ~33 C in a minute ->
    45.22 C steady after ~48 minutes."""

    @pytest.fixture(scope="class")
    def transient(self):
        model = cheetah15k3.thermal_model()
        return model.transient(150 * 60, dt_s=0.5, record_every=120, from_ambient=True)

    def test_starts_at_ambient(self, transient):
        assert transient.series("air")[0] == pytest.approx(AMBIENT_TEMPERATURE_C)

    def test_first_minute_rise(self, transient):
        at_1min = transient.series("air")[1]
        assert 32.0 <= at_1min <= 36.0

    def test_steady_state_value(self, transient):
        assert transient.final("air") == pytest.approx(THERMAL_ENVELOPE_C, abs=0.05)

    def test_convergence_time_about_48_minutes(self, transient):
        final = transient.final("air")
        for t, temp in zip(transient.times_s, transient.series("air")):
            if abs(temp - final) < 0.05:
                assert 30 * 60 <= t <= 70 * 60
                return
        pytest.fail("never converged")

    def test_monotone_rise(self, transient):
        series = transient.series("air")
        assert all(b >= a - 1e-6 for a, b in zip(series, series[1:]))

    def test_electronics_margin_matches_rating(self, transient):
        # 45.22 C + ~10 C of electronics ~= the drive's rated 55 C max.
        assert transient.final("air") + 10.0 == pytest.approx(
            cheetah15k3.RATED_MAX_OPERATING_C, abs=0.5
        )


class TestSteadyStateAnchors:
    """Spot checks against the paper's Table 3 temperature column."""

    ANCHORS = [
        (2.6, 15098, 45.24),
        (2.6, 24534, 48.26),
        (2.6, 37001, 57.18),
        (2.6, 55819, 85.04),
        (2.6, 143470, 602.98),
        (2.1, 30367, 45.61),
        (1.6, 48947, 44.29),
        (1.6, 154527, 117.61),
    ]

    @pytest.mark.parametrize("diameter,rpm,paper_c", ANCHORS)
    def test_anchor(self, diameter, rpm, paper_c):
        ours = steady_air_temperature_c(diameter, rpm)
        assert ours == pytest.approx(paper_c, rel=0.08)

    def test_temperature_monotone_in_rpm(self):
        temps = [steady_air_temperature_c(2.6, rpm) for rpm in range(10000, 60000, 5000)]
        assert temps == sorted(temps)

    def test_smaller_platters_run_cooler_at_same_rpm(self):
        assert steady_air_temperature_c(1.6, 24533) < steady_air_temperature_c(2.6, 24533)

    def test_more_platters_run_hotter(self):
        one = steady_air_temperature_c(2.6, 15000, platter_count=1)
        four = steady_air_temperature_c(2.6, 15000, platter_count=4)
        assert four > one

    def test_ambient_unit_gain(self):
        base = steady_air_temperature_c(2.6, 15000)
        cooler = steady_air_temperature_c(2.6, 15000, ambient_c=23.0)
        assert base - cooler == pytest.approx(5.0, abs=0.01)

    def test_vcm_off_is_cooler(self):
        on = steady_air_temperature_c(2.6, 24534, vcm_active=True)
        off = steady_air_temperature_c(2.6, 24534, vcm_active=False)
        assert on - off > 2.0


class TestDriveThermalModel:
    def test_node_ordering_hot_to_cold(self):
        model = cheetah15k3.thermal_model()
        steady = model.steady_state()
        # The motor-heated stack is the hottest part; the externally cooled
        # base is the coolest.
        assert steady[NODE_STACK] > steady[NODE_AIR] > steady[NODE_BASE]
        assert steady[NODE_VCM] > steady[NODE_BASE]

    def test_settle_matches_steady(self):
        model = cheetah15k3.thermal_model()
        model.settle()
        assert model.air_c() == pytest.approx(model.steady_air_c())

    def test_spin_down_removes_heat(self):
        model = cheetah15k3.thermal_model()
        model.set_operating_state(spinning=False, vcm_active=False)
        assert model.total_power_w() == pytest.approx(0.0)
        assert model.steady_air_c() == pytest.approx(AMBIENT_TEMPERATURE_C, abs=0.01)

    def test_set_vcm_duty_interpolates(self):
        model = cheetah15k3.thermal_model()
        full = model.steady_air_c()
        model.set_vcm_duty(0.5)
        half = model.steady_air_c()
        model.set_vcm_duty(0.0)
        zero = model.steady_air_c()
        assert zero < half < full

    def test_set_vcm_duty_rejects_out_of_range(self):
        model = cheetah15k3.thermal_model()
        with pytest.raises(ThermalError):
            model.set_vcm_duty(1.5)

    def test_enclosure_must_fit_platter(self):
        from repro.geometry import FORM_FACTOR_25

        with pytest.raises(ThermalError):
            DriveThermalModel(platter_diameter_in=3.3, enclosure=FORM_FACTOR_25)

    def test_small_enclosure_runs_hotter(self):
        from repro.geometry import FORM_FACTOR_25, FORM_FACTOR_35

        large = DriveThermalModel(2.6, rpm=15000, enclosure=FORM_FACTOR_35).steady_air_c()
        small = DriveThermalModel(2.6, rpm=15000, enclosure=FORM_FACTOR_25).steady_air_c()
        assert small > large + 3.0

    def test_rejects_negative_rpm(self):
        with pytest.raises(ThermalError):
            DriveThermalModel(2.6, rpm=-1)

    def test_set_ambient(self):
        model = cheetah15k3.thermal_model()
        model.set_ambient(23.0)
        assert model.ambient_c == 23.0


class TestEnvelope:
    def test_26_inch_envelope_rpm_near_paper(self):
        # Paper: ~15,020 RPM for 2.6" single platter.
        rpm = max_rpm_within_envelope(2.6)
        assert rpm == pytest.approx(15020, rel=0.02)

    def test_smaller_platters_allow_higher_rpm(self):
        small, mid, large = (max_rpm_within_envelope(d) for d in (1.6, 2.1, 2.6))
        assert small > mid > large

    def test_vcm_off_unlocks_slack_rpm(self):
        # Paper Figure 5(a): 2.6" goes from ~15,020 to ~26,750 RPM.
        off = max_rpm_within_envelope(2.6, vcm_active=False)
        on = max_rpm_within_envelope(2.6, vcm_active=True)
        assert off / on == pytest.approx(26750 / 15020, rel=0.10)

    def test_result_sits_on_envelope(self):
        rpm = max_rpm_within_envelope(2.6)
        temp = steady_air_temperature_c(2.6, rpm)
        assert temp <= THERMAL_ENVELOPE_C
        assert steady_air_temperature_c(2.6, rpm + 50) > THERMAL_ENVELOPE_C

    def test_cooler_ambient_raises_limit(self):
        base = max_rpm_within_envelope(2.6)
        cooled = max_rpm_within_envelope(2.6, ambient_c=23.0)
        assert cooled > base

    def test_infeasible_design_raises(self):
        with pytest.raises(EnvelopeError):
            max_rpm_within_envelope(2.6, platter_count=4, envelope_c=30.0)

    def test_slack_positive_when_vcm_off(self):
        rpm = max_rpm_within_envelope(2.6)
        assert thermal_slack_c(2.6, rpm, vcm_active=False) > 0

    def test_slack_zero_at_envelope_with_vcm(self):
        rpm = max_rpm_within_envelope(2.6)
        assert thermal_slack_c(2.6, rpm, vcm_active=True) == pytest.approx(0.0, abs=0.05)

    def test_slack_shrinks_with_platter_size(self):
        # Paper §5.2: less slack for smaller platters (lower VCM power).
        def slack_rpm_gain(d):
            on = max_rpm_within_envelope(d)
            off = max_rpm_within_envelope(d, vcm_active=False)
            return (off - on) / on

        assert slack_rpm_gain(2.6) > slack_rpm_gain(2.1) > slack_rpm_gain(1.6)
