"""Thermal building-block tests: viscous dissipation, VCM power,
correlations, and the generic network."""

import numpy as np
import pytest

from repro.errors import ThermalError
from repro.thermal import (
    ThermalNetwork,
    ThermalNode,
    conduction_g,
    enclosed_air_internal_h,
    external_forced_h,
    rotating_disk_h,
    rotational_reynolds,
    rpm_for_viscous_power,
    series_g,
    vcm_power_w,
    viscous_power_w,
    windage_torque_nm,
)


class TestViscous:
    def test_anchor_value(self):
        # Paper: 0.91 W for 1 platter, 2.6", 15,098 RPM (year 2002).
        assert viscous_power_w(15098, 2.6, 1) == pytest.approx(0.91)

    def test_rpm_exponent(self):
        ratio = viscous_power_w(30000, 2.6) / viscous_power_w(15000, 2.6)
        assert ratio == pytest.approx(2**2.8)

    def test_diameter_exponent(self):
        ratio = viscous_power_w(15000, 3.2) / viscous_power_w(15000, 1.6)
        assert ratio == pytest.approx(2**4.8)

    def test_linear_in_platters(self):
        assert viscous_power_w(15000, 2.6, 4) == pytest.approx(
            4 * viscous_power_w(15000, 2.6, 1)
        )

    def test_paper_2009_value(self):
        # Paper: ~35.55 W at 55,819 RPM (2009, 2.6").
        assert viscous_power_w(55819, 2.6) == pytest.approx(35.55, rel=0.02)

    def test_paper_2012_value(self):
        # Paper: ~499.73 W at 143,470 RPM (2012, 2.6").
        assert viscous_power_w(143470, 2.6) == pytest.approx(499.73, rel=0.02)

    def test_zero_rpm_dissipates_nothing(self):
        assert viscous_power_w(0, 2.6) == 0.0

    def test_inverse(self):
        rpm = rpm_for_viscous_power(viscous_power_w(23456, 2.1, 2), 2.1, 2)
        assert rpm == pytest.approx(23456)

    def test_torque_positive(self):
        assert windage_torque_nm(15000, 2.6) > 0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ThermalError):
            viscous_power_w(-1, 2.6)
        with pytest.raises(ThermalError):
            viscous_power_w(15000, 0)
        with pytest.raises(ThermalError):
            viscous_power_w(15000, 2.6, 0)


class TestVCMPower:
    def test_paper_anchors(self):
        assert vcm_power_w(2.6) == pytest.approx(3.9)
        assert vcm_power_w(2.1) == pytest.approx(2.28)
        assert vcm_power_w(1.6) == pytest.approx(0.618)

    def test_sri_jayantha_ratio(self):
        # ~2x between 95 mm (3.7") and 65 mm (~2.6") class platters.
        assert vcm_power_w(3.7) / vcm_power_w(2.6) == pytest.approx(2.0, rel=0.05)

    def test_monotone_in_diameter(self):
        values = [vcm_power_w(d / 10) for d in range(16, 38, 2)]
        assert values == sorted(values)

    def test_clamped_outside_anchors(self):
        assert vcm_power_w(1.0) == vcm_power_w(1.6)
        assert vcm_power_w(5.0) == vcm_power_w(3.7)

    def test_rejects_nonpositive(self):
        with pytest.raises(ThermalError):
            vcm_power_w(0)


class TestCorrelations:
    def test_reynolds_grows_with_rpm_and_radius(self):
        assert rotational_reynolds(20000, 0.033) > rotational_reynolds(10000, 0.033)
        assert rotational_reynolds(10000, 0.047) > rotational_reynolds(10000, 0.033)

    def test_disk_h_increases_with_rpm(self):
        assert rotating_disk_h(20000, 0.033) > rotating_disk_h(10000, 0.033)

    def test_disk_h_natural_floor_at_rest(self):
        assert rotating_disk_h(0, 0.033) == pytest.approx(5.0)

    def test_disk_h_turbulent_regime_continuity(self):
        # h should stay positive and finite across the laminar/turbulent
        # transition.
        values = [rotating_disk_h(rpm, 0.047) for rpm in range(5000, 120000, 5000)]
        assert all(v > 0 for v in values)

    def test_wall_h_default_speed_independent(self):
        assert enclosed_air_internal_h(10000) == enclosed_air_internal_h(40000)

    def test_wall_h_with_exponent(self):
        slow = enclosed_air_internal_h(10000, speed_exponent=0.5)
        fast = enclosed_air_internal_h(40000, speed_exponent=0.5)
        assert fast == pytest.approx(2 * slow)

    def test_external_h_scales(self):
        assert external_forced_h(2.0) == pytest.approx(2 * external_forced_h(1.0))

    def test_conduction_g(self):
        assert conduction_g(180.0, 0.01, 0.003) == pytest.approx(600.0)

    def test_series_g(self):
        assert series_g(2.0, 2.0) == pytest.approx(1.0)
        assert series_g(5.0) == pytest.approx(5.0)

    def test_series_g_rejects_nonpositive(self):
        with pytest.raises(ThermalError):
            series_g(2.0, 0.0)


class TestThermalNetwork:
    def make_two_node(self):
        net = ThermalNetwork(
            [ThermalNode("hot", 10.0), ThermalNode("cold", 100.0)], ambient_c=20.0
        )
        net.connect("hot", "cold", 2.0)
        net.connect_ambient("cold", 1.0)
        net.set_heat("hot", 6.0)
        return net

    def test_steady_state_hand_computed(self):
        net = self.make_two_node()
        steady = net.steady_state()
        # All 6 W exit through the 1 W/K ambient link: cold = 20 + 6 = 26;
        # hot = cold + 6/2 = 29.
        assert steady["cold"] == pytest.approx(26.0)
        assert steady["hot"] == pytest.approx(29.0)

    def test_transient_converges_to_steady(self):
        net = self.make_two_node()
        net.simulate(duration_s=5000.0, dt_s=1.0, record_every=1000)
        steady = net.steady_state()
        assert net.temperature("hot") == pytest.approx(steady["hot"], abs=0.01)
        assert net.temperature("cold") == pytest.approx(steady["cold"], abs=0.01)

    def test_no_heat_stays_at_ambient(self):
        net = ThermalNetwork([ThermalNode("n", 5.0)], ambient_c=28.0)
        net.connect_ambient("n", 0.5)
        assert net.steady_state()["n"] == pytest.approx(28.0)

    def test_implicit_euler_stable_with_stiff_node(self):
        net = ThermalNetwork(
            [ThermalNode("air", 0.01), ThermalNode("mass", 1000.0)], ambient_c=20.0
        )
        net.connect("air", "mass", 5.0)
        net.connect_ambient("mass", 1.0)
        net.set_heat("air", 3.0)
        result = net.simulate(duration_s=10.0, dt_s=0.1)
        assert all(np.isfinite(net.temperatures))
        assert max(result.series("air")) < 100.0

    def test_requires_ambient_path(self):
        net = ThermalNetwork([ThermalNode("a", 1.0), ThermalNode("b", 1.0)], ambient_c=20.0)
        net.connect("a", "b", 1.0)
        net.set_heat("a", 1.0)
        with pytest.raises(ThermalError):
            net.steady_state()

    def test_energy_balance_at_steady_state(self):
        net = self.make_two_node()
        steady = net.steady_state()
        outflow = 1.0 * (steady["cold"] - 20.0)
        assert outflow == pytest.approx(net.total_heat_w())

    def test_duplicate_node_names_rejected(self):
        with pytest.raises(ThermalError):
            ThermalNetwork([ThermalNode("x", 1.0), ThermalNode("x", 2.0)], ambient_c=20.0)

    def test_self_connection_rejected(self):
        net = self.make_two_node()
        with pytest.raises(ThermalError):
            net.connect("hot", "hot", 1.0)

    def test_unknown_node_rejected(self):
        net = self.make_two_node()
        with pytest.raises(ThermalError):
            net.set_heat("missing", 1.0)

    def test_negative_heat_rejected(self):
        net = self.make_two_node()
        with pytest.raises(ThermalError):
            net.set_heat("hot", -1.0)

    def test_set_conductance_overwrites(self):
        net = self.make_two_node()
        net.set_conductance("hot", "cold", 4.0)
        steady = net.steady_state()
        assert steady["hot"] == pytest.approx(26.0 + 6.0 / 4.0)

    def test_transient_result_helpers(self):
        net = self.make_two_node()
        result = net.simulate(duration_s=100.0, dt_s=1.0)
        assert result.final("hot") == result.series("hot")[-1]
        crossed = result.time_to_reach("cold", 21.0, rising=True)
        assert crossed is not None and crossed > 0

    def test_stop_when_predicate(self):
        net = self.make_two_node()
        result = net.simulate(
            duration_s=1e6,
            dt_s=1.0,
            stop_when=lambda t, n: n.temperature("cold") >= 24.0,
        )
        assert result.times_s[-1] < 1e6
        assert net.temperature("cold") >= 24.0

    def test_conductance_introspection(self):
        net = self.make_two_node()
        edges = list(net.conductances())
        assert ("hot", "cold", 2.0) in edges
