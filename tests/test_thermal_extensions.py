"""Tests for the reliability model and the array-level thermal coupling."""

import pytest

from repro.constants import AMBIENT_TEMPERATURE_C, THERMAL_ENVELOPE_C
from repro.errors import EnvelopeError, ThermalError
from repro.thermal import (
    ReliabilityComparison,
    airflow_temperature_rise_c,
    array_envelope_rpm,
    drive_heat_w,
    dtm_reliability_gain,
    failure_acceleration,
    fleet_failure_rate,
    max_rpm_within_envelope,
    relative_mtbf,
    serial_array_profile,
)


class TestReliability:
    def test_fifteen_degrees_doubles(self):
        # The Anderson et al. rule the paper quotes.
        assert failure_acceleration(AMBIENT_TEMPERATURE_C + 15.0) == pytest.approx(2.0)

    def test_reference_is_unity(self):
        assert failure_acceleration(AMBIENT_TEMPERATURE_C) == pytest.approx(1.0)

    def test_cooler_is_better(self):
        assert failure_acceleration(AMBIENT_TEMPERATURE_C - 15.0) == pytest.approx(0.5)

    def test_thirty_degrees_quadruples(self):
        assert failure_acceleration(AMBIENT_TEMPERATURE_C + 30.0) == pytest.approx(4.0)

    def test_mtbf_is_inverse(self):
        for temp in (30.0, 45.22, 60.0):
            assert relative_mtbf(temp) == pytest.approx(1.0 / failure_acceleration(temp))

    def test_rejects_bad_doubling_delta(self):
        with pytest.raises(ThermalError):
            failure_acceleration(40.0, doubling_delta_c=0)

    def test_comparison_ratio(self):
        comparison = ReliabilityComparison(hot_c=45.22, cool_c=30.22)
        assert comparison.failure_ratio == pytest.approx(2.0)
        assert comparison.mtbf_gain_fraction == pytest.approx(1.0)

    def test_dtm_gain_positive_at_partial_duty(self):
        gain = dtm_reliability_gain(duty=0.3)
        assert gain.cool_c < gain.hot_c
        assert gain.failure_ratio > 1.0

    def test_dtm_gain_with_explicit_temperature(self):
        gain = dtm_reliability_gain(managed_mean_c=40.22)
        assert gain.hot_c == THERMAL_ENVELOPE_C
        assert gain.failure_ratio == pytest.approx(2 ** (5.0 / 15.0))

    def test_dtm_gain_rejects_bad_duty(self):
        with pytest.raises(ThermalError):
            dtm_reliability_gain(duty=1.5)

    def test_fleet_rate_sums(self):
        rate = fleet_failure_rate([AMBIENT_TEMPERATURE_C, AMBIENT_TEMPERATURE_C + 15])
        assert rate == pytest.approx(3.0)

    def test_fleet_rejects_empty(self):
        with pytest.raises(ThermalError):
            fleet_failure_rate([])


class TestArrayThermal:
    def test_heat_components(self):
        idle = drive_heat_w(15000, 2.6, vcm_duty=0.0)
        busy = drive_heat_w(15000, 2.6, vcm_duty=1.0)
        assert busy - idle == pytest.approx(3.9)  # the VCM power

    def test_airflow_rise_physical(self):
        # 15 W into 0.01 m^3/s of air: dT = Q / (rho c V) ~ 1.3 C.
        rise = airflow_temperature_rise_c(15.0, 0.01)
        assert 1.0 < rise < 1.7

    def test_rise_rejects_bad_airflow(self):
        with pytest.raises(ThermalError):
            airflow_temperature_rise_c(10.0, 0.0)

    def test_profile_monotone_downstream(self):
        profile = serial_array_profile(6, 12000)
        ambients = [p.local_ambient_c for p in profile]
        internals = [p.internal_air_c for p in profile]
        limits = [p.max_rpm for p in profile]
        assert ambients == sorted(ambients)
        assert internals == sorted(internals)
        assert limits == sorted(limits, reverse=True)

    def test_first_slot_matches_single_drive(self):
        profile = serial_array_profile(4, 12000)
        single = max_rpm_within_envelope(2.6)
        assert profile[0].max_rpm == pytest.approx(single, rel=0.01)

    def test_more_airflow_cools_downstream(self):
        weak = serial_array_profile(6, 12000, airflow_m3_per_s=0.01)
        strong = serial_array_profile(6, 12000, airflow_m3_per_s=0.05)
        assert strong[-1].local_ambient_c < weak[-1].local_ambient_c

    def test_duty_scales_heat_and_temperature(self):
        busy = serial_array_profile(4, 12000, vcm_duty=1.0)
        idle = serial_array_profile(4, 12000, vcm_duty=0.0)
        half = serial_array_profile(4, 12000, vcm_duty=0.5)
        assert idle[-1].internal_air_c < half[-1].internal_air_c < busy[-1].internal_air_c

    def test_rejects_zero_disks(self):
        with pytest.raises(ThermalError):
            serial_array_profile(0, 12000)

    def test_array_envelope_below_single_drive(self):
        array_limit = array_envelope_rpm(4, airflow_m3_per_s=0.05)
        single_limit = max_rpm_within_envelope(2.6)
        assert array_limit < single_limit

    def test_deeper_arrays_bind_tighter(self):
        # The fixed-loss margin is under a watt (~0.9 C of ambient), so the
        # deep chain needs a torrent of airflow before it is feasible at all.
        shallow = array_envelope_rpm(2, airflow_m3_per_s=0.2)
        deep = array_envelope_rpm(8, airflow_m3_per_s=0.2)
        assert deep < shallow

    def test_weak_airflow_infeasible(self):
        # The paper's point: ambient control is hard — an 8-deep chain on a
        # single weak fan cannot hold the envelope at any speed.
        with pytest.raises(EnvelopeError):
            array_envelope_rpm(8, airflow_m3_per_s=0.01)

    def test_envelope_rpm_profile_consistent(self):
        rpm = array_envelope_rpm(4, airflow_m3_per_s=0.05)
        profile = serial_array_profile(4, rpm, airflow_m3_per_s=0.05)
        assert all(p.within_envelope for p in profile)
        hotter = serial_array_profile(4, rpm + 500, airflow_m3_per_s=0.05)
        assert not all(p.within_envelope for p in hotter)
