"""Table 1 regression: the capacity/IDR models vs the paper's own numbers
and the manufacturer datasheets."""

import pytest

from repro.drives import PAPER_MODEL_PREDICTIONS, TABLE1_DRIVES, drive_by_model


class TestAgainstPaperModel:
    """Our implementation should reproduce the *paper's* model outputs."""

    @pytest.mark.parametrize("drive", TABLE1_DRIVES, ids=lambda d: d.model)
    def test_idr_matches_paper_model(self, drive):
        paper_idr = PAPER_MODEL_PREDICTIONS[drive.model][1]
        ours = drive.modeled_idr_mb_per_s()
        # The IBM Ultrastar 36Z15 row is inconsistent with the paper's own
        # eq. 4 (likely a table typo); allow it a looser band.
        tolerance = 0.20 if drive.model == "IBM Ultrastar 36Z15" else 0.025
        assert ours == pytest.approx(paper_idr, rel=tolerance)

    @pytest.mark.parametrize("drive", TABLE1_DRIVES, ids=lambda d: d.model)
    def test_capacity_matches_paper_model(self, drive):
        paper_cap = PAPER_MODEL_PREDICTIONS[drive.model][0]
        ours = drive.modeled_capacity_paper_gb()
        assert ours == pytest.approx(paper_cap, rel=0.03)


class TestAgainstDatasheets:
    """The paper reports <=12% capacity and <=15% IDR error for most disks;
    we hold the same bands (with the same known outliers)."""

    CAPACITY_OUTLIERS = {
        # The paper's own model misses these by >12% too.
        "Seagate Cheetah X15",
        "Quantum Atlas 10K II",
        "IBM Ultrastar 36LZX",
        "Seagate Barracuda 180",
        "Seagate Cheetah 73LP",
        "Seagate Cheetah 10K.6",
    }
    IDR_OUTLIERS = {
        "Quantum Atlas 10K",
        "Seagate Cheetah X15",
        "Seagate Cheetah X15-36LP",
    }

    @pytest.mark.parametrize("drive", TABLE1_DRIVES, ids=lambda d: d.model)
    def test_capacity_within_band(self, drive):
        error = abs(
            drive.modeled_capacity_paper_gb() - drive.datasheet_capacity_gb
        ) / drive.datasheet_capacity_gb
        limit = 0.30 if drive.model in self.CAPACITY_OUTLIERS else 0.13
        assert error <= limit

    @pytest.mark.parametrize("drive", TABLE1_DRIVES, ids=lambda d: d.model)
    def test_idr_within_band(self, drive):
        error = abs(
            drive.modeled_idr_mb_per_s() - drive.datasheet_idr_mb_per_s
        ) / drive.datasheet_idr_mb_per_s
        limit = 0.20 if drive.model in self.IDR_OUTLIERS else 0.16
        assert error <= limit


class TestDatabase:
    def test_thirteen_drives(self):
        assert len(TABLE1_DRIVES) == 13

    def test_all_have_paper_predictions(self):
        for drive in TABLE1_DRIVES:
            assert drive.model in PAPER_MODEL_PREDICTIONS

    def test_lookup_by_model(self):
        drive = drive_by_model("Seagate Cheetah 15K.3")
        assert drive.rpm == 15000
        assert drive.diameter_in == 2.6

    def test_lookup_unknown_raises(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            drive_by_model("Conner CP30254")

    def test_years_span_1999_to_2002(self):
        years = {drive.year for drive in TABLE1_DRIVES}
        assert years == {1999, 2000, 2001, 2002}

    def test_table2_subset(self):
        from repro.drives import TABLE2_DRIVES

        assert len(TABLE2_DRIVES) == 4
        for drive in TABLE2_DRIVES:
            assert drive.max_operating_temp_c in (50.0, 55.0)
            assert 27.0 < drive.wet_bulb_temp_c < 30.0

    def test_error_helpers_signed(self):
        drive = drive_by_model("IBM Ultrastar 36LZX")
        assert drive.capacity_error() == pytest.approx(
            (drive.modeled_capacity_gb() - drive.datasheet_capacity_gb)
            / drive.datasheet_capacity_gb
        )
        assert drive.idr_error() == pytest.approx(
            (drive.modeled_idr_mb_per_s() - drive.datasheet_idr_mb_per_s)
            / drive.datasheet_idr_mb_per_s
        )
