"""Tests for thermolint's project-wide (``--deep``) pass.

Covers the symbol table and call graph on synthetic packages, taint
propagation across module boundaries (TL007–TL010), the parallel-fabric
rules (TL011/TL012), the schema-drift gate (TL013), the incremental
summary cache, baseline add/expire, SARIF output shape, the exit-code
contract (findings=1, analyzer crash=2), and — per the acceptance
criteria — seeded mutations of the *real* repository tree proving the
analyzer catches an injected ``time.time()``, an unsorted
``os.listdir``, and a keyed-zone edit without a ``CODE_SCHEMA_VERSION``
bump.
"""

from __future__ import annotations

import json
import shutil
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
TOOLS_DIR = REPO_ROOT / "tools"
if str(TOOLS_DIR) not in sys.path:
    sys.path.insert(0, str(TOOLS_DIR))

from thermolint.baseline import load_baseline
from thermolint.callgraph import CallGraph
from thermolint.cli import main as thermolint_main
from thermolint.deep import DeepConfig, run_deep, update_baseline_file
from thermolint.reporters import render_json
from thermolint.sarif import sarif_document
from thermolint.symbols import extract_module
from thermolint.taint import (
    read_code_schema_version,
    write_keyed_manifest,
)


def rule_ids(findings):
    return [finding.rule_id for finding in findings]


# ---------------------------------------------------------------------------
# Synthetic-project scaffolding
# ---------------------------------------------------------------------------

#: A minimal project whose keyed zone mirrors the real repo's shape:
#: ``pkg.canon.canonical`` is the root; it calls across a module boundary
#: into ``pkg.helpers``; ``pkg.fabric.run_pool`` is the worker sink.
BASE_FILES = {
    "src/pkg/__init__.py": "",
    "src/pkg/canon.py": """
        from pkg import helpers

        CODE_SCHEMA_VERSION = 1


        def canonical(value):
            return helpers.normalize(value)
        """,
    "src/pkg/helpers.py": """
        def normalize(value):
            return [value]
        """,
    "src/pkg/fabric.py": """
        def run_pool(tasks, worker):
            return [worker(task) for task in tasks]
        """,
}

KEY_FILES = ("src/pkg/canon.py",)


def make_project(tmp_path, extra=None, manifest=True):
    files = dict(BASE_FILES)
    files.update(extra or {})
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    if manifest:
        write_keyed_manifest(
            tmp_path,
            manifest_path="manifest.json",
            key_files=KEY_FILES,
            version_file="src/pkg/canon.py",
        )
    return tmp_path


def config_for(root, **overrides):
    defaults = dict(
        project_root=root,
        package_dirs=("src",),
        root_patterns=("pkg.canon.*",),
        worker_sinks=("*.run_pool",),
        key_files=KEY_FILES,
        version_file="src/pkg/canon.py",
        manifest_path="manifest.json",
        baseline_path=None,
        cache_dir=None,
    )
    defaults.update(overrides)
    return DeepConfig(**defaults)


# ---------------------------------------------------------------------------
# Symbol table
# ---------------------------------------------------------------------------


class TestSymbols:
    def test_functions_classes_and_context(self):
        source = textwrap.dedent(
            """
            import time

            STATE = {}


            def top(x):
                return time.time()


            class Box:
                def method(self):
                    STATE["k"] = 1
                    return top(1)
            """
        )
        summary = extract_module("src/pkg/m.py", "pkg.m", source)
        names = {fn.name for fn in summary.functions}
        assert names == {"top", "method"}
        assert summary.classes == {"Box": ["method"]}
        assert "STATE" in summary.module_mutables
        assert "STATE" in summary.mutated_globals
        method = next(fn for fn in summary.functions if fn.name == "method")
        assert summary.context_at(method.line + 1) == "pkg.m.Box.method"
        top = next(fn for fn in summary.functions if fn.name == "top")
        dotted = {call.dotted for call in top.calls}
        assert "time.time" in dotted

    def test_round_trips_through_json(self):
        source = "def f(xs):\n    return sorted(set(xs))\n"
        summary = extract_module("src/pkg/m.py", "pkg.m", source)
        clone = type(summary).from_dict(json.loads(json.dumps(summary.as_dict())))
        assert clone.as_dict() == summary.as_dict()

    def test_syntax_error_raises(self):
        with pytest.raises(SyntaxError):
            extract_module("src/pkg/m.py", "pkg.m", "def broken(:\n")


# ---------------------------------------------------------------------------
# Call graph
# ---------------------------------------------------------------------------


class TestCallGraph:
    def _graph(self, *sources):
        summaries = [
            extract_module(f"src/pkg/m{i}.py", f"pkg.m{i}", textwrap.dedent(src))
            for i, src in enumerate(sources)
        ]
        return CallGraph.build(summaries)

    def test_cross_module_edge_and_reachability(self):
        graph = self._graph(
            """
            from pkg import m1


            def entry(x):
                return m1.leaf(x)
            """,
            """
            def leaf(x):
                return x
            """,
        )
        assert "pkg.m1.leaf" in graph.edges.get("pkg.m0.entry", [])
        zone = graph.reachable_from(["pkg.m0.entry"])
        assert set(zone) == {"pkg.m0.entry", "pkg.m1.leaf"}
        chain = graph.chain(zone, "pkg.m1.leaf")
        assert chain == ["pkg.m0.entry", "pkg.m1.leaf"]

    def test_method_resolution_via_cha(self):
        graph = self._graph(
            """
            def entry(obj):
                return obj.render_widget()


            class Widget:
                def render_widget(self):
                    return 1
            """
        )
        assert "pkg.m0.Widget.render_widget" in graph.edges.get("pkg.m0.entry", [])

    def test_generic_method_names_not_cha_resolved(self):
        # `get` is in the stoplist: a dynamic-receiver .get() must not
        # pull every class defining get() into the zone.
        graph = self._graph(
            """
            def entry(obj):
                return obj.get("k")


            class Cache:
                def get(self, k):
                    return k
            """
        )
        assert "pkg.m0.Cache.get" not in graph.edges.get("pkg.m0.entry", [])


# ---------------------------------------------------------------------------
# Taint rules across module boundaries
# ---------------------------------------------------------------------------


class TestTaintRules:
    def test_clean_project_is_clean(self, tmp_path):
        result = run_deep(config_for(make_project(tmp_path)))
        assert result.findings == [], "\n".join(f.render() for f in result.findings)
        assert "pkg.canon.canonical" in result.roots
        assert "pkg.helpers.normalize" in result.keyed_zone

    def test_tl007_wall_clock_across_modules(self, tmp_path):
        root = make_project(
            tmp_path,
            extra={
                "src/pkg/helpers.py": """
                    import time


                    def normalize(value):
                        return [value, time.time()]
                    """,
            },
        )
        result = run_deep(config_for(root))
        assert rule_ids(result.findings) == ["TL007"]
        finding = result.findings[0]
        assert finding.path == "src/pkg/helpers.py"
        assert "pkg.canon.canonical" in finding.message  # the chain is named

    def test_tl007_unseeded_rng_flagged_seeded_ok(self, tmp_path):
        root = make_project(
            tmp_path,
            extra={
                "src/pkg/helpers.py": """
                    import random


                    def normalize(value):
                        good = random.Random(42).random()
                        bad = random.random()
                        return [value, good, bad]
                    """,
            },
        )
        result = run_deep(config_for(root))
        assert rule_ids(result.findings) == ["TL007"]
        assert "random.random" in result.findings[0].message

    def test_tl008_set_iteration(self, tmp_path):
        root = make_project(
            tmp_path,
            extra={
                "src/pkg/helpers.py": """
                    def normalize(value):
                        out = []
                        for item in {1, 2, value}:
                            out.append(item)
                        return out
                    """,
            },
        )
        result = run_deep(config_for(root))
        assert rule_ids(result.findings) == ["TL008"]

    def test_tl009_unsorted_listdir_and_sorted_ok(self, tmp_path):
        root = make_project(
            tmp_path,
            extra={
                "src/pkg/helpers.py": """
                    import os


                    def normalize(value):
                        good = sorted(os.listdir("."))
                        bad = os.listdir(".")
                        return [value, good, bad]
                    """,
            },
        )
        result = run_deep(config_for(root))
        assert rule_ids(result.findings) == ["TL009"]

    def test_tl010_float_accumulation_over_set(self, tmp_path):
        root = make_project(
            tmp_path,
            extra={
                "src/pkg/helpers.py": """
                    def normalize(value):
                        return sum({1.0, 2.0, value})
                    """,
            },
        )
        result = run_deep(config_for(root))
        assert rule_ids(result.findings) == ["TL010"]

    def test_outside_zone_is_ignored(self, tmp_path):
        # The same hazards outside the keyed zone must not fire.
        root = make_project(
            tmp_path,
            extra={
                "src/pkg/unrelated.py": """
                    import os
                    import time


                    def bookkeeping():
                        return (time.time(), os.listdir("."))
                    """,
            },
        )
        result = run_deep(config_for(root))
        assert result.findings == []

    def test_pragma_suppresses_deep_finding(self, tmp_path):
        root = make_project(
            tmp_path,
            extra={
                "src/pkg/helpers.py": """
                    import time


                    def normalize(value):
                        # rationale: timestamp is stripped before keying
                        # thermolint: disable=TL007
                        return [value, time.time()]
                    """,
            },
        )
        result = run_deep(config_for(root))
        assert result.findings == []


# ---------------------------------------------------------------------------
# Parallel-fabric rules
# ---------------------------------------------------------------------------


class TestFabricRules:
    def test_tl011_lambda_to_sink(self, tmp_path):
        root = make_project(
            tmp_path,
            extra={
                "src/pkg/driver.py": """
                    from pkg import fabric


                    def drive(tasks):
                        return fabric.run_pool(tasks, lambda t: t + 1)
                    """,
            },
        )
        result = run_deep(config_for(root))
        assert rule_ids(result.findings) == ["TL011"]

    def test_tl011_parent_side_kwarg_callback_ok(self, tmp_path):
        root = make_project(
            tmp_path,
            extra={
                "src/pkg/fabric.py": """
                    def run_pool(tasks, worker, on_result=None):
                        out = [worker(task) for task in tasks]
                        if on_result is not None:
                            for item in out:
                                on_result(item)
                        return out
                    """,
                "src/pkg/driver.py": """
                    from pkg import fabric


                    def work(t):
                        return t + 1


                    def drive(tasks):
                        return fabric.run_pool(tasks, work, on_result=lambda r: r)
                    """,
            },
        )
        result = run_deep(config_for(root))
        assert result.findings == []

    def test_tl012_mutated_global_read_by_worker(self, tmp_path):
        root = make_project(
            tmp_path,
            extra={
                "src/pkg/driver.py": """
                    from pkg import fabric

                    _CACHE = {}


                    def work(t):
                        _CACHE[t] = t
                        return _CACHE.get(t)


                    def drive(tasks):
                        return fabric.run_pool(tasks, work)
                    """,
            },
        )
        result = run_deep(config_for(root))
        assert rule_ids(result.findings) == ["TL012"]
        assert "_CACHE" in result.findings[0].message


# ---------------------------------------------------------------------------
# TL013 schema drift
# ---------------------------------------------------------------------------


class TestSchemaDrift:
    def test_missing_manifest_flagged(self, tmp_path):
        root = make_project(tmp_path, manifest=False)
        result = run_deep(config_for(root))
        assert rule_ids(result.findings) == ["TL013"]
        assert "missing" in result.findings[0].message

    def test_keyed_edit_without_bump_flagged(self, tmp_path):
        root = make_project(tmp_path)
        canon = root / "src/pkg/canon.py"
        canon.write_text(
            canon.read_text(encoding="utf-8").replace(
                "helpers.normalize(value)", "helpers.normalize([value])"
            ),
            encoding="utf-8",
        )
        result = run_deep(config_for(root))
        assert rule_ids(result.findings) == ["TL013"]
        assert "CODE_SCHEMA_VERSION" in result.findings[0].message

    def test_edit_with_bump_requires_manifest_refresh(self, tmp_path):
        root = make_project(tmp_path)
        canon = root / "src/pkg/canon.py"
        canon.write_text(
            canon.read_text(encoding="utf-8").replace(
                "CODE_SCHEMA_VERSION = 1", "CODE_SCHEMA_VERSION = 2"
            ),
            encoding="utf-8",
        )
        # Bumped but manifest still pins the old digests: stale manifest.
        result = run_deep(config_for(root))
        assert rule_ids(result.findings) == ["TL013"]
        # Refreshing the manifest settles it.
        write_keyed_manifest(
            root,
            manifest_path="manifest.json",
            key_files=KEY_FILES,
            version_file="src/pkg/canon.py",
        )
        assert run_deep(config_for(root)).findings == []

    def test_read_code_schema_version(self, tmp_path):
        root = make_project(tmp_path)
        assert read_code_schema_version(root, "src/pkg/canon.py") == 1


# ---------------------------------------------------------------------------
# Incremental cache
# ---------------------------------------------------------------------------


class TestCache:
    def test_second_run_hits_and_edit_misses(self, tmp_path):
        root = make_project(tmp_path)
        cache_dir = root / ".cache"
        config = config_for(root, cache_dir=cache_dir)
        first = run_deep(config)
        assert first.cache == {"hits": 0, "misses": 4}
        second = run_deep(config)
        assert second.cache == {"hits": 4, "misses": 0}
        helpers = root / "src/pkg/helpers.py"
        helpers.write_text(
            helpers.read_text(encoding="utf-8") + "\n\ndef extra():\n    return 1\n",
            encoding="utf-8",
        )
        third = run_deep(config)
        assert third.cache == {"hits": 3, "misses": 1}

    def test_cached_and_uncached_findings_identical(self, tmp_path):
        root = make_project(
            tmp_path,
            extra={
                "src/pkg/helpers.py": """
                    import time


                    def normalize(value):
                        return [value, time.time()]
                    """,
            },
        )
        config = config_for(root, cache_dir=root / ".cache")
        first = run_deep(config)
        second = run_deep(config)
        assert second.cache["hits"] == 4
        assert [f.as_dict() for f in first.findings] == [
            f.as_dict() for f in second.findings
        ]


# ---------------------------------------------------------------------------
# Baseline add / expire
# ---------------------------------------------------------------------------


class TestBaseline:
    BAD_HELPERS = {
        "src/pkg/helpers.py": """
            import time


            def normalize(value):
                return [value, time.time()]
            """,
    }

    def test_baseline_absorbs_then_expires(self, tmp_path):
        root = make_project(tmp_path, extra=self.BAD_HELPERS)
        baseline = root / "baseline.json"
        config = config_for(root, baseline_path=baseline)
        assert rule_ids(run_deep(config).findings) == ["TL007"]

        assert update_baseline_file(config) == 1
        entries = load_baseline(baseline)
        assert entries[0]["rule"] == "TL007"
        assert entries[0]["reason"] == "TODO: justify"

        # Baselined: the gate is clean, the report says one was applied.
        result = run_deep(config)
        assert result.findings == []
        assert result.baselined == 1
        assert result.stale_entries == []

        # Fix the code: the entry goes stale and is reported as such.
        (root / "src/pkg/helpers.py").write_text(
            "def normalize(value):\n    return [value]\n", encoding="utf-8"
        )
        result = run_deep(config)
        assert result.findings == []
        assert result.baselined == 0
        assert [e["rule"] for e in result.stale_entries] == ["TL007"]

        # --update-baseline expires it.
        assert update_baseline_file(config) == 0
        assert load_baseline(baseline) == []

    def test_update_preserves_reviewed_reasons(self, tmp_path):
        root = make_project(tmp_path, extra=self.BAD_HELPERS)
        baseline = root / "baseline.json"
        config = config_for(root, baseline_path=baseline)
        update_baseline_file(config)
        entries = load_baseline(baseline)
        entries[0]["reason"] = "timestamp stripped before keying"
        baseline.write_text(
            json.dumps({"schema": "thermolint.baseline/1", "entries": entries}),
            encoding="utf-8",
        )
        update_baseline_file(config)
        assert load_baseline(baseline)[0]["reason"] == (
            "timestamp stripped before keying"
        )

    def test_malformed_baseline_is_loud(self, tmp_path):
        root = make_project(tmp_path)
        baseline = root / "baseline.json"
        baseline.write_text('{"schema": "something/else"}', encoding="utf-8")
        with pytest.raises(ValueError):
            run_deep(config_for(root, baseline_path=baseline))

    def test_fingerprints_survive_line_shifts(self, tmp_path):
        root = make_project(tmp_path, extra=self.BAD_HELPERS)
        baseline = root / "baseline.json"
        config = config_for(root, baseline_path=baseline)
        update_baseline_file(config)
        # Prepend code above the finding: line number changes, fingerprint
        # (rule, path, function, line text, ordinal) does not.
        helpers = root / "src/pkg/helpers.py"
        helpers.write_text(
            "import time\n\n\ndef added():\n    return 0\n\n\n"
            "def normalize(value):\n    return [value, time.time()]\n",
            encoding="utf-8",
        )
        result = run_deep(config)
        assert result.findings == []
        assert result.baselined == 1


# ---------------------------------------------------------------------------
# SARIF output
# ---------------------------------------------------------------------------

#: Structural subset of the SARIF 2.1.0 schema covering everything GitHub
#: code-scanning upload requires of a document (the full OASIS schema is
#: not vendored; network fetches are off the table in tests).
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "$schema": {"type": "string"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "version": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["ruleId", "message", "locations"],
                            "properties": {
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "required": ["physicalLocation"],
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "required": [
                                                    "artifactLocation",
                                                    "region",
                                                ],
                                                "properties": {
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    }
                                                },
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


class TestSarif:
    def _document(self, tmp_path):
        root = make_project(tmp_path, extra=TestBaseline.BAD_HELPERS)
        result = run_deep(config_for(root))
        return sarif_document(result.findings)

    def test_document_validates_against_subset_schema(self, tmp_path):
        jsonschema = pytest.importorskip("jsonschema")
        document = self._document(tmp_path)
        jsonschema.validate(document, SARIF_SUBSET_SCHEMA)

    def test_results_reference_rule_catalog(self, tmp_path):
        document = self._document(tmp_path)
        run = document["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        rule_ids_in_catalog = [rule["id"] for rule in rules]
        for expected in ["TL000", "TL001", "TL007", "TL013"]:
            assert expected in rule_ids_in_catalog
        result = run["results"][0]
        assert result["ruleId"] == "TL007"
        assert rules[result["ruleIndex"]]["id"] == "TL007"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1


# ---------------------------------------------------------------------------
# CLI: exit codes, JSON report v2, flags
# ---------------------------------------------------------------------------


class TestDeepCli:
    def _argv(self, root, *extra):
        return ["--deep", "--project-root", str(root), "--no-cache", *extra]

    def test_exit_zero_on_clean(self, tmp_path, capsys, monkeypatch):
        root = make_project(tmp_path)
        monkeypatch.setattr(
            "thermolint.taint.DEFAULT_ROOT_PATTERNS", ("pkg.canon.*",)
        )
        assert thermolint_main(self._argv(root)) in (0, 1)

    def test_exit_one_on_findings_and_json_deep_section(
        self, tmp_path, capsys
    ):
        root = make_project(tmp_path, extra=TestBaseline.BAD_HELPERS)
        # Use the library path to keep synthetic root patterns; the CLI is
        # exercised end-to-end against the real repo in TestRealRepo.
        result = run_deep(config_for(root, baseline_path=None))
        payload = json.loads(render_json(result.findings, deep=result.deep_section(None)))
        assert payload["schema"] == "thermolint/2"
        assert payload["deep"]["enabled"] is True
        assert payload["deep"]["keyed_zone_size"] >= 2
        assert payload["deep"]["baseline"] == {
            "path": None,
            "applied": 0,
            "stale": [],
        }

    def test_exit_two_on_crash(self, tmp_path, monkeypatch, capsys):
        root = make_project(tmp_path)
        import thermolint.deep as deep_mod

        def boom(config):
            raise RuntimeError("induced analyzer crash")

        monkeypatch.setattr(deep_mod, "run_deep", boom)
        assert thermolint_main(self._argv(root)) == 2
        err = capsys.readouterr().err
        assert "internal error" in err
        assert "induced analyzer crash" in err

    def test_exit_two_on_bad_project_root(self, tmp_path):
        assert (
            thermolint_main(
                ["--deep", "--project-root", str(tmp_path / "nope"), "--no-cache"]
            )
            == 2
        )

    def test_update_baseline_requires_deep(self, tmp_path):
        assert thermolint_main(["--update-baseline"]) == 2

    def test_unknown_deep_rule_id_rejected(self):
        assert thermolint_main(["--select", "TL099"]) == 2

    def test_deep_rule_ids_accepted_by_select(self, tmp_path):
        root = make_project(tmp_path)
        assert (
            thermolint_main(self._argv(root, "--select", "TL007,TL013")) in (0, 1)
        )


# ---------------------------------------------------------------------------
# The real repository: self-check and seeded mutations
# ---------------------------------------------------------------------------


def _copy_repo_tree(tmp_path):
    """Copy the pieces of the real repo the deep pass needs."""
    dest = tmp_path / "repo"
    shutil.copytree(
        REPO_ROOT / "src",
        dest / "src",
        ignore=shutil.ignore_patterns("__pycache__", "*.pyc"),
    )
    manifest = REPO_ROOT / "tools/thermolint/keyed_zone_manifest.json"
    target = dest / "tools/thermolint/keyed_zone_manifest.json"
    target.parent.mkdir(parents=True, exist_ok=True)
    shutil.copy2(manifest, target)
    return dest


class TestRealRepo:
    def test_deep_self_check_is_clean(self):
        result = run_deep(
            DeepConfig(project_root=REPO_ROOT, cache_dir=None)
        )
        assert result.findings == [], "\n".join(
            f.render() for f in result.findings
        )
        assert result.modules >= 50
        assert "repro.store.canonical.config_key" in result.roots
        assert "repro.simulation.sweep._run_workload_task" in result.roots

    def test_mutation_time_time_in_keyed_zone_is_caught(self, tmp_path):
        dest = _copy_repo_tree(tmp_path)
        sweep = dest / "src/repro/simulation/sweep.py"
        source = sweep.read_text(encoding="utf-8")
        needle = "def workload_task_key("
        assert needle in source
        source = source.replace(
            needle, "import time\n\n\n" + needle, 1
        )
        marker = source.index('"""', source.index(needle))
        end = source.index('"""', marker + 3) + 3
        source = source[:end] + "\n    _stamp = time.time()" + source[end:]
        sweep.write_text(source, encoding="utf-8")
        result = run_deep(DeepConfig(project_root=dest, cache_dir=None))
        tl007 = [f for f in result.findings if f.rule_id == "TL007"]
        assert tl007, "injected time.time() was not caught"
        assert any("time.time" in f.message for f in tl007)
        # The same edit also trips the schema-drift gate.
        assert any(f.rule_id == "TL013" for f in result.findings)

    def test_mutation_unsorted_listdir_in_keyed_zone_is_caught(self, tmp_path):
        dest = _copy_repo_tree(tmp_path)
        sweep = dest / "src/repro/simulation/sweep.py"
        source = sweep.read_text(encoding="utf-8")
        needle = "def results_document("
        assert needle in source
        marker = source.index('"""', source.index(needle))
        end = source.index('"""', marker + 3) + 3
        source = source[:end] + (
            "\n    import os\n    _names = os.listdir('.')"
        ) + source[end:]
        sweep.write_text(source, encoding="utf-8")
        result = run_deep(DeepConfig(project_root=dest, cache_dir=None))
        tl009 = [f for f in result.findings if f.rule_id == "TL009"]
        assert tl009, "injected unsorted os.listdir was not caught"

    def test_mutation_keyed_edit_without_bump_is_caught(self, tmp_path):
        dest = _copy_repo_tree(tmp_path)
        canonical = dest / "src/repro/store/canonical.py"
        source = canonical.read_text(encoding="utf-8")
        canonical.write_text(
            source + "\n\nEXTRA_CONSTANT = 7\n", encoding="utf-8"
        )
        result = run_deep(DeepConfig(project_root=dest, cache_dir=None))
        tl013 = [f for f in result.findings if f.rule_id == "TL013"]
        assert tl013, "keyed-zone edit without version bump was not caught"
        assert any("CODE_SCHEMA_VERSION" in f.message for f in tl013)
