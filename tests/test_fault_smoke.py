"""End-to-end fault smoke test (the ``make fault-smoke`` CI gate).

One scenario, asserted tightly: a small fault-injected workload sweep in
which one task kills its worker process outright.  The sweep must still
complete, return every healthy point (with fault summaries), and emit a
failure manifest that names the crashed task.
"""

import json
import os

from repro.faults import FaultConfig
from repro.simulation.resilience import MANIFEST_SCHEMA, run_sweep_resilient
from repro.simulation.sweep import _run_workload_task, build_workload_tasks
from repro.telemetry import Telemetry

#: Which task (by position) kills its worker process.
VICTIM_INDEX = 1


def _run_or_die(arg):
    """Sweep worker that crashes hard on the designated task."""
    index, task = arg
    if index == VICTIM_INDEX:
        os._exit(21)  # simulate a worker crash (OOM-kill, segfault, ...)
    return _run_workload_task(task)


def test_injected_sweep_survives_worker_crash():
    tasks = build_workload_tasks(
        names=["tpcc", "oltp"],
        rpm_steps=2,
        requests=200,
        seed=6,
        fault_config=FaultConfig(seed=6, media_rate=0.05, servo_rate=0.01),
    )
    assert len(tasks) == 4
    telemetry = Telemetry()
    report = run_sweep_resilient(
        list(enumerate(tasks)),
        _run_or_die,
        workers=2,
        retries=0,
        telemetry=telemetry,
    )

    # Every healthy point completed, with its fault summary attached.
    assert report.pool_breaks >= 1
    assert report.ok_count == len(tasks) - 1
    for envelope in report.envelopes:
        if envelope.index == VICTIM_INDEX:
            continue
        result = envelope.result
        assert envelope.ok
        assert result.fault_summary is not None
        assert result.fault_summary["total_injected"] >= 0

    # The manifest names the crashed task.
    manifest = report.manifest(task_labels=[t.label() for t in tasks])
    assert manifest["schema"] == MANIFEST_SCHEMA
    assert manifest["tasks_ok"] == len(tasks) - 1
    (failure,) = manifest["failures"]
    assert failure["index"] == VICTIM_INDEX
    assert failure["error_type"] == "BrokenProcessPool"
    assert failure["task"] == tasks[VICTIM_INDEX].label()
    # Manifest is strict-JSON clean.
    assert json.loads(json.dumps(manifest, allow_nan=False))

    # Recovery counters are mirrored into telemetry.
    def value(name):
        metric = telemetry.registry.get(name)
        return metric.value if metric is not None else 0.0

    assert value("sweep.pool_breaks_total") >= 1.0
    assert value("sweep.tasks_ok") == float(len(tasks) - 1)
    assert value("sweep.tasks_failed_total") == 1.0


def test_injected_sweep_results_match_crash_free_run():
    """The surviving points are bit-identical to a crash-free serial run —
    a pool break must not perturb any healthy result."""
    tasks = build_workload_tasks(
        names=["tpcc"],
        rpm_steps=2,
        requests=200,
        seed=6,
        fault_config=FaultConfig(seed=6, media_rate=0.05),
    )
    clean = [_run_workload_task(task) for task in tasks]
    report = run_sweep_resilient(
        list(enumerate(tasks)), _run_or_die, workers=2, retries=0
    )
    for envelope in report.envelopes:
        if envelope.ok:
            assert envelope.result == clean[envelope.index]
