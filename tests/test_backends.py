"""Protocol conformance for the pluggable execution backends.

Every backend (serial, process, shared-store) is driven two ways:

* **through the resilience layer** (``run_sweep_resilient(backend=...)``),
  proving retries, deadlines, blame attribution and manifests really are
  backend-agnostic — the same knobs produce the same outcomes on every
  fabric; and
* **directly against the protocol** (manual ``submit`` / ``progress`` /
  ``cancel`` calls), pinning the ordering and buffering contracts a new
  backend must honor.

The shared-store backend additionally gets claim-semantics coverage:
peer-result adoption, stale-claim takeover, and no-leaked-claims after
worker failures — all single-threaded and deterministic, because the
"peer" is the test itself manipulating the claim files.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.errors import SimulationError
from repro.simulation.backends import (
    BACKEND_NAMES,
    ProcessPoolBackend,
    SerialBackend,
    SharedStoreBackend,
    reap_executor,
    resolve_backend,
    resolve_backend_name,
)
from repro.simulation.resilience import (
    MANIFEST_SCHEMA,
    run_sweep_cached,
    run_sweep_resilient,
)
from repro.store import ResultStore, config_key

# ---------------------------------------------------------------------------
# Module-level workers (must pickle under any start method)
# ---------------------------------------------------------------------------


def _square(x: int) -> int:
    return x * x


def _raise_if_negative(x: int) -> int:
    if x < 0:
        raise ValueError(f"task rejects negative input {x}")
    return x


def _exit_if_negative(x: int) -> int:
    if x < 0:
        os._exit(23)  # simulates a worker crash (no exception, no cleanup)
    return x


def _hang_if_negative(x: int) -> int:
    if x < 0:
        time.sleep(300.0)
    return x


def _slow_square(x: int) -> int:
    time.sleep(0.2)
    return x * x


def _identity(payload: object) -> object:
    return payload


def _task_key(index: int) -> str:
    return config_key("backend_conformance", {"index": index})


def _make_backend(name, tasks, worker, tmp_path, **shared_kwargs):
    """One backend of each flavor over the same task list."""
    if name == "serial":
        return SerialBackend(tasks, worker)
    if name == "process":
        return ProcessPoolBackend(tasks, worker, workers=2)
    store = ResultStore(root=tmp_path / "conformance-store")
    return SharedStoreBackend(
        tasks,
        worker,
        keys=[_task_key(i) for i in range(len(tasks))],
        store=store,
        encode=_identity,
        decode=_identity,
        kind="backend_conformance",
        **shared_kwargs,
    )


# ---------------------------------------------------------------------------
# Conformance through the resilience layer
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", BACKEND_NAMES)
def test_backend_runs_a_healthy_sweep(name, tmp_path):
    tasks = [0, 1, 2, 3, 4, 5]
    backend = _make_backend(name, tasks, _square, tmp_path)
    report = run_sweep_resilient(tasks, _square, backend=backend)
    assert report.backend == name
    assert report.results() == [x * x for x in tasks]
    assert [e.index for e in report.envelopes] == list(range(len(tasks)))
    assert report.manifest()["schema"] == MANIFEST_SCHEMA
    assert report.manifest()["backend"] == name


@pytest.mark.parametrize("name", BACKEND_NAMES)
def test_retry_budget_is_isolated_per_task(name, tmp_path):
    """One task exhausting its budget must not steal attempts from others."""
    tasks = [-1, 3, -2, 4]
    backend = _make_backend(name, tasks, _raise_if_negative, tmp_path)
    report = run_sweep_resilient(
        tasks, _raise_if_negative, backend=backend, retries=2
    )
    failed = {e.index: e for e in report.failed}
    assert set(failed) == {0, 2}
    for envelope in failed.values():
        assert envelope.attempts == 3  # 1 try + 2 retries, its own budget
        assert envelope.error_type == "ValueError"
        assert envelope.traceback_text  # worker-side traceback captured
    ok = {e.index: e for e in report.envelopes if e.ok}
    assert {i: e.result for i, e in ok.items()} == {1: 3, 3: 4}
    assert all(e.attempts == 1 for e in ok.values())
    assert report.retries == 4  # 2 retries for each of the 2 failing tasks


@pytest.mark.parametrize("name", BACKEND_NAMES)
def test_worker_failure_mid_sweep_per_backend(name, tmp_path):
    """The unified reclaim path (satellite: one ``reap_executor`` helper)
    survives a dying worker on every backend.

    The process backend gets a real worker-process kill (``os._exit``);
    the in-process backends get the strongest equivalent that doesn't
    take the test runner down with it — a raising worker — plus, for
    shared-store, the claim-hygiene assertion that a failed attempt
    never leaks its claim file.
    """
    tasks = [1, -1, 2]
    if name == "process":
        backend = _make_backend(name, tasks, _exit_if_negative, tmp_path)
        report = run_sweep_resilient(
            tasks, _exit_if_negative, backend=backend, retries=0
        )
        assert report.pool_breaks >= 1
        blamed = {e.index: e for e in report.failed}
        assert set(blamed) == {1}
        assert blamed[1].error_type == "BrokenProcessPool"
    else:
        backend = _make_backend(name, tasks, _raise_if_negative, tmp_path)
        report = run_sweep_resilient(
            tasks, _raise_if_negative, backend=backend, retries=0
        )
        assert {e.index for e in report.failed} == {1}
    ok = {e.index: e.result for e in report.envelopes if e.ok}
    assert ok == {0: 1, 2: 2}
    if name == "shared-store":
        claims = ResultStore(root=tmp_path / "conformance-store").claims_dir
        leaked = list(claims.glob("*.claim")) if claims.is_dir() else []
        assert leaked == [], "failed attempts must release their claims"


def test_deadline_expires_hung_process_worker(tmp_path):
    tasks = [-1, 5]
    backend = _make_backend("process", tasks, _hang_if_negative, tmp_path)
    report = run_sweep_resilient(
        tasks, _hang_if_negative, backend=backend, retries=0, timeout_s=0.5
    )
    assert report.timeouts == 1
    timed_out = {e.index: e for e in report.failed}
    assert set(timed_out) == {0}
    assert timed_out[0].status == "timeout"
    assert report.results()[1] == 5


def test_deadline_expires_silent_shared_store_peer(tmp_path):
    """A ticket waiting on a peer that never delivers times out like any
    other task — the deadline applies to peer-waits too."""
    store = ResultStore(root=tmp_path)
    key = _task_key(0)
    backend = SharedStoreBackend(
        [9], _square, keys=[key], store=store,
        encode=_identity, decode=_identity,
        stale_claim_s=3600.0,  # the claim must stay "fresh" forever
    )
    assert store.try_claim(key)  # the silent peer
    report = run_sweep_resilient(
        [9], _square, backend=backend, retries=0, timeout_s=0.4
    )
    assert report.timeouts == 1
    assert report.failed[0].status == "timeout"


def test_serial_backend_does_not_enforce_deadlines(tmp_path):
    """The serial path computes synchronously and reports nothing in
    flight, preserving the long-standing no-deadline contract there."""
    tasks = [3]
    backend = _make_backend("serial", tasks, _slow_square, tmp_path)
    report = run_sweep_resilient(
        tasks, _slow_square, backend=backend, retries=0, timeout_s=0.05
    )
    assert report.timeouts == 0
    assert report.results() == [9]


def test_zero_worker_process_request_resolves_to_serial():
    """``workers=0`` has always meant in-process execution; the resolved
    backend (and the manifest) must record what actually ran."""
    resolved = resolve_backend("process", [1, 2], _square, workers=0)
    assert resolved.name == "serial"
    report = run_sweep_resilient([1, 2], _square, workers=0, backend="process")
    assert report.backend == "serial"
    assert report.results() == [1, 4]


# ---------------------------------------------------------------------------
# Direct protocol drives: ordering, buffering, cancel semantics
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", BACKEND_NAMES)
def test_progress_only_reports_submitted_tickets(name, tmp_path):
    tasks = [2, 3, 4]
    backend = _make_backend(name, tasks, _square, tmp_path)
    try:
        backend.submit(0, 1)
        backend.submit(2, 1)
        seen = {}
        deadline = time.monotonic() + 30.0
        while len(seen) < 2 and time.monotonic() < deadline:
            for completion in backend.progress(0.05).completions:
                seen[(completion.index, completion.attempt)] = completion
        assert set(seen) == {(0, 1), (2, 1)}
        assert seen[(0, 1)].envelope.result == 4
        assert seen[(2, 1)].envelope.result == 16
        assert backend.cancel() == []  # nothing left in flight
    finally:
        backend.shutdown()


@pytest.mark.parametrize("name", ["serial", "shared-store"])
def test_cancel_returns_queued_tickets(name, tmp_path):
    """Tickets accepted but not yet computed come back from cancel, and
    the backend accepts fresh submits afterwards."""
    tasks = [5, 6]
    backend = _make_backend(name, tasks, _square, tmp_path)
    backend.submit(0, 1)
    backend.submit(1, 2)
    assert sorted(backend.cancel()) == [(0, 1), (1, 2)]
    backend.submit(1, 1)
    completions = backend.progress(0.05).completions
    assert [(c.index, c.envelope.result) for c in completions] == [(1, 36)]
    backend.shutdown()


def test_process_cancel_reaps_hung_workers_and_respawns(tmp_path):
    tasks = [-1, -2, 7]
    backend = _make_backend("process", tasks, _hang_if_negative, tmp_path)
    backend.submit(0, 1)
    backend.submit(1, 1)
    time.sleep(0.3)  # let the workers actually start hanging
    started = time.monotonic()
    unfinished = backend.cancel()
    assert time.monotonic() - started < 30.0, "cancel must reclaim hung workers"
    assert sorted(unfinished) == [(0, 1), (1, 1)]
    # The fabric respawns lazily: a fresh submit on the same backend works.
    backend.submit(2, 1)
    deadline = time.monotonic() + 30.0
    result = None
    while result is None and time.monotonic() < deadline:
        for completion in backend.progress(0.05).completions:
            result = completion.envelope.result
    assert result == 7
    backend.shutdown()


def test_process_cancel_buffers_completed_work(tmp_path):
    """Attempts that finished before a cancel are never discarded; the
    next progress() delivers them."""
    tasks = [4]
    backend = _make_backend("process", tasks, _square, tmp_path)
    backend.submit(0, 1)
    # Wait for the future to finish without collecting it — progress()
    # would deliver it, which is exactly what this test must not do.
    (future,) = list(backend._running)
    deadline = time.monotonic() + 30.0
    while not future.done() and time.monotonic() < deadline:
        time.sleep(0.02)
    assert future.done(), "trivial task never finished"
    assert backend.cancel() == []  # finished attempt is not "unfinished"
    buffered = backend.progress(0.0).completions
    assert [(c.index, c.envelope.result) for c in buffered] == [(0, 16)]
    backend.shutdown()


def test_reap_executor_reclaims_hung_workers():
    """The single kill helper shared by respawn, cancel and interrupt
    teardown terminates workers stuck in user code (satellite fix)."""
    executor = ProcessPoolExecutor(max_workers=2)
    executor.submit(_hang_if_negative, -1)
    executor.submit(_hang_if_negative, -2)
    deadline = time.monotonic() + 30.0
    while not executor._processes and time.monotonic() < deadline:
        time.sleep(0.01)
    processes = list(executor._processes.values())
    assert processes, "workers never spawned"
    started = time.monotonic()
    reap_executor(executor)
    assert time.monotonic() - started < 30.0
    for process in processes:
        assert not process.is_alive()


# ---------------------------------------------------------------------------
# Shared-store claim semantics
# ---------------------------------------------------------------------------


def test_shared_store_adopts_peer_results(tmp_path):
    """A ticket whose key a peer claims waits, then completes from the
    peer's published result without computing anything locally."""
    store = ResultStore(root=tmp_path)
    key = _task_key(0)
    backend = SharedStoreBackend(
        [7], _square, keys=[key], store=store,
        encode=_identity, decode=_identity,
    )
    assert store.try_claim(key)  # the test plays the peer
    backend.submit(0, 1)
    first = backend.progress(0.01)
    assert first.completions == []
    assert [(f.index, f.attempt) for f in first.in_flight] == [(0, 1)]
    # Peer publishes its result and releases the claim...
    store.put(key, 49, kind="backend_conformance")
    store.release_claim(key)
    second = backend.progress(0.01)
    assert len(second.completions) == 1
    envelope = second.completions[0].envelope
    assert envelope.ok and envelope.result == 49
    assert envelope.cached and envelope.attempts == 0
    assert backend.result_by_key(key) == 49
    backend.shutdown()


def test_shared_store_recovers_from_stale_claim(tmp_path):
    """A claim left behind by a dead peer (old mtime, no result) is
    broken after ``stale_claim_s`` and the task recomputed locally."""
    store = ResultStore(root=tmp_path)
    key = _task_key(0)
    assert store.try_claim(key)
    ancient = time.time() - 3600.0
    os.utime(store.claim_path(key), (ancient, ancient))
    backend = SharedStoreBackend(
        [6], _square, keys=[key], store=store,
        encode=_identity, decode=_identity, stale_claim_s=1.0,
    )
    report = run_sweep_resilient([6], _square, backend=backend, timeout_s=30.0)
    assert report.results() == [36]
    assert not report.failed
    assert report.envelopes[0].cached is False, "recomputed, not adopted"
    assert store.claim_age_s(key) is None, "broken claim must be released"
    assert store.get(key) == 36, "the recomputed result is published"


def test_shared_store_claim_gone_without_result_recomputes(tmp_path):
    """Claim released but no result behind it (peer crashed between
    release and put): the waiting ticket recomputes instead of failing."""
    store = ResultStore(root=tmp_path)
    key = _task_key(0)
    backend = SharedStoreBackend(
        [8], _square, keys=[key], store=store,
        encode=_identity, decode=_identity,
    )
    assert store.try_claim(key)
    backend.submit(0, 1)
    assert backend.progress(0.01).completions == []  # parked behind peer
    store.release_claim(key)  # ...but the peer never published
    deadline = time.monotonic() + 10.0
    completions = []
    while not completions and time.monotonic() < deadline:
        completions = backend.progress(0.01).completions
    assert completions[0].envelope.result == 64
    assert completions[0].envelope.cached is False
    backend.shutdown()


def test_shared_store_skewed_clock_does_not_break_live_claim(tmp_path):
    """Peer clock skew must not kill a live claim (satellite fix).

    The claim's mtime is hours in the past (as a skewed NFS peer's clock
    would stamp it), but *we* have only just observed it — staleness is
    measured on our own monotonic clock from first observation, so the
    claim survives every poll inside the stale window.  The pre-fix
    ``time.time() - st_mtime`` aging broke it on the first poll.
    """
    store = ResultStore(root=tmp_path)
    key = _task_key(0)
    assert store.try_claim(key)
    skewed = time.time() - 7200.0  # peer clock 2 h behind ours
    os.utime(store.claim_path(key), (skewed, skewed))
    backend = SharedStoreBackend(
        [5], _square, keys=[key], store=store,
        encode=_identity, decode=_identity, stale_claim_s=30.0,
    )
    backend.submit(0, 1)
    for _ in range(5):
        progress = backend.progress(0.01)
        assert progress.completions == []
        assert [(f.index, f.attempt) for f in progress.in_flight] == [(0, 1)]
        assert store.claim_path(key).exists(), "live claim was broken"
    # The live peer finishes normally and the waiting ticket adopts it.
    store.put(key, 25, kind="backend_conformance")
    store.release_claim(key)
    adopted = backend.progress(0.01)
    assert len(adopted.completions) == 1
    assert adopted.completions[0].envelope.cached
    backend.shutdown()


def test_shared_store_refreshed_claim_restarts_staleness_clock(tmp_path):
    """An mtime change marks a new claim generation: the local staleness
    observation restarts instead of accumulating across generations."""
    store = ResultStore(root=tmp_path)
    key = _task_key(0)
    assert store.try_claim(key)
    backend = SharedStoreBackend(
        [5], _square, keys=[key], store=store,
        encode=_identity, decode=_identity, stale_claim_s=0.15,
    )
    backend.submit(0, 1)
    assert backend.progress(0.01).completions == []  # parked, observing
    time.sleep(0.1)
    os.utime(store.claim_path(key))  # peer heartbeats its claim
    assert backend.progress(0.01).completions == []
    time.sleep(0.1)
    # 0.2 s total wall time > stale_claim_s, but only ~0.1 s since the
    # refresh — the claim must survive this poll.
    backend.progress(0.01)
    assert store.claim_path(key).exists(), "refreshed claim was broken"
    backend.shutdown()


def test_break_claim_if_stale_requires_unchanged_mtime(tmp_path):
    """The store re-stats immediately before unlinking: a claim whose
    mtime moved since first observation is someone else's and survives."""
    store = ResultStore(root=tmp_path)
    key = _task_key(0)
    assert store.try_claim(key)
    observed = store.claim_mtime(key)
    assert observed is not None
    # A live peer re-wins or refreshes the claim between our observation
    # and our break attempt...
    later = observed + 5.0
    os.utime(store.claim_path(key), (later, later))
    assert store.break_claim_if_stale(key, observed) is False
    assert store.claim_mtime(key) is not None, "fresh claim must survive"
    # ...but an unchanged claim is provably the one we watched go stale.
    assert store.break_claim_if_stale(key, later) is True
    assert store.claim_mtime(key) is None
    # And a vanished claim is a no-op, not an error.
    assert store.break_claim_if_stale(key, later) is False


def test_run_sweep_cached_shared_store_persists_exactly_once(tmp_path):
    """``persists_results`` backends publish inside the transport; the
    caching layer must not put a second copy."""
    store = ResultStore(root=tmp_path)
    tasks = [2, 3]
    keys = [_task_key(i) for i in range(len(tasks))]
    backend = SharedStoreBackend(
        tasks, _square, keys=keys, store=store,
        encode=_identity, decode=_identity, kind="backend_conformance",
    )
    report = run_sweep_cached(
        tasks, _square, store,
        key_fn=lambda t: keys[tasks.index(t)],
        encode=_identity, decode=_identity,
        kind="backend_conformance", backend=backend,
    )
    assert report.results() == [4, 9]
    assert report.backend == "shared-store"
    assert store.puts == len(tasks), "exactly one put per computed miss"
    assert store.misses == len(tasks) and store.hits == 0


# ---------------------------------------------------------------------------
# Resolution: names, env var, guard rails
# ---------------------------------------------------------------------------


def test_resolve_backend_name_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_SWEEP_BACKEND", raising=False)
    assert resolve_backend_name(None) == "process"
    assert resolve_backend_name("serial") == "serial"
    monkeypatch.setenv("REPRO_SWEEP_BACKEND", "shared-store")
    assert resolve_backend_name(None) == "shared-store"
    assert resolve_backend_name("serial") == "serial"  # explicit wins
    monkeypatch.setenv("REPRO_SWEEP_BACKEND", "")
    assert resolve_backend_name(None) == "process"


def test_resolve_backend_name_rejects_unknown(monkeypatch):
    with pytest.raises(SimulationError, match="unknown execution backend"):
        resolve_backend_name("quantum")
    monkeypatch.setenv("REPRO_SWEEP_BACKEND", "quantum")
    with pytest.raises(SimulationError, match="REPRO_SWEEP_BACKEND"):
        resolve_backend_name(None)


def test_shared_store_needs_store_and_codec():
    with pytest.raises(SimulationError, match="shared-store"):
        run_sweep_resilient([1, 2], _square, backend="shared-store")
