"""Property-based tests (hypothesis) for core invariants."""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.capacity import RecordingTechnology, ZonedSurface, gray_code, gray_decode
from repro.capacity.ecc import smooth_ecc_bits_per_sector
from repro.geometry.platter import Platter
from repro.performance.idr import idr_mb_per_s, required_rpm_for_idr
from repro.performance.rotation import angle_at, wait_for_angle_ms
from repro.performance.seek import SeekModel, seek_parameters_for_platter
from repro.simulation.layout import DiskLayout
from repro.simulation.raid import Raid0Geometry, Raid5Geometry
from repro.simulation.request import Request
from repro.simulation.statistics import ResponseTimeStats
from repro.thermal.network import ThermalNetwork, ThermalNode
from repro.thermal.viscous import rpm_for_viscous_power, viscous_power_w

# Shared strategies -----------------------------------------------------------

diameters = st.floats(min_value=1.0, max_value=4.0)
rpms = st.floats(min_value=3600.0, max_value=200000.0)


class TestCapacityProperties:
    @given(track=st.integers(min_value=0, max_value=1 << 20))
    def test_gray_roundtrip(self, track):
        assert gray_decode(gray_code(track)) == track

    @given(track=st.integers(min_value=0, max_value=1 << 20))
    def test_gray_adjacent_single_bit(self, track):
        assert bin(gray_code(track) ^ gray_code(track + 1)).count("1") == 1

    @given(
        kbpi=st.floats(min_value=100, max_value=2000),
        ktpi=st.floats(min_value=5, max_value=600),
        diameter=diameters,
        zones=st.integers(min_value=1, max_value=60),
    )
    @settings(max_examples=40, deadline=None)
    def test_zone_partition_invariants(self, kbpi, ktpi, diameter, zones):
        tech = RecordingTechnology.from_kilo_units(kbpi, ktpi)
        platter = Platter(diameter_in=diameter)
        try:
            surface = ZonedSurface(platter, tech, zone_count=zones)
        except Exception:
            return  # infeasible combination (too few tracks) is allowed to raise
        assert sum(z.track_count for z in surface.zones) == surface.cylinders
        sectors = [z.sectors_per_track for z in surface.zones]
        assert sectors == sorted(sectors, reverse=True)
        assert surface.sectors_per_surface == sum(z.sectors for z in surface.zones)

    @given(density=st.floats(min_value=1e9, max_value=1e15))
    def test_smooth_ecc_bounded(self, density):
        value = smooth_ecc_bits_per_sector(density)
        assert 416 <= value <= 1440


class TestPerformanceProperties:
    @given(rpm=rpms, ntz0=st.integers(min_value=1, max_value=5000))
    def test_idr_inverse(self, rpm, ntz0):
        assert required_rpm_for_idr(idr_mb_per_s(rpm, ntz0), ntz0) == math.isclose(
            rpm, required_rpm_for_idr(idr_mb_per_s(rpm, ntz0), ntz0), rel_tol=1e-9
        ) or True
        # (explicit check)
        assert math.isclose(
            required_rpm_for_idr(idr_mb_per_s(rpm, ntz0), ntz0), rpm, rel_tol=1e-9
        )

    @given(
        diameter=diameters,
        cylinders=st.integers(min_value=100, max_value=100_000),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_seek_monotone(self, diameter, cylinders, data):
        model = SeekModel(seek_parameters_for_platter(diameter), cylinders)
        d1 = data.draw(st.integers(min_value=0, max_value=cylinders - 1))
        d2 = data.draw(st.integers(min_value=0, max_value=cylinders - 1))
        lo, hi = sorted((d1, d2))
        assert model.seek_time_ms(lo) <= model.seek_time_ms(hi) + 1e-12

    @given(
        now=st.floats(min_value=0, max_value=1e6),
        target=st.floats(min_value=0, max_value=0.999),
        rpm=rpms,
    )
    def test_rotational_wait_in_one_revolution(self, now, target, rpm):
        wait = wait_for_angle_ms(now, target, rpm)
        period = 60000.0 / rpm
        assert 0 <= wait < period
        assert math.isclose(
            angle_at(now + wait, rpm) % 1.0, target, abs_tol=1e-6
        ) or math.isclose(abs(angle_at(now + wait, rpm) - target), 1.0, abs_tol=1e-6)


class TestThermalProperties:
    @given(rpm=rpms, diameter=diameters, platters=st.integers(min_value=1, max_value=8))
    def test_viscous_inverse(self, rpm, diameter, platters):
        power = viscous_power_w(rpm, diameter, platters)
        assert math.isclose(
            rpm_for_viscous_power(power, diameter, platters), rpm, rel_tol=1e-9
        )

    @given(
        rpm1=rpms,
        rpm2=rpms,
        diameter=diameters,
    )
    def test_viscous_monotone_in_rpm(self, rpm1, rpm2, diameter):
        lo, hi = sorted((rpm1, rpm2))
        assert viscous_power_w(lo, diameter) <= viscous_power_w(hi, diameter)

    @given(
        heat=st.floats(min_value=0.1, max_value=100.0),
        g_link=st.floats(min_value=0.1, max_value=10.0),
        g_amb=st.floats(min_value=0.1, max_value=10.0),
        ambient=st.floats(min_value=-20, max_value=60),
    )
    @settings(max_examples=40, deadline=None)
    def test_two_node_steady_energy_balance(self, heat, g_link, g_amb, ambient):
        net = ThermalNetwork(
            [ThermalNode("a", 1.0), ThermalNode("b", 10.0)], ambient_c=ambient
        )
        net.connect("a", "b", g_link)
        net.connect_ambient("b", g_amb)
        net.set_heat("a", heat)
        steady = net.steady_state()
        outflow = g_amb * (steady["b"] - ambient)
        assert math.isclose(outflow, heat, rel_tol=1e-6)
        assert steady["a"] >= steady["b"] >= ambient

    @given(
        heat=st.floats(min_value=0.1, max_value=50.0),
        dt=st.floats(min_value=0.01, max_value=10.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_implicit_euler_bounded_by_steady_state(self, heat, dt):
        net = ThermalNetwork(
            [ThermalNode("a", 0.01), ThermalNode("b", 100.0)], ambient_c=20.0
        )
        net.connect("a", "b", 1.0)
        net.connect_ambient("b", 0.5)
        net.set_heat("a", heat)
        steady = net.steady_state()
        for _ in range(50):
            net.step(dt)
            assert net.temperature("a") <= steady["a"] + 1e-6
            assert net.temperature("b") <= steady["b"] + 1e-6
            assert net.temperature("a") >= 20.0 - 1e-6


class TestLayoutProperties:
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        surfaces=st.integers(min_value=1, max_value=8),
        zones=st.integers(min_value=1, max_value=20),
        data=st.data(),
    )
    def test_lba_roundtrip(self, surfaces, zones, data):
        tech = RecordingTechnology.from_kilo_units(300, 5)
        surface = ZonedSurface(Platter(diameter_in=2.6), tech, zone_count=zones)
        layout = DiskLayout(surface, surfaces=surfaces)
        lba = data.draw(st.integers(min_value=0, max_value=layout.total_sectors - 1))
        addr = layout.locate(lba)
        assert layout.lba_of(addr.cylinder, addr.surface, addr.sector) == lba

    @settings(max_examples=25, deadline=None)
    @given(
        disks=st.integers(min_value=3, max_value=12),
        stripe=st.integers(min_value=1, max_value=64),
        lba=st.integers(min_value=0, max_value=10_000),
        sectors=st.integers(min_value=1, max_value=512),
        is_write=st.booleans(),
    )
    def test_raid5_plan_conservation(self, disks, stripe, lba, sectors, is_write):
        geometry = Raid5Geometry(disks, stripe, disk_sectors=100_000)
        if lba + sectors > geometry.logical_sectors:
            return
        request = Request(arrival_ms=0.0, lba=lba, sectors=sectors, is_write=is_write)
        plan = geometry.plan(request)
        writes = [c for c in plan.all_children() if c.is_write]
        reads = [c for c in plan.all_children() if not c.is_write]
        if is_write:
            data_written = sum(c.sectors for c in writes)
            # Data plus one parity unit per touched stripe row.
            rows = set(
                u // geometry.data_disks
                for u in range(lba // stripe, (lba + sectors - 1) // stripe + 1)
            )
            assert data_written == sectors + len(rows) * stripe
            for child in plan.all_children():
                assert 0 <= child.disk < disks
        else:
            assert not writes
            assert sum(c.sectors for c in reads) == sectors

    @settings(max_examples=25, deadline=None)
    @given(
        disks=st.integers(min_value=1, max_value=12),
        stripe=st.integers(min_value=1, max_value=64),
        lba=st.integers(min_value=0, max_value=10_000),
        sectors=st.integers(min_value=1, max_value=512),
    )
    def test_raid0_plan_conservation(self, disks, stripe, lba, sectors):
        geometry = Raid0Geometry(disks, stripe, disk_sectors=100_000)
        if lba + sectors > geometry.logical_sectors:
            return
        request = Request(arrival_ms=0.0, lba=lba, sectors=sectors)
        plan = geometry.plan(request)
        assert sum(c.sectors for c in plan.all_children()) == sectors
        for child in plan.all_children():
            assert child.lba + child.sectors <= 100_000


class TestStatisticsProperties:
    @given(samples=st.lists(st.floats(min_value=0, max_value=1e4), min_size=1, max_size=200))
    def test_cdf_monotone_and_bounded(self, samples):
        stats = ResponseTimeStats()
        for sample in samples:
            stats.add(sample)
        cdf = stats.cdf()
        fractions = [f for _, f in cdf]
        assert fractions == sorted(fractions)
        assert all(0.0 <= f <= 1.0 for f in fractions)

    @given(samples=st.lists(st.floats(min_value=0, max_value=1e4), min_size=1, max_size=200))
    def test_percentile_bounds(self, samples):
        stats = ResponseTimeStats()
        for sample in samples:
            stats.add(sample)
        assert stats.percentile_ms(0) == min(samples)
        assert stats.percentile_ms(100) == max(samples)
        assert min(samples) <= stats.median_ms() <= max(samples)
        # Mean may differ from the extremes by floating rounding.
        tolerance = 1e-9 * (abs(max(samples)) + 1.0)
        assert min(samples) - tolerance <= stats.mean_ms() <= max(samples) + tolerance
