"""Property tests for the canonical key discipline (repro.store.canonical).

The store is only safe if its keys obey two laws over *arbitrary*
configurations, not just the ones we thought of:

* **Invariance** — spelling that doesn't change meaning doesn't change
  the key: dict insertion order, ``-0.0`` vs ``0.0``, ``15000`` vs
  ``15000.0``, tuple vs list, a JSON round trip.
* **Sensitivity** — any material change (one leaf edited, one field
  added or removed, the code-schema version bumped, the task kind
  changed) changes the key.

These are fuzzed with the stdlib ``random`` module under a fixed seed —
deterministic across hosts and runs, no extra dependency — over at least
500 generated configurations.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.errors import StoreError
from repro.store import (
    CODE_SCHEMA_VERSION,
    canonical_json,
    canonicalize,
    config_key,
    decode_payload,
    encode_payload,
)

FUZZ_CONFIGS = 500
KIND = "workload_sweep/1"


# ---------------------------------------------------------------------------
# Generators (pure stdlib, seeded)
# ---------------------------------------------------------------------------


def _leaf(rng: random.Random):
    choice = rng.randrange(7)
    if choice == 0:
        return None
    if choice == 1:
        return rng.random() < 0.5
    if choice == 2:
        return rng.randrange(-10_000, 10_000)
    if choice == 3:
        return rng.uniform(-1e6, 1e6)
    if choice == 4:
        # Integral floats and signed zeros: the folding cases.
        return rng.choice([0.0, -0.0, 1.0, -1.0, 15000.0, 42.0, -7.0])
    if choice == 5:
        return "".join(
            rng.choice("abcdefghij_µé") for _ in range(rng.randrange(0, 12))
        )
    return rng.choice(["tpcc", "oltp", "openmail", "search_engine", "tpch"])


def _value(rng: random.Random, depth: int):
    if depth <= 0 or rng.random() < 0.6:
        return _leaf(rng)
    if rng.random() < 0.5:
        return [_value(rng, depth - 1) for _ in range(rng.randrange(0, 4))]
    return {
        f"k{rng.randrange(20)}": _value(rng, depth - 1)
        for _ in range(rng.randrange(0, 5))
    }


def _config(rng: random.Random) -> dict:
    return {
        f"field{index}": _value(rng, depth=3)
        for index in range(rng.randrange(1, 8))
    }


def _shuffled(rng: random.Random, value):
    """Same meaning, different spelling: reorder dicts, list->tuple."""
    if isinstance(value, dict):
        items = list(value.items())
        rng.shuffle(items)
        return {key: _shuffled(rng, item) for key, item in items}
    if isinstance(value, list):
        return tuple(_shuffled(rng, item) for item in value)
    if isinstance(value, float) and value == 0.0:
        return -value  # flip the zero's sign
    if isinstance(value, float) and value.is_integer() and abs(value) < 2**53:
        return int(value)  # int-vs-float equivalent
    return value


def _mutate(rng: random.Random, config: dict) -> dict:
    """One *material* change somewhere in the config."""
    mutated = json.loads(json.dumps(config))  # deep copy

    def paths(value, prefix):
        if isinstance(value, dict):
            for key, item in value.items():
                yield from paths(item, prefix + [key])
        elif isinstance(value, list):
            for index, item in enumerate(value):
                yield from paths(item, prefix + [index])
        else:
            yield prefix, value

    leaves = list(paths(mutated, []))
    if not leaves:
        mutated["extra_field"] = 1
        return mutated
    path, value = leaves[rng.randrange(len(leaves))]
    if not path:
        mutated["extra_field"] = 1
        return mutated
    target = mutated
    for step in path[:-1]:
        target = target[step]
    if isinstance(value, bool):
        target[path[-1]] = not value
    elif isinstance(value, (int, float)):
        target[path[-1]] = value + 1
    elif isinstance(value, str):
        target[path[-1]] = value + "x"
    else:  # None
        target[path[-1]] = 0
    return mutated


# ---------------------------------------------------------------------------
# The fuzzed laws
# ---------------------------------------------------------------------------


def test_key_invariant_under_equivalent_spellings():
    rng = random.Random(0xD15C)
    for _ in range(FUZZ_CONFIGS):
        config = _config(rng)
        respelled = _shuffled(rng, config)
        assert config_key(KIND, config) == config_key(KIND, respelled), (
            f"equivalent spellings hashed differently:\n{config!r}\n"
            f"{respelled!r}"
        )


def test_key_differs_on_any_material_change():
    rng = random.Random(0xBEEF)
    for _ in range(FUZZ_CONFIGS):
        config = _config(rng)
        mutated = _mutate(rng, config)
        if canonicalize(mutated) == canonicalize(config):
            # A mutation can collide with folding (e.g. -0.0 + 1 == 1.0
            # while original leaf was 1): only materially different
            # canonical forms are required to differ.
            continue
        assert config_key(KIND, config) != config_key(KIND, mutated), (
            f"material change kept the key:\n{config!r}\n{mutated!r}"
        )


def test_key_differs_on_schema_bump_and_kind():
    rng = random.Random(0xCAFE)
    for _ in range(FUZZ_CONFIGS):
        config = _config(rng)
        base = config_key(KIND, config)
        assert base != config_key(
            KIND, config, schema_version=CODE_SCHEMA_VERSION + 1
        )
        assert base != config_key("roadmap_sweep/1", config)


def test_canonical_form_round_trips_through_json():
    rng = random.Random(0xF00D)
    for _ in range(FUZZ_CONFIGS):
        config = _config(rng)
        serialized = canonical_json(config)
        recovered = json.loads(serialized)
        assert canonicalize(recovered) == canonicalize(config)
        assert config_key(KIND, recovered) == config_key(KIND, config)
        # And the canonical serialization is a fixed point.
        assert canonical_json(recovered) == serialized


# ---------------------------------------------------------------------------
# Directed edge cases the fuzz might visit only by luck
# ---------------------------------------------------------------------------


class TestNumberFolding:
    def test_negative_zero_folds_to_int_zero(self):
        assert canonicalize(-0.0) == 0
        assert canonical_json({"x": -0.0}) == canonical_json({"x": 0})

    def test_int_float_equivalents_fold(self):
        assert config_key(KIND, {"rpm": 15000}) == config_key(
            KIND, {"rpm": 15000.0}
        )

    def test_non_integral_floats_stay_distinct(self):
        assert config_key(KIND, {"x": 1.5}) != config_key(KIND, {"x": 1})
        assert canonicalize(1.5) == 1.5

    def test_giant_integral_floats_do_not_fold(self):
        # Beyond 2**53 a float cannot represent every int; folding would
        # conflate genuinely different configs.
        big = float(2**60)
        assert canonicalize(big) == big

    def test_bools_are_not_numbers(self):
        assert canonicalize(True) is True
        assert config_key(KIND, {"x": True}) != config_key(KIND, {"x": 1})

    def test_nonfinite_floats_get_sentinels(self):
        assert canonicalize(float("inf")) == "__inf__"
        assert canonicalize(float("-inf")) == "__-inf__"
        assert canonicalize(float("nan")) == "__nan__"


class TestCanonicalizeErrors:
    def test_non_string_mapping_keys_rejected(self):
        with pytest.raises(StoreError):
            canonicalize({1: "x"})

    def test_unserializable_types_rejected(self):
        with pytest.raises(StoreError):
            canonicalize({"x": object()})


class TestPayloadCodec:
    def test_nonfinite_floats_round_trip_exactly(self):
        import math

        payload = encode_payload(
            {"min": math.inf, "max": -math.inf, "samples": [1.0, math.nan]}
        )
        json.dumps(payload, allow_nan=False)  # strict-JSON safe
        decoded = decode_payload(payload)
        assert decoded["min"] == math.inf
        assert decoded["max"] == -math.inf
        assert math.isnan(decoded["samples"][1])

    def test_tuples_become_lists(self):
        assert encode_payload((1, 2)) == [1, 2]

    def test_unknown_float_tag_rejected(self):
        with pytest.raises(StoreError):
            decode_payload({"$repro.float": "huge"})

    def test_non_string_keys_rejected(self):
        with pytest.raises(StoreError):
            encode_payload({1: 2})

    def test_unencodable_type_rejected(self):
        with pytest.raises(StoreError):
            encode_payload({"x": set()})
