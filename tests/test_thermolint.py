"""Tests for the thermolint static-analysis pass (tools/thermolint).

Each TL rule gets a known-bad fixture it must fire on and a clean fixture it
must stay silent on; suppression comments and reporters are covered, and a
self-check asserts the shipped ``src/repro`` tree is thermolint-clean.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
TOOLS_DIR = REPO_ROOT / "tools"
if str(TOOLS_DIR) not in sys.path:
    sys.path.insert(0, str(TOOLS_DIR))

from thermolint import lint_source, render_json, render_text, rule_by_id, run_paths
from thermolint.cli import main as thermolint_main
from thermolint.engine import PARSE_ERROR_RULE

MODEL_PATH = "src/repro/thermal/model.py"


def rule_ids(findings):
    return [finding.rule_id for finding in findings]


# ---------------------------------------------------------------------------
# TL001 — magic unit constants
# ---------------------------------------------------------------------------


class TestTL001MagicUnitConstants:
    @pytest.mark.parametrize(
        "snippet",
        [
            "radius_m = radius_in * 0.0254\n",
            "width_mm = width_in * 25.4\n",
            "t_k = t_c + 273.15\n",
            "cap_b = cap_gb * 1e9\n",
            "cap_b = cap_gb * 1_000_000_000\n",
            "rate = raw / 1048576\n",
            "size = 4 * 1024 * 1024\n",
            "size = 1024 * 1024 * 1024\n",
            "ms = 60000.0 / rpm\n",
        ],
    )
    def test_fires_on_magic_literals(self, snippet):
        findings = lint_source(snippet, path=MODEL_PATH)
        assert "TL001" in rule_ids(findings)

    def test_fires_on_rpm_to_rad_chain(self):
        snippet = "import math\nomega = rpm * 2.0 * math.pi / 60.0\n"
        findings = lint_source(snippet, path=MODEL_PATH)
        assert "TL001" in rule_ids(findings)

    def test_fires_on_decimal_mb_chain(self):
        snippet = "bus_s = nbytes / (bus_mb_per_s * 1e6)\n"
        findings = lint_source(snippet, path=MODEL_PATH)
        assert "TL001" in rule_ids(findings)

    def test_one_finding_per_expression(self):
        findings = lint_source("size = 4 * 1024 * 1024\n", path=MODEL_PATH)
        assert rule_ids(findings) == ["TL001"]

    def test_silent_on_units_py(self):
        snippet = "METERS_PER_INCH = 0.0254\nKELVIN_OFFSET = 273.15\n"
        assert lint_source(snippet, path="src/repro/units.py") == []

    def test_silent_on_constants_py(self):
        snippet = "TERABIT = 1e9 * 1000\n"
        assert lint_source(snippet, path="src/repro/constants.py") == []

    def test_silent_on_clean_code(self):
        snippet = (
            "from repro import units\n"
            "radius_m = units.inches_to_meters(radius_in)\n"
            "size = 4 * units.MIB\n"
        )
        assert lint_source(snippet, path=MODEL_PATH) == []

    def test_silent_on_unrelated_numbers(self):
        snippet = "x = 2 * area * 0.5\ny = count * 60\n"
        assert lint_source(snippet, path=MODEL_PATH) == []


# ---------------------------------------------------------------------------
# TL002 — float equality
# ---------------------------------------------------------------------------


class TestTL002FloatEquality:
    def test_fires_on_float_literal_eq(self):
        findings = lint_source("if ratio == 1.0:\n    pass\n", path=MODEL_PATH)
        assert rule_ids(findings) == ["TL002"]

    def test_fires_on_float_literal_ne(self):
        findings = lint_source("ok = temp != 45.22\n", path=MODEL_PATH)
        assert rule_ids(findings) == ["TL002"]

    def test_fires_on_int_truncation_idiom(self):
        findings = lint_source("hit = minute == int(minute)\n", path=MODEL_PATH)
        assert rule_ids(findings) == ["TL002"]
        assert "is_integer" in findings[0].message

    def test_silent_on_int_literal_comparison(self):
        assert lint_source("if count == 4:\n    pass\n", path=MODEL_PATH) == []

    def test_silent_on_inequalities(self):
        assert lint_source("if temp <= 45.22:\n    pass\n", path=MODEL_PATH) == []


# ---------------------------------------------------------------------------
# TL003 — Kelvin/Celsius mixing
# ---------------------------------------------------------------------------


class TestTL003KelvinCelsiusMix:
    def test_fires_on_c_plus_k(self):
        findings = lint_source("delta = air_c + ambient_k\n", path=MODEL_PATH)
        assert rule_ids(findings) == ["TL003"]

    def test_fires_on_celsius_minus_kelvin_attributes(self):
        findings = lint_source(
            "delta = model.air_celsius - spec.ambient_kelvin\n", path=MODEL_PATH
        )
        assert rule_ids(findings) == ["TL003"]

    def test_fires_on_comparison(self):
        findings = lint_source("hot = air_c > limit_k\n", path=MODEL_PATH)
        assert rule_ids(findings) == ["TL003"]

    def test_silent_on_same_scale(self):
        assert lint_source("delta = air_c - ambient_c\n", path=MODEL_PATH) == []

    def test_silent_after_explicit_conversion_to_name(self):
        snippet = "air_k = celsius_to_kelvin(air_c)\ndelta_k = air_k - ambient_k\n"
        assert lint_source(snippet, path=MODEL_PATH) == []


# ---------------------------------------------------------------------------
# TL004 — unseeded randomness in simulation code
# ---------------------------------------------------------------------------

SIM_PATH = "src/repro/simulation/disk.py"


class TestTL004UnseededRandom:
    def test_fires_on_global_random(self):
        snippet = "import random\nx = random.random()\n"
        findings = lint_source(snippet, path=SIM_PATH)
        assert rule_ids(findings) == ["TL004"]

    def test_fires_on_unseeded_random_instance(self):
        snippet = "import random\nrng = random.Random()\n"
        findings = lint_source(snippet, path=SIM_PATH)
        assert rule_ids(findings) == ["TL004"]

    def test_fires_on_numpy_global(self):
        snippet = "import numpy as np\nx = np.random.random(10)\n"
        findings = lint_source(snippet, path=SIM_PATH)
        assert rule_ids(findings) == ["TL004"]

    def test_fires_on_unseeded_default_rng(self):
        snippet = "import numpy as np\nrng = np.random.default_rng()\n"
        findings = lint_source(snippet, path=SIM_PATH)
        assert rule_ids(findings) == ["TL004"]

    def test_silent_on_seeded_instances(self):
        snippet = (
            "import random\nimport numpy as np\n"
            "rng = random.Random(42)\n"
            "nprng = np.random.default_rng(seed=7)\n"
        )
        assert lint_source(snippet, path=SIM_PATH) == []

    def test_out_of_scope_outside_simulation(self):
        snippet = "import random\nx = random.random()\n"
        assert lint_source(snippet, path="src/repro/workloads/synthetic.py") == []


# ---------------------------------------------------------------------------
# TL005 — mutable defaults
# ---------------------------------------------------------------------------


class TestTL005MutableDefaults:
    @pytest.mark.parametrize(
        "snippet",
        [
            "def f(xs=[]):\n    return xs\n",
            "def f(m={}):\n    return m\n",
            "def f(s=set()):\n    return s\n",
            "def f(xs=list()):\n    return xs\n",
            "def f(*, xs=[]):\n    return xs\n",
        ],
    )
    def test_fires(self, snippet):
        findings = lint_source(snippet, path=MODEL_PATH)
        assert rule_ids(findings) == ["TL005"]

    def test_silent_on_none_default(self):
        snippet = "def f(xs=None):\n    return xs or []\n"
        assert lint_source(snippet, path=MODEL_PATH) == []

    def test_silent_on_tuple_default(self):
        assert lint_source("def f(xs=()):\n    return xs\n", path=MODEL_PATH) == []


# ---------------------------------------------------------------------------
# TL006 — missing __all__
# ---------------------------------------------------------------------------


class TestTL006MissingAll:
    def test_fires_on_reexporting_init_without_all(self):
        snippet = "from repro.thermal.model import DriveThermalModel\n"
        findings = lint_source(snippet, path="src/repro/thermal/__init__.py")
        assert rule_ids(findings) == ["TL006"]

    def test_silent_with_all(self):
        snippet = (
            "from repro.thermal.model import DriveThermalModel\n"
            '__all__ = ["DriveThermalModel"]\n'
        )
        assert lint_source(snippet, path="src/repro/thermal/__init__.py") == []

    def test_silent_on_docstring_only_init(self):
        assert lint_source('"""pkg."""\n', path="src/repro/thermal/__init__.py") == []

    def test_silent_on_private_package(self):
        snippet = "from x import y\n"
        assert lint_source(snippet, path="src/repro/_internal/__init__.py") == []

    def test_silent_on_regular_module(self):
        snippet = "from x import y\n"
        assert lint_source(snippet, path="src/repro/thermal/model.py") == []


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


class TestSuppressions:
    def test_same_line_disable(self):
        snippet = "t_k = t_c + 273.15  # thermolint: disable=TL001\n"
        assert lint_source(snippet, path=MODEL_PATH) == []

    def test_preceding_comment_disable(self):
        snippet = "# thermolint: disable=TL002\nok = ratio == 1.0\n"
        assert lint_source(snippet, path=MODEL_PATH) == []

    def test_disable_all_on_line(self):
        snippet = "t_k = t_c + 273.15  # thermolint: disable=all\n"
        assert lint_source(snippet, path=MODEL_PATH) == []

    def test_disable_wrong_rule_keeps_finding(self):
        snippet = "t_k = t_c + 273.15  # thermolint: disable=TL005\n"
        assert rule_ids(lint_source(snippet, path=MODEL_PATH)) == ["TL001"]

    def test_file_level_disable(self):
        snippet = (
            "# thermolint: disable-file=TL001\n"
            "a = t_c + 273.15\n"
            "b = x * 25.4\n"
            "bad = ratio == 1.0\n"
        )
        assert rule_ids(lint_source(snippet, path=MODEL_PATH)) == ["TL002"]

    def test_multiple_ids_one_pragma(self):
        snippet = "x = (t_c + 273.15) == 1.0  # thermolint: disable=TL001,TL002\n"
        assert lint_source(snippet, path=MODEL_PATH) == []


# ---------------------------------------------------------------------------
# Engine / reporters / CLI
# ---------------------------------------------------------------------------


class TestEngine:
    def test_syntax_error_reported_not_raised(self):
        findings = lint_source("def broken(:\n", path=MODEL_PATH)
        assert rule_ids(findings) == [PARSE_ERROR_RULE]

    def test_rule_by_id_round_trip(self):
        for rule_id in ["TL001", "TL002", "TL003", "TL004", "TL005", "TL006"]:
            assert rule_by_id(rule_id).rule_id == rule_id
        with pytest.raises(KeyError):
            rule_by_id("TL999")

    def test_findings_sorted_and_located(self):
        snippet = "b = ratio == 1.0\na = t_c + 273.15\n"
        findings = lint_source(snippet, path=MODEL_PATH)
        assert rule_ids(findings) == ["TL002", "TL001"]  # sorted by line
        assert [finding.line for finding in findings] == [1, 2]

    def test_run_paths_select_and_ignore(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("a = t_c + 273.15\nb = ratio == 1.0\n")
        only_tl002 = run_paths([str(tmp_path)], select=["TL002"])
        assert rule_ids(only_tl002) == ["TL002"]
        without_tl002 = run_paths([str(tmp_path)], ignore=["TL002"])
        assert rule_ids(without_tl002) == ["TL001"]


class TestReporters:
    def test_text_report_format(self):
        findings = lint_source("a = t_c + 273.15\n", path=MODEL_PATH)
        text = render_text(findings)
        assert f"{MODEL_PATH}:1:" in text
        assert "TL001" in text
        assert "found 1 issue" in text

    def test_json_report_schema(self):
        findings = lint_source("a = t_c + 273.15\nb = ratio == 1.0\n", path=MODEL_PATH)
        payload = json.loads(render_json(findings))
        assert payload["tool"] == "thermolint"
        assert payload["schema"] == "thermolint/2"
        assert payload["schema_version"] == 2
        assert payload["total"] == 2
        assert payload["counts"] == {"TL001": 1, "TL002": 1}
        assert payload["deep"] == {"enabled": False}
        first = payload["findings"][0]
        assert set(first) == {"rule", "message", "path", "line", "col"}

    def test_empty_report(self):
        assert render_text([]) == ""
        assert json.loads(render_json([]))["total"] == 0


class TestCli:
    def test_exit_one_on_findings(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("t_k = t_c + 273.15\n")
        assert thermolint_main([str(bad)]) == 1
        assert "TL001" in capsys.readouterr().out

    def test_exit_zero_on_clean(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert thermolint_main([str(good)]) == 0

    def test_exit_two_on_missing_path(self, tmp_path):
        assert thermolint_main([str(tmp_path / "nope")]) == 2

    def test_exit_two_on_unknown_rule(self, tmp_path):
        assert thermolint_main([str(tmp_path), "--select", "TL042"]) == 2

    def test_list_rules(self, capsys):
        assert thermolint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in [
            "TL001", "TL002", "TL003", "TL004", "TL005", "TL006",
            "TL007", "TL008", "TL009", "TL010", "TL011", "TL012", "TL013",
        ]:
            assert rule_id in out

    def test_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("t_k = t_c + 273.15\n")
        assert thermolint_main([str(bad), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["total"] == 1


# ---------------------------------------------------------------------------
# Self-check: the shipped tree stays clean
# ---------------------------------------------------------------------------


class TestSelfCheck:
    def test_src_repro_is_thermolint_clean(self):
        findings = run_paths([str(REPO_ROOT / "src" / "repro")])
        assert findings == [], "\n" + "\n".join(f.render() for f in findings)

    def test_thermolint_itself_is_clean(self):
        findings = run_paths([str(TOOLS_DIR / "thermolint")])
        assert findings == [], "\n" + "\n".join(f.render() for f in findings)
