"""CI ``store-smoke`` gate: the result store must actually save work.

Drives the real CLI twice over the same tiny sweep and asserts the
economics the store exists for: the second run serves at least 90% of
its points from cache, produces byte-identical canonical result JSON,
and ``repro store verify`` finds every entry intact afterwards.

Kept small (two workloads x two RPM steps, a few hundred requests) so
the job stays well under a minute; ``make store-smoke`` runs this file
plus a shell-level double-run for the same contract.
"""

from __future__ import annotations

import re

import pytest

from repro.cli import main as repro_main

SWEEP_ARGV = [
    "sweep",
    "workload",
    "tpcc,oltp",
    "--steps",
    "2",
    "-n",
    "200",
    "--seed",
    "11",
]

STORE_LINE = re.compile(
    r"store: (?P<hits>\d+) hit\(s\), (?P<misses>\d+) miss\(es\), "
    r"(?P<corrupt>\d+) corrupt"
)


def _run(store_dir, results_path, capsys) -> tuple:
    argv = SWEEP_ARGV + [
        "--store-dir",
        str(store_dir),
        "--results-out",
        str(results_path),
    ]
    assert repro_main(argv) == 0
    match = STORE_LINE.search(capsys.readouterr().out)
    assert match, "sweep output must report store hit/miss counts"
    return (
        int(match["hits"]),
        int(match["misses"]),
        int(match["corrupt"]),
        results_path.read_bytes(),
    )


@pytest.fixture
def store_dir(tmp_path):
    return tmp_path / "store"


def test_second_run_is_at_least_90_percent_hits(store_dir, tmp_path, capsys):
    hits, misses, corrupt, first = _run(
        store_dir, tmp_path / "first.json", capsys
    )
    total = hits + misses
    assert total == 4, "2 workloads x 2 RPM steps"
    assert (hits, corrupt) == (0, 0), "a cold store cannot hit"

    hits, misses, corrupt, second = _run(
        store_dir, tmp_path / "second.json", capsys
    )
    assert corrupt == 0
    assert hits / total >= 0.90, (
        f"warm run hit only {hits}/{total} — the store is not saving work"
    )
    assert second == first, "warm-run result bytes diverged from cold run"


def test_store_verify_passes_after_the_runs(store_dir, tmp_path, capsys):
    _run(store_dir, tmp_path / "results.json", capsys)
    assert repro_main(["store", "verify", "--store-dir", str(store_dir)]) == 0
    out = capsys.readouterr().out
    assert "corrupt" in out  # the report names the corrupt count (0 here)


def test_store_stats_reports_the_entries(store_dir, tmp_path, capsys):
    _run(store_dir, tmp_path / "results.json", capsys)
    assert repro_main(["store", "stats", "--store-dir", str(store_dir)]) == 0
    out = capsys.readouterr().out
    # The table row: <root> <entries> <bytes> <cap> <quarantined>.
    assert re.search(r"store\s+4\s+\d+\s+\d+\s+0\s*$", out, re.M), out
