"""CI ``service-smoke`` gate: the real ``repro serve`` process.

Where :mod:`tests.test_service` drives the service in-process, this file
boots the actual CLI subprocess the way an operator would and asserts
the two contracts the service exists for:

* **Dedup + byte-identity** — two identical submissions share one job,
  and the bytes ``GET /v1/results/<key>`` returns are exactly what the
  CLI sweep path computes for the same config.
* **SIGTERM resume** — killing the server mid-job loses nothing that
  completed: a restarted server over the same store replays the
  finished tasks as cache hits and only computes the remainder.

Kept small (two tasks for the round trip, four chunkier ones for the
kill) so the gate stays well under a minute.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.simulation.sweep import results_json_bytes, sweep_workloads

PAYLOAD = {
    "workloads": ["tpcc", "oltp"],
    "rpm_steps": 2,
    "requests": 200,
    "seed": 11,
    "backend": "serial",
}


class _Server:
    """One ``repro serve`` subprocess on an ephemeral port."""

    def __init__(self, store_dir, port_file):
        self.store_dir = store_dir
        self.port_file = port_file
        self.proc = None
        self.port = None

    def __enter__(self):
        argv = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--port-file",
            str(self.port_file),
            "--store-dir",
            str(self.store_dir),
            "--backend",
            "serial",
        ]
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(argv, env=env)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"server died during startup: {self.proc.returncode}"
                )
            try:
                text = self.port_file.read_text().strip()
            except FileNotFoundError:
                text = ""
            if text:
                self.port = int(text)
                return self
            time.sleep(0.05)
        raise RuntimeError("server did not write its port file in 30 s")

    def __exit__(self, *exc):
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                raise

    def request(self, method, path, payload=None):
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=60)
        try:
            body = None if payload is None else json.dumps(payload)
            conn.request(method, path, body=body)
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    def json(self, method, path, payload=None):
        status, body = self.request(method, path, payload)
        return status, json.loads(body)

    def wait_job(self, job_id, timeout_s=120.0):
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            status, doc = self.json("GET", f"/v1/jobs/{job_id}")
            assert status == 200
            if doc["state"] in ("done", "failed"):
                return doc
            time.sleep(0.1)
        raise AssertionError(f"job {job_id} not terminal in {timeout_s} s")


@pytest.fixture
def store_dir(tmp_path):
    return tmp_path / "store"


def test_subprocess_dedup_and_cli_byte_identity(store_dir, tmp_path):
    with _Server(store_dir, tmp_path / "port") as server:
        status, first = server.json("POST", "/v1/jobs", PAYLOAD)
        assert status == 201
        status, second = server.json("POST", "/v1/jobs", PAYLOAD)
        assert status == 200
        assert second["deduplicated"] is True
        assert second["id"] == first["id"]

        doc = server.wait_job(first["id"])
        assert doc["state"] == "done"
        assert doc["progress"]["done"] == doc["progress"]["total"] == 4

        status, body = server.request("GET", f"/v1/results/{first['key']}")
        assert status == 200
        expected = results_json_bytes(
            sweep_workloads(["tpcc", "oltp"], rpm_steps=2, requests=200, seed=11)
        )
        assert body == expected

        status, metrics = server.request("GET", "/metrics")
        assert status == 200
        from repro.reporting import parse_prometheus_text

        parsed = parse_prometheus_text(metrics.decode("utf-8"))
        assert parsed["repro_service_dedup_hits_total"]["samples"] == {"": 1.0}
    assert server.proc.returncode == 0  # clean SIGTERM shutdown


def test_sigterm_midjob_then_restart_resumes_from_store(store_dir, tmp_path):
    # Four chunkier tasks (~1 s each, serial) so SIGTERM lands mid-job.
    payload = {
        "workloads": ["tpcc"],
        "rpm_steps": 4,
        "requests": 900,
        "seed": 23,
        "backend": "serial",
    }
    with _Server(store_dir, tmp_path / "port-a") as server:
        status, doc = server.json("POST", "/v1/jobs", payload)
        assert status == 201
        job_id = doc["id"]
        # Wait for the first task to land, then pull the plug.
        deadline = time.monotonic() + 60.0
        done_before = 0
        while time.monotonic() < deadline:
            _, doc = server.json("GET", f"/v1/jobs/{job_id}")
            done_before = doc["progress"]["done"]
            if done_before >= 1 or doc["state"] in ("done", "failed"):
                break
            time.sleep(0.05)
        assert done_before >= 1, "job made no progress before the kill"
        server.proc.send_signal(signal.SIGTERM)
        server.proc.wait(timeout=30)
    assert server.proc.returncode == 0

    with _Server(store_dir, tmp_path / "port-b") as server:
        status, doc = server.json("POST", "/v1/jobs", payload)
        assert status == 201  # fresh process, fresh job ledger
        doc = server.wait_job(doc["id"])
        assert doc["state"] == "done"
        progress = doc["progress"]
        assert progress["done"] == progress["total"] == 4
        # Everything that completed before SIGTERM replays from the
        # store; the drain may have let at most the in-flight task land.
        assert progress["cached"] >= done_before
        assert progress["cached"] < progress["total"] or done_before == 4
    assert server.proc.returncode == 0
