"""Fast smoke test wiring the lint gate into plain ``pytest``.

``make lint`` and CI run the same gate; this test keeps a bare ``pytest``
invocation sufficient to catch a dirty tree.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main as repro_main

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_REPRO = str(REPO_ROOT / "src" / "repro")


def test_repro_lint_gate_is_green(capsys):
    assert repro_main(["lint", SRC_REPRO]) == 0


def test_repro_lint_json_output(capsys):
    assert repro_main(["lint", SRC_REPRO, "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["tool"] == "thermolint"
    assert payload["total"] == 0


def test_repro_lint_flags_known_bad_file(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("t_k = t_c + 273.15\n")
    assert repro_main(["lint", str(bad)]) == 1
    assert "TL001" in capsys.readouterr().out
