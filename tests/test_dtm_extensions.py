"""Tests for the §5.4 extension mechanisms: mirroring, cache-disk pair,
policy-driven control, power accounting, closed-loop workloads, and the
sensitivity study."""

import pytest

from repro.dtm import (
    AlternatingMirror,
    CacheDiskPair,
    ControlAction,
    LadderPolicy,
    PolicyManagedSystem,
    ReactiveGatePolicy,
    SpacingPolicy,
    drpm_profile,
    mirror_headroom_rpm,
)
from repro.errors import DTMError, TraceError
from repro.simulation import (
    EventQueue,
    Raid1Geometry,
    Request,
    StorageArray,
    energy_per_request_j,
    power_report,
    standard_disk,
)
from repro.thermal import (
    DriveThermalModel,
    calibration_sensitivity,
    exponent_sensitivity,
    headline_robust,
    max_rpm_within_envelope,
)
from repro.workloads import WorkloadShape, run_closed_loop, workload


class TestRaid1:
    def build(self):
        events = EventQueue()
        disks = [
            standard_disk(
                name=f"m{i}", events=events, diameter_in=2.6, platters=1,
                kbpi=300, ktpi=10, rpm=10000, zone_count=10,
            )
            for i in range(2)
        ]
        geometry = Raid1Geometry(disk_sectors=disks[0].total_sectors)
        done = []
        array = StorageArray(disks, geometry, events, on_complete=lambda r, t: done.append(r))
        return events, disks, geometry, array, done

    def test_write_goes_to_both(self):
        events, disks, geometry, array, done = self.build()
        array.submit(Request(arrival_ms=0, lba=100, sectors=8, is_write=True))
        events.run()
        assert len(done) == 1
        assert disks[0].stats.writes == 1
        assert disks[1].stats.writes == 1

    def test_read_goes_to_target_only(self):
        events, disks, geometry, array, done = self.build()
        geometry.set_read_target(1)
        array.submit(Request(arrival_ms=0, lba=100, sectors=8))
        events.run()
        assert disks[0].stats.reads == 0
        assert disks[1].stats.reads == 1

    def test_target_validation(self):
        _, _, geometry, _, _ = self.build()
        with pytest.raises(Exception):
            geometry.set_read_target(2)

    def test_logical_capacity_is_one_disk(self):
        _, disks, geometry, _, _ = self.build()
        assert geometry.logical_sectors == disks[0].total_sectors


class TestAlternatingMirror:
    @pytest.fixture(scope="class")
    def outcome(self):
        from repro.workloads import generate_trace

        mirror = AlternatingMirror(rpm=20000, switch_period_ms=500.0)
        shape = WorkloadShape(
            name="mirror-test",
            mean_interarrival_ms=4.0,
            read_fraction=0.8,
            size_mix=((8, 1.0),),
        )
        trace = generate_trace(shape, 800, mirror.geometry.logical_sectors, seed=3)
        return mirror, mirror.run_trace(trace)

    def test_all_requests_complete(self, outcome):
        _, report = outcome
        assert report.stats.count == 800

    def test_alternation_happened(self, outcome):
        _, report = outcome
        assert report.switches >= 2

    def test_reads_spread_over_both_mirrors(self, outcome):
        mirror, _ = outcome
        reads = [d.stats.reads for d in mirror.disks]
        assert min(reads) > 0
        # Roughly balanced: neither mirror served more than ~3x the other.
        assert max(reads) / min(reads) < 3.0

    def test_temperature_tracked(self, outcome):
        _, report = outcome
        assert report.max_air_c > 0
        assert len(report.per_disk_seek_duty) == 2

    def test_switch_period_validated(self):
        with pytest.raises(DTMError):
            AlternatingMirror(rpm=20000, switch_period_ms=0)

    def test_headroom_between_envelope_and_slack(self):
        envelope = max_rpm_within_envelope(2.6)
        slack = max_rpm_within_envelope(2.6, vcm_active=False)
        half_duty = mirror_headroom_rpm(2.6)
        assert envelope < half_duty < slack


class TestCacheDiskPair:
    @pytest.fixture(scope="class")
    def outcome(self):
        from repro.workloads import generate_trace

        pair = CacheDiskPair(big_diameter_in=2.6, small_diameter_in=1.6)
        shape = WorkloadShape(
            name="cache-test",
            mean_interarrival_ms=4.0,
            read_fraction=0.9,
            size_mix=((8, 1.0),),
            hot_fraction=0.9,
            hot_region_fraction=0.002,
        )
        trace = generate_trace(shape, 1200, pair.logical_sectors, seed=4)
        return pair, pair.run_trace(trace)

    def test_fast_disk_spins_faster(self, outcome):
        pair, report = outcome
        assert report.fast_rpm > 2.0 * report.slow_rpm

    def test_hot_reads_become_hits(self, outcome):
        _, report = outcome
        assert report.hit_ratio > 0.3

    def test_accounting_consistent(self, outcome):
        _, report = outcome
        assert report.hits + report.misses + report.writes == report.stats.count

    def test_small_platter_must_be_smaller(self):
        with pytest.raises(DTMError):
            CacheDiskPair(big_diameter_in=1.6, small_diameter_in=2.6)

    def test_hits_faster_than_misses(self):
        from repro.workloads import generate_trace

        # All-read trace with total locality: after the first touch,
        # everything hits the fast disk.
        pair = CacheDiskPair()
        shape = WorkloadShape(
            name="hot",
            mean_interarrival_ms=8.0,
            read_fraction=1.0,
            size_mix=((8, 1.0),),
            hot_fraction=0.95,
            hot_region_fraction=0.0005,
        )
        trace = generate_trace(shape, 600, pair.logical_sectors, seed=5)
        report = pair.run_trace(trace)
        assert report.hit_ratio > 0.5
        # The pair beats a lone big disk on the same trace.
        lone = CacheDiskPair()
        # Re-route everything to the big disk by disabling the map.
        lone.map.max_regions = 0

        trace2 = generate_trace(shape, 600, lone.logical_sectors, seed=5)
        lone_report = lone.run_trace(trace2)
        assert report.stats.mean_ms() < lone_report.stats.mean_ms()


class TestPolicies:
    def test_reactive_gate_hysteresis(self):
        policy = ReactiveGatePolicy(envelope_c=45.0, trigger_margin_c=0.1, resume_margin_c=0.5)
        assert policy.decide(44.0, 0.0).admit
        assert not policy.decide(44.95, 1.0).admit  # crossed trigger
        assert not policy.decide(44.6, 2.0).admit  # still inside hysteresis
        assert policy.decide(44.4, 3.0).admit  # below resume

    def test_reactive_gate_rpm_commands(self):
        policy = ReactiveGatePolicy(
            envelope_c=45.0, low_rpm=15000, full_rpm=25000
        )
        hot = policy.decide(45.0, 0.0)
        assert hot.rpm == 15000 and not hot.admit
        cold = policy.decide(44.0, 1.0)
        assert cold.rpm == 25000 and cold.admit

    def test_reactive_gate_validation(self):
        with pytest.raises(DTMError):
            ReactiveGatePolicy(trigger_margin_c=0.5, resume_margin_c=0.1)
        with pytest.raises(DTMError):
            ReactiveGatePolicy(low_rpm=15000)  # missing full_rpm
        with pytest.raises(DTMError):
            ReactiveGatePolicy(low_rpm=25000, full_rpm=15000)

    def test_spacing_grows_through_band(self):
        policy = SpacingPolicy(envelope_c=45.0, band_c=1.0, max_gap_ms=40.0)
        assert policy.decide(43.5, 0.0).issue_gap_ms == 0.0
        low = policy.decide(44.2, 0.0).issue_gap_ms
        high = policy.decide(44.8, 0.0).issue_gap_ms
        assert 0 < low < high <= 40.0
        assert not policy.decide(45.0, 0.0).admit

    def test_spacing_validation(self):
        with pytest.raises(DTMError):
            SpacingPolicy(band_c=0)
        with pytest.raises(DTMError):
            SpacingPolicy(band_c=0.5, trigger_margin_c=0.6)

    def test_ladder_steps_down(self):
        profile = drpm_profile(24000, levels=4, step_rpm=3000)
        policy = LadderPolicy(profile, envelope_c=45.0, band_c=1.0)
        assert policy.decide(43.0, 0.0).rpm == 24000
        mid = policy.decide(44.4, 0.0).rpm
        hot = policy.decide(44.9, 0.0).rpm
        assert mid < 24000
        assert hot <= mid
        emergency = policy.decide(45.2, 0.0)
        assert not emergency.admit and emergency.rpm == profile.bottom_rpm

    def test_ladder_requires_serving_profile(self):
        from repro.dtm import two_level_profile

        with pytest.raises(DTMError):
            LadderPolicy(two_level_profile(24000, 12000))

    def test_control_action_defaults(self):
        action = ControlAction()
        assert action.admit and action.issue_gap_ms == 0.0 and action.rpm is None


class TestPolicyManagedSystem:
    def run_policy(self, policy, rpm=24500.0, requests=500):
        spec = workload("search_engine")
        system = spec.build_system(rpm=rpm)
        thermal = DriveThermalModel(platter_diameter_in=2.6, rpm=rpm, vcm_active=False)
        thermal.settle()
        thermal.set_operating_state(vcm_active=True)
        managed = PolicyManagedSystem(system, thermal, policy, check_interval_ms=20.0)
        trace = spec.generate(num_requests=requests, seed=6)
        return managed.run_trace(trace), managed

    def test_reactive_policy_completes(self):
        report, _ = self.run_policy(ReactiveGatePolicy())
        assert report.stats.count == 500

    def test_spacing_policy_completes(self):
        report, _ = self.run_policy(SpacingPolicy())
        assert report.stats.count == 500

    def test_ladder_policy_changes_rpm_under_pressure(self):
        profile = drpm_profile(24500, levels=3, step_rpm=4000)
        # An artificially tight envelope forces ladder activity.
        policy = LadderPolicy(profile, envelope_c=44.0, band_c=0.6)
        report, managed = self.run_policy(policy)
        assert report.stats.count == 500
        assert managed.rpm_changes >= 1

    def test_rejects_non_policy(self):
        spec = workload("search_engine")
        system = spec.build_system(rpm=20000)
        thermal = DriveThermalModel(platter_diameter_in=2.6, rpm=20000)
        with pytest.raises(DTMError):
            PolicyManagedSystem(system, thermal, policy="gate")


class TestPowerReport:
    def test_components_accrue(self, small_disk, events):
        for lba in (0, 60_000, 120_000):
            small_disk.submit(Request(arrival_ms=0.0, lba=lba, sectors=8))
        events.run()
        report = power_report(small_disk, events.now_ms, diameter_in=2.6)
        assert report.spindle_j > 0
        assert report.windage_j > 0
        assert report.vcm_j > 0
        assert 0 < report.seek_duty <= 1
        assert report.total_j == pytest.approx(
            report.spindle_j + report.windage_j + report.vcm_j
        )
        assert report.average_w > 0

    def test_energy_per_request(self, small_disk, events):
        small_disk.submit(Request(arrival_ms=0.0, lba=0, sectors=8))
        events.run()
        report = power_report(small_disk, events.now_ms, diameter_in=2.6)
        assert energy_per_request_j(report, 1) == pytest.approx(report.total_j)
        with pytest.raises(Exception):
            energy_per_request_j(report, 0)

    def test_higher_rpm_costs_more_windage(self, events):
        def run(rpm):
            disk = standard_disk(
                name=f"p{rpm}", events=events, diameter_in=2.6, platters=1,
                kbpi=300, ktpi=10, rpm=rpm, zone_count=10,
            )
            disk.submit(Request(arrival_ms=events.now_ms, lba=0, sectors=8))
            events.run()
            return power_report(disk, 1000.0, diameter_in=2.6)

        slow = run(10000)
        fast = run(20000)
        assert fast.windage_j > 2 * slow.windage_j

    def test_rejects_bad_interval(self, small_disk):
        with pytest.raises(Exception):
            power_report(small_disk, 0.0, diameter_in=2.6)


class TestClosedLoop:
    def make_system(self, rpm=10000):
        return workload("oltp").build_system(rpm=rpm)

    def test_all_requests_complete(self):
        shape = WorkloadShape(name="cl", mean_interarrival_ms=1.0, size_mix=((8, 1.0),))
        result = run_closed_loop(
            self.make_system(), shape, clients=4, think_time_ms=5.0,
            requests_per_client=25, seed=1,
        )
        assert result.completed == 100
        assert result.throughput_per_s > 0
        assert result.mean_response_ms > 0

    def test_more_clients_more_throughput_at_light_load(self):
        shape = WorkloadShape(name="cl", mean_interarrival_ms=1.0, size_mix=((8, 1.0),))
        small = run_closed_loop(
            self.make_system(), shape, clients=2, think_time_ms=20.0,
            requests_per_client=40, seed=2,
        )
        large = run_closed_loop(
            self.make_system(), shape, clients=8, think_time_ms=20.0,
            requests_per_client=40, seed=2,
        )
        assert large.throughput_per_s > small.throughput_per_s

    def test_faster_disks_raise_throughput(self):
        shape = WorkloadShape(name="cl", mean_interarrival_ms=1.0, size_mix=((8, 1.0),))
        slow = run_closed_loop(
            self.make_system(10000), shape, clients=6, think_time_ms=2.0,
            requests_per_client=40, seed=3,
        )
        fast = run_closed_loop(
            self.make_system(20000), shape, clients=6, think_time_ms=2.0,
            requests_per_client=40, seed=3,
        )
        assert fast.mean_response_ms < slow.mean_response_ms

    def test_parameter_validation(self):
        shape = WorkloadShape(name="cl", mean_interarrival_ms=1.0)
        with pytest.raises(TraceError):
            run_closed_loop(self.make_system(), shape, clients=0)
        with pytest.raises(TraceError):
            run_closed_loop(self.make_system(), shape, think_time_ms=0)


class TestSensitivity:
    @pytest.fixture(scope="class")
    def points(self):
        return calibration_sensitivity(scales=(0.8, 1.0, 1.2))

    def test_covers_all_parameters(self, points):
        assert {p.parameter for p in points} == {
            "airflow_quality",
            "stack_convection_scale",
            "internal_wall_scale",
            "vcm_pivot_g_w_per_k",
            "spindle_bearing_g_w_per_k",
        }

    def test_headline_robust(self, points):
        # Re-fit to the anchor, the roadmap still falls off the 40% curve
        # under every +-20% perturbation.
        assert headline_robust(points)

    def test_anchor_refit_keeps_spm_physical(self, points):
        for p in points:
            assert 3.0 < p.fitted_spm_w < 25.0

    def test_extrapolated_envelope_rpm_stays_in_band(self, points):
        rpms = [p.envelope_rpm_16 for p in points]
        assert max(rpms) / min(rpms) < 1.5

    def test_shortfall_year_stable(self, points):
        years = [p.shortfall_year for p in points]
        assert max(years) - min(years) <= 3

    def test_fixed_loss_margin_is_tight(self):
        from repro.thermal import fixed_loss_margin_w

        margin = fixed_loss_margin_w()
        assert 0.0 < margin < 3.0  # about a watt of headroom

    def test_exponent_sensitivity_anchor_invariance(self):
        results = exponent_sensitivity(
            rpm_exponents=(2.8,), diameter_exponents=(4.6, 4.8)
        )
        # At the 2.6" anchor diameter the diameter exponent is irrelevant:
        # the envelope RPM barely moves.
        rpms = [r["envelope_rpm_26"] for r in results]
        assert abs(rpms[0] - rpms[1]) / rpms[0] < 0.02

    def test_exponent_sensitivity_rpm_exponent(self):
        results = exponent_sensitivity(
            rpm_exponents=(2.6, 3.0), diameter_exponents=(4.8,)
        )
        by_exp = {r["rpm_exponent"]: r["envelope_rpm_26"] for r in results}
        # The envelope limit (~15.0K) sits just below the 15,098 RPM anchor
        # that pins the windage curve, so the exponent barely moves it: a
        # steeper curve even dissipates slightly *less* below the anchor.
        assert abs(by_exp[2.6] - by_exp[3.0]) / by_exp[2.6] < 0.005
        assert by_exp[3.0] >= by_exp[2.6]
