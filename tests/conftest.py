"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.capacity.recording import RecordingTechnology
from repro.capacity.zones import ZonedSurface
from repro.geometry.platter import Platter
from repro.simulation.disk import standard_disk
from repro.simulation.events import EventQueue


@pytest.fixture
def tech_2002() -> RecordingTechnology:
    """The paper's 2002 recording point (570 KBPI-class, Table 1 era)."""
    return RecordingTechnology.from_kilo_units(593.19, 67.5)


@pytest.fixture
def platter_26() -> Platter:
    """A 2.6-inch platter, the roadmap's starting size."""
    return Platter(diameter_in=2.6)


@pytest.fixture
def surface_2002(platter_26, tech_2002) -> ZonedSurface:
    """A 50-zone 2002-era surface (the roadmap configuration)."""
    return ZonedSurface(platter=platter_26, technology=tech_2002, zone_count=50)


@pytest.fixture
def events() -> EventQueue:
    """A fresh event queue."""
    return EventQueue()


@pytest.fixture
def small_disk(events):
    """A small, fast-to-simulate disk for simulator tests."""
    return standard_disk(
        name="t0",
        events=events,
        diameter_in=2.6,
        platters=1,
        kbpi=300.0,
        ktpi=10.0,
        rpm=10000.0,
        zone_count=10,
        cache_bytes=512 * 1024,
    )
