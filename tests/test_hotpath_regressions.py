"""Regression tests for the simulation-layer bugfix cluster (PR 1).

Each class pins one bug that existed in the seed implementation:

* ``DiskCache.fill_after_read`` installed a zero/negative-length segment
  when the fill started at or past the end of the disk, and enforced
  capacity only by segment count, so oversized requests could inflate the
  cache past its configured byte size.
* ``EventQueue.run(until_ms=...)`` left ``now_ms`` at the last event time
  when the heap drained before the horizon, so code scheduling relative to
  ``now_ms`` after ``run()`` saw a different clock depending on whether
  events happened to fill the span.
* ``ResponseTimeStats`` re-sorted every sample on every percentile/CDF
  query; the cached sorted view must stay correct when ``add()`` and
  queries interleave.
"""

import pytest

from repro.errors import SimulationError
from repro.simulation import DiskCache, EventQueue, ResponseTimeStats


class TestCacheFillBounds:
    def test_fill_at_disk_end_raises(self):
        cache = DiskCache(size_bytes=64 * 1024, segments=4)
        # Seed behaviour: length = disk_sectors - lba = 0, installed anyway.
        with pytest.raises(SimulationError):
            cache.fill_after_read(1000, 8, disk_sectors=1000)
        assert len(cache) == 0

    def test_fill_past_disk_end_raises(self):
        cache = DiskCache(size_bytes=64 * 1024, segments=4)
        with pytest.raises(SimulationError):
            cache.fill_after_read(5000, 8, disk_sectors=1000)
        assert len(cache) == 0

    def test_fill_on_last_sector_is_positive(self):
        cache = DiskCache(size_bytes=64 * 1024, segments=4)
        start, length = cache.fill_after_read(999, 8, disk_sectors=1000)
        assert start == 999
        assert length == 1
        assert cache.contains(999, 1)

    def test_degenerate_disk_raises(self):
        cache = DiskCache(size_bytes=64 * 1024, segments=4)
        with pytest.raises(SimulationError):
            cache.fill_after_read(0, 8, disk_sectors=0)

    def test_nonpositive_request_raises(self):
        cache = DiskCache(size_bytes=64 * 1024, segments=4)
        with pytest.raises(SimulationError):
            cache.fill_after_read(0, 0, disk_sectors=1000)


class TestCacheByteCapacity:
    def test_oversized_requests_cannot_exceed_capacity(self):
        # 64 KB = 128 sectors total, 32-sector segments.  Requests three
        # times the segment size are cached whole (seed behaviour), but the
        # total must stay within the configured byte capacity — the seed
        # only bounded the segment *count*, allowing 4 x 100 = 400 sectors.
        cache = DiskCache(size_bytes=64 * 1024, segments=4, read_ahead_sectors=0)
        for i in range(4):
            cache.fill_after_read(i * 10_000, 100, disk_sectors=1_000_000)
        assert cache.cached_sectors <= 128
        assert cache.cached_bytes <= 64 * 1024

    def test_eviction_by_bytes_drops_lru_first(self):
        cache = DiskCache(size_bytes=64 * 1024, segments=4, read_ahead_sectors=0)
        cache.fill_after_read(0, 100, disk_sectors=1_000_000)
        cache.fill_after_read(10_000, 100, disk_sectors=1_000_000)
        # The second fill forces the first out (100 + 100 > 128 sectors).
        assert not cache.contains(0, 1)
        assert cache.contains(10_000, 100)

    def test_single_fill_clipped_to_capacity(self):
        cache = DiskCache(size_bytes=64 * 1024, segments=4, read_ahead_sectors=0)
        _, length = cache.fill_after_read(0, 1000, disk_sectors=1_000_000)
        assert length <= 128
        assert cache.cached_sectors <= 128

    def test_segment_count_cap_still_enforced(self):
        # Small fills never hit the byte cap; the count cap must still evict.
        cache = DiskCache(size_bytes=64 * 1024, segments=4, read_ahead_sectors=0)
        for i in range(6):
            cache.fill_after_read(i * 1000, 8, disk_sectors=1_000_000)
        assert len(cache) == 4


class TestEventQueueDrainClock:
    def test_clock_advances_to_horizon_when_heap_drains(self):
        queue = EventQueue()
        queue.schedule(5.0, lambda t: None)
        queue.run(until_ms=100.0)
        # Seed behaviour: now_ms stuck at 5.0 because no event remained.
        assert queue.now_ms == 100.0

    def test_clock_advances_to_horizon_with_future_event_left(self):
        queue = EventQueue()
        queue.schedule(5.0, lambda t: None)
        queue.schedule(200.0, lambda t: None)
        queue.run(until_ms=100.0)
        assert queue.now_ms == 100.0
        assert len(queue) == 1  # the 200 ms event is still queued

    def test_empty_queue_run_advances_clock(self):
        queue = EventQueue()
        queue.run(until_ms=50.0)
        assert queue.now_ms == 50.0

    def test_relative_scheduling_consistent_after_drain(self):
        # The caller pattern the bug broke: run to a horizon, then schedule
        # "1 ms from now" — both paths must agree on what "now" is.
        fired = []
        drained = EventQueue()
        drained.schedule(5.0, lambda t: None)
        drained.run(until_ms=100.0)
        drained.schedule_after(1.0, lambda t: fired.append(t))
        drained.run()
        assert fired == [101.0]

    def test_run_without_horizon_keeps_last_event_time(self):
        queue = EventQueue()
        queue.schedule(7.5, lambda t: None)
        queue.run()
        assert queue.now_ms == 7.5


class TestStatsCacheInvalidation:
    def test_add_after_query_invalidates_cache(self):
        stats = ResponseTimeStats()
        for v in (30.0, 10.0, 20.0):
            stats.add(v)
        assert stats.percentile_ms(100) == 30.0
        stats.add(5.0)  # must invalidate the cached sorted view
        assert stats.percentile_ms(0) == 5.0
        assert stats.percentile_ms(100) == 30.0
        stats.add(40.0)
        assert stats.max_ms() == 40.0

    def test_interleaved_adds_and_queries_match_full_sort(self):
        import random

        rng = random.Random(3)
        stats = ResponseTimeStats()
        reference = []
        for i in range(500):
            v = rng.expovariate(0.05)
            stats.add(v)
            reference.append(v)
            if i % 7 == 0:
                expected = sorted(reference)
                assert stats.percentile_ms(0) == expected[0]
                assert stats.percentile_ms(100) == expected[-1]
        assert stats.median_ms() == pytest.approx(
            ResponseTimeStats(samples_ms=sorted(reference)).median_ms()
        )

    def test_cdf_after_incremental_adds(self):
        stats = ResponseTimeStats()
        stats.add(4.0)
        assert dict(stats.cdf(bins_ms=(5.0,)))[5.0] == 1.0
        stats.add(50.0)
        assert dict(stats.cdf(bins_ms=(5.0,)))[5.0] == 0.5

    def test_mean_tracks_adds_between_queries(self):
        stats = ResponseTimeStats()
        stats.add(10.0)
        assert stats.mean_ms() == 10.0
        stats.add(30.0)
        assert stats.mean_ms() == 20.0

    def test_external_list_mutation_falls_back_to_resort(self):
        stats = ResponseTimeStats()
        for v in (1.0, 2.0, 3.0):
            stats.add(v)
        assert stats.max_ms() == 3.0
        stats.samples_ms = [9.0, 4.0]  # external surgery: shrunk + replaced
        assert stats.max_ms() == 9.0
        assert stats.mean_ms() == pytest.approx(6.5)
