"""Second round of property-based tests: cache semantics, mirroring,
trace round-trips, the reliability model, and the array airflow model."""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.simulation.cache import DiskCache
from repro.simulation.raid import Raid1Geometry
from repro.simulation.request import Request
from repro.thermal.array import airflow_temperature_rise_c, drive_heat_w
from repro.thermal.reliability import failure_acceleration, relative_mtbf
from repro.workloads.disksim_format import read_disksim, write_disksim
from repro.workloads.trace import Trace, TraceRecord

records_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=1e6),
        st.integers(min_value=0, max_value=10**9),
        st.integers(min_value=1, max_value=1024),
        st.booleans(),
    ),
    min_size=1,
    max_size=60,
)


def _make_trace(raw) -> Trace:
    return Trace.from_records(
        "prop",
        [
            TraceRecord(time_ms=t, lba=lba, sectors=n, is_write=w)
            for t, lba, n, w in raw
        ],
    )


class TestTraceRoundtrips:
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(raw=records_strategy)
    def test_native_format_roundtrip(self, raw, tmp_path_factory):
        trace = _make_trace(raw)
        path = tmp_path_factory.mktemp("traces") / "t.trace"
        trace.save(path)
        loaded = Trace.load(path)
        assert len(loaded) == len(trace)
        for a, b in zip(trace, loaded):
            assert (a.lba, a.sectors, a.is_write) == (b.lba, b.sectors, b.is_write)
            assert math.isclose(a.time_ms, b.time_ms, abs_tol=1e-3)

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(raw=records_strategy)
    def test_disksim_format_roundtrip(self, raw, tmp_path_factory):
        trace = _make_trace(raw)
        path = tmp_path_factory.mktemp("traces") / "t.dsim"
        write_disksim(trace, path)
        loaded = read_disksim(path)
        assert len(loaded) == len(trace)
        for a, b in zip(trace, loaded):
            assert (a.lba, a.sectors, a.is_write) == (b.lba, b.sectors, b.is_write)
            assert math.isclose(a.time_ms, b.time_ms, abs_tol=1e-2)


class TestCacheProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        operations=st.lists(
            st.tuples(
                st.sampled_from(["read", "fill", "write"]),
                st.integers(min_value=0, max_value=5000),
                st.integers(min_value=1, max_value=64),
            ),
            min_size=1,
            max_size=80,
        )
    )
    def test_cache_never_overflows_and_stays_consistent(self, operations):
        cache = DiskCache(size_bytes=32 * 1024, segments=4, read_ahead_sectors=8)
        for op, lba, sectors in operations:
            if op == "read":
                cache.lookup_read(lba, sectors)
            elif op == "fill":
                start, length = cache.fill_after_read(lba, sectors, disk_sectors=10_000_000)
                assert start == lba
                assert length >= 1
                assert cache.contains(lba, min(sectors, length))
            else:
                cache.note_write(lba, sectors)
                # A straddling write never leaves a stale covering segment
                # unless the write was interior (which keeps it valid).
            assert len(cache) <= 4

    @settings(max_examples=40, deadline=None)
    @given(
        lba=st.integers(min_value=0, max_value=100_000),
        sectors=st.integers(min_value=1, max_value=64),
    )
    def test_fill_then_read_hits(self, lba, sectors):
        cache = DiskCache(size_bytes=1024 * 1024, segments=8)
        cache.fill_after_read(lba, sectors, disk_sectors=10_000_000)
        assert cache.lookup_read(lba, sectors)

    @settings(max_examples=40, deadline=None)
    @given(
        lba=st.integers(min_value=16, max_value=100_000),
        sectors=st.integers(min_value=1, max_value=64),
    )
    def test_overlapping_write_invalidates_edges(self, lba, sectors):
        cache = DiskCache(size_bytes=1024 * 1024, segments=8, read_ahead_sectors=0)
        cache.fill_after_read(lba, sectors, disk_sectors=10_000_000)
        # A write straddling the front edge must invalidate the segment.
        cache.note_write(lba - 8, 9)
        assert not cache.contains(lba, sectors)


class TestMirrorProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        lba=st.integers(min_value=0, max_value=9_000),
        sectors=st.integers(min_value=1, max_value=512),
        target=st.integers(min_value=0, max_value=1),
        is_write=st.booleans(),
    )
    def test_plan_shape(self, lba, sectors, target, is_write):
        geometry = Raid1Geometry(disk_sectors=10_000)
        if lba + sectors > geometry.logical_sectors:
            return
        geometry.set_read_target(target)
        plan = geometry.plan(
            Request(arrival_ms=0.0, lba=lba, sectors=sectors, is_write=is_write)
        )
        children = list(plan.all_children())
        if is_write:
            assert {c.disk for c in children} == {0, 1}
            assert all(c.lba == lba and c.sectors == sectors for c in children)
        else:
            assert len(children) == 1
            assert children[0].disk == target


class TestThermalScalarProperties:
    @settings(max_examples=50, deadline=None)
    @given(temp=st.floats(min_value=-20, max_value=120))
    def test_failure_times_mtbf_is_one(self, temp):
        assert failure_acceleration(temp) * relative_mtbf(temp) == 1.0 or math.isclose(
            failure_acceleration(temp) * relative_mtbf(temp), 1.0, rel_tol=1e-12
        )

    @settings(max_examples=50, deadline=None)
    @given(
        t1=st.floats(min_value=0, max_value=100),
        t2=st.floats(min_value=0, max_value=100),
    )
    def test_failure_monotone(self, t1, t2):
        lo, hi = sorted((t1, t2))
        assert failure_acceleration(lo) <= failure_acceleration(hi)

    @settings(max_examples=50, deadline=None)
    @given(
        heat=st.floats(min_value=0.1, max_value=500),
        airflow=st.floats(min_value=1e-3, max_value=1.0),
    )
    def test_airflow_rise_linear(self, heat, airflow):
        rise = airflow_temperature_rise_c(heat, airflow)
        assert rise > 0
        assert math.isclose(
            airflow_temperature_rise_c(2 * heat, airflow), 2 * rise, rel_tol=1e-9
        )
        assert math.isclose(
            airflow_temperature_rise_c(heat, 2 * airflow), rise / 2, rel_tol=1e-9
        )

    @settings(max_examples=30, deadline=None)
    @given(
        rpm=st.floats(min_value=5000, max_value=60000),
        duty=st.floats(min_value=0, max_value=1),
    )
    def test_drive_heat_monotone_in_duty(self, rpm, duty):
        base = drive_heat_w(rpm, 2.6, vcm_duty=0.0)
        at_duty = drive_heat_w(rpm, 2.6, vcm_duty=duty)
        full = drive_heat_w(rpm, 2.6, vcm_duty=1.0)
        assert base <= at_duty <= full
