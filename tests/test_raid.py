"""RAID geometry and storage-array tests."""

import pytest

from repro.errors import SimulationError
from repro.simulation import (
    EventQueue,
    Raid0Geometry,
    Raid5Geometry,
    Request,
    StorageArray,
    standard_disk,
)


def read(lba, sectors, arrival=0.0):
    return Request(arrival_ms=arrival, lba=lba, sectors=sectors)


def write(lba, sectors, arrival=0.0):
    return Request(arrival_ms=arrival, lba=lba, sectors=sectors, is_write=True)


class TestRaid0Geometry:
    @pytest.fixture
    def geometry(self):
        return Raid0Geometry(disk_count=4, stripe_unit_sectors=16, disk_sectors=1600)

    def test_logical_capacity(self, geometry):
        assert geometry.logical_sectors == 4 * 1600

    def test_small_request_single_disk(self, geometry):
        plan = geometry.plan(read(0, 8))
        assert len(plan.phases) == 1
        assert len(plan.phases[0]) == 1
        child = plan.phases[0][0]
        assert child.disk == 0 and child.lba == 0 and child.sectors == 8

    def test_units_rotate_over_disks(self, geometry):
        disks = [geometry.plan(read(unit * 16, 1)).phases[0][0].disk for unit in range(8)]
        assert disks == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_large_request_spans_disks(self, geometry):
        plan = geometry.plan(read(0, 64))
        children = plan.phases[0]
        assert {c.disk for c in children} == {0, 1, 2, 3}
        assert sum(c.sectors for c in children) == 64

    def test_total_child_sectors_preserved(self, geometry):
        for lba, sectors in ((5, 3), (10, 40), (100, 77)):
            plan = geometry.plan(read(lba, sectors))
            assert sum(c.sectors for c in plan.all_children()) == sectors

    def test_write_children_are_writes(self, geometry):
        plan = geometry.plan(write(0, 32))
        assert all(c.is_write for c in plan.all_children())

    def test_rejects_overflow(self, geometry):
        with pytest.raises(SimulationError):
            geometry.plan(read(geometry.logical_sectors - 4, 8))

    def test_coalesces_contiguous_same_disk_runs(self):
        # With 1 disk every unit is contiguous on that disk.
        geometry = Raid0Geometry(disk_count=1, stripe_unit_sectors=16, disk_sectors=1600)
        plan = geometry.plan(read(0, 64))
        assert len(plan.phases[0]) == 1
        assert plan.phases[0][0].sectors == 64


class TestRaid5Geometry:
    @pytest.fixture
    def geometry(self):
        return Raid5Geometry(disk_count=4, stripe_unit_sectors=16, disk_sectors=1600)

    def test_capacity_excludes_parity(self, geometry):
        raid0 = Raid0Geometry(disk_count=4, stripe_unit_sectors=16, disk_sectors=1600)
        assert geometry.logical_sectors == raid0.logical_sectors * 3 // 4

    def test_needs_three_disks(self):
        with pytest.raises(SimulationError):
            Raid5Geometry(disk_count=2, stripe_unit_sectors=16, disk_sectors=1600)

    def test_parity_rotates(self, geometry):
        paritys = [geometry.parity_disk(row) for row in range(4)]
        assert sorted(paritys) == [0, 1, 2, 3]

    def test_data_never_on_parity_disk(self, geometry):
        for unit in range(32):
            row = unit // geometry.data_disks
            disk, _ = geometry.locate_unit(unit)
            assert disk != geometry.parity_disk(row)

    def test_read_has_single_phase_no_parity(self, geometry):
        plan = geometry.plan(read(0, 32))
        assert len(plan.phases) == 1
        assert all(not c.is_write for c in plan.phases[0])
        assert sum(c.sectors for c in plan.phases[0]) == 32

    def test_small_write_is_read_modify_write(self, geometry):
        plan = geometry.plan(write(0, 8))
        assert len(plan.phases) == 2
        reads, writes = plan.phases
        assert all(not c.is_write for c in reads)
        assert all(c.is_write for c in writes)
        # Old data + old parity read; new data + new parity written.
        assert len(reads) == 2
        assert len(writes) == 2

    def test_full_stripe_write_skips_preread(self, geometry):
        full_stripe_sectors = geometry.data_disks * geometry.stripe_unit
        plan = geometry.plan(write(0, full_stripe_sectors))
        assert len(plan.phases) == 1
        writes = plan.phases[0]
        assert all(c.is_write for c in writes)
        # Data on 3 disks plus parity on 1: all four spindles engaged.
        assert {c.disk for c in writes} == {0, 1, 2, 3}
        assert sum(c.sectors for c in writes) == full_stripe_sectors + geometry.stripe_unit

    def test_write_includes_parity_per_row(self, geometry):
        plan = geometry.plan(write(0, 8))
        writes = plan.phases[-1]
        parity_children = [
            c for c in writes if c.disk == geometry.parity_disk(0)
        ]
        assert parity_children and parity_children[0].sectors == 16


class TestStorageArray:
    def build(self, geometry_cls, disks=4):
        events = EventQueue()
        members = [
            standard_disk(
                name=f"d{i}",
                events=events,
                diameter_in=2.6,
                platters=1,
                kbpi=300,
                ktpi=10,
                rpm=10000,
                zone_count=10,
            )
            for i in range(disks)
        ]
        per_disk = min(d.total_sectors for d in members)
        geometry = geometry_cls(disks, 16, per_disk)
        done = []
        array = StorageArray(
            members, geometry, events, on_complete=lambda r, t: done.append(r)
        )
        return events, array, done

    def test_raid0_logical_completion(self):
        events, array, done = self.build(Raid0Geometry)
        array.submit(read(0, 64))
        events.run()
        assert len(done) == 1
        assert done[0].completion_ms is not None
        assert array.in_flight() == 0

    def test_raid5_write_two_phase_ordering(self):
        events, array, done = self.build(Raid5Geometry)
        array.submit(write(0, 8))
        events.run()
        assert len(done) == 1
        # RMW: response must cover two serial disk accesses.
        assert done[0].response_time_ms > 2.0

    def test_parallelism_speeds_up_wide_reads(self):
        events, array, done = self.build(Raid0Geometry)
        array.submit(read(0, 256))
        events.run()
        wide = done[0].response_time_ms
        # The same bytes on a single disk take longer.
        events2, array2, done2 = self.build(Raid0Geometry, disks=1)
        array2.submit(read(0, 256))
        events2.run()
        assert done2[0].response_time_ms > wide

    def test_many_requests_all_complete(self):
        events, array, done = self.build(Raid5Geometry)
        import random

        rng = random.Random(11)
        for i in range(200):
            lba = rng.randrange(array.logical_sectors - 64)
            if rng.random() < 0.3:
                array.submit(write(lba, 8, arrival=float(i)))
            else:
                array.submit(read(lba, 8, arrival=float(i)))
        events.run()
        assert len(done) == 200
        assert array.in_flight() == 0

    def test_geometry_disk_count_must_match(self):
        events = EventQueue()
        disks = [
            standard_disk(
                name="d0", events=events, diameter_in=2.6, platters=1,
                kbpi=300, ktpi=10, rpm=10000, zone_count=10,
            )
        ]
        geometry = Raid0Geometry(2, 16, 1000)
        with pytest.raises(SimulationError):
            StorageArray(disks, geometry, events)
