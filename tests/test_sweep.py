"""Tests for the parallel sweep runner (repro.simulation.sweep).

The load-bearing guarantee is that the parallel path is *byte-identical*
to the serial path: same tasks, same pure worker, results assembled in
task order.  These tests exercise that guarantee with a real process pool
(2 workers — works on any host, including single-core CI boxes) on scaled-
down versions of the Figure 2 and Figure 4 sweeps.
"""

import pytest

from repro.errors import SimulationError
from repro.simulation.sweep import (
    ROADMAP_YEARS,
    RoadmapTask,
    WorkloadTask,
    _run_workload_task,
    resolve_workers,
    run_sweep,
    sweep_roadmap,
    sweep_workloads,
)


class TestResolveWorkers:
    def test_none_caps_at_task_count(self):
        assert resolve_workers(None, 1) == 1

    def test_explicit_count_respected(self):
        assert resolve_workers(3, 10) == 3

    def test_capped_by_tasks(self):
        assert resolve_workers(8, 2) == 2

    def test_zero_selects_serial_path(self):
        assert resolve_workers(0, 4) == 1

    def test_one_selects_serial_path(self):
        assert resolve_workers(1, 4) == 1

    def test_none_uses_cpu_count_capped_by_tasks(self):
        import os

        expected = min(os.cpu_count() or 1, 64)
        assert resolve_workers(None, 64) == max(1, expected)

    def test_rejects_negative(self):
        with pytest.raises(SimulationError):
            resolve_workers(-1, 4)


class TestRunSweep:
    def test_empty_tasks(self):
        assert run_sweep([], _square, workers=4) == []

    def test_serial_order_preserved(self):
        assert run_sweep([3, 1, 2], _square, workers=1) == [9, 1, 4]

    def test_parallel_order_preserved(self):
        tasks = list(range(20))
        assert run_sweep(tasks, _square, workers=2) == [t * t for t in tasks]


def _square(x):
    return x * x


class TestRoadmapSweep:
    def test_parallel_matches_serial_exactly(self):
        years = ROADMAP_YEARS[:3]
        serial = sweep_roadmap(platter_counts=(1, 2), years=years, workers=1)
        parallel = sweep_roadmap(platter_counts=(1, 2), years=years, workers=2)
        assert serial == parallel  # RoadmapPoint dataclasses compare by value

    def test_matches_direct_thermal_roadmap(self):
        from repro.scaling.roadmap import thermal_roadmap

        years = ROADMAP_YEARS[:2]
        by_count = sweep_roadmap(platter_counts=(1,), years=years, workers=1)
        assert by_count[1] == thermal_roadmap(platter_count=1, years=years)

    def test_result_keyed_and_ordered_by_platter_count(self):
        years = ROADMAP_YEARS[:2]
        by_count = sweep_roadmap(platter_counts=(4, 1), years=years, workers=1)
        assert list(by_count) == [4, 1]
        for points in by_count.values():
            assert [p.year for p in points] == sorted(p.year for p in points)


class TestWorkloadSweep:
    def test_parallel_matches_serial_exactly(self):
        kwargs = dict(names=["tpcc"], requests=300, seed=7, keep_samples=True)
        serial = sweep_workloads(workers=1, **kwargs)
        parallel = sweep_workloads(workers=2, **kwargs)
        assert serial == parallel

    def test_deterministic_across_repeat_runs(self):
        first = sweep_workloads(["oltp"], requests=300, seed=3, workers=1)
        second = sweep_workloads(["oltp"], requests=300, seed=3, workers=1)
        assert first == second

    def test_seed_changes_results(self):
        a = sweep_workloads(["tpcc"], requests=300, seed=1, workers=1)
        b = sweep_workloads(["tpcc"], requests=300, seed=2, workers=1)
        assert a != b

    def test_order_is_workload_major_then_ladder(self):
        results = sweep_workloads(
            ["oltp", "tpcc"], requests=200, rpm_steps=2, workers=1
        )
        assert [(r.workload,) for r in results] == [
            ("oltp",), ("oltp",), ("tpcc",), ("tpcc",)
        ]
        assert results[0].rpm < results[1].rpm
        assert results[2].rpm < results[3].rpm

    def test_explicit_rpm_ladder(self):
        results = sweep_workloads(
            ["tpcc"], rpms=(12000.0, 18000.0), requests=200, workers=1
        )
        assert [r.rpm for r in results] == [12000.0, 18000.0]

    def test_unknown_workload_raises_before_fork(self):
        from repro.errors import TraceError

        with pytest.raises(TraceError):
            sweep_workloads(["nonesuch"], requests=100, workers=2)

    def test_summary_fields_consistent(self):
        (result,) = sweep_workloads(
            ["tpcc"], rpms=(15000.0,), requests=400, workers=1, keep_samples=True
        )
        assert result.requests == len(result.samples_ms) == 400
        assert result.median_ms <= result.p95_ms <= result.max_ms
        assert 0.0 <= result.cache_hit_ratio <= 1.0
        fractions = [f for _, f in result.cdf]
        assert fractions == sorted(fractions)

    def test_task_worker_roundtrip_matches_system_replay(self):
        """The sweep worker reproduces exactly what a hand-built replay does."""
        from repro.workloads import workload

        spec = workload("tpcc")
        trace = spec.generate(num_requests=300, seed=5)
        report = spec.build_system(spec.base_rpm).run_trace(trace)
        result = _run_workload_task(
            WorkloadTask(workload="tpcc", rpm=spec.base_rpm, requests=300, seed=5)
        )
        assert result.mean_ms == report.stats.mean_ms()
        assert result.simulated_ms == report.simulated_ms


class TestRoadmapTaskDefaults:
    def test_default_span_is_paper_grid(self):
        task = RoadmapTask(platter_count=2)
        assert task.years == ROADMAP_YEARS
        assert len(task.years) == 11
