"""Property-based fleet tests over randomized rack topologies.

No Hypothesis here on purpose: the generators are hand-written over a
seeded ``random.Random`` so the 200 generated topologies are the *same*
200 on every host and every run — a failing case number is directly
re-runnable, and the byte-determinism property below would be
meaningless under a shrinking/replay framework that varies inputs.

Invariants checked on every generated topology:

* **Inlet monotonicity** — recirculation only ever *pre-heats*:
  enclosure inlets are non-decreasing along the stack and never below
  the cold-aisle supply; within an enclosure, downstream drives see
  hotter air than upstream ones.
* **Non-negativity** — heats, exhaust rises and cooling budgets are
  never negative anywhere in a profile.
* **Throttle-order invariance** — coordinating with the breach set
  enumerated forward or backward yields the *same* coordination.
* **Tiering conservation** — every extent lands on exactly one drive,
  total demand is conserved, and the planned power never exceeds the
  all-top-rung baseline.
* **Byte-determinism** — simulating the same rack task twice produces
  byte-identical canonical results JSON.
"""

from __future__ import annotations

import random

import pytest

from repro.constants import AMBIENT_TEMPERATURE_C, THERMAL_ENVELOPE_C
from repro.fleet import (
    EnclosureSpec,
    FleetDTMPolicy,
    RackSpec,
    TieringPolicy,
    coordinate_rack,
    fleet_results_json_bytes,
    rack_profile,
)
from repro.fleet.sweep import RackTask, _run_rack_task
from repro.fleet.tiering import extent_heats, plan_rack_tiering

#: One fixed seed; 200 cases derived from it.  Do not change casually —
#: the suite's value is that case N is the same topology forever.
SEED = 20260809
CASES = 200

RPM_LEVELS = (9600.0, 12000.0, 15000.0)


def generate_rack(rng: random.Random, index: int) -> RackSpec:
    """One random-but-reproducible rack topology.

    Ranges are chosen to straddle the interesting regimes: airflows from
    starved (never converges) through generous (never throttles),
    budgets from tight to irrelevant, stacks from flat to tall.
    """
    enclosures = []
    for _ in range(rng.randint(1, 4)):
        enclosures.append(
            EnclosureSpec(
                drives=rng.randint(1, 4),
                airflow_m3_per_s=rng.uniform(0.004, 0.05),
                cooling_budget_w=rng.uniform(20.0, 400.0),
                diameter_in=rng.choice((1.6, 2.1, 2.6)),
                platter_count=rng.randint(1, 2),
                vcm_duty=rng.uniform(0.0, 1.0),
            )
        )
    return RackSpec(
        name=f"gen{index:03d}",
        enclosures=tuple(enclosures),
        inlet_c=rng.uniform(18.0, 35.0),
        recirculation=rng.uniform(0.0, 1.0),
    )


def generated_racks():
    rng = random.Random(SEED)
    return [generate_rack(rng, index) for index in range(CASES)]


RACKS = generated_racks()


def test_generator_is_seed_deterministic():
    """The 200 topologies are a pure function of the fixed seed."""
    assert generated_racks() == RACKS


def test_inlet_monotonicity_everywhere():
    for rack in RACKS:
        profile = rack_profile(rack)
        inlets = [e.inlet_c for e in profile.enclosures]
        assert inlets == sorted(inlets), rack.name
        assert inlets[0] == rack.inlet_c, rack.name
        for enclosure in profile.enclosures:
            locals_ = [d.local_inlet_c for d in enclosure.drives]
            assert locals_ == sorted(locals_), rack.name
            assert locals_[0] == enclosure.inlet_c, rack.name
            # The exhaust leaves hotter than (or equal to) the last
            # drive's local inlet — air only gains heat along the path.
            assert enclosure.exhaust_c >= locals_[-1], rack.name


def test_everything_is_non_negative():
    for rack in RACKS:
        profile = rack_profile(rack)
        assert profile.total_heat_w >= 0.0
        for enclosure in profile.enclosures:
            assert enclosure.cooling_budget_w >= 0.0, rack.name
            assert enclosure.heat_w >= 0.0, rack.name
            assert enclosure.exhaust_c >= enclosure.inlet_c, rack.name
            for drive in enclosure.drives:
                assert drive.heat_w > 0.0, rack.name
                assert drive.internal_air_c > drive.local_inlet_c, rack.name


def test_throttling_never_heats_and_respects_envelope_on_convergence():
    policy = FleetDTMPolicy(rpm_levels=RPM_LEVELS)
    for rack in RACKS:
        before = rack_profile(rack)
        coord = coordinate_rack(rack, policy)
        assert coord.profile.max_internal_c <= before.max_internal_c + 1e-9
        assert 0.0 < coord.capacity_fraction <= 1.0, rack.name
        if coord.converged:
            assert coord.residual_breaches == 0
            assert (
                coord.profile.max_internal_c
                <= THERMAL_ENVELOPE_C + 1e-9
            ), rack.name
        else:
            assert coord.residual_breaches > 0, rack.name


def test_throttle_order_invariance():
    policy = FleetDTMPolicy(rpm_levels=RPM_LEVELS)
    for rack in RACKS:
        fwd = coordinate_rack(rack, policy, order="sorted")
        rev = coordinate_rack(rack, policy, order="reversed")
        assert fwd == rev, rack.name


def test_tiering_energy_and_demand_conservation():
    profile = FleetDTMPolicy(rpm_levels=RPM_LEVELS).profile()
    rng = random.Random(SEED + 1)
    for case in range(CASES):
        drives = rng.randint(1, 12)
        policy = TieringPolicy(
            extents=rng.randint(1, 128),
            seed=rng.randint(0, 2**31),
            target_utilization=rng.uniform(0.3, 1.0),
        )
        plan = plan_rack_tiering(drives, profile, policy)
        heats = extent_heats(policy.extents, policy.seed)
        assert plan.total_demand == pytest.approx(sum(heats), rel=1e-9), case
        assert len(plan.drive_levels) == drives
        assert all(level in RPM_LEVELS for level in plan.drive_levels), case
        assert 0 <= plan.migrated_extents <= plan.extents, case
        # Energy conservation: demoting drives can only shed heat.
        assert plan.planned_power_w <= plan.baseline_power_w + 1e-9, case
        assert plan.saved_power_w >= -1e-9, case


def test_fixed_seed_byte_determinism():
    """Simulating the same generated rack twice yields identical bytes —
    across the whole 200-case corpus, including fault-injected ones."""
    from repro.faults import FaultConfig

    policy = FleetDTMPolicy(rpm_levels=RPM_LEVELS)
    rng = random.Random(SEED + 2)
    for case, rack in enumerate(RACKS):
        fault = (
            FaultConfig(
                seed=rng.randint(0, 2**31),
                media_rate=rng.uniform(0.0, 0.2),
                servo_rate=rng.uniform(0.0, 0.1),
            )
            if case % 4 == 0
            else None
        )
        task = RackTask(
            rack=rack,
            envelope_c=policy.envelope_c,
            rpm_levels=policy.rpm_levels,
            tiering_extents=16 if case % 3 == 0 else 0,
            accesses_per_drive=32,
            fault_config=fault,
        )
        first = fleet_results_json_bytes([_run_rack_task(task)])
        second = fleet_results_json_bytes([_run_rack_task(task)])
        assert first == second, f"case {case} ({rack.name}) is not deterministic"
