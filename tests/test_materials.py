"""Material property tests."""

import pytest

from repro.materials import AIR, ALUMINUM, STEEL, Fluid, Material


class TestMaterial:
    def test_aluminum_volumetric_heat_capacity(self):
        assert ALUMINUM.volumetric_heat_capacity() == pytest.approx(2700 * 896)

    def test_diffusivity_positive(self):
        for material in (ALUMINUM, STEEL, AIR):
            assert material.thermal_diffusivity() > 0

    def test_aluminum_conducts_better_than_steel(self):
        assert ALUMINUM.conductivity > STEEL.conductivity

    def test_rejects_nonpositive_density(self):
        with pytest.raises(ValueError):
            Material(name="bad", density=0, specific_heat=1, conductivity=1)

    def test_rejects_nonpositive_conductivity(self):
        with pytest.raises(ValueError):
            Material(name="bad", density=1, specific_heat=1, conductivity=-2)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ALUMINUM.density = 1.0  # type: ignore[misc]


class TestFluid:
    def test_air_prandtl_near_0_7(self):
        assert 0.6 < AIR.prandtl < 0.8

    def test_air_is_light(self):
        assert AIR.density < 2.0

    def test_fluid_requires_viscosity(self):
        with pytest.raises(ValueError):
            Fluid(
                name="bad",
                density=1,
                specific_heat=1,
                conductivity=1,
                kinematic_viscosity=0,
                prandtl=0.7,
            )

    def test_fluid_requires_prandtl(self):
        with pytest.raises(ValueError):
            Fluid(
                name="bad",
                density=1,
                specific_heat=1,
                conductivity=1,
                kinematic_viscosity=1e-5,
                prandtl=0,
            )
