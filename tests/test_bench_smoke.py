"""Benchmark smoke target: miniature sweep + BENCH_PR1.json schema check.

Wired into the tier-1 suite so every run validates that the sweep
benchmark harness still executes end-to-end (in well under a minute) and
produces a well-formed perf-trajectory artifact.  ``make bench-smoke``
runs exactly this file.
"""

import importlib.util
import json
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]

_spec = importlib.util.spec_from_file_location(
    "bench_sweep", ROOT / "benchmarks" / "bench_sweep.py"
)
bench_sweep = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_sweep)


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    output = tmp_path_factory.mktemp("bench") / "BENCH_PR1.json"
    # workers=2 forces the real process-pool path even on single-core hosts.
    result = bench_sweep.run_bench(quick=True, workers=2, output=output)
    return result, output


def test_artifact_is_valid_json(report):
    _, output = report
    loaded = json.loads(output.read_text(encoding="utf-8"))
    assert loaded["schema"] == bench_sweep.SCHEMA


def test_schema_shape(report):
    result, _ = report
    assert result["schema"] == "repro.bench_sweep/1"
    assert result["quick"] is True
    assert isinstance(result["host"]["cpu_count"], int)
    for section in ("figure2_roadmap", "figure4_replay", "stats_hot_path"):
        assert section in result
    fig2 = result["figure2_roadmap"]
    assert fig2["platter_counts"] == [1, 2, 4]
    assert fig2["points"] == fig2["years"] * 3 * 3  # years x counts x sizes
    for key in ("serial_s", "parallel_s", "speedup"):
        assert isinstance(fig2[key], float) and fig2[key] > 0
    fig4 = result["figure4_replay"]
    assert fig4["workload"] == "tpcc"
    assert fig4["rpm_steps"] == len(fig4["mean_ms"]) == 4
    stats = result["stats_hot_path"]
    assert stats["queries"] == stats["samples"] // 10


def test_parallel_paths_byte_identical(report):
    result, _ = report
    assert result["figure2_roadmap"]["parallel_identical"] is True
    assert result["figure4_replay"]["parallel_identical"] is True


def test_stats_hot_path_speedup(report):
    result, _ = report
    stats = result["stats_hot_path"]
    assert stats["identical"] is True
    # The cached sorted view must beat re-sort-per-query by a wide margin
    # even at smoke scale (full scale records >10x).
    assert stats["speedup"] > 1.5


def test_checked_in_artifact_well_formed():
    """The committed BENCH_PR1.json matches the schema too."""
    path = ROOT / "BENCH_PR1.json"
    assert path.exists(), "BENCH_PR1.json missing; run benchmarks/bench_sweep.py"
    loaded = json.loads(path.read_text(encoding="utf-8"))
    assert loaded["schema"] == "repro.bench_sweep/1"
    assert loaded["figure2_roadmap"]["parallel_identical"] is True
    assert loaded["figure4_replay"]["parallel_identical"] is True
    assert loaded["stats_hot_path"]["speedup"] > 3.0
