"""Percentile edge cases and scalar/vector bit-identity (satellite of PR 6).

The fast engines compute percentiles and CDFs with numpy; the exact
engine uses :class:`ResponseTimeStats`.  Both now route through the one
formula in :func:`percentile_from_sorted`, and this suite holds them to
bit-for-bit agreement — plus checks the formula itself against stdlib
oracles (``statistics.quantiles`` with the matching *inclusive* scheme,
and directly checkable edge cases: q=0/q=100, single samples, duplicate
values).
"""

from __future__ import annotations

import random
import statistics as stdlib_stats

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation.statistics import (
    PAPER_CDF_BINS_MS,
    ResponseTimeStats,
    cdf_batch,
    percentile_from_sorted,
    percentiles_batch,
)


def _datasets():
    rng = random.Random(20260808)
    yield "uniform", [rng.uniform(0, 250) for _ in range(501)]
    yield "heavy-tail", [rng.expovariate(0.05) for _ in range(256)]
    yield "duplicates", [float(rng.randint(0, 9)) for _ in range(100)]
    yield "all-equal", [3.25] * 37
    yield "two", [8.0, 2.0]
    yield "single", [42.5]
    yield "integers", [float(v) for v in rng.sample(range(10_000), 400)]


DATASETS = dict(_datasets())


@pytest.mark.parametrize("name", sorted(DATASETS))
def test_quantiles_oracle(name):
    """statistics.quantiles(method='inclusive') uses the same rank scheme."""
    data = DATASETS[name]
    if len(data) < 2:
        pytest.skip("stdlib quantiles needs two data points")
    cut = stdlib_stats.quantiles(data, n=100, method="inclusive")
    s = sorted(data)
    for q in range(1, 100):
        assert percentile_from_sorted(s, q) == pytest.approx(
            cut[q - 1], rel=1e-12, abs=1e-12
        )


@pytest.mark.parametrize("name", sorted(DATASETS))
def test_edges_and_extremes(name):
    data = sorted(DATASETS[name])
    assert percentile_from_sorted(data, 0) == min(data)
    assert percentile_from_sorted(data, 100) == max(data)
    assert min(data) <= percentile_from_sorted(data, 50) <= max(data)


@pytest.mark.parametrize("name", sorted(DATASETS))
def test_batch_is_bitwise_identical_to_scalar(name):
    data = DATASETS[name]
    qs = [0, 1, 25, 50, 75, 90, 95, 99, 99.9, 100]
    batch = percentiles_batch(np.asarray(data), qs)
    s = sorted(data)
    for q, got in zip(qs, batch):
        assert float(got) == percentile_from_sorted(s, q), (name, q)


@pytest.mark.parametrize("name", sorted(DATASETS))
def test_stats_object_matches_module_function(name):
    data = DATASETS[name]
    stats = ResponseTimeStats(samples_ms=list(data))
    s = sorted(data)
    for q in (0, 37.5, 50, 95, 100):
        assert stats.percentile_ms(q) == percentile_from_sorted(s, q)


@pytest.mark.parametrize("name", sorted(DATASETS))
def test_cdf_batch_is_bitwise_identical_to_scalar(name):
    data = DATASETS[name]
    stats = ResponseTimeStats(samples_ms=list(data))
    assert cdf_batch(np.asarray(data)) == stats.cdf()
    # bin edges pass through unchanged (ints stay ints — JSON identity)
    assert [edge for edge, _ in cdf_batch(np.asarray(data))] == sorted(
        PAPER_CDF_BINS_MS
    )


def test_single_sample_answers_every_percentile():
    for q in (0, 13.7, 50, 100):
        assert percentile_from_sorted([7.5], q) == 7.5


def test_percentile_rejects_bad_inputs():
    with pytest.raises(SimulationError):
        percentile_from_sorted([], 50)
    with pytest.raises(SimulationError):
        percentile_from_sorted([1.0], -0.1)
    with pytest.raises(SimulationError):
        percentile_from_sorted([1.0], 100.1)
    with pytest.raises(SimulationError):
        percentiles_batch(np.asarray([], dtype=float), [50])
    with pytest.raises(SimulationError):
        percentiles_batch(np.asarray([1.0]), [101])
    with pytest.raises(SimulationError):
        cdf_batch(np.asarray([], dtype=float))


def test_interpolation_between_duplicates_is_exact():
    # interpolating between equal neighbours must return the value itself
    data = [1.0, 5.0, 5.0, 5.0, 9.0]
    assert percentile_from_sorted(data, 40) == 5.0
    assert percentile_from_sorted(data, 50) == 5.0
    assert percentile_from_sorted(data, 60) == 5.0
