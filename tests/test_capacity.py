"""Capacity-model tests: recording, servo, ECC, zones, derated capacity."""

import math

import pytest

from repro.capacity import (
    CapacityModel,
    RecordingTechnology,
    ZonedSurface,
    ecc_bits_per_sector,
    ecc_fraction,
    gray_code,
    gray_decode,
    servo_bits_per_sector,
    smooth_ecc_bits_per_sector,
)
from repro.constants import ECC_BITS_SUBTERABIT, ECC_BITS_TERABIT
from repro.errors import RecordingError
from repro.geometry.platter import Platter


class TestRecordingTechnology:
    def test_areal_density(self):
        tech = RecordingTechnology.from_kilo_units(500, 40)
        assert tech.areal_density == pytest.approx(2.0e10)

    def test_bar(self):
        tech = RecordingTechnology.from_kilo_units(480, 80)
        assert tech.bit_aspect_ratio == pytest.approx(6.0)

    def test_terabit_flag(self):
        assert RecordingTechnology.from_kilo_units(1900, 540).is_terabit
        assert not RecordingTechnology.from_kilo_units(570, 64).is_terabit

    def test_scaled(self):
        tech = RecordingTechnology.from_kilo_units(100, 10)
        scaled = tech.scaled(1.3, 1.5)
        assert scaled.bpi == pytest.approx(130_000)
        assert scaled.tpi == pytest.approx(15_000)

    def test_rejects_nonpositive(self):
        with pytest.raises(RecordingError):
            RecordingTechnology(bpi=0, tpi=1)
        with pytest.raises(RecordingError):
            RecordingTechnology(bpi=1, tpi=-5)

    def test_scaled_rejects_nonpositive_factor(self):
        tech = RecordingTechnology.from_kilo_units(100, 10)
        with pytest.raises(RecordingError):
            tech.scaled(0, 1)


class TestServo:
    def test_bits_for_power_of_two(self):
        assert servo_bits_per_sector(1024) == 10

    def test_bits_round_up(self):
        assert servo_bits_per_sector(1025) == 11

    def test_single_track(self):
        assert servo_bits_per_sector(1) == 1

    def test_rejects_zero(self):
        with pytest.raises(RecordingError):
            servo_bits_per_sector(0)

    def test_gray_code_adjacent_tracks_differ_by_one_bit(self):
        for track in range(2048):
            diff = gray_code(track) ^ gray_code(track + 1)
            assert bin(diff).count("1") == 1

    def test_gray_roundtrip(self):
        for track in range(512):
            assert gray_decode(gray_code(track)) == track

    def test_gray_rejects_negative(self):
        with pytest.raises(RecordingError):
            gray_code(-1)


class TestECC:
    def test_subterabit(self):
        assert ecc_bits_per_sector(5e11) == ECC_BITS_SUBTERABIT

    def test_terabit(self):
        assert ecc_bits_per_sector(1e12) == ECC_BITS_TERABIT

    def test_fractions_match_paper(self):
        # ~10% below the terabit point, ~35% above (Wood [49]).
        assert ecc_fraction(5e11) == pytest.approx(0.10, abs=0.02)
        assert ecc_fraction(2e12) == pytest.approx(0.35, abs=0.02)

    def test_rejects_nonpositive_density(self):
        with pytest.raises(RecordingError):
            ecc_bits_per_sector(0)

    def test_smooth_matches_step_far_from_transition(self):
        assert smooth_ecc_bits_per_sector(1e10) == ECC_BITS_SUBTERABIT
        assert smooth_ecc_bits_per_sector(1e14) == ECC_BITS_TERABIT

    def test_smooth_is_monotone_through_transition(self):
        densities = [10 ** (11.5 + i * 0.05) for i in range(21)]
        values = [smooth_ecc_bits_per_sector(d) for d in densities]
        assert values == sorted(values)

    def test_smooth_midpoint_between_extremes(self):
        mid = smooth_ecc_bits_per_sector(1e12)
        assert ECC_BITS_SUBTERABIT < mid <= ECC_BITS_TERABIT


class TestZonedSurface:
    def test_track_zero_is_outer_radius(self, surface_2002, platter_26):
        assert surface_2002.track_radius_in(0) == pytest.approx(platter_26.outer_radius_in)

    def test_innermost_track_is_inner_radius(self, surface_2002, platter_26):
        last = surface_2002.cylinders - 1
        assert surface_2002.track_radius_in(last) == pytest.approx(platter_26.inner_radius_in)

    def test_radii_decrease_with_track(self, surface_2002):
        step = surface_2002.cylinders // 7
        radii = [surface_2002.track_radius_in(j) for j in range(0, surface_2002.cylinders, step)]
        assert radii == sorted(radii, reverse=True)

    def test_perimeter_formula(self, surface_2002):
        j = 100
        assert surface_2002.track_perimeter_in(j) == pytest.approx(
            2 * math.pi * surface_2002.track_radius_in(j)
        )

    def test_cylinder_count_uses_stroke_efficiency(self, platter_26, tech_2002):
        full = ZonedSurface(platter_26, tech_2002, zone_count=50, stroke_efficiency=1.0)
        partial = ZonedSurface(platter_26, tech_2002, zone_count=50, stroke_efficiency=2 / 3)
        assert partial.cylinders == pytest.approx(full.cylinders * 2 / 3, rel=0.01)

    def test_zone_partition_covers_all_tracks(self, surface_2002):
        total = sum(zone.track_count for zone in surface_2002.zones)
        assert total == surface_2002.cylinders

    def test_zones_are_contiguous(self, surface_2002):
        position = 0
        for zone in surface_2002.zones:
            assert zone.first_track == position
            position += zone.track_count

    def test_outer_zones_hold_more_sectors(self, surface_2002):
        sectors = [zone.sectors_per_track for zone in surface_2002.zones]
        assert sectors == sorted(sectors, reverse=True)
        assert sectors[0] > sectors[-1]

    def test_zone_of_track(self, surface_2002):
        for zone in (surface_2002.zones[0], surface_2002.zones[25], surface_2002.zones[-1]):
            assert surface_2002.zone_of_track(zone.first_track).index == zone.index
            last = zone.first_track + zone.track_count - 1
            assert surface_2002.zone_of_track(last).index == zone.index

    def test_overhead_fraction_near_11_percent(self, surface_2002):
        # 416 ECC bits + ~15 servo bits over 4096.
        assert 0.095 < surface_2002.overhead_fraction < 0.12

    def test_rejects_more_zones_than_tracks(self, platter_26):
        sparse = RecordingTechnology.from_kilo_units(100, 0.05)
        with pytest.raises(RecordingError):
            ZonedSurface(platter_26, sparse, zone_count=1000)

    def test_rejects_bad_track_index(self, surface_2002):
        with pytest.raises(RecordingError):
            surface_2002.track_radius_in(-1)
        with pytest.raises(RecordingError):
            surface_2002.track_radius_in(surface_2002.cylinders)

    def test_rejects_bad_stroke_efficiency(self, platter_26, tech_2002):
        with pytest.raises(RecordingError):
            ZonedSurface(platter_26, tech_2002, stroke_efficiency=0.0)
        with pytest.raises(RecordingError):
            ZonedSurface(platter_26, tech_2002, stroke_efficiency=1.5)


class TestCapacityModel:
    def test_capacity_doubles_with_platters(self, platter_26, tech_2002):
        one = CapacityModel(platter_26, tech_2002, platter_count=1).usable_capacity_gb()
        two = CapacityModel(platter_26, tech_2002, platter_count=2).usable_capacity_gb()
        assert two == pytest.approx(2 * one)

    def test_capacity_scales_with_area(self, tech_2002):
        small = CapacityModel(Platter(diameter_in=1.6), tech_2002).usable_capacity_gb()
        large = CapacityModel(Platter(diameter_in=3.2), tech_2002).usable_capacity_gb()
        assert large / small == pytest.approx(4.0, rel=0.02)

    def test_usable_below_raw(self, platter_26, tech_2002):
        model = CapacityModel(platter_26, tech_2002)
        assert model.usable_capacity_gb() < model.raw_capacity_gb()

    def test_breakdown_accounts_for_losses(self, platter_26, tech_2002):
        breakdown = CapacityModel(platter_26, tech_2002).breakdown()
        assert breakdown.zbr_loss_gb >= 0
        assert breakdown.overhead_loss_gb > 0
        assert breakdown.usable_gb == pytest.approx(
            breakdown.raw_gb - breakdown.zbr_loss_gb - breakdown.overhead_loss_gb
        )

    def test_gib_below_gb(self, platter_26, tech_2002):
        model = CapacityModel(platter_26, tech_2002)
        assert model.usable_capacity_gib() == pytest.approx(
            model.usable_capacity_gb() * 1e9 / 2**30
        )

    def test_more_zones_recover_zbr_loss(self, platter_26, tech_2002):
        few = CapacityModel(platter_26, tech_2002, zone_count=5).usable_capacity_gb()
        many = CapacityModel(platter_26, tech_2002, zone_count=100).usable_capacity_gb()
        assert many > few

    def test_rejects_zero_platters(self, platter_26, tech_2002):
        with pytest.raises(RecordingError):
            CapacityModel(platter_26, tech_2002, platter_count=0)

    def test_bytes_consistent_with_sectors(self, platter_26, tech_2002):
        model = CapacityModel(platter_26, tech_2002)
        assert model.usable_capacity_bytes() == model.usable_sectors * 512
