"""Seek-curve extraction tests: the simulator's observed behaviour must
match the analytic model it was built from (Worthington-style validation)."""

import pytest

from repro.errors import SimulationError
from repro.performance.extraction import (
    SeekSample,
    extract_seek_curve,
    extraction_error,
)
from repro.simulation import EventQueue, standard_disk


@pytest.fixture
def probe_disk():
    events = EventQueue()
    return standard_disk(
        name="probe",
        events=events,
        diameter_in=2.6,
        platters=1,
        kbpi=300,
        ktpi=10,
        rpm=10000,
        zone_count=10,
    )


class TestExtraction:
    def test_extracted_curve_matches_model(self, probe_disk):
        cylinders = probe_disk.layout.cylinders
        distances = [1, cylinders // 10, cylinders // 3, cylinders - 1]
        samples = extract_seek_curve(probe_disk, distances, rotational_probes=10)
        # Within the rotational residue (period/probes = 0.6 ms) + settle.
        assert extraction_error(probe_disk, samples) < 1.0

    def test_curve_monotone(self, probe_disk):
        cylinders = probe_disk.layout.cylinders
        distances = [1, cylinders // 20, cylinders // 5, cylinders // 2, cylinders - 1]
        samples = extract_seek_curve(probe_disk, distances, rotational_probes=6)
        times = [s.seek_ms for s in samples]
        # Monotone within the probe residue.
        for earlier, later in zip(times, times[1:]):
            assert later >= earlier - 0.7

    def test_full_stroke_value(self, probe_disk):
        cylinders = probe_disk.layout.cylinders
        [sample] = extract_seek_curve(probe_disk, [cylinders - 1], rotational_probes=10)
        expected = probe_disk.seek_model.parameters.full_stroke_ms
        assert sample.seek_ms == pytest.approx(expected, abs=1.0)

    def test_cache_restored_after_extraction(self, probe_disk):
        cache = probe_disk.cache
        assert cache is not None
        extract_seek_curve(probe_disk, [1], rotational_probes=2)
        assert probe_disk.cache is cache

    def test_rejects_bad_distance(self, probe_disk):
        with pytest.raises(SimulationError):
            extract_seek_curve(probe_disk, [probe_disk.layout.cylinders])

    def test_rejects_zero_probes(self, probe_disk):
        with pytest.raises(SimulationError):
            extract_seek_curve(probe_disk, [1], rotational_probes=0)

    def test_sample_dataclass(self):
        sample = SeekSample(distance=5, seek_ms=1.25)
        assert sample.distance == 5
        assert sample.seek_ms == 1.25
