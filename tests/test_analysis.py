"""Workload/run analysis tests, including the paper's Openmail
characterization check."""

import pytest

from repro.errors import TraceError
from repro.workloads import (
    Trace,
    TraceRecord,
    compare_to_paper_openmail,
    profile_trace,
    replay_and_analyze,
    seek_activity,
    workload,
)


class TestProfileTrace:
    def make(self):
        return Trace(
            name="p",
            records=[
                TraceRecord(0.0, 0, 8, False),
                TraceRecord(2.0, 8, 8, False),  # sequential continuation
                TraceRecord(4.0, 5000, 4, True),
                TraceRecord(6.0, 9000, 4, False),
            ],
        )

    def test_basic_fields(self):
        profile = profile_trace(self.make())
        assert profile.requests == 4
        assert profile.read_fraction == pytest.approx(0.75)
        assert profile.mean_size_kb == pytest.approx(3.0)
        assert profile.mean_interarrival_ms == pytest.approx(2.0)

    def test_sequential_detection(self):
        profile = profile_trace(self.make())
        assert profile.sequential_fraction == pytest.approx(0.25)

    def test_constant_gaps_have_zero_cv2(self):
        profile = profile_trace(self.make())
        assert profile.cv2_interarrival == pytest.approx(0.0)

    def test_needs_two_requests(self):
        with pytest.raises(TraceError):
            profile_trace(Trace(name="x", records=[TraceRecord(0, 0, 1, False)]))

    def test_bursty_trace_high_cv2(self):
        spec = workload("openmail")
        trace = spec.generate(num_requests=3000, seed=2)
        profile = profile_trace(trace)
        assert profile.cv2_interarrival > 3.0  # burstiness 8 shape

    def test_poissonish_trace_cv2_near_one(self):
        spec = workload("tpch")  # burstiness 1.5
        trace = spec.generate(num_requests=3000, seed=2)
        profile = profile_trace(trace)
        assert profile.cv2_interarrival < 4.0


class TestSeekActivity:
    def test_openmail_matches_paper_characterization(self):
        """Paper §5.1: Openmail averages 1,952 cylinders of seek per
        request, with >86% of requests moving the arm.  The synthetic
        stand-in must land in the same regime (generous bands — the
        statistics were never tuned for)."""
        _, _, activity = replay_and_analyze(workload("openmail"), num_requests=4000)
        comparison = compare_to_paper_openmail(activity)
        assert 0.75 <= comparison["arm_movement_fraction"] <= 1.0
        assert 1000 <= comparison["mean_seek_cylinders"] <= 3000

    def test_sequential_workload_moves_arm_less(self):
        _, _, seqish = replay_and_analyze(workload("tpch"), num_requests=2500)
        _, _, randomish = replay_and_analyze(
            workload("search_engine"), num_requests=2500
        )
        assert seqish.arm_movement_fraction < randomish.arm_movement_fraction

    def test_locality_shortens_seeks(self):
        _, _, tight = replay_and_analyze(workload("tpcc"), num_requests=2000)
        _, _, spread = replay_and_analyze(workload("openmail"), num_requests=2000)
        assert tight.mean_seek_cylinders < spread.mean_seek_cylinders

    def test_requires_completed_run(self):
        system = workload("oltp").build_system()
        with pytest.raises(TraceError):
            seek_activity(system)

    def test_per_disk_list_length(self):
        spec = workload("tpcc")
        _, _, activity = replay_and_analyze(spec, num_requests=1000)
        assert len(activity.per_disk_mean_seek) == spec.disk_count
