"""Geometry tests: platters, stacks, enclosures, actuators."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry import (
    FORM_FACTOR_25,
    FORM_FACTOR_35,
    Actuator,
    DiskStack,
    Enclosure,
    Platter,
    actuator_for_platter,
    form_factor,
)


class TestPlatter:
    def test_inner_radius_is_half_outer(self):
        platter = Platter(diameter_in=2.6)
        assert platter.inner_radius_in == pytest.approx(platter.outer_radius_in / 2)

    def test_radial_band(self):
        platter = Platter(diameter_in=3.0)
        assert platter.radial_band_in == pytest.approx(0.75)

    def test_annulus_area(self):
        platter = Platter(diameter_in=2.0)
        # pi (1^2 - 0.5^2) = 0.75 pi
        assert platter.annulus_area_in2() == pytest.approx(0.75 * math.pi)

    def test_mass_scales_with_diameter_squared(self):
        small = Platter(diameter_in=1.6)
        large = Platter(diameter_in=3.2)
        assert large.mass_kg() / small.mass_kg() == pytest.approx(4.0)

    def test_mass_plausible(self):
        # A 2.6-inch 1 mm aluminum platter weighs a handful of grams.
        mass = Platter(diameter_in=2.6).mass_kg()
        assert 0.002 < mass < 0.02

    def test_rejects_nonpositive_diameter(self):
        with pytest.raises(GeometryError):
            Platter(diameter_in=0.0)

    def test_rejects_nonpositive_thickness(self):
        with pytest.raises(GeometryError):
            Platter(diameter_in=2.6, thickness_m=-1e-3)

    def test_metric_radii_consistent(self):
        platter = Platter(diameter_in=2.6)
        assert platter.outer_radius_m == pytest.approx(platter.outer_radius_in * 0.0254)


class TestDiskStack:
    def test_surfaces_twice_platters(self):
        stack = DiskStack(platter=Platter(diameter_in=2.6), count=4)
        assert stack.surfaces == 8

    def test_heat_capacity_grows_with_count(self):
        p = Platter(diameter_in=2.6)
        one = DiskStack(platter=p, count=1).heat_capacity_j_per_k()
        four = DiskStack(platter=p, count=4).heat_capacity_j_per_k()
        assert four > one

    def test_convective_area_grows_with_count(self):
        p = Platter(diameter_in=2.6)
        one = DiskStack(platter=p, count=1).convective_area_m2()
        two = DiskStack(platter=p, count=2).convective_area_m2()
        assert two > one

    def test_mass_includes_hub(self):
        p = Platter(diameter_in=2.6)
        stack = DiskStack(platter=p, count=1)
        assert stack.mass_kg() > p.mass_kg()

    def test_rejects_zero_platters(self):
        with pytest.raises(GeometryError):
            DiskStack(platter=Platter(diameter_in=2.6), count=0)


class TestEnclosure:
    def test_35_houses_26_platter(self):
        assert FORM_FACTOR_35.can_house_platter(2.6)

    def test_35_houses_37_platter(self):
        assert FORM_FACTOR_35.can_house_platter(3.7)

    def test_25_houses_26_platter(self):
        # The paper notes the 2.5-inch form factor (3.96 x 2.75) can still
        # house a 2.6-inch platter.
        assert FORM_FACTOR_25.can_house_platter(2.6)

    def test_25_rejects_33_platter(self):
        assert not FORM_FACTOR_25.can_house_platter(3.3)

    def test_smaller_form_factor_has_less_external_area(self):
        assert FORM_FACTOR_25.external_area_m2() < FORM_FACTOR_35.external_area_m2()

    def test_air_volume_shrinks_with_displacement(self):
        free = FORM_FACTOR_35.internal_air_volume_m3()
        displaced = FORM_FACTOR_35.internal_air_volume_m3(1e-5)
        assert displaced < free

    def test_air_volume_never_nonpositive(self):
        assert FORM_FACTOR_35.internal_air_volume_m3(1.0) > 0

    def test_casting_mass_plausible(self):
        # A 3.5-inch drive casting shell is a few hundred grams.
        assert 0.1 < FORM_FACTOR_35.casting_mass_kg() < 1.0

    def test_form_factor_lookup(self):
        assert form_factor("3.5") is FORM_FACTOR_35
        assert form_factor("2.5") is FORM_FACTOR_25

    def test_form_factor_unknown(self):
        with pytest.raises(GeometryError):
            form_factor("5.25")

    def test_rejects_bad_dimensions(self):
        with pytest.raises(GeometryError):
            Enclosure(name="bad", length_in=0, width_in=1, height_in=1)


class TestActuator:
    def test_arm_scales_with_platter(self):
        small = actuator_for_platter(Platter(diameter_in=1.6))
        large = actuator_for_platter(Platter(diameter_in=3.3))
        assert large.arm_length_m > small.arm_length_m

    def test_arm_count_tracks_surfaces(self):
        actuator = actuator_for_platter(Platter(diameter_in=2.6), surfaces=8)
        assert actuator.arm_count == 8

    def test_heat_capacity_positive_and_small(self):
        actuator = actuator_for_platter(Platter(diameter_in=2.6))
        # Sub-second thermal time constant requires a small capacitance.
        assert 0.1 < actuator.heat_capacity_j_per_k() < 10.0

    def test_convective_area_positive(self):
        actuator = actuator_for_platter(Platter(diameter_in=2.6))
        assert actuator.convective_area_m2() > 0

    def test_rejects_bad_arm_length(self):
        with pytest.raises(GeometryError):
            Actuator(arm_length_m=0.0)

    def test_rejects_bad_arm_count(self):
        with pytest.raises(GeometryError):
            Actuator(arm_length_m=0.03, arm_count=0)
