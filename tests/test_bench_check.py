"""Tests for the CI bench-regression gate (tools/bench_check.py).

The gate must pass on the committed baseline compared with itself and
exit non-zero on a deliberately degraded metrics file."""

import copy
import json
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]
TOOLS_DIR = ROOT / "tools"
if str(TOOLS_DIR) not in sys.path:
    sys.path.insert(0, str(TOOLS_DIR))

import bench_check  # noqa: E402

BASELINE_PATH = ROOT / "BENCH_PR1.json"


@pytest.fixture(scope="module")
def baseline():
    return json.loads(BASELINE_PATH.read_text())


def _write(tmp_path, data, name="fresh.json"):
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return path


class TestVerdicts:
    def test_baseline_vs_itself_passes(self, tmp_path, baseline):
        fresh = _write(tmp_path, baseline)
        rc = bench_check.main(["--baseline", str(BASELINE_PATH), "--fresh", str(fresh)])
        assert rc == 0

    def test_degraded_mean_ms_fails(self, tmp_path, baseline):
        degraded = copy.deepcopy(baseline)
        degraded["figure4_replay"]["mean_ms"][0] *= 1.01  # determinism broken
        fresh = _write(tmp_path, degraded)
        rc = bench_check.main(["--baseline", str(BASELINE_PATH), "--fresh", str(fresh)])
        assert rc == 1

    def test_identity_flag_false_fails(self, tmp_path, baseline):
        degraded = copy.deepcopy(baseline)
        degraded["figure2_roadmap"]["parallel_identical"] = False
        fresh = _write(tmp_path, degraded)
        rc = bench_check.main(["--baseline", str(BASELINE_PATH), "--fresh", str(fresh)])
        assert rc == 1

    def test_perf_regression_fails_and_noise_passes(self, tmp_path, baseline):
        noisy = copy.deepcopy(baseline)
        noisy["figure4_replay"]["serial_s"] *= 1.5  # within 2x: runner noise
        assert (
            bench_check.main(
                ["--baseline", str(BASELINE_PATH), "--fresh", str(_write(tmp_path, noisy))]
            )
            == 0
        )
        slow = copy.deepcopy(baseline)
        slow["figure4_replay"]["serial_s"] *= 2.5  # beyond 2x: regression
        assert (
            bench_check.main(
                [
                    "--baseline",
                    str(BASELINE_PATH),
                    "--fresh",
                    str(_write(tmp_path, slow, "slow.json")),
                ]
            )
            == 1
        )

    def test_perf_tolerance_is_tunable(self, tmp_path, baseline):
        slow = copy.deepcopy(baseline)
        slow["figure4_replay"]["serial_s"] *= 2.5
        rc = bench_check.main(
            [
                "--baseline",
                str(BASELINE_PATH),
                "--fresh",
                str(_write(tmp_path, slow)),
                "--perf-tolerance",
                "3.0",
            ]
        )
        assert rc == 0

    def test_hot_path_speedup_collapse_fails(self, tmp_path, baseline):
        degraded = copy.deepcopy(baseline)
        degraded["stats_hot_path"]["speedup"] = 1.1
        fresh = _write(tmp_path, degraded)
        rc = bench_check.main(["--baseline", str(BASELINE_PATH), "--fresh", str(fresh)])
        assert rc == 1

    def test_report_artifact_records_failures(self, tmp_path, baseline):
        degraded = copy.deepcopy(baseline)
        degraded["stats_hot_path"]["identical"] = False
        fresh = _write(tmp_path, degraded)
        report = tmp_path / "verdict.json"
        rc = bench_check.main(
            [
                "--baseline",
                str(BASELINE_PATH),
                "--fresh",
                str(fresh),
                "--report",
                str(report),
            ]
        )
        assert rc == 1
        verdict = json.loads(report.read_text())
        assert verdict["ok"] is False
        assert any("identical" in failure for failure in verdict["failures"])


class TestMalformedInput:
    def test_missing_file_fails(self, tmp_path):
        rc = bench_check.main(
            ["--baseline", str(BASELINE_PATH), "--fresh", str(tmp_path / "nope.json")]
        )
        assert rc == 1

    def test_non_bench_json_fails(self, tmp_path):
        fresh = _write(tmp_path, {"hello": "world"})
        rc = bench_check.main(["--baseline", str(BASELINE_PATH), "--fresh", str(fresh)])
        assert rc == 1

    def test_schema_mismatch_fails(self, tmp_path, baseline):
        degraded = copy.deepcopy(baseline)
        degraded["schema"] = "something_else/9"
        fresh = _write(tmp_path, degraded)
        rc = bench_check.main(["--baseline", str(BASELINE_PATH), "--fresh", str(fresh)])
        assert rc == 1

    def test_shape_mismatch_fails(self, tmp_path, baseline):
        degraded = copy.deepcopy(baseline)
        degraded["figure4_replay"]["mean_ms"] = degraded["figure4_replay"]["mean_ms"][:2]
        fresh = _write(tmp_path, degraded)
        rc = bench_check.main(["--baseline", str(BASELINE_PATH), "--fresh", str(fresh)])
        assert rc == 1
