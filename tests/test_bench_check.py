"""Tests for the CI bench-regression gate (tools/bench_check.py).

The gate must pass on the committed baseline compared with itself and
exit non-zero on a deliberately degraded metrics file."""

import copy
import json
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]
TOOLS_DIR = ROOT / "tools"
if str(TOOLS_DIR) not in sys.path:
    sys.path.insert(0, str(TOOLS_DIR))

import bench_check  # noqa: E402

BASELINE_PATH = ROOT / "BENCH_PR1.json"


@pytest.fixture(scope="module")
def baseline():
    return json.loads(BASELINE_PATH.read_text())


def _write(tmp_path, data, name="fresh.json"):
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return path


class TestVerdicts:
    def test_baseline_vs_itself_passes(self, tmp_path, baseline):
        fresh = _write(tmp_path, baseline)
        rc = bench_check.main(["--baseline", str(BASELINE_PATH), "--fresh", str(fresh)])
        assert rc == 0

    def test_degraded_mean_ms_fails(self, tmp_path, baseline):
        degraded = copy.deepcopy(baseline)
        degraded["figure4_replay"]["mean_ms"][0] *= 1.01  # determinism broken
        fresh = _write(tmp_path, degraded)
        rc = bench_check.main(["--baseline", str(BASELINE_PATH), "--fresh", str(fresh)])
        assert rc == 1

    def test_identity_flag_false_fails(self, tmp_path, baseline):
        degraded = copy.deepcopy(baseline)
        degraded["figure2_roadmap"]["parallel_identical"] = False
        fresh = _write(tmp_path, degraded)
        rc = bench_check.main(["--baseline", str(BASELINE_PATH), "--fresh", str(fresh)])
        assert rc == 1

    def test_perf_regression_fails_and_noise_passes(self, tmp_path, baseline):
        noisy = copy.deepcopy(baseline)
        noisy["figure4_replay"]["serial_s"] *= 1.5  # within 2x: runner noise
        assert (
            bench_check.main(
                ["--baseline", str(BASELINE_PATH), "--fresh", str(_write(tmp_path, noisy))]
            )
            == 0
        )
        slow = copy.deepcopy(baseline)
        slow["figure4_replay"]["serial_s"] *= 2.5  # beyond 2x: regression
        assert (
            bench_check.main(
                [
                    "--baseline",
                    str(BASELINE_PATH),
                    "--fresh",
                    str(_write(tmp_path, slow, "slow.json")),
                ]
            )
            == 1
        )

    def test_perf_tolerance_is_tunable(self, tmp_path, baseline):
        slow = copy.deepcopy(baseline)
        slow["figure4_replay"]["serial_s"] *= 2.5
        rc = bench_check.main(
            [
                "--baseline",
                str(BASELINE_PATH),
                "--fresh",
                str(_write(tmp_path, slow)),
                "--perf-tolerance",
                "3.0",
            ]
        )
        assert rc == 0

    def test_hot_path_speedup_collapse_fails(self, tmp_path, baseline):
        degraded = copy.deepcopy(baseline)
        degraded["stats_hot_path"]["speedup"] = 1.1
        fresh = _write(tmp_path, degraded)
        rc = bench_check.main(["--baseline", str(BASELINE_PATH), "--fresh", str(fresh)])
        assert rc == 1

    def test_report_artifact_records_failures(self, tmp_path, baseline):
        degraded = copy.deepcopy(baseline)
        degraded["stats_hot_path"]["identical"] = False
        fresh = _write(tmp_path, degraded)
        report = tmp_path / "verdict.json"
        rc = bench_check.main(
            [
                "--baseline",
                str(BASELINE_PATH),
                "--fresh",
                str(fresh),
                "--report",
                str(report),
            ]
        )
        assert rc == 1
        verdict = json.loads(report.read_text())
        assert verdict["ok"] is False
        assert any("identical" in failure for failure in verdict["failures"])


FASTPATH_PATH = ROOT / "BENCH_PR6.json"


@pytest.fixture(scope="module")
def fastpath_baseline():
    return json.loads(FASTPATH_PATH.read_text())


class TestFastpathVerdicts:
    """repro.bench_fastpath/1 (BENCH_PR6.json) gating."""

    def _run(self, tmp_path, data, name="fresh.json"):
        return bench_check.main(
            [
                "--baseline",
                str(FASTPATH_PATH),
                "--fresh",
                str(_write(tmp_path, data, name)),
            ]
        )

    def test_baseline_vs_itself_passes(self, tmp_path, fastpath_baseline):
        assert self._run(tmp_path, fastpath_baseline) == 0

    def test_schema_mismatch_with_pr1_fails(self, tmp_path, fastpath_baseline):
        fresh = _write(tmp_path, fastpath_baseline)
        rc = bench_check.main(["--baseline", str(BASELINE_PATH), "--fresh", str(fresh)])
        assert rc == 1

    def test_byte_identity_broken_fails(self, tmp_path, fastpath_baseline):
        degraded = copy.deepcopy(fastpath_baseline)
        degraded["vectorized_replay"]["byte_identical"] = False
        assert self._run(tmp_path, degraded) == 1

    def test_tolerance_broken_fails(self, tmp_path, fastpath_baseline):
        degraded = copy.deepcopy(fastpath_baseline)
        degraded["analytic_sweep"]["within_tolerance"] = False
        assert self._run(tmp_path, degraded) == 1

    def test_speedup_collapse_fails_on_full_run(self, tmp_path, fastpath_baseline):
        degraded = copy.deepcopy(fastpath_baseline)
        degraded["quick"] = False
        degraded["analytic_sweep"]["speedup"] = 5.0
        assert self._run(tmp_path, degraded) == 1

    def test_quick_run_skips_speedup_gate(self, tmp_path, fastpath_baseline):
        quick = copy.deepcopy(fastpath_baseline)
        quick["quick"] = True
        quick["analytic_sweep"]["speedup"] = 5.0
        # Quick ladders are too small to time fairly: the correctness
        # flags still gate, the 10x floor and perf ratios do not.
        assert self._run(tmp_path, quick) == 0

    def test_wall_clock_regression_fails(self, tmp_path, fastpath_baseline):
        slow = copy.deepcopy(fastpath_baseline)
        slow["analytic_sweep"]["analytic_serial_s"] *= 2.5
        assert self._run(tmp_path, slow) == 1


class TestMalformedInput:
    def test_missing_file_fails(self, tmp_path):
        rc = bench_check.main(
            ["--baseline", str(BASELINE_PATH), "--fresh", str(tmp_path / "nope.json")]
        )
        assert rc == 1

    def test_non_bench_json_fails(self, tmp_path):
        fresh = _write(tmp_path, {"hello": "world"})
        rc = bench_check.main(["--baseline", str(BASELINE_PATH), "--fresh", str(fresh)])
        assert rc == 1

    def test_schema_mismatch_fails(self, tmp_path, baseline):
        degraded = copy.deepcopy(baseline)
        degraded["schema"] = "something_else/9"
        fresh = _write(tmp_path, degraded)
        rc = bench_check.main(["--baseline", str(BASELINE_PATH), "--fresh", str(fresh)])
        assert rc == 1

    def test_shape_mismatch_fails(self, tmp_path, baseline):
        degraded = copy.deepcopy(baseline)
        degraded["figure4_replay"]["mean_ms"] = degraded["figure4_replay"]["mean_ms"][:2]
        fresh = _write(tmp_path, degraded)
        rc = bench_check.main(["--baseline", str(BASELINE_PATH), "--fresh", str(fresh)])
        assert rc == 1
