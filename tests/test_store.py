"""Tests for the content-addressed result store (repro.store.store).

The correctness contract under test: a store can *only* ever cost
recomputation — a corrupt, truncated, evicted or otherwise damaged entry
must surface as a miss (and be quarantined), never as a wrong result or
a crashed sweep.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import StoreError
from repro.simulation.resilience import run_sweep_cached
from repro.simulation.sweep import (
    WORKLOAD_TASK_KIND,
    _run_workload_task,
    build_workload_tasks,
    workload_result_from_payload,
    workload_result_to_payload,
    workload_task_key,
)
from repro.store import (
    ResultStore,
    config_key,
    default_store_root,
    payload_digest,
)
from repro.telemetry import Telemetry


@pytest.fixture
def store(tmp_path):
    return ResultStore(root=tmp_path / "store", max_bytes=10_000_000)


def _key(i: int = 0) -> str:
    return config_key("test/1", {"i": i})


class TestBasicOperations:
    def test_miss_then_hit(self, store):
        key = _key()
        assert store.get(key) is None
        store.put(key, {"value": 1.5})
        assert store.get(key) == {"value": 1.5}
        assert (store.hits, store.misses, store.puts) == (1, 1, 1)

    def test_put_is_idempotent(self, store):
        key = _key()
        store.put(key, {"value": 1.5})
        store.put(key, {"value": 1.5})
        assert store.get(key) == {"value": 1.5}
        assert store.stats().entries == 1

    def test_entries_shard_by_key_prefix(self, store):
        key = _key()
        path = store.put(key, {"value": 1})
        assert path.parent.name == key[:2]
        assert path.name == f"{key}.json"

    def test_malformed_key_rejected(self, store):
        with pytest.raises(StoreError):
            store.get("not-a-key")
        with pytest.raises(StoreError):
            store.put("abc", {})

    def test_envelope_carries_schema_and_digest(self, store):
        key = _key()
        path = store.put(key, {"value": 2}, kind="test/1")
        envelope = json.loads(path.read_text())
        assert envelope["schema"] == "repro.store/1"
        assert envelope["key"] == key
        assert envelope["kind"] == "test/1"
        assert envelope["payload_digest"] == payload_digest({"value": 2})

    def test_default_root_honours_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "elsewhere"))
        assert default_store_root() == tmp_path / "elsewhere"

    def test_default_root_falls_back_to_home_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        assert str(default_store_root()).endswith(".cache/repro")

    def test_max_bytes_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE_MAX_BYTES", "12345")
        assert ResultStore(root=tmp_path).max_bytes == 12345
        monkeypatch.setenv("REPRO_STORE_MAX_BYTES", "bogus")
        with pytest.raises(StoreError):
            ResultStore(root=tmp_path)
        monkeypatch.setenv("REPRO_STORE_MAX_BYTES", "-5")
        with pytest.raises(StoreError):
            ResultStore(root=tmp_path)


class TestCorruptionRecovery:
    """Damaged entries quarantine and recompute — never crash, never lie."""

    def _flip_bit(self, path) -> None:
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))

    def test_bit_flip_is_a_counted_miss(self, store):
        key = _key()
        path = store.put(key, {"value": 1.5})
        self._flip_bit(path)
        assert store.get(key) is None
        assert store.corrupt == 1
        assert not path.exists()
        assert (store.quarantine_dir / path.name).exists()

    def test_truncated_entry_is_a_counted_miss(self, store):
        key = _key()
        path = store.put(key, {"value": 1.5})
        path.write_bytes(path.read_bytes()[:30])
        assert store.get(key) is None
        assert store.corrupt == 1

    def test_invalid_utf8_is_a_counted_miss(self, store):
        key = _key()
        path = store.put(key, {"value": 1.5})
        path.write_bytes(b"\xff\xfe garbage")
        assert store.get(key) is None
        assert store.corrupt == 1

    def test_wrong_key_in_envelope_is_corrupt(self, store):
        key, other = _key(0), _key(1)
        path = store.put(key, {"value": 1})
        os.makedirs(store.objects_dir / other[:2], exist_ok=True)
        os.replace(path, store.path_for(other))
        assert store.get(other) is None
        assert store.corrupt == 1

    def test_put_heals_a_quarantined_key(self, store):
        key = _key()
        path = store.put(key, {"value": 1.5})
        self._flip_bit(path)
        assert store.get(key) is None
        store.put(key, {"value": 1.5})
        assert store.get(key) == {"value": 1.5}

    def test_sweep_recovers_from_bit_flipped_entry(self, store):
        """The satellite contract: flip a stored bit, the sweep recomputes.

        The recomputed result must be identical to the undamaged run and
        the corruption must be visible in the ``store.corrupt`` counter.
        """
        tasks = build_workload_tasks(["tpcc"], rpms=[10000.0], requests=120)
        tel = Telemetry()
        store.bind_telemetry(tel)
        report = run_sweep_cached(
            tasks, _run_workload_task, store, workload_task_key,
            workload_result_to_payload, workload_result_from_payload,
            kind=WORKLOAD_TASK_KIND, workers=0,
        )
        (clean,) = report.ok_results()
        self._flip_bit(store.path_for(workload_task_key(tasks[0])))
        report = run_sweep_cached(
            tasks, _run_workload_task, store, workload_task_key,
            workload_result_to_payload, workload_result_from_payload,
            kind=WORKLOAD_TASK_KIND, workers=0,
        )
        (recomputed,) = report.ok_results()
        assert recomputed == clean
        assert report.store_hits == 0 and report.store_misses == 1
        assert store.corrupt == 1
        assert tel.registry.counter("store.corrupt").value == 1
        # ...and the recomputation re-persisted the entry: third run hits.
        report = run_sweep_cached(
            tasks, _run_workload_task, store, workload_task_key,
            workload_result_to_payload, workload_result_from_payload,
            kind=WORKLOAD_TASK_KIND, workers=0,
        )
        assert report.store_hits == 1

    def test_verify_quarantines_and_reports(self, store):
        keys = [_key(i) for i in range(4)]
        for i, key in enumerate(keys):
            store.put(key, {"i": i})
        self._flip_bit(store.path_for(keys[1]))
        report = store.verify()
        assert report.checked == 4
        assert report.ok == 3
        assert report.corrupt == 1
        assert report.quarantined_keys == [keys[1]]
        assert store.stats().quarantined == 1

    def test_reject_retires_an_intact_entry(self, store):
        key = _key()
        store.put(key, {"value": 1})
        store.reject(key)
        assert store.get(key) is None
        assert store.stats().quarantined == 1


class TestGC:
    def test_gc_is_lru_and_respects_cap(self, tmp_path):
        store = ResultStore(root=tmp_path, max_bytes=10_000_000)
        keys = [_key(i) for i in range(6)]
        for i, key in enumerate(keys):
            path = store.put(key, {"i": i, "pad": "x" * 64})
            os.utime(path, (1_000_000 + i, 1_000_000 + i))
        # Touch the oldest entry: a hit refreshes its LRU position.
        assert store.get(keys[0]) is not None
        entry_bytes = store.stats().total_bytes // 6
        evicted = store.gc(max_bytes=3 * entry_bytes)
        assert evicted == 3
        # keys[1..3] were the least recently used; keys[0] survived its touch.
        assert store.get(keys[0]) is not None
        assert store.get(keys[5]) is not None
        assert store.get(keys[1]) is None

    def test_put_triggers_gc_over_cap(self, tmp_path):
        store = ResultStore(root=tmp_path, max_bytes=600)
        for i in range(10):
            store.put(_key(i), {"i": i, "pad": "x" * 40})
        assert store.stats().total_bytes <= 600
        assert store.evictions > 0

    def test_gc_counts_into_telemetry(self, tmp_path):
        tel = Telemetry()
        store = ResultStore(root=tmp_path, max_bytes=10_000_000, telemetry=tel)
        for i in range(4):
            store.put(_key(i), {"i": i})
        store.gc(max_bytes=1)
        assert tel.registry.counter("store.evict").value == 4.0

    def test_gc_rejects_nonpositive_cap(self, store):
        with pytest.raises(StoreError):
            store.gc(max_bytes=0)

    def test_constructor_rejects_nonpositive_cap(self, tmp_path):
        with pytest.raises(StoreError):
            ResultStore(root=tmp_path, max_bytes=0)


class TestTelemetryCounters:
    def test_hit_miss_put_counters(self, tmp_path):
        tel = Telemetry()
        store = ResultStore(root=tmp_path, telemetry=tel)
        key = _key()
        store.get(key)
        store.put(key, {"v": 1})
        store.get(key)
        counters = tel.registry
        assert counters.counter("store.miss").value == 1.0
        assert counters.counter("store.put").value == 1.0
        assert counters.counter("store.hit").value == 1.0

    def test_bind_telemetry_does_not_clobber(self, tmp_path):
        tel_a, tel_b = Telemetry(), Telemetry()
        store = ResultStore(root=tmp_path, telemetry=tel_a)
        store.bind_telemetry(tel_b)
        store.get(_key())
        assert tel_a.registry.counter("store.miss").value == 1.0
        assert tel_b.registry.counter("store.miss").value == 0.0


class TestClaimRelease:
    """Satellite fix: release failures must be loud, not swallowed."""

    def test_release_claim_tolerates_only_absence(self, tmp_path):
        tel = Telemetry()
        store = ResultStore(root=tmp_path, telemetry=tel)
        key = _key()
        # Missing claim: fine, silent, uncounted.
        store.release_claim(key)
        assert tel.registry.counter("store.claim_release_failed").value == 0.0
        # A claim that exists but cannot be unlinked (here: a directory
        # squatting on the claim path, which fails even for root) must
        # raise and count — the pre-fix blanket ``except OSError`` hid
        # this and silently stalled peers for the whole stale window.
        store.claims_dir.mkdir(parents=True, exist_ok=True)
        store.claim_path(key).mkdir()
        with pytest.raises(OSError):
            store.release_claim(key)
        assert tel.registry.counter("store.claim_release_failed").value == 1.0

    def test_release_claim_drops_real_claims(self, tmp_path):
        store = ResultStore(root=tmp_path)
        key = _key()
        assert store.try_claim(key)
        assert store.claim_mtime(key) is not None
        store.release_claim(key)
        assert store.claim_mtime(key) is None

    def test_claim_mtime_none_when_unclaimed(self, tmp_path):
        store = ResultStore(root=tmp_path)
        assert store.claim_mtime(_key()) is None
