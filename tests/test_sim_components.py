"""Simulator component tests: cache, schedulers, disk, statistics."""

import pytest

from repro.errors import SimulationError
from repro.simulation import (
    CACHE_HIT_MS,
    DiskCache,
    FCFSScheduler,
    LookScheduler,
    Request,
    ResponseTimeStats,
    SSTFScheduler,
    make_scheduler,
)


class TestDiskCache:
    @pytest.fixture
    def cache(self):
        return DiskCache(size_bytes=64 * 1024, segments=4, read_ahead_sectors=16)

    def test_miss_then_hit(self, cache):
        assert not cache.lookup_read(100, 8)
        cache.fill_after_read(100, 8, disk_sectors=10_000)
        assert cache.lookup_read(100, 8)

    def test_read_ahead_serves_sequential(self, cache):
        cache.fill_after_read(100, 8, disk_sectors=10_000)
        assert cache.lookup_read(108, 8)  # inside the read-ahead tail

    def test_partial_overlap_is_miss(self, cache):
        cache.fill_after_read(100, 8, disk_sectors=10_000)
        assert not cache.lookup_read(120, 16)

    def test_lru_eviction(self, cache):
        for i in range(5):
            cache.fill_after_read(i * 1000, 8, disk_sectors=100_000)
        assert len(cache) == 4
        assert not cache.lookup_read(0, 8)  # oldest evicted
        assert cache.lookup_read(4000, 8)

    def test_hit_refreshes_lru(self, cache):
        for i in range(4):
            cache.fill_after_read(i * 1000, 8, disk_sectors=100_000)
        cache.lookup_read(0, 8)  # touch the oldest
        cache.fill_after_read(9000, 8, disk_sectors=100_000)
        assert cache.contains(0, 8)  # survived because it was touched
        assert not cache.contains(1000, 8)

    def test_interior_write_keeps_segment(self, cache):
        cache.fill_after_read(100, 16, disk_sectors=10_000)
        cache.note_write(104, 4)
        assert cache.contains(100, 16)

    def test_straddling_write_invalidates(self, cache):
        cache.fill_after_read(100, 16, disk_sectors=10_000)
        cache.note_write(90, 20)  # overlaps the front edge
        assert not cache.contains(100, 8)

    def test_read_ahead_clipped_at_disk_end(self, cache):
        start, length = cache.fill_after_read(95, 4, disk_sectors=100)
        assert start + length <= 100

    def test_stats(self, cache):
        cache.lookup_read(0, 4)
        cache.fill_after_read(0, 4, disk_sectors=1000)
        cache.lookup_read(0, 4)
        cache.note_write(500, 4)
        assert cache.stats.read_misses == 1
        assert cache.stats.read_hits == 1
        assert cache.stats.writes == 1
        assert cache.stats.hit_ratio == pytest.approx(0.5)

    def test_clear(self, cache):
        cache.fill_after_read(0, 4, disk_sectors=1000)
        cache.clear()
        assert len(cache) == 0

    def test_rejects_bad_config(self):
        with pytest.raises(SimulationError):
            DiskCache(size_bytes=0)
        with pytest.raises(SimulationError):
            DiskCache(segments=0)
        with pytest.raises(SimulationError):
            DiskCache(read_ahead_sectors=-1)


def _request(lba, arrival=0.0):
    return Request(arrival_ms=arrival, lba=lba, sectors=4)


class TestSchedulers:
    def test_fcfs_order(self):
        scheduler = FCFSScheduler()
        for lba in (500, 100, 900):
            scheduler.add(_request(lba))
        assert [scheduler.next(0).lba for _ in range(3)] == [500, 100, 900]

    def test_sstf_picks_nearest(self):
        scheduler = SSTFScheduler(cylinder_of=lambda lba: lba // 100)
        for lba in (10_000, 500, 5_000):
            scheduler.add(_request(lba))
        assert scheduler.next(4).lba == 500
        assert scheduler.next(5).lba == 5_000

    def test_sstf_ties_break_by_arrival(self):
        scheduler = SSTFScheduler(cylinder_of=lambda lba: 7)
        scheduler.add(_request(1, arrival=1.0))
        scheduler.add(_request(2, arrival=0.5))
        assert scheduler.next(7).lba == 2

    def test_look_sweeps_then_reverses(self):
        scheduler = LookScheduler(cylinder_of=lambda lba: lba)
        for lba in (10, 30, 5):
            scheduler.add(_request(lba))
        # Head at 20 moving up: 30, then reverse: 10, 5.
        assert scheduler.next(20).lba == 30
        assert scheduler.next(30).lba == 10
        assert scheduler.next(10).lba == 5

    def test_empty_returns_none(self):
        for scheduler in (
            FCFSScheduler(),
            SSTFScheduler(lambda lba: 0),
            LookScheduler(lambda lba: 0),
        ):
            assert scheduler.next(0) is None
            assert len(scheduler) == 0

    def test_factory(self):
        assert isinstance(make_scheduler("fcfs", lambda l: 0), FCFSScheduler)
        assert isinstance(make_scheduler("SSTF", lambda l: 0), SSTFScheduler)
        assert isinstance(make_scheduler("look", lambda l: 0), LookScheduler)

    def test_factory_unknown(self):
        with pytest.raises(SimulationError):
            make_scheduler("cfq", lambda l: 0)


class TestSimulatedDisk:
    def test_single_request_completes(self, small_disk, events):
        done = []
        small_disk.on_complete = lambda r, t: done.append((r, t))
        small_disk.submit(Request(arrival_ms=0.0, lba=0, sectors=8))
        events.run()
        assert len(done) == 1
        request, t = done[0]
        assert request.completion_ms == t
        assert t > 0

    def test_requests_queue_while_busy(self, small_disk, events):
        done = []
        small_disk.on_complete = lambda r, t: done.append(r.lba)
        for lba in (0, 50_000, 100_000):
            small_disk.submit(Request(arrival_ms=0.0, lba=lba, sectors=8))
        assert small_disk.queue_depth() == 2
        events.run()
        assert done == [0, 50_000, 100_000]
        assert small_disk.queue_depth() == 0
        assert not small_disk.busy

    def test_cache_hit_is_fast(self, small_disk, events):
        times = []
        small_disk.on_complete = lambda r, t: times.append(r.response_time_ms)
        small_disk.submit(Request(arrival_ms=0.0, lba=0, sectors=8))
        events.run()
        small_disk.submit(Request(arrival_ms=events.now_ms, lba=0, sectors=8))
        events.run()
        assert times[1] < times[0]
        assert times[1] == pytest.approx(CACHE_HIT_MS + times[1] - CACHE_HIT_MS)
        assert times[1] < 0.5

    def test_writes_always_hit_media(self, small_disk, events):
        times = []
        small_disk.on_complete = lambda r, t: times.append(r.response_time_ms)
        write = Request(arrival_ms=0.0, lba=0, sectors=8, is_write=True)
        small_disk.submit(write)
        events.run()
        small_disk.submit(Request(arrival_ms=events.now_ms, lba=0, sectors=8, is_write=True))
        events.run()
        assert min(times) > CACHE_HIT_MS * 2

    def test_rejects_out_of_range(self, small_disk):
        with pytest.raises(SimulationError):
            small_disk.submit(
                Request(arrival_ms=0.0, lba=small_disk.total_sectors, sectors=1)
            )

    def test_set_rpm_changes_mechanics(self, small_disk):
        old_period = small_disk.mechanics.period_ms
        small_disk.set_rpm(20000)
        assert small_disk.rpm == 20000
        assert small_disk.mechanics.period_ms < old_period

    def test_stats_accumulate(self, small_disk, events):
        for lba in (0, 90_000):
            small_disk.submit(Request(arrival_ms=0.0, lba=lba, sectors=8))
        events.run()
        stats = small_disk.stats
        assert stats.requests_completed == 2
        assert stats.reads == 2
        assert stats.busy_ms > 0
        assert stats.seeks_with_movement >= 1
        assert stats.mean_seek_distance() > 0

    def test_utilization_bounded(self, small_disk, events):
        small_disk.submit(Request(arrival_ms=0.0, lba=0, sectors=8))
        events.run()
        assert 0.0 < small_disk.stats.utilization(events.now_ms) <= 1.0


class TestResponseTimeStats:
    def test_mean(self):
        stats = ResponseTimeStats()
        for v in (1.0, 2.0, 3.0):
            stats.add(v)
        assert stats.mean_ms() == pytest.approx(2.0)

    def test_percentiles(self):
        stats = ResponseTimeStats()
        for v in range(1, 101):
            stats.add(float(v))
        assert stats.median_ms() == pytest.approx(50.5)
        assert stats.percentile_ms(0) == 1.0
        assert stats.percentile_ms(100) == 100.0
        assert stats.max_ms() == 100.0

    def test_cdf_fractions(self):
        stats = ResponseTimeStats()
        for v in (1.0, 6.0, 15.0, 250.0):
            stats.add(v)
        cdf = dict(stats.cdf(bins_ms=(5, 10, 20, 200)))
        assert cdf[5] == pytest.approx(0.25)
        assert cdf[10] == pytest.approx(0.5)
        assert cdf[20] == pytest.approx(0.75)
        assert cdf[200] == pytest.approx(0.75)

    def test_cdf_monotone(self):
        stats = ResponseTimeStats()
        import random

        rng = random.Random(5)
        for _ in range(500):
            stats.add(rng.uniform(0, 300))
        fractions = [f for _, f in stats.cdf()]
        assert fractions == sorted(fractions)

    def test_empty_raises(self):
        stats = ResponseTimeStats()
        with pytest.raises(SimulationError):
            stats.mean_ms()
        with pytest.raises(SimulationError):
            stats.cdf()

    def test_rejects_negative(self):
        stats = ResponseTimeStats()
        with pytest.raises(SimulationError):
            stats.add(-1.0)

    def test_merge(self):
        a = ResponseTimeStats(samples_ms=[1.0])
        b = ResponseTimeStats(samples_ms=[3.0])
        assert a.merged_with(b).mean_ms() == pytest.approx(2.0)
