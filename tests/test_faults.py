"""Tests for the deterministic fault-injection subsystem (repro.faults).

The load-bearing property is determinism: every fault decision is a pure
function of ``(seed, subject, ordinal, salt)``, so a fault-injected run
is bit-identical between repeat runs and between the serial and parallel
sweep paths.  Latency penalties must derive from the disk's mechanics,
and the emergency-throttle path must degrade RPM instead of erroring.
"""

import pytest

from repro.errors import FaultError
from repro.faults import (
    FAULT_KINDS,
    DiskFaultInjector,
    FaultConfig,
    FaultStats,
    ThermalEmergencyModel,
    unit_draw,
)


def _mechanics():
    """A real DiskMechanics instance via the standard-disk factory."""
    from repro.simulation.events import EventQueue
    from repro.simulation.disk import standard_disk

    return standard_disk("d", EventQueue(), rpm=15000.0).mechanics


class TestFaultConfig:
    def test_defaults_inject_nothing(self):
        config = FaultConfig()
        assert not config.injects_disk_faults
        assert not config.injects_any

    def test_rate_bounds_enforced(self):
        with pytest.raises(FaultError):
            FaultConfig(media_rate=1.5)
        with pytest.raises(FaultError):
            FaultConfig(servo_rate=-0.1)
        with pytest.raises(FaultError):
            FaultConfig(remap_fraction=2.0)
        with pytest.raises(FaultError):
            FaultConfig(thermal_emergency_rate=-1.0)

    def test_max_ecc_retries_must_be_positive(self):
        with pytest.raises(FaultError):
            FaultConfig(max_ecc_retries=0)

    def test_injects_flags(self):
        assert FaultConfig(media_rate=0.1).injects_disk_faults
        assert FaultConfig(servo_rate=0.1).injects_disk_faults
        thermal_only = FaultConfig(thermal_emergency_rate=0.1)
        assert not thermal_only.injects_disk_faults
        assert thermal_only.injects_any

    def test_picklable_and_hashable(self):
        import pickle

        config = FaultConfig(seed=3, media_rate=0.2)
        assert pickle.loads(pickle.dumps(config)) == config
        assert hash(config) == hash(FaultConfig(seed=3, media_rate=0.2))


class TestUnitDraw:
    def test_in_unit_interval(self):
        for ordinal in range(100):
            value = unit_draw(1, "disk0", ordinal, "media")
            assert 0.0 <= value < 1.0

    def test_deterministic(self):
        assert unit_draw(7, "disk0", 42, "media") == unit_draw(
            7, "disk0", 42, "media"
        )

    def test_coordinates_are_independent(self):
        base = unit_draw(7, "disk0", 42, "media")
        assert unit_draw(8, "disk0", 42, "media") != base
        assert unit_draw(7, "disk1", 42, "media") != base
        assert unit_draw(7, "disk0", 43, "media") != base
        assert unit_draw(7, "disk0", 42, "servo") != base


class TestDiskFaultInjector:
    def test_sequence_is_replayable(self):
        mechanics = _mechanics()
        config = FaultConfig(seed=11, media_rate=0.1, servo_rate=0.05)
        first = [
            config.injector_for("disk0").media_access_fault(mechanics)
            for _ in range(1)
        ]
        # Re-run the same ordinal sequence on a fresh injector.
        a, b = config.injector_for("disk0"), config.injector_for("disk0")
        seq_a = [a.media_access_fault(mechanics) for _ in range(500)]
        seq_b = [b.media_access_fault(mechanics) for _ in range(500)]
        assert [(f.kind, f.extra_ms) if f else None for f in seq_a] == [
            (f.kind, f.extra_ms) if f else None for f in seq_b
        ]
        assert a.stats == b.stats
        assert first[0] == seq_a[0]

    def test_stats_match_faults(self):
        mechanics = _mechanics()
        injector = FaultConfig(seed=2, media_rate=0.2, servo_rate=0.1).injector_for(
            "disk0"
        )
        faults = [
            f
            for f in (injector.media_access_fault(mechanics) for _ in range(400))
            if f is not None
        ]
        assert faults, "rates this high must inject something in 400 draws"
        assert injector.stats.total_injected == len(faults)
        assert injector.stats.extra_ms == pytest.approx(
            sum(f.extra_ms for f in faults)
        )
        assert all(f.kind in FAULT_KINDS for f in faults)

    def test_zero_rates_never_fault(self):
        mechanics = _mechanics()
        injector = FaultConfig(seed=5).injector_for("disk0")
        assert all(
            injector.media_access_fault(mechanics) is None for _ in range(200)
        )
        assert injector.stats.total_injected == 0

    def test_media_penalty_derives_from_rotation(self):
        mechanics = _mechanics()
        config = FaultConfig(seed=1, media_rate=1.0, remap_fraction=0.0)
        injector = config.injector_for("disk0")
        fault = injector.media_access_fault(mechanics)
        assert fault is not None and fault.kind == "media_retry"
        assert 1 <= fault.ecc_retries <= config.max_ecc_retries
        assert fault.extra_ms == pytest.approx(
            fault.ecc_retries * mechanics.period_ms
        )

    def test_remap_costs_more_than_retry(self):
        mechanics = _mechanics()
        remap = FaultConfig(seed=1, media_rate=1.0, remap_fraction=1.0)
        retry = FaultConfig(seed=1, media_rate=1.0, remap_fraction=0.0)
        f_remap = remap.injector_for("disk0").media_access_fault(mechanics)
        f_retry = retry.injector_for("disk0").media_access_fault(mechanics)
        assert f_remap.kind == "media_remap"
        assert f_remap.extra_ms > f_retry.extra_ms

    def test_servo_penalty_derives_from_settle_and_rotation(self):
        mechanics = _mechanics()
        injector = FaultConfig(seed=1, servo_rate=1.0).injector_for("disk0")
        fault = injector.media_access_fault(mechanics)
        assert fault is not None and fault.kind == "servo"
        assert fault.extra_ms == pytest.approx(
            mechanics.settle_ms + mechanics.period_ms / 2.0
        )


class TestFaultStats:
    def test_merge_accumulates(self):
        a = FaultStats(media_retries=1, extra_ms=2.0, ecc_retries=3)
        b = FaultStats(media_retries=2, servo_faults=1, extra_ms=0.5)
        a.merge(b)
        assert a.media_retries == 3
        assert a.servo_faults == 1
        assert a.extra_ms == pytest.approx(2.5)

    def test_as_dict_round_trips_json(self):
        import json

        stats = FaultStats(media_remaps=2, thermal_emergencies=1, extra_ms=4.2)
        out = json.loads(json.dumps(stats.as_dict(), allow_nan=False))
        assert out["media_remaps"] == 2
        assert out["total_injected"] == 3


class TestSystemIntegration:
    def _run(self, fault_config=None, telemetry=None):
        from repro.workloads import workload

        spec = workload("tpcc")
        trace = spec.generate(num_requests=500, seed=9)
        system = spec.build_system(
            spec.base_rpm, telemetry=telemetry, fault_config=fault_config
        )
        return system.run_trace(trace)

    def test_faults_slow_the_run_and_summarize(self):
        baseline = self._run()
        injected = self._run(FaultConfig(seed=7, media_rate=0.05, servo_rate=0.02))
        assert baseline.fault_summary is None
        summary = injected.fault_summary
        assert summary is not None and summary["total_injected"] > 0
        assert injected.stats.mean_ms() > baseline.stats.mean_ms()

    def test_zero_rate_config_is_a_noop(self):
        baseline = self._run()
        nulled = self._run(FaultConfig(seed=7))
        assert nulled.fault_summary is None
        assert nulled.stats.mean_ms() == baseline.stats.mean_ms()

    def test_injected_run_is_deterministic(self):
        config = FaultConfig(seed=7, media_rate=0.05, servo_rate=0.02)
        first = self._run(config)
        second = self._run(config)
        assert first.stats.mean_ms() == second.stats.mean_ms()
        assert first.fault_summary == second.fault_summary

    def test_telemetry_counts_and_trace_events(self):
        from repro.telemetry import Telemetry
        from repro.telemetry.trace import KNOWN_KINDS

        tel = Telemetry()
        report = self._run(
            FaultConfig(seed=7, media_rate=0.05, servo_rate=0.02), telemetry=tel
        )
        total = report.fault_summary["total_injected"]
        counter = tel.registry.get("faults.injected")
        assert counter is not None and counter.value == float(total)
        events = [e for e in tel.trace.events() if e.kind == "fault_injected"]
        assert events, "every injected fault must leave a trace event"
        assert all(e.kind in KNOWN_KINDS for e in events)


class TestSweepDeterminism:
    def test_fault_injected_sweep_serial_matches_parallel(self):
        from repro.simulation.sweep import sweep_workloads

        kwargs = dict(
            names=["tpcc"],
            requests=300,
            rpm_steps=2,
            seed=4,
            fault_config=FaultConfig(seed=4, media_rate=0.05, servo_rate=0.01),
        )
        serial = sweep_workloads(workers=1, **kwargs)
        parallel = sweep_workloads(workers=2, **kwargs)
        assert serial == parallel
        assert all(r.fault_summary is not None for r in serial)

    def test_resilient_front_end_carries_fault_summaries(self):
        from repro.simulation.sweep import sweep_workloads_resilient

        results, report = sweep_workloads_resilient(
            names=["tpcc"],
            requests=200,
            rpm_steps=2,
            seed=4,
            workers=1,
            fault_config=FaultConfig(seed=4, media_rate=0.05),
        )
        assert not report.failed
        assert all(r is not None and r.fault_summary is not None for r in results)


class TestThermalEmergencyModel:
    def test_probability_at_envelope_is_base_rate(self):
        model = FaultConfig(thermal_emergency_rate=0.01).emergency_model()
        assert model.trigger_probability(45.0, 45.0) == pytest.approx(0.01)

    def test_probability_halves_15c_below_envelope(self):
        model = FaultConfig(thermal_emergency_rate=0.01).emergency_model()
        assert model.trigger_probability(30.0, 45.0) == pytest.approx(0.005)

    def test_probability_caps_at_one(self):
        model = FaultConfig(thermal_emergency_rate=0.5).emergency_model()
        assert model.trigger_probability(45.0 + 150.0, 45.0) == 1.0

    def test_zero_rate_never_triggers(self):
        model = FaultConfig().emergency_model()
        assert model.trigger_probability(60.0, 45.0) == 0.0
        assert not any(model.should_trigger(60.0, 45.0) for _ in range(50))

    def test_certain_rate_always_triggers_and_counts(self):
        model = FaultConfig(thermal_emergency_rate=1.0).emergency_model()
        assert all(model.should_trigger(45.0, 45.0) for _ in range(10))
        assert model.stats.thermal_emergencies == 10

    def test_decisions_are_replayable(self):
        config = FaultConfig(seed=3, thermal_emergency_rate=0.3)
        a, b = config.emergency_model(), config.emergency_model()
        seq_a = [a.should_trigger(40.0, 45.0) for _ in range(200)]
        seq_b = [b.should_trigger(40.0, 45.0) for _ in range(200)]
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)


class TestEmergencyThrottle:
    def _managed(
        self,
        envelope_offset_c,
        emergency_model=None,
        trigger_margin_c=0.001,
        resume_margin_c=0.01,
    ):
        from repro.dtm import DTMPolicy, ThermallyManagedSystem
        from repro.thermal import DriveThermalModel
        from repro.workloads import workload

        spec = workload("search_engine")
        system = spec.build_system(rpm=24500)
        thermal = DriveThermalModel(
            platter_diameter_in=2.6, rpm=24500, vcm_active=False
        )
        thermal.settle()
        thermal.set_operating_state(vcm_active=True)
        # A hair-thin trigger band: under load the air temperature crosses
        # trigger and envelope inside one check interval, so the genuine
        # breach (emergency) path engages rather than the ordinary
        # throttle; the resume threshold stays above the cooling-mode
        # steady temperature so the controller can recover.
        policy = DTMPolicy(
            envelope_c=thermal.air_c() + envelope_offset_c,
            trigger_margin_c=trigger_margin_c,
            resume_margin_c=resume_margin_c,
            check_interval_ms=20.0,
        )
        managed = ThermallyManagedSystem(
            system, thermal, policy, emergency_model=emergency_model
        )
        return managed, spec.generate(num_requests=600, seed=5)

    def test_envelope_breach_degrades_instead_of_erroring(self):
        """A design that genuinely breaches the envelope completes the
        trace via the emergency RPM drop instead of raising."""
        managed, trace = self._managed(envelope_offset_c=0.02)
        report = managed.run_trace(trace)
        assert report.emergency_events > 0
        assert report.stats.count == len(trace)

    def test_emergency_drops_rpm(self):
        managed, trace = self._managed(envelope_offset_c=0.02)
        full_rpm = managed.thermal.rpm
        managed.run_trace(trace)
        assert managed.in_emergency or managed.thermal.rpm < full_rpm

    def test_injected_emergency_fires_with_cool_envelope(self):
        model = FaultConfig(thermal_emergency_rate=1.0).emergency_model()
        managed, trace = self._managed(envelope_offset_c=30.0, emergency_model=model)
        report = managed.run_trace(trace)
        assert report.emergency_events > 0
        assert model.stats.thermal_emergencies > 0
        assert report.stats.count == len(trace)

    def test_no_emergency_without_breach_or_injection(self):
        managed, trace = self._managed(envelope_offset_c=30.0)
        report = managed.run_trace(trace)
        assert report.emergency_events == 0
