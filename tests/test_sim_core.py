"""Simulator core tests: event queue, requests, layout, mechanics."""

import pytest

from repro.errors import SimulationError
from repro.simulation import Request
from repro.simulation.layout import DiskLayout
from repro.simulation.mechanics import DiskMechanics
from repro.performance.seek import SeekModel, SeekParameters


class TestEventQueue:
    def test_fires_in_time_order(self, events):
        fired = []
        events.schedule(5.0, lambda t: fired.append(("b", t)))
        events.schedule(1.0, lambda t: fired.append(("a", t)))
        events.schedule(9.0, lambda t: fired.append(("c", t)))
        events.run()
        assert [x[0] for x in fired] == ["a", "b", "c"]
        assert events.now_ms == 9.0

    def test_fifo_for_ties(self, events):
        fired = []
        for name in "abc":
            events.schedule(1.0, lambda t, n=name: fired.append(n))
        events.run()
        assert fired == ["a", "b", "c"]

    def test_callbacks_may_schedule(self, events):
        fired = []

        def first(t):
            fired.append(t)
            events.schedule_after(2.0, lambda t2: fired.append(t2))

        events.schedule(1.0, first)
        events.run()
        assert fired == [1.0, 3.0]

    def test_rejects_past_events(self, events):
        events.schedule(5.0, lambda t: None)
        events.run()
        with pytest.raises(SimulationError):
            events.schedule(1.0, lambda t: None)

    def test_rejects_negative_delay(self, events):
        with pytest.raises(SimulationError):
            events.schedule_after(-1.0, lambda t: None)

    def test_run_until_horizon(self, events):
        fired = []
        events.schedule(1.0, lambda t: fired.append(t))
        events.schedule(10.0, lambda t: fired.append(t))
        events.run(until_ms=5.0)
        assert fired == [1.0]
        assert events.now_ms == 5.0
        events.run()
        assert fired == [1.0, 10.0]

    def test_event_budget_enforced(self, events):
        def rearm(t):
            events.schedule_after(1.0, rearm)

        events.schedule(0.0, rearm)
        with pytest.raises(SimulationError):
            events.run(max_events=50)

    def test_step_returns_false_when_empty(self, events):
        assert events.step() is False

    def test_counts_fired(self, events):
        for i in range(5):
            events.schedule(float(i), lambda t: None)
        events.run()
        assert events.events_fired == 5


class TestRequest:
    def test_response_time(self):
        request = Request(arrival_ms=10.0, lba=0, sectors=8)
        request.completion_ms = 25.5
        assert request.response_time_ms == pytest.approx(15.5)

    def test_response_time_requires_completion(self):
        request = Request(arrival_ms=10.0, lba=0, sectors=8)
        with pytest.raises(SimulationError):
            _ = request.response_time_ms

    def test_unique_ids(self):
        a = Request(arrival_ms=0, lba=0, sectors=1)
        b = Request(arrival_ms=0, lba=0, sectors=1)
        assert a.request_id != b.request_id

    def test_overlap(self):
        request = Request(arrival_ms=0, lba=100, sectors=10)
        assert request.overlaps(105, 1)
        assert request.overlaps(95, 6)
        assert not request.overlaps(110, 5)
        assert not request.overlaps(90, 10)

    def test_rejects_bad_fields(self):
        with pytest.raises(SimulationError):
            Request(arrival_ms=0, lba=0, sectors=0)
        with pytest.raises(SimulationError):
            Request(arrival_ms=0, lba=-1, sectors=1)
        with pytest.raises(SimulationError):
            Request(arrival_ms=-1, lba=0, sectors=1)


@pytest.fixture
def layout(surface_2002):
    return DiskLayout(surface_2002, surfaces=2)


class TestDiskLayout:
    def test_total_sectors_matches_surfaces(self, layout, surface_2002):
        assert layout.total_sectors == 2 * surface_2002.sectors_per_surface

    def test_locate_lba_zero_is_outer_track(self, layout):
        addr = layout.locate(0)
        assert addr.cylinder == 0
        assert addr.surface == 0
        assert addr.sector == 0
        assert addr.zone == 0

    def test_roundtrip_sampled(self, layout):
        step = max(layout.total_sectors // 997, 1)
        for lba in range(0, layout.total_sectors, step):
            addr = layout.locate(lba)
            assert layout.lba_of(addr.cylinder, addr.surface, addr.sector) == lba

    def test_mapping_is_monotone_in_cylinder(self, layout):
        previous_cylinder = 0
        step = max(layout.total_sectors // 500, 1)
        for lba in range(0, layout.total_sectors, step):
            cylinder = layout.cylinder_of(lba)
            assert cylinder >= previous_cylinder
            previous_cylinder = cylinder

    def test_last_lba_is_innermost(self, layout):
        addr = layout.locate(layout.total_sectors - 1)
        assert addr.cylinder == layout.cylinders - 1

    def test_rejects_out_of_range(self, layout):
        with pytest.raises(SimulationError):
            layout.locate(layout.total_sectors)
        with pytest.raises(SimulationError):
            layout.locate(-1)

    def test_lba_of_validates(self, layout):
        with pytest.raises(SimulationError):
            layout.lba_of(-1, 0, 0)
        with pytest.raises(SimulationError):
            layout.lba_of(0, 2, 0)
        with pytest.raises(SimulationError):
            layout.lba_of(0, 0, 10**9)

    def test_sectors_per_track_decreases_inward(self, layout):
        outer = layout.sectors_per_track_at(0)
        inner = layout.sectors_per_track_at(layout.cylinders - 1)
        assert outer > inner


@pytest.fixture
def mechanics(layout):
    seek = SeekModel(
        SeekParameters(track_to_track_ms=0.4, average_ms=3.6, full_stroke_ms=7.5),
        cylinders=layout.cylinders,
    )
    return DiskMechanics(layout, seek, rpm=15000.0)


class TestDiskMechanics:
    def test_single_sector_read_components(self, mechanics):
        breakdown, end_cyl = mechanics.service(0.0, 0, 0, 1)
        assert breakdown.seek_ms == 0.0
        assert 0.0 <= breakdown.rotational_ms < mechanics.period_ms
        assert breakdown.transfer_ms > 0
        assert end_cyl == 0

    def test_cross_cylinder_seek_charged(self, mechanics, layout):
        far_lba = layout.lba_of(layout.cylinders - 1, 0, 0)
        breakdown, end_cyl = mechanics.service(0.0, 0, far_lba, 1)
        assert breakdown.seek_ms == pytest.approx(7.5 + mechanics.settle_ms)
        assert end_cyl == layout.cylinders - 1

    def test_sequential_same_track_no_extra_rotation(self, mechanics, layout):
        spt = layout.sectors_per_track_at(0)
        breakdown, _ = mechanics.service(0.0, 0, 0, spt // 2)
        # Transfer of half a track takes half a revolution.
        assert breakdown.transfer_ms == pytest.approx(
            mechanics.period_ms * (spt // 2) / spt
        )

    def test_track_boundary_charges_head_switch(self, mechanics, layout):
        spt = layout.sectors_per_track_at(0)
        breakdown, _ = mechanics.service(0.0, 0, 0, spt + 1)
        assert breakdown.head_switch_ms == pytest.approx(mechanics.head_switch_ms)

    def test_skew_keeps_sequential_cheap(self, mechanics, layout):
        # Reading two full tracks costs 2 revolutions of transfer plus at
        # most one revolution of initial latency plus the head switch; the
        # skew must prevent an extra full revolution at the track boundary.
        spt = layout.sectors_per_track_at(0)
        breakdown, _ = mechanics.service(0.0, 0, 0, 2 * spt)
        assert breakdown.rotational_ms < mechanics.period_ms
        assert breakdown.total_ms < 3.3 * mechanics.period_ms

    def test_service_total_is_sum(self, mechanics):
        breakdown, _ = mechanics.service(0.0, 0, 12345, 64)
        assert breakdown.total_ms == pytest.approx(
            breakdown.overhead_ms
            + breakdown.seek_ms
            + breakdown.rotational_ms
            + breakdown.head_switch_ms
            + breakdown.transfer_ms
        )

    def test_rejects_oversized_access(self, mechanics, layout):
        with pytest.raises(SimulationError):
            mechanics.service(0.0, 0, layout.total_sectors - 1, 2)

    def test_rejects_zero_sectors(self, mechanics):
        with pytest.raises(SimulationError):
            mechanics.service(0.0, 0, 0, 0)

    def test_higher_rpm_faster_transfer(self, layout):
        seek = SeekModel(
            SeekParameters(track_to_track_ms=0.4, average_ms=3.6, full_stroke_ms=7.5),
            cylinders=layout.cylinders,
        )
        slow = DiskMechanics(layout, seek, rpm=10000.0)
        fast = DiskMechanics(layout, seek, rpm=20000.0)
        b_slow, _ = slow.service(0.0, 0, 0, 64)
        b_fast, _ = fast.service(0.0, 0, 0, 64)
        assert b_fast.transfer_ms == pytest.approx(b_slow.transfer_ms / 2)

    def test_average_access_rule_of_thumb(self, mechanics):
        assert mechanics.average_access_ms() == pytest.approx(3.6 + 2.0, abs=0.2)

    def test_rejects_nonpositive_rpm(self, layout):
        seek = SeekModel(
            SeekParameters(track_to_track_ms=0.4, average_ms=3.6, full_stroke_ms=7.5),
            cylinders=layout.cylinders,
        )
        with pytest.raises(SimulationError):
            DiskMechanics(layout, seek, rpm=0.0)
