"""Fast-engine differential gates.

The vectorized engine claims *byte identity* with the exact event-driven
simulator; the analytic engine claims a documented tolerance.  This
suite holds both to their claims across the whole workload catalog and
several spindle speeds, and pins the selection rules: fault injection
forces the exact engine, RAID-5 and high-sequentiality workloads refuse
the analytic engine, and a pure-analytic sweep never spawns a process
pool.
"""

from __future__ import annotations

import dataclasses
import subprocess
import sys
from pathlib import Path

import pytest

from repro.faults import FaultConfig
from repro.simulation.fastpath import (
    ANALYTIC_HIT_RATIO_ATOL,
    ANALYTIC_MEAN_RTOL,
    ANALYTIC_P95_RTOL,
    ANALYTIC_UTILIZATION_ATOL,
    EngineRefused,
    decide_engine,
    planned_engines,
    run_fast_task,
)
from repro.simulation.sweep import (
    WorkloadTask,
    _run_workload_task,
    build_workload_tasks,
    results_json_bytes,
    sweep_workloads,
    workload_task_key,
    workload_result_from_payload,
    workload_result_to_payload,
)
from repro.workloads import catalog

#: Every catalog workload, as the tentpole contract requires.
ALL_WORKLOADS = sorted(catalog())
#: At least three RPM points per workload.
RPMS = [10000.0, 15000.0, 20000.0]
REQUESTS = 400
SEED = 7

#: Workloads the analytic engine accepts (non-RAID-5, low sequentiality).
ANALYTIC_OK = ["oltp", "search_engine"]


def _task(workload: str, rpm: float, **kwargs) -> WorkloadTask:
    base = dict(workload=workload, rpm=rpm, requests=REQUESTS, seed=SEED)
    base.update(kwargs)
    return WorkloadTask(**base)


def _normalized_bytes(result) -> bytes:
    """Canonical JSON with the engine label folded out.

    Byte identity is claimed for the *statistics*; the engine field is
    provenance and necessarily differs between the two runs.
    """
    return results_json_bytes([dataclasses.replace(result, engine="exact")])


# ---------------------------------------------------------------------------
# Vectorized engine: byte identity
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("workload", ALL_WORKLOADS)
@pytest.mark.parametrize("rpm", RPMS)
def test_vectorized_byte_identical_to_exact(workload, rpm):
    exact = _run_workload_task(_task(workload, rpm))
    fast = _run_workload_task(_task(workload, rpm, engine="vectorized"))
    assert _normalized_bytes(fast) == _normalized_bytes(exact)
    # RAID-5 workloads silently fall back; everything else must actually
    # have taken the vectorized path for this test to mean anything.
    from repro.workloads import workload as lookup

    expected = "exact" if lookup(workload).raid5 else "vectorized"
    assert fast.engine == expected


def test_vectorized_keeps_samples_byte_identical():
    exact = _run_workload_task(_task("oltp", 15000.0, keep_samples=True))
    fast = _run_workload_task(
        _task("oltp", 15000.0, keep_samples=True, engine="vectorized")
    )
    assert fast.engine == "vectorized"
    assert fast.samples_ms == exact.samples_ms
    assert _normalized_bytes(fast) == _normalized_bytes(exact)


# ---------------------------------------------------------------------------
# Analytic engine: tolerance contract
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("workload", ANALYTIC_OK)
@pytest.mark.parametrize("rpm", RPMS)
def test_analytic_within_documented_tolerance(workload, rpm):
    exact = _run_workload_task(_task(workload, rpm, requests=1500))
    estimate = _run_workload_task(
        _task(workload, rpm, requests=1500, engine="analytic")
    )
    assert estimate.engine == "analytic"
    assert estimate.mean_ms == pytest.approx(
        exact.mean_ms, rel=ANALYTIC_MEAN_RTOL
    )
    assert estimate.p95_ms == pytest.approx(exact.p95_ms, rel=ANALYTIC_P95_RTOL)
    assert estimate.max_utilization == pytest.approx(
        exact.max_utilization, abs=ANALYTIC_UTILIZATION_ATOL
    )
    assert estimate.cache_hit_ratio == pytest.approx(
        exact.cache_hit_ratio, abs=ANALYTIC_HIT_RATIO_ATOL
    )
    # The estimator must still describe the same sweep point.
    assert (estimate.workload, estimate.rpm, estimate.seed) == (
        exact.workload,
        exact.rpm,
        exact.seed,
    )
    assert estimate.requests == exact.requests


@pytest.mark.parametrize(
    "workload, fragment",
    [
        ("tpcc", "RAID-5"),
        ("openmail", "RAID-5"),
        ("tpch", "sequential fraction"),
    ],
)
def test_analytic_refuses_unqualified_workloads(workload, fragment):
    with pytest.raises(EngineRefused, match=fragment):
        _run_workload_task(_task(workload, 15000.0, engine="analytic"))


def test_analytic_refuses_keep_samples():
    with pytest.raises(EngineRefused, match="samples"):
        decide_engine(_task("oltp", 15000.0, keep_samples=True, engine="analytic"))


# ---------------------------------------------------------------------------
# Selection rules / fallback
# ---------------------------------------------------------------------------


def test_fault_injection_forces_exact_engine():
    faults = FaultConfig(seed=3, media_rate=0.05)
    exact = _run_workload_task(_task("oltp", 15000.0, fault_config=faults))
    for engine in ("vectorized", "auto"):
        fast = _run_workload_task(
            _task("oltp", 15000.0, fault_config=faults, engine=engine)
        )
        assert fast.engine == "exact"
        assert results_json_bytes([fast]) == results_json_bytes([exact])
    with pytest.raises(EngineRefused, match="fault injection"):
        _run_workload_task(
            _task("oltp", 15000.0, fault_config=faults, engine="analytic")
        )


def test_auto_prefers_analytic_then_vectorized_then_exact():
    assert decide_engine(_task("oltp", 15000.0, engine="auto")) == "analytic"
    # tpch is too sequential for analytic but fine for vectorized
    assert decide_engine(_task("tpch", 15000.0, engine="auto")) == "vectorized"
    # RAID-5 disqualifies both fast engines
    assert decide_engine(_task("tpcc", 15000.0, engine="auto")) == "exact"
    # keep_samples disqualifies analytic only
    assert (
        decide_engine(_task("oltp", 15000.0, keep_samples=True, engine="auto"))
        == "vectorized"
    )


def test_run_fast_task_returns_none_for_exact_plans():
    assert run_fast_task(_task("tpcc", 15000.0, engine="auto")) is None
    assert run_fast_task(_task("tpcc", 15000.0, engine="vectorized")) is None


def test_pure_analytic_sweep_spawns_no_pool(monkeypatch):
    """--engine analytic must never pay for a process pool (satellite 3)."""
    import repro.simulation.backends.process as backend_process

    class _Forbidden:
        def __init__(self, *args, **kwargs):
            raise AssertionError("process pool spawned for analytic sweep")

    monkeypatch.setattr(backend_process, "ProcessPoolExecutor", _Forbidden)
    results = sweep_workloads(
        names=["oltp"],
        rpms=RPMS,
        requests=REQUESTS,
        seed=SEED,
        workers=4,  # would spawn a pool for any simulation engine
        engine="analytic",
    )
    assert [r.engine for r in results] == ["analytic"] * len(RPMS)


def test_mixed_engine_sweep_still_allowed_to_pool():
    tasks = build_workload_tasks(
        names=["oltp", "tpch"], rpms=RPMS, requests=REQUESTS, engine="auto"
    )
    planned = planned_engines(tasks)
    assert planned is not None and "vectorized" in planned
    from repro.simulation.sweep import plan_sweep_workers

    assert plan_sweep_workers(tasks, 4) == 4
    analytic_only = build_workload_tasks(
        names=["oltp"], rpms=RPMS, requests=REQUESTS, engine="analytic"
    )
    assert plan_sweep_workers(analytic_only, 4) == 0


# ---------------------------------------------------------------------------
# Store keys and codec
# ---------------------------------------------------------------------------


def test_engine_is_part_of_the_task_key():
    keys = {
        workload_task_key(_task("oltp", 15000.0, engine=engine))
        for engine in ("exact", "vectorized", "analytic", "auto")
    }
    assert len(keys) == 4, "each engine must address distinct store entries"


def test_result_payload_roundtrips_engine():
    result = _run_workload_task(_task("oltp", 15000.0, engine="analytic"))
    back = workload_result_from_payload(workload_result_to_payload(result))
    assert back == result
    assert back.engine == "analytic"


# ---------------------------------------------------------------------------
# The exact path must survive a numpy-less environment
# ---------------------------------------------------------------------------


def test_exact_path_runs_without_numpy(tmp_path):
    """A stub numpy that refuses to import must not break the exact engine."""
    stub = tmp_path / "numpy.py"
    stub.write_text("raise ImportError('numpy disabled for this test')\n")
    src = str(Path(__file__).resolve().parent.parent / "src")
    code = (
        "from repro.simulation.fastpath import have_numpy\n"
        "assert not have_numpy()\n"
        "from repro.simulation.sweep import WorkloadTask, _run_workload_task\n"
        "r = _run_workload_task(WorkloadTask(workload='oltp', rpm=15000.0,"
        " requests=60, seed=1))\n"
        "assert r.engine == 'exact' and r.requests == 60\n"
        "t = WorkloadTask(workload='oltp', rpm=15000.0, requests=60, seed=1,"
        " engine='auto')\n"
        "r = _run_workload_task(t)\n"
        "assert r.engine == 'exact', r.engine\n"
        "print('ok')\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        env={"PYTHONPATH": f"{tmp_path}:{src}", "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "ok"
