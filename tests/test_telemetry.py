"""Unit tests for the telemetry subsystem: metric registry semantics,
ring-buffer bounding, exporter round-trips, and probe sampling against a
known transient-heating run."""

import json
import math

import pytest

from repro.drives import cheetah15k3
from repro.reporting import (
    parse_probes_csv,
    parse_prometheus_text,
    probes_to_csv,
    registry_to_prometheus,
    render_probe_sparklines,
    render_series,
    sparkline,
    to_json,
)
from repro.telemetry import (
    KNOWN_KINDS,
    EventTrace,
    MetricsRegistry,
    ProbeSet,
    Telemetry,
    TelemetryError,
    maybe,
)


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("requests")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(TelemetryError):
            reg.counter("requests").inc(-1)

    def test_gauge_moves_both_ways(self):
        g = MetricsRegistry().gauge("depth")
        g.set(5)
        g.inc(2)
        g.dec(4)
        assert g.value == 3.0

    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert len(reg) == 1

    def test_kind_mismatch_is_error(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TelemetryError):
            reg.gauge("x")

    def test_histogram_buckets_and_stats(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 5.0, 10.0))
        for v in (0.5, 0.9, 3.0, 7.0, 50.0):
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(61.4)
        assert h.min == 0.5
        assert h.max == 50.0
        assert h.mean() == pytest.approx(61.4 / 5)
        # cumulative le-form: <=1: 2, <=5: 3, <=10: 4, +Inf: 5
        assert h.cumulative() == [
            (1.0, 2),
            (5.0, 3),
            (10.0, 4),
            (float("inf"), 5),
        ]

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(TelemetryError):
            MetricsRegistry().histogram("bad", buckets=(5.0, 1.0))

    def test_timer_accumulates_elapsed(self):
        t = MetricsRegistry().timer("phase")
        with t:
            pass
        with t:
            pass
        assert t.starts == 2
        assert t.elapsed_s >= 0.0

    def test_as_dict_shapes(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(2)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = reg.as_dict()
        assert snap["c"] == {"kind": "counter", "value": 1.0}
        assert snap["g"] == {"kind": "gauge", "value": 2.0}
        assert snap["h"]["kind"] == "histogram"
        assert snap["h"]["buckets"][-1]["le"] == "+Inf"


class TestEventTrace:
    def test_ring_buffer_bounds_storage(self):
        trace = EventTrace(capacity=10)
        for i in range(25):
            trace.record(float(i), "seek", "disk0", cylinders=i)
        assert len(trace) == 10
        assert trace.recorded == 25
        assert trace.dropped == 15
        # oldest events were evicted first
        times = [e.time_ms for e in trace]
        assert times == [float(i) for i in range(15, 25)]

    def test_capacity_must_be_positive(self):
        with pytest.raises(TelemetryError):
            EventTrace(capacity=0)

    def test_filtering_by_kind_subject_limit(self):
        trace = EventTrace(capacity=100)
        trace.record(1.0, "cache_hit", "disk0")
        trace.record(2.0, "cache_miss", "disk0")
        trace.record(3.0, "cache_hit", "disk1")
        trace.record(4.0, "cache_hit", "disk0")
        hits = trace.events(kind="cache_hit")
        assert [e.time_ms for e in hits] == [1.0, 3.0, 4.0]
        disk0_hits = trace.events(kind="cache_hit", subject="disk0")
        assert [e.time_ms for e in disk0_hits] == [1.0, 4.0]
        newest = trace.events(kind="cache_hit", limit=1)
        assert [e.time_ms for e in newest] == [4.0]

    def test_counts_by_kind_and_clear(self):
        trace = EventTrace(capacity=100)
        trace.record(1.0, "seek", "disk0")
        trace.record(2.0, "seek", "disk0")
        trace.record(3.0, "rpm_change", "disk0")
        assert trace.counts_by_kind() == {"seek": 2, "rpm_change": 1}
        trace.clear()
        assert len(trace) == 0
        assert trace.recorded == 0

    def test_event_as_dict_flattens_fields(self):
        trace = EventTrace(capacity=4)
        trace.record(5.0, "seek", "disk0", cylinders=12, seek_ms=1.5)
        d = trace.as_dicts()[0]
        assert d == {
            "t_ms": 5.0,
            "kind": "seek",
            "subject": "disk0",
            "cylinders": 12,
            "seek_ms": 1.5,
        }

    def test_known_kinds_is_stable(self):
        # instrumentation and docs both pin these names
        for kind in ("request_issue", "cache_miss", "rpm_change", "dtm_throttle"):
            assert kind in KNOWN_KINDS


class TestProbes:
    def test_probe_sampling_against_transient_heating(self):
        """Probes sampled over the Figure-1 warm-up reproduce the known
        monotonic heating curve of the reference drive."""
        model = cheetah15k3.thermal_model()
        model.network.reset()  # start the warm-up from ambient
        probes = ProbeSet(interval_ms=1000.0)
        model.attach_probes(probes)
        dt_s = 1.0
        for step in range(60):
            model.network.step(dt_s)
            probes.sample_all((step + 1) * 1000.0)
        air = probes.probe("thermal.air_c")
        values = air.values()
        assert len(values) == 60
        # warming from ambient: strictly increasing, approaching steady state
        assert all(b > a for a, b in zip(values, values[1:]))
        assert values[0] > model.ambient_c
        assert values[-1] < 46.0  # paper steady state is 45.22 C
        # the spindle probe is flat at the drive's RPM
        assert set(probes.probe("thermal.rpm").values()) == {model.rpm}

    def test_probe_capacity_bounds_series(self):
        probes = ProbeSet(interval_ms=1.0, capacity=5)
        probe = probes.add("x", lambda: 1.0)
        for i in range(12):
            probes.sample_all(float(i))
        assert len(probe.series) == 5
        assert probe.recorded == 12
        assert probe.dropped == 7
        assert probe.times_ms() == [7.0, 8.0, 9.0, 10.0, 11.0]

    def test_unknown_probe_is_error(self):
        with pytest.raises(TelemetryError):
            ProbeSet().probe("nope")

    def test_interval_must_be_positive(self):
        with pytest.raises(TelemetryError):
            ProbeSet(interval_ms=0.0)

    def test_attach_drives_sampling_and_lets_queue_drain(self):
        from repro.simulation.events import EventQueue

        events = EventQueue()
        probes = ProbeSet(interval_ms=10.0)
        ticks = []
        probes.add("t", lambda: float(len(ticks)))
        # some real work for 55 ms of simulated time
        for t in (15.0, 30.0, 52.0):
            events.schedule(t, lambda now: ticks.append(now))
        probes.attach(events)
        events.run()
        series = probes.probe("t").series
        # sampled at 10,20,...  up to the last pending work, then stopped
        assert len(series) >= 4
        assert series[0][0] == 10.0
        assert len(ticks) == 3  # queue drained; probes did not keep it alive


class TestTelemetryFacade:
    def test_disabled_helpers_are_noops(self):
        tel = Telemetry(enabled=False)
        tel.record(1.0, "seek", "disk0")
        tel.count("x")
        tel.observe("h", 1.0)
        tel.set_gauge("g", 2.0)
        assert tel.trace.recorded == 0
        assert len(tel.registry) == 0

    def test_maybe_normalizes_disabled_to_none(self):
        assert maybe(None) is None
        assert maybe(Telemetry(enabled=False)) is None
        on = Telemetry()
        assert maybe(on) is on

    def test_as_dict_is_json_serializable(self):
        tel = Telemetry(trace_capacity=8)
        tel.count("c")
        tel.record(1.0, "seek", "disk0", cylinders=3)
        tel.probes.add("p", lambda: 1.5)
        tel.probes.sample_all(1.0)
        snap = tel.as_dict()
        assert snap["schema"] == "repro.telemetry/1"
        json.dumps(snap)  # must not raise


class TestExporters:
    def _populated(self):
        tel = Telemetry(trace_capacity=16)
        tel.count("disk0.requests", 7)
        tel.set_gauge("disk0.queue_depth", 3)
        h = tel.registry.histogram("disk0.seek_ms", buckets=(1.0, 5.0))
        for v in (0.5, 2.0, 9.0):
            h.observe(v)
        with tel.registry.timer("replay"):
            pass
        tel.probes.add("disk0.util", lambda: 0.25, unit="")
        tel.probes.sample_all(100.0)
        tel.probes.sample_all(200.0)
        return tel

    def test_json_round_trip(self):
        tel = self._populated()
        doc = json.loads(to_json(tel))
        assert doc["metrics"]["disk0.requests"]["value"] == 7.0
        assert doc["probes"]["disk0.util"]["values"] == [0.25, 0.25]

    def test_json_scrubs_non_finite(self):
        tel = Telemetry()
        tel.registry.histogram("empty")  # min=+inf, max=-inf
        doc = json.loads(to_json(tel))
        assert doc["metrics"]["empty"]["min"] is None
        assert doc["metrics"]["empty"]["max"] is None

    def test_json_never_emits_infinity_literals(self):
        """A registered-but-never-observed histogram must round-trip
        through a strict JSON parser: its untouched min/max sentinels
        (+inf/-inf) serialize as null, never as ``Infinity``."""
        tel = Telemetry()
        tel.registry.histogram("never_observed")
        text = to_json(tel)
        assert "Infinity" not in text
        assert "NaN" not in text

        def reject(const):
            raise AssertionError(f"non-standard JSON constant {const!r}")

        doc = json.loads(text, parse_constant=reject)
        snap = doc["metrics"]["never_observed"]
        assert snap["count"] == 0
        assert snap["min"] is None
        assert snap["max"] is None

    def test_csv_round_trip(self):
        tel = self._populated()
        text = probes_to_csv(tel.probes)
        back = parse_probes_csv(text)
        assert back == {"disk0.util": [(100.0, 0.25), (200.0, 0.25)]}

    def test_csv_rejects_bad_header(self):
        from repro.reporting.telemetry_export import ExportError

        with pytest.raises(ExportError):
            parse_probes_csv("nope\n1,2,3\n")

    def test_prometheus_round_trip(self):
        tel = self._populated()
        text = registry_to_prometheus(tel.registry)
        parsed = parse_prometheus_text(text)
        counter = parsed["repro_disk0_requests_total"]
        assert counter["type"] == "counter"
        assert counter["samples"][""] == 7.0
        gauge = parsed["repro_disk0_queue_depth"]
        assert gauge["type"] == "gauge"
        assert gauge["samples"][""] == 3.0
        hist = parsed["repro_disk0_seek_ms"]
        assert hist["type"] == "histogram"
        samples = hist["samples"]
        assert samples['bucket{le="1.0"}'] == 1.0
        assert samples['bucket{le="5.0"}'] == 2.0
        assert samples['bucket{le="+Inf"}'] == 3.0
        assert samples["sum"] == pytest.approx(11.5)
        assert samples["count"] == 3.0
        timer = parsed["repro_replay_seconds"]
        assert timer["type"] == "counter"

    def test_prometheus_inf_parses(self):
        assert math.isinf(float("+Inf"))  # the exposition token round-trips

    def test_label_value_escaping_round_trip(self):
        """Satellite fix: `\\`, `"` and newline in label values must be
        escaped per the exposition format and survive the round trip."""
        from repro.reporting.telemetry_export import (
            escape_label_value,
            unescape_label_value,
        )

        nasty = [
            'quote " inside',
            "back\\slash",
            "line\nfeed",
            'all \\ three " at\nonce',
            "\\n is not a newline",
            "",
            "plain",
        ]
        for value in nasty:
            escaped = escape_label_value(value)
            assert "\n" not in escaped, "escaped values must stay one-line"
            assert unescape_label_value(escaped) == value

    def test_label_set_format_and_parse(self):
        from repro.reporting.telemetry_export import (
            format_label_set,
            format_sample,
            parse_label_set,
        )

        labels = {"workload": 'tp"cc', "note": "a\\b", "multi": "x\ny"}
        rendered = format_label_set(labels)
        assert rendered.startswith("{") and rendered.endswith("}")
        assert parse_label_set(rendered) == labels
        # Suffix forms as produced by parse_prometheus_text sample keys.
        assert parse_label_set('bucket{le="5.0"}') == {"le": "5.0"}
        assert parse_label_set("") == {}
        assert parse_label_set("sum") == {}
        line = format_sample("repro_jobs_total", labels, 3.0)
        name, _, value = line.rpartition(" ")
        assert value == "3.0"
        assert parse_label_set(name) == labels
        from repro.reporting.telemetry_export import ExportError

        with pytest.raises(ExportError):
            parse_label_set('{unterminated="')
        with pytest.raises(ExportError):
            parse_label_set('no_quotes=5}')

    def test_prometheus_constant_labels_round_trip(self):
        """registry_to_prometheus(labels=...) stamps every sample and the
        values survive parse_prometheus_text + parse_label_set even with
        exposition-reserved characters inside."""
        from repro.reporting.telemetry_export import parse_label_set

        tel = self._populated()
        labels = {"instance": 'drive"farm\\1', "zone": "a\nb"}
        text = registry_to_prometheus(tel.registry, labels=labels)
        parsed = parse_prometheus_text(text)
        counter = parsed["repro_disk0_requests_total"]
        (suffix,) = counter["samples"]
        assert parse_label_set(suffix) == labels
        assert counter["samples"][suffix] == 7.0
        hist = parsed["repro_disk0_seek_ms"]
        bucket_suffixes = [s for s in hist["samples"] if s.startswith("bucket")]
        assert bucket_suffixes, "histogram buckets must keep their samples"
        for suffix in bucket_suffixes:
            bucket_labels = parse_label_set(suffix)
            le = bucket_labels.pop("le")
            assert bucket_labels == labels
            assert le  # the bound rides alongside the constant labels
        sum_suffix = next(s for s in hist["samples"] if s.startswith("sum"))
        assert parse_label_set(sum_suffix) == labels

    def test_prometheus_unlabelled_output_unchanged(self):
        """No labels → byte-identical output shape to the historical
        exporter (plain sample keys, `bucket{le=...}` children)."""
        tel = self._populated()
        text = registry_to_prometheus(tel.registry)
        assert registry_to_prometheus(tel.registry, labels=None) == text
        assert registry_to_prometheus(tel.registry, labels={}) == text
        parsed = parse_prometheus_text(text)
        assert parsed["repro_disk0_requests_total"]["samples"][""] == 7.0

    def test_sparkline_shapes(self):
        line = sparkline([1, 2, 3, 4, 5], width=5)
        assert len(line) == 5
        assert line[0] == "▁" and line[-1] == "█"
        ascii_line = sparkline([1, 2, 3], width=3, ascii_only=True)
        assert all(c in " .:-=+*#" for c in ascii_line)

    def test_sparkline_flat_and_empty(self):
        assert sparkline([]) == ""
        flat = sparkline([2.0, 2.0, 2.0], width=3)
        assert len(set(flat)) == 1

    def test_render_series_annotates_range(self):
        text = render_series("x", [0.0, 1.0], unit="C")
        assert "x" in text and "C" in text

    def test_render_probe_sparklines_selects_names(self):
        tel = self._populated()
        text = render_probe_sparklines(tel.probes)
        assert "disk0.util" in text
