"""Unit tests for the cache-disk pair's internals (region map, routing)."""

import pytest

from repro.dtm.cache_disk import CacheDiskPair, _RegionMap
from repro.errors import DTMError
from repro.simulation.request import Request


class TestRegionMap:
    def test_insert_then_contains(self):
        region_map = _RegionMap(capacity_sectors=1024, region_sectors=128)
        region_map.insert(0, 64)
        assert region_map.contains(0, 64)
        assert region_map.contains(32, 32)

    def test_partial_region_counts_as_whole(self):
        region_map = _RegionMap(capacity_sectors=1024, region_sectors=128)
        region_map.insert(0, 1)  # touches region 0
        assert region_map.contains(100, 20)  # same region

    def test_spanning_requires_all_regions(self):
        region_map = _RegionMap(capacity_sectors=1024, region_sectors=128)
        region_map.insert(0, 128)  # region 0 only
        assert not region_map.contains(100, 64)  # spans into region 1

    def test_lru_eviction_order(self):
        region_map = _RegionMap(capacity_sectors=256, region_sectors=128)  # 2 regions
        region_map.insert(0, 1)      # region 0
        region_map.insert(128, 1)    # region 1
        region_map.contains(0, 1)    # touch region 0
        region_map.insert(256, 1)    # region 2 -> evicts region 1
        assert region_map.contains(0, 1)
        assert not region_map.contains(128, 1)

    def test_invalidate(self):
        region_map = _RegionMap(capacity_sectors=1024, region_sectors=128)
        region_map.insert(0, 256)
        region_map.invalidate(128, 1)
        assert region_map.contains(0, 128)
        assert not region_map.contains(128, 128)

    def test_zero_capacity_disables(self):
        region_map = _RegionMap(capacity_sectors=128, region_sectors=128)
        region_map.max_regions = 0
        region_map.insert(0, 64)
        assert not region_map.contains(0, 64)

    def test_rejects_bad_config(self):
        with pytest.raises(DTMError):
            _RegionMap(capacity_sectors=64, region_sectors=128)
        with pytest.raises(DTMError):
            _RegionMap(capacity_sectors=128, region_sectors=0)


class TestCacheDiskRouting:
    @pytest.fixture(scope="class")
    def pair(self):
        return CacheDiskPair()

    def test_write_goes_to_big_disk_and_invalidates(self, pair):
        lba = 1000
        # Prime the cache with a read.
        pair.submit(Request(arrival_ms=pair.events.now_ms, lba=lba, sectors=8))
        pair.events.run()
        assert pair.map.contains(lba, 8)
        pair.submit(
            Request(arrival_ms=pair.events.now_ms, lba=lba, sectors=8, is_write=True)
        )
        pair.events.run()
        assert not pair.map.contains(lba, 8)
        assert pair.writes == 1

    def test_second_read_hits(self, pair):
        lba = 50_000
        for _ in range(2):
            pair.submit(Request(arrival_ms=pair.events.now_ms, lba=lba, sectors=8))
            pair.events.run()
        assert pair.hits >= 1

    def test_out_of_range_rejected(self, pair):
        with pytest.raises(DTMError):
            pair.submit(
                Request(arrival_ms=pair.events.now_ms, lba=pair.logical_sectors, sectors=1)
            )

    def test_cache_lba_fits_small_disk(self, pair):
        for lba in (0, pair.logical_sectors // 2, pair.logical_sectors - 64):
            mapped = pair._cache_lba(lba, 64)
            assert 0 <= mapped + 64 <= pair.small.total_sectors
