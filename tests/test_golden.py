"""Golden regression fixtures: current model outputs vs checked-in JSON.

``tests/golden/*.json`` pin the model outputs for the paper's two central
artifacts — the Table 1 validation set and the Figure 2 thermal roadmap —
plus a 2-rack/24-drive fleet run through the rack-coupled environment,
fleet DTM, tiering, fault injection and the AFR/availability model.
These tests recompute each and compare against the fixtures with *tight*
tolerances (1e-9 relative): loose enough to survive a change of libm,
far too tight for any genuine model change to slip through.

When a deliberate model change trips these tests, regenerate with
``make regen-golden`` (clean tree only) and commit the fixture diff
alongside the change that caused it.
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
TOOLS_DIR = REPO_ROOT / "tools"
if str(TOOLS_DIR) not in sys.path:
    sys.path.insert(0, str(TOOLS_DIR))

import regen_golden  # the generator doubles as the recompute library

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

#: Relative tolerance for float comparisons.  Tight on purpose: golden
#: fixtures exist to catch drift, not to absorb it.
REL_TOL = 1e-9
ABS_TOL = 1e-12


def _diff(expected, actual, path="$", out=None):
    """Collect human-actionable differences between two JSON documents.

    Every divergence is reported as ``path: expected X, got Y`` so a
    failure names the exact drive/year/field that moved, not just
    "documents differ".
    """
    if out is None:
        out = []
    if isinstance(expected, bool) or isinstance(actual, bool):
        # bool is an int subclass; compare identically-typed only.
        if expected is not actual:
            out.append(f"{path}: expected {expected!r}, got {actual!r}")
    elif isinstance(expected, (int, float)) and isinstance(actual, (int, float)):
        if not math.isclose(expected, actual, rel_tol=REL_TOL, abs_tol=ABS_TOL):
            rel = abs(actual - expected) / max(abs(expected), ABS_TOL)
            out.append(
                f"{path}: expected {expected!r}, got {actual!r} "
                f"(rel err {rel:.3e}, tol {REL_TOL:.0e})"
            )
    elif isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(expected.keys() - actual.keys()):
            out.append(f"{path}.{key}: missing from actual")
        for key in sorted(actual.keys() - expected.keys()):
            out.append(f"{path}.{key}: unexpected in actual")
        for key in sorted(expected.keys() & actual.keys()):
            _diff(expected[key], actual[key], f"{path}.{key}", out)
    elif isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            out.append(
                f"{path}: expected {len(expected)} items, got {len(actual)}"
            )
        for index, (e_item, a_item) in enumerate(zip(expected, actual)):
            _diff(e_item, a_item, f"{path}[{index}]", out)
    elif expected != actual:
        out.append(f"{path}: expected {expected!r}, got {actual!r}")
    return out


def _assert_matches_golden(fixture_name: str, actual: dict) -> None:
    fixture = GOLDEN_DIR / fixture_name
    expected = json.loads(fixture.read_text(encoding="utf-8"))
    differences = _diff(expected, actual)
    if differences:
        shown = "\n  ".join(differences[:25])
        more = len(differences) - 25
        suffix = f"\n  ... and {more} more" if more > 0 else ""
        pytest.fail(
            f"{fixture_name} diverged from the current model "
            f"({len(differences)} difference(s)):\n  {shown}{suffix}\n"
            "If this change is intentional, regenerate with "
            "`make regen-golden` (clean tree) and commit the fixture diff.",
            pytrace=False,
        )


def test_table1_matches_golden():
    _assert_matches_golden("table1.json", regen_golden.table1_document())


def test_roadmap_matches_golden():
    _assert_matches_golden(
        "roadmap_2002_2012.json", regen_golden.roadmap_document()
    )


def test_fleet_matches_golden():
    """The 2-rack/24-drive fleet run: coupling, DTM, tiering, faults,
    AFR/availability *and* the content-addressed task keys, all pinned."""
    _assert_matches_golden("fleet_2rack.json", regen_golden.fleet_document())


def test_fixtures_are_strict_json():
    """Goldens must stay portable: strict JSON, no NaN/Infinity literals."""
    for fixture in sorted(GOLDEN_DIR.glob("*.json")):
        document = json.loads(
            fixture.read_text(encoding="utf-8"),
            parse_constant=lambda name: pytest.fail(
                f"{fixture.name} contains non-strict JSON constant {name}"
            ),
        )
        assert document["schema"].startswith("repro.golden."), fixture.name


def test_diff_engine_reports_actionable_paths():
    """The comparator itself: paths, tolerances, type discipline."""
    expected = {"a": [1.0, {"b": 2.0}], "c": True, "d": "x"}
    same = {"a": [1.0 + 1e-13, {"b": 2.0}], "c": True, "d": "x"}
    assert _diff(expected, same) == []

    changed = {"a": [1.0, {"b": 2.5}], "c": False, "d": "y"}
    report = _diff(expected, changed)
    assert any(line.startswith("$.a[1].b:") for line in report)
    assert any(line.startswith("$.c:") for line in report)
    assert any(line.startswith("$.d:") for line in report)

    # bool/number confusion is a difference, not a numeric match.
    assert _diff({"x": True}, {"x": 1}) != []
    # Missing and unexpected keys are both named.
    report = _diff({"only_expected": 1}, {"only_actual": 1})
    assert any("missing from actual" in line for line in report)
    assert any("unexpected in actual" in line for line in report)
