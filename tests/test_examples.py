"""Smoke tests: the example scripts run end to end and print their story."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "usable capacity" in out
        assert "max RPM inside envelope" in out
        assert "45.22" in out

    def test_roadmap_explorer(self, capsys):
        load_example("roadmap_explorer").main()
        out = capsys.readouterr().out
        assert "IDR roadmap" in out
        assert "Cooling sensitivity" in out
        assert "2012" in out

    def test_workload_simulation(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["workload_simulation.py", "oltp", "800"])
        load_example("workload_simulation").main()
        out = capsys.readouterr().out
        assert "OLTP" in out
        assert "faster mean response" in out
        assert "CDF" in out

    def test_array_thermal(self, capsys):
        load_example("array_thermal").main()
        out = capsys.readouterr().out
        assert "Serial airflow" in out
        assert "reliability mechanism" in out
        assert "MTBF" in out

    @pytest.mark.slow
    def test_dtm_demo(self, capsys):
        load_example("dtm_demo").main()
        out = capsys.readouterr().out
        assert "Thermal slack" in out
        assert "throttling ratios" in out
        assert "Reactive DTM controller" in out
