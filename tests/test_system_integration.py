"""End-to-end storage-system tests (small versions of the Figure 4 runs)."""

import pytest

from repro.errors import SimulationError
from repro.simulation import build_system
from repro.workloads import Trace, TraceRecord, workload


class TestBuildSystem:
    def test_disk_count_and_rpm(self):
        system = build_system(disk_count=3, rpm=12000, disk_capacity_gb=5.0, raid5=True)
        assert len(system.disks) == 3
        assert all(d.rpm == 12000 for d in system.disks)

    def test_capacity_clipping(self):
        system = build_system(disk_count=2, rpm=10000, disk_capacity_gb=1.0)
        assert system.array.geometry.disk_sectors <= int(1.0e9) // 512

    def test_rejects_bad_parameters(self):
        with pytest.raises(SimulationError):
            build_system(disk_count=0, rpm=10000, disk_capacity_gb=1.0)
        with pytest.raises(SimulationError):
            build_system(disk_count=1, rpm=10000, disk_capacity_gb=0.0)

    def test_scheduler_selection(self):
        from repro.simulation.scheduler import SSTFScheduler

        system = build_system(
            disk_count=1, rpm=10000, disk_capacity_gb=1.0, scheduler_name="sstf"
        )
        assert isinstance(system.disks[0].scheduler, SSTFScheduler)


class TestRunTrace:
    def make_trace(self, n, capacity, seed=0, write_every=4):
        import random

        rng = random.Random(seed)
        records = []
        t = 0.0
        for i in range(n):
            t += rng.expovariate(1 / 2.0)
            records.append(
                TraceRecord(
                    time_ms=t,
                    lba=rng.randrange(capacity - 64),
                    sectors=8,
                    is_write=(i % write_every == 0),
                )
            )
        return Trace(name="synthetic", records=records)

    def test_all_requests_complete(self):
        system = build_system(disk_count=2, rpm=10000, disk_capacity_gb=2.0)
        trace = self.make_trace(300, system.array.logical_sectors)
        report = system.run_trace(trace)
        assert report.requests == 300
        assert report.stats.count == 300
        assert report.simulated_ms >= trace.duration_ms

    def test_report_fields(self):
        system = build_system(disk_count=2, rpm=10000, disk_capacity_gb=2.0)
        trace = self.make_trace(200, system.array.logical_sectors)
        report = system.run_trace(trace)
        assert report.rpm == 10000
        assert len(report.disk_utilizations) == 2
        assert all(0 <= u <= 1 for u in report.disk_utilizations)
        assert 0 <= report.cache_hit_ratio <= 1

    def test_empty_trace_rejected(self):
        system = build_system(disk_count=1, rpm=10000, disk_capacity_gb=1.0)
        with pytest.raises(SimulationError):
            system.run_trace(Trace(name="empty"))

    def test_oversized_trace_rejected(self):
        system = build_system(disk_count=1, rpm=10000, disk_capacity_gb=1.0)
        big = Trace(
            name="big",
            records=[TraceRecord(0.0, system.array.logical_sectors, 8, False)],
        )
        with pytest.raises(SimulationError):
            system.run_trace(big)

    def test_higher_rpm_improves_response(self):
        trace = None
        means = []
        for rpm in (10000, 20000):
            system = build_system(disk_count=2, rpm=rpm, disk_capacity_gb=2.0)
            if trace is None:
                trace = self.make_trace(400, system.array.logical_sectors, seed=3)
            report = system.run_trace(trace)
            means.append(report.mean_response_ms())
        assert means[1] < means[0]

    def test_raid5_writes_slower_than_raid0(self):
        means = []
        for raid5 in (False, True):
            system = build_system(
                disk_count=4, rpm=10000, disk_capacity_gb=2.0, raid5=raid5,
                stripe_unit_sectors=16,
            )
            trace = self.make_trace(
                200, system.array.logical_sectors, seed=4, write_every=2
            )
            means.append(system.run_trace(trace).mean_response_ms())
        assert means[1] > means[0]


class TestPaperWorkloadsSmall:
    """Scaled-down versions of the Figure 4 experiment: every workload must
    improve monotonically with RPM."""

    @pytest.mark.parametrize("name", ["oltp", "tpcc", "search_engine"])
    def test_rpm_monotonicity(self, name):
        spec = workload(name)
        trace = spec.generate(num_requests=1200, seed=42)
        means = []
        for rpm in spec.rpm_sweep(3):
            report = spec.build_system(rpm).run_trace(trace)
            means.append(report.mean_response_ms())
        assert means[0] > means[1] > means[2]

    def test_plus_5k_gain_in_paper_band(self):
        # The paper's +5K RPM gains range ~20-55%; check a fast workload
        # lands in a generous version of that band.
        spec = workload("oltp")
        trace = spec.generate(num_requests=2000, seed=7)
        base = spec.build_system(10000).run_trace(trace).mean_response_ms()
        plus5 = spec.build_system(15000).run_trace(trace).mean_response_ms()
        gain = (base - plus5) / base
        assert 0.10 <= gain <= 0.60

    def test_cdf_shifts_left_with_rpm(self):
        spec = workload("search_engine")
        trace = spec.generate(num_requests=1500, seed=9)
        slow = spec.build_system(10000).run_trace(trace).stats.cdf()
        fast = spec.build_system(20000).run_trace(trace).stats.cdf()
        # At every bin edge, the faster system has completed at least as
        # large a fraction of requests.
        for (edge_s, frac_s), (edge_f, frac_f) in zip(slow, fast):
            assert edge_s == edge_f
            assert frac_f >= frac_s - 0.02
