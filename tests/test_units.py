"""Unit-conversion tests."""

import math

import pytest

from repro import units


class TestLength:
    def test_inch_roundtrip(self):
        assert units.meters_to_inches(units.inches_to_meters(3.5)) == pytest.approx(3.5)

    def test_inch_to_meters_value(self):
        assert units.inches_to_meters(1.0) == pytest.approx(0.0254)

    def test_inch_to_mm(self):
        assert units.inches_to_mm(2.0) == pytest.approx(50.8)

    def test_mm_roundtrip(self):
        assert units.mm_to_inches(units.inches_to_mm(2.6)) == pytest.approx(2.6)


class TestAngular:
    def test_rpm_to_rad(self):
        assert units.rpm_to_rad_per_sec(60.0) == pytest.approx(2.0 * math.pi)

    def test_rad_roundtrip(self):
        assert units.rad_per_sec_to_rpm(units.rpm_to_rad_per_sec(15000)) == pytest.approx(15000)

    def test_rev_per_sec(self):
        assert units.rpm_to_rev_per_sec(7200) == pytest.approx(120.0)

    def test_rotation_time_10k(self):
        assert units.rotation_time_ms(10000) == pytest.approx(6.0)

    def test_rotation_time_15k(self):
        assert units.rotation_time_ms(15000) == pytest.approx(4.0)

    def test_rotation_time_rejects_zero(self):
        with pytest.raises(ValueError):
            units.rotation_time_ms(0)

    def test_rotation_time_rejects_negative(self):
        with pytest.raises(ValueError):
            units.rotation_time_ms(-7200)


class TestStorage:
    def test_bits_per_sector(self):
        assert units.BITS_PER_SECTOR == 4096

    def test_bits_to_sectors_floors(self):
        assert units.bits_to_sectors(4095) == 0
        assert units.bits_to_sectors(4096) == 1
        assert units.bits_to_sectors(8191) == 1

    def test_sectors_to_gb_marketing(self):
        # 2e9 sectors * 512 B = 1.024e12 B = 1024 decimal GB.
        assert units.sectors_to_gb(2_000_000_000) == pytest.approx(1024.0)

    def test_bytes_to_mb_per_sec(self):
        assert units.bytes_to_mb_per_sec(2 * 1024 * 1024) == pytest.approx(2.0)


class TestTemperature:
    def test_celsius_kelvin_roundtrip(self):
        assert units.kelvin_to_celsius(units.celsius_to_kelvin(45.22)) == pytest.approx(45.22)

    def test_absolute_zero(self):
        assert units.celsius_to_kelvin(-273.15) == pytest.approx(0.0)


class TestTime:
    def test_minutes(self):
        assert units.minutes_to_seconds(48) == pytest.approx(2880.0)

    def test_ms_roundtrip(self):
        assert units.seconds_to_ms(units.ms_to_seconds(123.4)) == pytest.approx(123.4)
