"""Spin-down power-management tests (the §2 related-work machinery)."""

import pytest

from repro.dtm.spindown import PowerState, SpinManagedDisk, SpinPolicy
from repro.errors import DTMError
from repro.simulation import EventQueue, standard_disk
from repro.workloads import Trace, TraceRecord


def make_managed(idle_timeout_ms=500.0, spin_up_ms=2000.0):
    events = EventQueue()
    disk = standard_disk(
        name="pm",
        events=events,
        diameter_in=2.6,
        platters=1,
        kbpi=300,
        ktpi=10,
        rpm=10000,
        zone_count=10,
    )
    policy = SpinPolicy(idle_timeout_ms=idle_timeout_ms, spin_up_ms=spin_up_ms)
    return SpinManagedDisk(disk, policy)


def bursty_trace(bursts=3, per_burst=5, gap_ms=3000.0):
    records = []
    t = 0.0
    lba = 0
    for _ in range(bursts):
        for _ in range(per_burst):
            records.append(TraceRecord(t, lba, 8, False))
            t += 5.0
            lba += 512
        t += gap_ms
    return Trace(name="bursty", records=records)


class TestSpinPolicy:
    def test_validation(self):
        with pytest.raises(DTMError):
            SpinPolicy(idle_timeout_ms=-1)
        with pytest.raises(DTMError):
            SpinPolicy(spin_up_ms=-1)

    def test_none_timeout_allowed(self):
        assert SpinPolicy(idle_timeout_ms=None).idle_timeout_ms is None


class TestSpinManagedDisk:
    def test_all_requests_complete(self):
        managed = make_managed()
        report = managed.run_trace(bursty_trace())
        assert report.stats.count == 15

    def test_spin_down_happens_in_gaps(self):
        managed = make_managed(idle_timeout_ms=500.0)
        report = managed.run_trace(bursty_trace(gap_ms=3000.0))
        # Gaps of 3 s with a 0.5 s timeout: the disk spins down between
        # bursts and spins back up for the next one.
        assert report.spin_ups >= 2
        assert report.standby_ms > 0

    def test_no_spin_down_without_timeout(self):
        managed = make_managed(idle_timeout_ms=None)
        report = managed.run_trace(bursty_trace())
        assert report.spin_ups == 0
        assert report.standby_ms == 0.0
        assert managed.state in (PowerState.ACTIVE, PowerState.IDLE)

    def test_spin_up_penalty_visible_in_latency(self):
        always_on = make_managed(idle_timeout_ms=None)
        report_on = always_on.run_trace(bursty_trace())
        eager = make_managed(idle_timeout_ms=200.0, spin_up_ms=2000.0)
        report_eager = eager.run_trace(bursty_trace())
        # Burst leaders pay the 2 s spin-up.
        assert report_eager.stats.max_ms() > 1500.0
        assert report_on.stats.max_ms() < 500.0

    def test_energy_saved_by_spin_down(self):
        always_on = make_managed(idle_timeout_ms=None)
        energy_on = always_on.run_trace(bursty_trace(gap_ms=20_000.0)).energy_j
        eager = make_managed(idle_timeout_ms=200.0)
        energy_eager = eager.run_trace(bursty_trace(gap_ms=20_000.0)).energy_j
        # With 20 s gaps and a 0.2 s timeout, most wall time is standby.
        assert energy_eager < 0.6 * energy_on

    def test_energy_conservation_components(self):
        managed = make_managed(idle_timeout_ms=None)
        report = managed.run_trace(bursty_trace())
        # Always-on: energy ~ spinning power x wall time (+ VCM).
        spinning_w = managed._spinning_power_w()
        floor = spinning_w * report.simulated_ms / 1000.0
        assert report.energy_j == pytest.approx(floor, rel=0.1)

    def test_timeout_shorter_than_gap_is_required(self):
        lazy = make_managed(idle_timeout_ms=10_000.0)
        report = lazy.run_trace(bursty_trace(gap_ms=3000.0))
        assert report.spin_ups == 0  # the timer never fires before work

    def test_standby_fraction_bounded(self):
        managed = make_managed(idle_timeout_ms=200.0)
        report = managed.run_trace(bursty_trace(gap_ms=10_000.0))
        assert 0.0 < report.standby_fraction < 1.0

    def test_stale_idle_timer_is_noop(self):
        # A burst arriving before the timer fires must cancel it: the
        # disk never enters standby and pays no spin-up.
        managed = make_managed(idle_timeout_ms=2500.0, spin_up_ms=2000.0)
        report = managed.run_trace(bursty_trace(gap_ms=2000.0))
        assert report.spin_ups == 0
        assert report.stats.max_ms() < 1000.0
