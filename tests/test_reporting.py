"""Reporting helper tests."""

import pytest

from repro.reporting import ascii_plot, format_cell, format_comparison, format_table


class TestFormatTable:
    def test_alignment_and_header_rule(self):
        table = format_table(["a", "bb"], [[1, 2.5], [30, 4.25]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert set(lines[1].strip()) == {"-", " "}
        # Columns aligned: every row the same width.
        assert len({len(line) for line in lines}) == 1

    def test_precision(self):
        table = format_table(["x"], [[3.14159]], precision=3)
        assert "3.142" in table

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_bool_cells(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_string_cells(self):
        assert format_cell("2.6\"") == '2.6"'

    def test_indent(self):
        table = format_table(["a"], [[1]], indent="  ")
        assert all(line.startswith("  ") for line in table.splitlines())


class TestFormatComparison:
    def test_deviation(self):
        line = format_comparison("idr", 110.0, 100.0)
        assert "+10.0%" in line

    def test_zero_paper_value(self):
        line = format_comparison("x", 1.0, 0.0)
        assert "paper=0.00" in line


class TestAsciiPlot:
    def test_basic_plot_contains_points(self):
        plot = ascii_plot([("s", [0, 1, 2], [1.0, 2.0, 3.0])], width=30, height=8)
        assert "*" in plot
        assert "s" in plot

    def test_log_scale(self):
        plot = ascii_plot(
            [("s", [0, 1], [1.0, 1000.0])], width=30, height=8, logy=True
        )
        assert "1000" in plot

    def test_log_scale_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_plot([("s", [0], [0.0])], logy=True)

    def test_multiple_series_glyphs(self):
        plot = ascii_plot(
            [("a", [0, 1], [1, 2]), ("b", [0, 1], [2, 1])], width=20, height=6
        )
        assert "*" in plot and "+" in plot

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot([])

    def test_title(self):
        plot = ascii_plot([("s", [0, 1], [1, 2])], title="Figure X")
        assert plot.splitlines()[0] == "Figure X"
