"""Unit tests for the fleet layer: topology, coupling, DTM, tiering,
reliability, sweep keys/codec — plus the fleet fault-identity regression.

The property-based topology sweeps live in test_fleet_properties.py; the
cross-backend byte-identity matrix lives in test_differential.py.  This
file pins the building blocks one at a time.
"""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro.constants import AMBIENT_TEMPERATURE_C, THERMAL_ENVELOPE_C
from repro.errors import FleetError
from repro.faults import FaultConfig
from repro.fleet import (
    EnclosureSpec,
    FleetDTMPolicy,
    FleetSpec,
    RackSpec,
    ReliabilityParams,
    TieringPolicy,
    build_rack_tasks,
    coordinate_rack,
    fleet_config,
    fleet_from_config,
    fleet_reliability,
    fleet_summary,
    fleet_task_key,
    rack_profile,
    rack_result_from_payload,
    rack_result_to_payload,
    run_fleet_sweep,
    uniform_fleet,
)
from repro.fleet.coupling import drive_air_rise_c, enclosure_inlets_c
from repro.fleet.reliability import drive_afr, drive_availability
from repro.fleet.sweep import RackTask, _run_rack_task
from repro.fleet.tiering import extent_heats, plan_rack_tiering


def small_rack(drives=2, enclosures=2, **kwargs) -> RackSpec:
    enclosure = EnclosureSpec(drives=drives)
    return RackSpec(
        name=kwargs.pop("name", "r0"),
        enclosures=(enclosure,) * enclosures,
        **kwargs,
    )


class TestTopology:
    def test_validation_errors(self):
        with pytest.raises(FleetError):
            EnclosureSpec(drives=0)
        with pytest.raises(FleetError):
            EnclosureSpec(drives=1, airflow_m3_per_s=0.0)
        with pytest.raises(FleetError):
            EnclosureSpec(drives=1, cooling_budget_w=-1.0)
        with pytest.raises(FleetError):
            EnclosureSpec(drives=1, vcm_duty=1.5)
        with pytest.raises(FleetError):
            RackSpec(name="", enclosures=(EnclosureSpec(drives=1),))
        with pytest.raises(FleetError):
            RackSpec(name="a/b", enclosures=(EnclosureSpec(drives=1),))
        with pytest.raises(FleetError):
            RackSpec(name="r", enclosures=())
        with pytest.raises(FleetError):
            small_rack(recirculation=1.5)
        with pytest.raises(FleetError):
            FleetSpec(racks=())
        with pytest.raises(FleetError):
            FleetSpec(racks=(small_rack(), small_rack()))  # duplicate names

    def test_config_round_trip_is_exact(self):
        fleet = uniform_fleet(racks=3, enclosures_per_rack=2,
                              drives_per_enclosure=4, recirculation=0.35)
        assert fleet_from_config(fleet_config(fleet)) == fleet

    def test_unknown_config_fields_rejected(self):
        config = fleet_config(uniform_fleet(racks=1))
        config["racks"][0]["enclosures"][0]["typo"] = 1
        with pytest.raises(FleetError, match="typo"):
            fleet_from_config(config)
        with pytest.raises(FleetError, match="unknown fleet field"):
            fleet_from_config({"racks": [], "extra": 1})

    def test_drive_count_and_slots(self):
        fleet = uniform_fleet(racks=2, enclosures_per_rack=3,
                              drives_per_enclosure=4)
        assert fleet.drive_count == 24
        slots = list(fleet.racks[0].slots())
        assert len(slots) == 12
        assert slots[0] == (0, 0) and slots[-1] == (2, 3)


class TestCoupling:
    def test_serial_chain_is_monotonic_within_an_enclosure(self):
        profile = rack_profile(small_rack(drives=4, enclosures=1))
        inlets = [d.local_inlet_c for d in profile.enclosures[0].drives]
        assert inlets == sorted(inlets)
        assert inlets[-1] > inlets[0], "downstream drives must run hotter"

    def test_recirculation_preheats_downstream_enclosures(self):
        coupled = rack_profile(small_rack(enclosures=3, recirculation=0.4))
        contained = rack_profile(small_rack(enclosures=3, recirculation=0.0))
        coupled_inlets = [e.inlet_c for e in coupled.enclosures]
        contained_inlets = [e.inlet_c for e in contained.enclosures]
        assert coupled_inlets == sorted(coupled_inlets)
        assert contained_inlets == [AMBIENT_TEMPERATURE_C] * 3
        assert coupled_inlets[1] > contained_inlets[1]

    def test_inlets_formula(self):
        rack = small_rack(enclosures=3, recirculation=0.5)
        inlets = enclosure_inlets_c(rack, [2.0, 4.0, 8.0])
        assert inlets == (
            AMBIENT_TEMPERATURE_C,
            AMBIENT_TEMPERATURE_C + 0.5 * 2.0,
            AMBIENT_TEMPERATURE_C + 0.5 * 6.0,
        )

    def test_slower_spindles_run_cooler(self):
        fast = rack_profile(small_rack(), default_rpm=15000.0)
        slow = rack_profile(small_rack(), default_rpm=9600.0)
        assert slow.max_internal_c < fast.max_internal_c
        assert slow.total_heat_w < fast.total_heat_w

    def test_rise_is_duty_interpolated(self):
        off = drive_air_rise_c(2.6, 1, 15000.0, 0.0)
        on = drive_air_rise_c(2.6, 1, 15000.0, 1.0)
        half = drive_air_rise_c(2.6, 1, 15000.0, 0.5)
        assert off < half < on
        assert half == pytest.approx((off + on) / 2.0, rel=1e-12)

    def test_rpm_rows_must_match_topology(self):
        with pytest.raises(FleetError):
            rack_profile(small_rack(drives=2, enclosures=2), rpms=[[15000.0]])


class TestFleetDTM:
    def test_hot_rack_converges_gracefully(self):
        rack = small_rack(drives=4, enclosures=2, recirculation=0.3)
        coord = coordinate_rack(rack, FleetDTMPolicy())
        assert coord.converged and coord.residual_breaches == 0
        assert coord.profile.max_internal_c <= THERMAL_ENVELOPE_C + 1e-9
        assert coord.events, "this topology must need throttling"
        # Graceful degradation: some capacity lost, most retained.
        assert 0.5 < coord.capacity_fraction < 1.0

    def test_events_are_canonically_ordered(self):
        rack = small_rack(drives=4, enclosures=2, recirculation=0.3)
        coord = coordinate_rack(rack, FleetDTMPolicy())
        keys = [(e.round, e.enclosure, e.slot) for e in coord.events]
        assert keys == sorted(keys)

    def test_throttle_order_invariance(self):
        rack = small_rack(drives=4, enclosures=3, recirculation=0.3)
        policy = FleetDTMPolicy()
        fwd = coordinate_rack(rack, policy, order="sorted")
        rev = coordinate_rack(rack, policy, order="reversed")
        assert fwd == rev

    def test_ladder_exhaustion_reports_residual_breaches(self):
        # An impossible box: lots of drives, almost no airflow.
        rack = RackSpec(
            name="hot",
            enclosures=(EnclosureSpec(drives=8, airflow_m3_per_s=0.002),),
        )
        coord = coordinate_rack(rack, FleetDTMPolicy())
        assert not coord.converged
        assert coord.residual_breaches > 0
        # Every still-breaching drive was driven to the bottom rung
        # before the coordinator gave up (nothing droppable remained).
        from repro.fleet.dtm import _breach_set

        for enclosure, slot in _breach_set(coord.profile, THERMAL_ENVELOPE_C):
            assert coord.rpms[enclosure][slot] == 9600.0

    def test_cooling_budget_throttles_whole_enclosure(self):
        # Thermally fine per-drive, but over the enclosure heat budget.
        rack = RackSpec(
            name="budget",
            enclosures=(
                EnclosureSpec(drives=2, airflow_m3_per_s=0.05,
                              cooling_budget_w=20.0),
            ),
        )
        coord = coordinate_rack(rack, FleetDTMPolicy())
        assert coord.events, "budget pressure must throttle"
        touched = {(e.enclosure, e.slot) for e in coord.events}
        assert touched == {(0, 0), (0, 1)}, "budget breaches hit every slot"

    def test_initial_rpms_must_be_ladder_levels(self):
        with pytest.raises(FleetError, match="ladder level"):
            coordinate_rack(
                small_rack(drives=1, enclosures=1),
                FleetDTMPolicy(),
                initial_rpms=[[10000.0]],
            )

    def test_bad_order_rejected(self):
        with pytest.raises(FleetError, match="order"):
            coordinate_rack(small_rack(), FleetDTMPolicy(), order="random")


class TestTiering:
    POLICY = TieringPolicy(extents=96, seed=5, target_utilization=0.6)

    def test_demand_is_conserved(self):
        heats = extent_heats(self.POLICY.extents, self.POLICY.seed)
        plan = plan_rack_tiering(8, FleetDTMPolicy().profile(), self.POLICY)
        assert plan.total_demand == pytest.approx(sum(heats), rel=1e-12)
        assert plan.extents == self.POLICY.extents

    def test_levels_are_ladder_levels_and_save_power(self):
        profile = FleetDTMPolicy().profile()
        plan = plan_rack_tiering(8, profile, self.POLICY)
        assert all(level in profile.rpm_levels for level in plan.drive_levels)
        assert plan.saved_power_w >= 0.0
        assert plan.planned_power_w <= plan.baseline_power_w
        # The skewed heats must actually demote some drive.
        assert min(plan.drive_levels) < profile.top_rpm

    def test_first_fit_respects_capacity(self):
        profile = FleetDTMPolicy().profile()
        plan = plan_rack_tiering(6, profile, self.POLICY)
        heats = extent_heats(self.POLICY.extents, self.POLICY.seed)
        capacity_top = (
            sum(heats) / 6
        ) / self.POLICY.target_utilization
        # Every drive but the overflow-absorbing last one stays within a
        # top-rung drive's capacity, and drive 0 carries the peak demand.
        for demand in plan.drive_demand[:-1]:
            assert demand <= capacity_top + 1e-9
        assert plan.drive_demand[0] == max(plan.drive_demand)
        # Each assigned level is the lowest rung that covers the demand.
        for demand, level in zip(plan.drive_demand, plan.drive_levels):
            fitting = [
                rung for rung in profile.rpm_levels
                if capacity_top * (rung / profile.top_rpm) + 1e-12 >= demand
            ]
            assert level == (fitting[0] if fitting else profile.top_rpm)

    def test_deterministic_across_calls(self):
        a = plan_rack_tiering(8, FleetDTMPolicy().profile(), self.POLICY)
        b = plan_rack_tiering(8, FleetDTMPolicy().profile(), self.POLICY)
        assert a == b

    def test_requires_drpm_ladder(self):
        from repro.dtm.multispeed import MultiSpeedProfile

        ladder = MultiSpeedProfile(
            rpm_levels=(9600.0, 15000.0), serves_at_lower_levels=False
        )
        with pytest.raises(FleetError, match="serves at lower levels"):
            plan_rack_tiering(4, ladder, self.POLICY)


class TestReliability:
    PARAMS = ReliabilityParams(base_afr=0.02, reference_c=40.0)

    def test_doubles_every_15c(self):
        assert drive_afr(55.0, self.PARAMS) == pytest.approx(
            2.0 * drive_afr(40.0, self.PARAMS), rel=1e-12
        )
        assert drive_afr(40.0, self.PARAMS) == self.PARAMS.base_afr

    def test_availability_decreases_with_temperature(self):
        cool = drive_availability(drive_afr(35.0, self.PARAMS), 12.0)
        hot = drive_availability(drive_afr(55.0, self.PARAMS), 12.0)
        assert 0.0 < hot < cool <= 1.0

    def test_fleet_aggregation(self):
        temps = [40.0, 55.0]
        agg = fleet_reliability(temps, self.PARAMS)
        afrs = [drive_afr(t, self.PARAMS) for t in temps]
        assert agg.drive_count == 2
        assert agg.expected_annual_failures == pytest.approx(sum(afrs))
        assert agg.mean_afr == pytest.approx(sum(afrs) / 2)
        assert agg.worst_afr == pytest.approx(max(afrs))

    def test_validation(self):
        with pytest.raises(FleetError):
            ReliabilityParams(base_afr=-0.1)
        with pytest.raises(FleetError):
            fleet_reliability([], self.PARAMS)


class TestSweepKeysAndCodec:
    def task(self, **overrides) -> RackTask:
        base = dict(
            rack=small_rack(),
            envelope_c=THERMAL_ENVELOPE_C,
            rpm_levels=(9600.0, 12000.0, 15000.0),
        )
        base.update(overrides)
        return RackTask(**base)

    def test_immaterial_knobs_fold_out_of_the_key(self):
        base = self.task()
        # Tiering off: seed/utilization are immaterial.
        assert fleet_task_key(base) == fleet_task_key(
            self.task(tiering_seed=99, tiering_target_utilization=0.5)
        )
        # No fault plan: replay knobs are immaterial.
        assert fleet_task_key(base) == fleet_task_key(
            self.task(accesses_per_drive=9, average_seek_ms=1.0)
        )

    def test_material_knobs_change_the_key(self):
        base = self.task()
        assert fleet_task_key(base) != fleet_task_key(
            self.task(tiering_extents=8)
        )
        assert fleet_task_key(base) != fleet_task_key(
            self.task(fault_config=FaultConfig(seed=0, media_rate=0.01))
        )
        assert fleet_task_key(base) != fleet_task_key(
            self.task(envelope_c=50.0)
        )
        assert fleet_task_key(base) != fleet_task_key(
            self.task(rack=small_rack(name="r1"))
        )
        # With faults on, the replay knobs become material.
        faulty = self.task(fault_config=FaultConfig(seed=0, media_rate=0.01))
        assert fleet_task_key(faulty) != fleet_task_key(
            dataclasses.replace(faulty, accesses_per_drive=9)
        )

    def test_payload_round_trip_is_exact(self):
        task = self.task(
            tiering_extents=32,
            fault_config=FaultConfig(seed=2, media_rate=0.05),
        )
        result = _run_rack_task(task)
        restored = rack_result_from_payload(rack_result_to_payload(result))
        assert restored == result
        assert rack_result_to_payload(restored) == rack_result_to_payload(result)

    def test_summary_is_none_without_healthy_results(self):
        assert fleet_summary([None, None]) is None

    def test_build_rack_tasks_defaults_to_fleet_envelope(self):
        fleet = uniform_fleet(racks=2, envelope_c=50.0)
        tasks = build_rack_tasks(fleet)
        assert [t.envelope_c for t in tasks] == [50.0, 50.0]
        assert [t.rack.name for t in tasks] == ["rack00", "rack01"]
        with pytest.raises(FleetError):
            build_rack_tasks(fleet, accesses_per_drive=-1)


class TestFleetFaultIdentity:
    """Regression: drives with identical configs in different fleet slots
    must draw distinct deterministic fault streams.

    Before the fix, DiskFaultInjector subjects came from the disk *name*
    alone; every same-named drive in a fleet shared one draw stream, so
    a 1000-drive fleet faulted in lock-step.  The scope parameter folds
    rack/enclosure/slot identity into the subject.
    """

    CONFIG = FaultConfig(seed=11, media_rate=0.3, servo_rate=0.1)

    def test_scoped_injectors_draw_independent_streams(self):
        from repro.fleet.sweep import _FaultTimebase

        a = self.CONFIG.injector_for("disk", scope="rack00/e0/s0")
        b = self.CONFIG.injector_for("disk", scope="rack00/e0/s1")
        timebase = _FaultTimebase(15000.0, 3.6)
        for _ in range(200):
            a.media_access_fault(timebase)
            b.media_access_fault(timebase)
        assert a.subject != b.subject
        assert a.stats.as_dict() != b.stats.as_dict(), (
            "identical-config drives in different slots must not share "
            "a fault stream"
        )

    def test_unscoped_injector_keeps_single_system_subject(self):
        injector = self.CONFIG.injector_for("disk")
        assert injector.subject == "disk"

    def test_fleet_run_has_slot_distinct_fault_stats(self):
        task = RackTask(
            rack=small_rack(drives=2, enclosures=1),
            envelope_c=THERMAL_ENVELOPE_C,
            rpm_levels=(9600.0, 12000.0, 15000.0),
            accesses_per_drive=200,
            fault_config=self.CONFIG,
        )
        result = _run_rack_task(task)
        stats = [d.faults for d in result.drives]
        assert all(s is not None and s["total_injected"] > 0 for s in stats)
        assert stats[0] != stats[1], (
            "per-drive fault counters must differ across slots"
        )


class TestRunFleetSweep:
    def test_acceptance_shape(self, tmp_path):
        """A small fleet end to end: converged racks, AFR from the
        2^(dT/15) law, store round trip."""
        from repro.store import ResultStore

        fleet = uniform_fleet(racks=2)
        tasks = build_rack_tasks(fleet)
        store = ResultStore(root=tmp_path)
        results, report = run_fleet_sweep(tasks, store=store, backend="serial")
        assert report.ok_count == 2 and report.store_misses == 2
        again, report2 = run_fleet_sweep(tasks, store=store, backend="serial")
        assert report2.store_hits == 2
        assert again == results
        result = results[0]
        expected = sum(
            self_afr(d.internal_air_c) for d in result.drives
        )
        assert result.expected_annual_failures == pytest.approx(expected)


def self_afr(temp_c: float) -> float:
    """The documented AFR law, written out independently of the module."""
    return 0.02 * 2.0 ** ((temp_c - 40.0) / 15.0)
