"""Setuptools shim so editable installs work without the ``wheel`` package
(this environment is offline and has no bdist_wheel support)."""

from setuptools import setup

setup()
