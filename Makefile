# Convenience entry points; everything works with plain pytest too.
PYTHON ?= python
export PYTHONPATH := src:$(PYTHONPATH)

.PHONY: test bench bench-smoke sweep reproduce

test:            ## tier-1 test suite
	$(PYTHON) -m pytest -x -q

bench:           ## full paper benchmark harness (slow)
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-smoke:     ## miniature sweep benchmark + BENCH_PR1.json schema check (<60 s)
	$(PYTHON) -m pytest tests/test_bench_smoke.py -q -m "not slow"

sweep:           ## regenerate BENCH_PR1.json at full scale
	$(PYTHON) benchmarks/bench_sweep.py

reproduce:       ## tests + benchmarks + sweep, tee'd to *_output.txt
	$(PYTHON) reproduce.py
