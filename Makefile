# Convenience entry points; everything works with plain pytest too.
PYTHON ?= python
# tools/ carries thermolint (a dev gate, not a runtime dep); exporting it
# here keeps every target — including coverage over both packages — on one
# consistent path, with src first so the in-repo package always wins.
export PYTHONPATH := src:tools:$(PYTHONPATH)

.PHONY: test bench bench-smoke fastpath-smoke fault-smoke fleet-smoke store-smoke service-smoke regen-golden sweep reproduce lint lint-deep typecheck coverage check

test:            ## tier-1 test suite
	$(PYTHON) -m pytest -x -q

coverage:        ## tier-1 suite under coverage; floor from pyproject.toml
	$(PYTHON) -m pytest -q --cov=repro --cov=thermolint \
		--cov-report=term --cov-report=xml

check:           ## aggregate local gate: tests + lint + typecheck + bench smoke
	$(MAKE) test
	$(MAKE) lint
	$(MAKE) typecheck
	$(MAKE) bench-smoke

lint:            ## thermolint shallow + deep (always) + ruff (when installed)
	$(PYTHON) -m repro lint src/repro --statistics
	$(PYTHON) -m repro lint tests tools --select TL003,TL004,TL005,TL006 --statistics
	$(MAKE) lint-deep
	@if $(PYTHON) -c "import ruff" >/dev/null 2>&1 || command -v ruff >/dev/null 2>&1; then \
		ruff check src tests tools benchmarks; \
	else \
		echo "lint: ruff not installed; pycodestyle/pyflakes/isort groups skipped"; \
	fi

lint-deep:       ## project-wide determinism analysis (TL007-TL013, baseline)
	$(PYTHON) -m repro lint --deep --statistics

typecheck:       ## mypy strict gate (skipped when mypy is not installed)
	@if command -v mypy >/dev/null 2>&1; then \
		mypy --config-file mypy.ini; \
	else \
		echo "typecheck: mypy not installed; skipped (config in mypy.ini)"; \
	fi

bench:           ## full paper benchmark harness (slow)
	PYTHONPATH=src:tools $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-smoke:     ## miniature sweep benchmark + BENCH_PR1.json schema check (<60 s)
	$(PYTHON) -m pytest tests/test_bench_smoke.py -q -m "not slow"

regen-golden:    ## regenerate tests/golden/*.json (refuses on a dirty tree)
	@if ! git diff --quiet || ! git diff --cached --quiet; then \
		echo "regen-golden: working tree is dirty; commit or stash first" >&2; \
		echo "  (goldens must regenerate from a known state so the fixture" >&2; \
		echo "   diff is attributable to exactly one committed model change)" >&2; \
		exit 1; \
	fi
	$(PYTHON) tools/regen_golden.py
	git --no-pager diff --stat -- tests/golden

fastpath-smoke:  ## fast-engine gate: differential suite + quick bench vs BENCH_PR6.json
	$(PYTHON) -m pytest tests/test_fastpath_differential.py \
		tests/test_statistics_percentiles.py -q
	PYTHONPATH=src:tools $(PYTHON) benchmarks/bench_sweep.py --fastpath --quick \
		--output /tmp/bench_fastpath_quick.json
	$(PYTHON) tools/bench_check.py --baseline BENCH_PR6.json \
		--fresh /tmp/bench_fastpath_quick.json

store-smoke:     ## result-store gate: second run of a sweep must be ~all hits
	$(PYTHON) -m pytest tests/test_store_smoke.py -q
	$(PYTHON) -m repro store verify --store-dir "$${REPRO_STORE_DIR:-$$HOME/.cache/repro}"

service-smoke:   ## job-service gate: serve boots, dedups, matches CLI bytes
	$(PYTHON) -m pytest tests/test_service.py tests/test_service_smoke.py -q
	$(PYTHON) tools/service_smoke.py \
		--store-dir "$${REPRO_SERVICE_STORE_DIR:-/tmp/repro-service-smoke}" \
		--out /tmp/repro_service_results.json \
		--metrics-out /tmp/repro_service_metrics.prom

fault-smoke:     ## crash-recovery gate: injected sweep survives a dead worker
	$(PYTHON) -m pytest tests/test_fault_smoke.py -q
	$(PYTHON) -m repro lint src/repro/faults --statistics

fleet-smoke:     ## fleet gate: property+golden suites, two-backend byte identity
	$(PYTHON) -m pytest tests/test_fleet.py tests/test_fleet_properties.py \
		tests/test_golden.py -q
	$(PYTHON) -m repro fleet --racks 2 --enclosures 3 --drives 2 \
		--recirculation 0.3 --tiering-extents 24 --inject-faults \
		--accesses 64 --backend serial \
		--results-out /tmp/repro_fleet_serial.json
	$(PYTHON) -m repro fleet --racks 2 --enclosures 3 --drives 2 \
		--recirculation 0.3 --tiering-extents 24 --inject-faults \
		--accesses 64 --backend process -w 2 \
		--results-out /tmp/repro_fleet_process.json
	cmp /tmp/repro_fleet_serial.json /tmp/repro_fleet_process.json
	$(PYTHON) -m repro lint src/repro/fleet --statistics

sweep:           ## regenerate BENCH_PR1.json at full scale
	PYTHONPATH=src:tools $(PYTHON) benchmarks/bench_sweep.py

reproduce:       ## tests + benchmarks + sweep, tee'd to *_output.txt
	PYTHONPATH=src:tools $(PYTHON) reproduce.py
