# Convenience entry points; everything works with plain pytest too.
PYTHON ?= python
export PYTHONPATH := src:$(PYTHONPATH)

.PHONY: test bench bench-smoke sweep reproduce lint typecheck

test:            ## tier-1 test suite
	$(PYTHON) -m pytest -x -q

lint:            ## thermolint (always) + ruff (when installed)
	$(PYTHON) -m repro lint src/repro --statistics
	@if $(PYTHON) -c "import ruff" >/dev/null 2>&1 || command -v ruff >/dev/null 2>&1; then \
		ruff check src tests tools benchmarks; \
	else \
		echo "lint: ruff not installed; pycodestyle/pyflakes/isort groups skipped"; \
	fi

typecheck:       ## mypy strict gate (skipped when mypy is not installed)
	@if command -v mypy >/dev/null 2>&1; then \
		mypy --config-file mypy.ini; \
	else \
		echo "typecheck: mypy not installed; skipped (config in mypy.ini)"; \
	fi

bench:           ## full paper benchmark harness (slow)
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-smoke:     ## miniature sweep benchmark + BENCH_PR1.json schema check (<60 s)
	$(PYTHON) -m pytest tests/test_bench_smoke.py -q -m "not slow"

sweep:           ## regenerate BENCH_PR1.json at full scale
	$(PYTHON) benchmarks/bench_sweep.py

reproduce:       ## tests + benchmarks + sweep, tee'd to *_output.txt
	$(PYTHON) reproduce.py
