#!/usr/bin/env python3
"""Trace-driven storage simulation: why faster disks help real servers.

Reproduces a small version of the paper's Figure 4 study: replays a
synthetic stand-in for one of the five commercial traces against its
array at increasing spindle speeds and shows the response-time CDF
shifting left.

Run:  python examples/workload_simulation.py [workload] [requests]
      workload in {openmail, oltp, search_engine, tpcc, tpch}
"""

import sys

from repro.reporting import format_table
from repro.simulation.statistics import PAPER_CDF_BINS_MS
from repro.workloads import workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "search_engine"
    requests = int(sys.argv[2]) if len(sys.argv) > 2 else 6000

    spec = workload(name)
    print(f"=== {spec.display_name} ({spec.year}) ===")
    print(
        f"{spec.disk_count} disks x {spec.disk_capacity_gb} GB, "
        f"base {spec.base_rpm:.0f} RPM, "
        f"{'RAID-5' if spec.raid5 else 'independent spindles'}\n"
    )

    trace = spec.generate(num_requests=requests, seed=1)
    print(
        f"trace: {len(trace)} requests, {trace.arrival_rate_per_s():.0f} req/s, "
        f"{trace.write_fraction() * 100:.0f}% writes, "
        f"mean size {trace.mean_request_sectors() * 0.5:.1f} KB\n"
    )

    headers = ["RPM", "mean ms", "median ms", "p95 ms", "util", "cache hit"]
    rows = []
    cdfs = {}
    for rpm in spec.rpm_sweep():
        report = spec.build_system(rpm).run_trace(trace)
        stats = report.stats
        rows.append(
            [
                f"{rpm:.0f}",
                f"{stats.mean_ms():.2f}",
                f"{stats.median_ms():.2f}",
                f"{stats.percentile_ms(95):.2f}",
                f"{max(report.disk_utilizations):.2f}",
                f"{report.cache_hit_ratio:.2f}",
            ]
        )
        cdfs[rpm] = dict(stats.cdf())
    print(format_table(headers, rows))

    base_mean = float(rows[0][1])
    for row in rows[1:]:
        gain = (base_mean - float(row[1])) / base_mean * 100
        print(f"  +{float(row[0]) - spec.base_rpm:.0f} RPM: {gain:.1f}% faster mean response")

    print("\nResponse-time CDF (fraction of requests completed by each bin):")
    cdf_rows = []
    for edge in PAPER_CDF_BINS_MS:
        cdf_rows.append(
            [f"<= {edge:g} ms"] + [f"{cdfs[rpm][edge]:.3f}" for rpm in spec.rpm_sweep()]
        )
    print(format_table(["bin"] + [f"{rpm:.0f}" for rpm in spec.rpm_sweep()], cdf_rows))


if __name__ == "__main__":
    main()
