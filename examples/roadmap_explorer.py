#!/usr/bin/env python3
"""Explore the thermally constrained disk-drive roadmap (paper section 4).

Regenerates the 1-platter roadmap of Figure 2, shows where each platter
size falls off the 40% IDR growth curve, runs the paper's year-by-year
design-selection algorithm, and quantifies how much better cooling buys.

Run:  python examples/roadmap_explorer.py
"""

from repro.reporting import ascii_plot, format_table
from repro.scaling import (
    PAPER_TRENDS,
    cooling_study,
    idr_series,
    plan_roadmap,
    roadmap_extension_years,
    thermal_roadmap,
)


def show_roadmap() -> None:
    points = thermal_roadmap(platter_count=1)
    years = sorted({p.year for p in points})
    print("=== 1-platter IDR roadmap (Figure 2a) ===\n")
    series = [
        (f'{d}"', [y for y, _ in idr_series(points, d)], [v for _, v in idr_series(points, d)])
        for d in (2.6, 2.1, 1.6)
    ]
    series.append(
        ("40% CGR", years, [PAPER_TRENDS.target_idr_mb_s(y) for y in years])
    )
    print(ascii_plot(series, width=66, height=16, logy=True, title="IDR (MB/s), log scale"))
    print()

    rows = []
    for year in years:
        row = [year, f"{PAPER_TRENDS.target_idr_mb_s(year):.0f}"]
        for diameter in (2.6, 2.1, 1.6):
            point = next(p for p in points if p.year == year and p.diameter_in == diameter)
            marker = "*" if point.meets_target else " "
            row.append(f"{point.max_idr_mb_s:.0f}{marker}")
        rows.append(row)
    print(format_table(["year", "target", '2.6"', '2.1"', '1.6"'], rows))
    print("(* = meets the 40% growth target)\n")


def show_design_plan() -> None:
    print("=== Year-by-year design selection (the 4-step algorithm) ===\n")
    rows = []
    for design in plan_roadmap():
        point = design.point
        rows.append(
            [
                design.year,
                f'{point.diameter_in}"',
                point.platter_count,
                f"{point.max_rpm:.0f}",
                f"{design.achieved_idr_mb_s:.0f}",
                f"{point.capacity_gb:.1f}",
                design.met_target,
            ]
        )
    print(
        format_table(
            ["year", "media", "platters", "RPM", "IDR MB/s", "cap GB", "on target"],
            rows,
        )
    )
    print()


def show_cooling() -> None:
    print("=== Cooling sensitivity (Figure 3) ===\n")
    scenarios = cooling_study()
    for diameter in (2.6, 2.1, 1.6):
        extensions = roadmap_extension_years(scenarios, diameter)
        last = {
            delta: scenario.last_year_meeting_target(diameter)
            for delta, scenario in scenarios.items()
        }
        print(
            f'{diameter}" : last on-target year '
            f"baseline={last[0.0]}  -5C={last[5.0]} (+{extensions[5.0]}y)  "
            f"-10C={last[10.0]} (+{extensions[10.0]}y)"
        )
    print("\nEven aggressive cooling cannot carry the terabit/ECC transition"
          " of 2010 — the shortfall remains.\n")


def main() -> None:
    show_roadmap()
    show_design_plan()
    show_cooling()


if __name__ == "__main__":
    main()
