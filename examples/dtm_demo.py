#!/usr/bin/env python3
"""Dynamic Thermal Management demo (paper section 5).

Three parts:

1. Thermal slack (5.2): how much faster each platter size may spin when
   the VCM is idle.
2. Dynamic throttling (5.3): the cool/heat cycles of a drive built for
   average-case temperatures, and the throttling ratio vs the cooling
   granularity (Figure 7).
3. A reactive DTM controller in the simulation loop: an average-case
   26K RPM drive serving a search-engine workload, gated whenever the
   modeled air temperature nears the envelope.

Run:  python examples/dtm_demo.py
"""

from repro.constants import THERMAL_ENVELOPE_C
from repro.dtm import (
    DTMPolicy,
    ThermallyManagedSystem,
    paper_scenario_vcm_and_rpm,
    paper_scenario_vcm_only,
    slack_by_platter_size,
    throttling_ratio_curve,
)
from repro.reporting import format_table
from repro.thermal import DriveThermalModel
from repro.workloads import workload


def show_slack() -> None:
    print("=== Thermal slack by platter size (Figure 5a) ===\n")
    rows = []
    for point in slack_by_platter_size():
        rows.append(
            [
                f'{point.diameter_in}"',
                f"{point.vcm_power_w:.2f}",
                f"{point.envelope_rpm:.0f}",
                f"{point.vcm_off_rpm:.0f}",
                f"{point.rpm_gain_fraction * 100:.1f}%",
            ]
        )
    print(format_table(["media", "VCM W", "envelope RPM", "VCM-off RPM", "gain"], rows))
    print("\nThe slack shrinks with the platter because VCM power falls"
          " steeply with size.\n")


def show_throttling() -> None:
    print("=== Dynamic throttling ratios (Figure 7) ===\n")
    t_cools = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0)
    for label, scenario in (
        ("(a) VCM-only throttling of a 24,534 RPM design", paper_scenario_vcm_only()),
        (
            "(b) VCM + drop to 22,001 RPM for a 37,001 RPM design",
            paper_scenario_vcm_and_rpm(),
        ),
    ):
        print(label)
        print(
            f"  steady air: {scenario.heating_steady_air_c():.2f} C serving, "
            f"{scenario.cooling_steady_air_c():.2f} C throttled "
            f"(envelope {THERMAL_ENVELOPE_C} C)"
        )
        rows = []
        for cycle in throttling_ratio_curve(scenario, t_cools, dt_s=0.02):
            rows.append(
                [
                    f"{cycle.t_cool_s:.2f}",
                    f"{cycle.t_heat_s:.2f}",
                    f"{cycle.ratio:.2f}",
                    f"{cycle.utilization * 100:.0f}%",
                ]
            )
        print(format_table(["t_cool s", "t_heat s", "ratio", "utilization"], rows, indent="  "))
        print()
    print("Finer-grained throttling sustains higher utilization — the"
          " paper's case for sub-second DTM control.\n")


def show_controller() -> None:
    print("=== Reactive DTM controller in the simulation loop ===\n")
    spec = workload("search_engine")
    rpm = 24500.0
    trace = spec.generate(num_requests=4000, seed=11)

    unmanaged = spec.build_system(rpm=rpm).run_trace(trace)

    system = spec.build_system(rpm=rpm)
    thermal = DriveThermalModel(platter_diameter_in=2.6, rpm=rpm, vcm_active=False)
    thermal.settle()
    thermal.set_operating_state(vcm_active=True)
    managed = ThermallyManagedSystem(
        system,
        thermal,
        DTMPolicy(trigger_margin_c=0.05, resume_margin_c=0.2, check_interval_ms=50.0),
    )
    report = managed.run_trace(trace)

    print(f"average-case design: 2.6\" media at {rpm:.0f} RPM "
          f"(envelope design would cap at ~15,000 RPM; gating alone cannot "
          f"manage beyond the ~25.3K VCM-off limit)")
    print(f"unmanaged mean response : {unmanaged.mean_response_ms():.2f} ms")
    print(f"managed mean response   : {report.stats.mean_ms():.2f} ms")
    print(f"hottest modeled air     : {report.max_air_c:.2f} C "
          f"(envelope {THERMAL_ENVELOPE_C} C)")
    print(f"time throttled          : {report.throttled_fraction * 100:.1f}% "
          f"({report.throttle_events} engagements)")
    print("\nThe workload's real VCM duty cycle leaves enough slack that the"
          "\naverage-case design runs far faster than the worst-case envelope"
          "\ndesign would allow, with DTM as the safety net.")


def main() -> None:
    show_slack()
    show_throttling()
    show_controller()


if __name__ == "__main__":
    main()
