#!/usr/bin/env python3
"""Array-level thermal coupling and the reliability value of DTM.

The paper's workload study runs 4-24 disk arrays; in a real chassis those
drives share cooling air.  This example shows (1) how serially heated
airflow tightens the thermal budget of downstream slots, and (2) the
paper's closing argument (section 6): even ignoring performance, DTM that
lowers average temperature buys reliability directly — a 15 C rise
doubles the failure rate.

Run:  python examples/array_thermal.py
"""

from repro.constants import AMBIENT_TEMPERATURE_C, THERMAL_ENVELOPE_C
from repro.reporting import format_table
from repro.thermal import (
    array_envelope_rpm,
    dtm_reliability_gain,
    failure_acceleration,
    fleet_failure_rate,
    max_rpm_within_envelope,
    serial_array_profile,
)


def show_array() -> None:
    print("=== Serial airflow through an 8-slot array (12K RPM drives) ===\n")
    profile = serial_array_profile(8, 12000, airflow_m3_per_s=0.05)
    rows = [
        [
            position.index,
            f"{position.local_ambient_c:.2f}",
            f"{position.internal_air_c:.2f}",
            "yes" if position.within_envelope else "NO",
            f"{position.max_rpm:.0f}",
        ]
        for position in profile
    ]
    print(
        format_table(
            ["slot", "ambient C", "internal C", "in envelope", "slot max RPM"],
            rows,
        )
    )
    single = max_rpm_within_envelope(2.6)
    print(f"\nsingle drive in open air: max {single:.0f} RPM inside the envelope")
    for depth in (2, 4, 8):
        common = array_envelope_rpm(depth, airflow_m3_per_s=0.2)
        print(
            f"{depth}-deep chain (0.2 m^3/s airflow): common limit "
            f"{common:.0f} RPM"
        )
    print(
        "\nDownstream slots see pre-heated air, so the whole array must"
        "\nslow down — the envelope problem compounds at array scale.\n"
    )


def show_reliability() -> None:
    print("=== DTM as a reliability mechanism (paper section 6) ===\n")
    envelope_accel = failure_acceleration(THERMAL_ENVELOPE_C)
    print(
        f"worst-case design sits at the envelope ({THERMAL_ENVELOPE_C} C): "
        f"{envelope_accel:.2f}x the failure rate at "
        f"{AMBIENT_TEMPERATURE_C:.0f} C ambient"
    )
    rows = []
    for duty in (1.0, 0.6, 0.3, 0.1):
        gain = dtm_reliability_gain(duty=duty)
        rows.append(
            [
                f"{duty:.1f}",
                f"{gain.cool_c:.2f}",
                f"{gain.failure_ratio:.2f}x",
                f"{gain.mtbf_gain_fraction * 100:.0f}%",
            ]
        )
    print(
        format_table(
            ["VCM duty", "avg air C", "failure-rate gain", "MTBF gain"], rows
        )
    )
    envelope_fleet = fleet_failure_rate([THERMAL_ENVELOPE_C] * 8)
    managed_fleet = fleet_failure_rate(
        [dtm_reliability_gain(duty=0.3).cool_c] * 8
    )
    print(
        f"\n8-drive fleet, first-failure rate: {envelope_fleet:.1f} (worst-case)"
        f" vs {managed_fleet:.1f} (DTM at 30% duty) — "
        f"{envelope_fleet / managed_fleet:.2f}x fewer early failures."
    )


def main() -> None:
    show_array()
    show_reliability()


if __name__ == "__main__":
    main()
