#!/usr/bin/env python3
"""Quickstart: model one disk drive end to end.

Builds the integrated capacity / performance / thermal model for a
2002-class server drive (2.6-inch media at 15K RPM, the Cheetah 15K.3
class the paper dissected), then asks the roadmap's central question:
how fast could this design spin while staying inside the 45.22 C
thermal envelope?

Run:  python examples/quickstart.py
"""

from repro.capacity import CapacityModel, RecordingTechnology
from repro.constants import AMBIENT_TEMPERATURE_C, THERMAL_ENVELOPE_C
from repro.geometry import Platter
from repro.performance import (
    average_rotational_latency_ms,
    seek_parameters_for_platter,
    surface_idr_mb_per_s,
)
from repro.thermal import (
    DriveThermalModel,
    max_rpm_within_envelope,
    viscous_power_w,
)


def main() -> None:
    # --- describe the drive -------------------------------------------------
    platter = Platter(diameter_in=2.6)
    technology = RecordingTechnology.from_kilo_units(kbpi=533, ktpi=64)
    rpm = 15000.0

    capacity = CapacityModel(
        platter=platter, technology=technology, platter_count=1, zone_count=30
    )
    surface = capacity.surface

    print("=== Drive: 2.6-inch x1, 533 KBPI / 64 KTPI, 15,000 RPM ===\n")

    # --- capacity (paper section 3.1) ----------------------------------------
    breakdown = capacity.breakdown()
    print(f"cylinders per surface : {surface.cylinders}")
    print(f"zone-0 sectors/track  : {surface.sectors_per_track_zone0}")
    print(f"raw media capacity    : {breakdown.raw_gb:8.2f} GB")
    print(f"  lost to ZBR         : {breakdown.zbr_loss_gb:8.2f} GB")
    print(f"  lost to servo+ECC   : {breakdown.overhead_loss_gb:8.2f} GB")
    print(f"usable capacity       : {capacity.usable_capacity_gb():8.2f} GB\n")

    # --- performance (section 3.2) --------------------------------------------
    seek = seek_parameters_for_platter(platter.diameter_in)
    print(f"max internal data rate: {surface_idr_mb_per_s(surface, rpm):8.2f} MB/s")
    print(f"average seek          : {seek.average_ms:8.2f} ms")
    print(f"rotational latency    : {average_rotational_latency_ms(rpm):8.2f} ms\n")

    # --- thermal (section 3.3) --------------------------------------------------
    model = DriveThermalModel(
        platter_diameter_in=platter.diameter_in, platter_count=1, rpm=rpm
    )
    steady = model.steady_state()
    print(f"windage power         : {viscous_power_w(rpm, platter.diameter_in):8.2f} W")
    print(f"VCM power             : {model.vcm_power_w():8.2f} W")
    print(f"steady internal air   : {steady['air']:8.2f} C "
          f"(envelope {THERMAL_ENVELOPE_C} C, ambient {AMBIENT_TEMPERATURE_C} C)")
    print(f"  stack / base / vcm  : {steady['stack']:.2f} / {steady['base']:.2f} / "
          f"{steady['vcm']:.2f} C\n")

    # --- how far can this design go? ---------------------------------------------
    limit = max_rpm_within_envelope(platter.diameter_in)
    slack_limit = max_rpm_within_envelope(platter.diameter_in, vcm_active=False)
    print(f"max RPM inside envelope (VCM always on) : {limit:8.0f}")
    print(f"max RPM exploiting idle slack (VCM off) : {slack_limit:8.0f}")
    print(f"IDR at envelope limit                   : "
          f"{surface_idr_mb_per_s(surface, limit):8.2f} MB/s")


if __name__ == "__main__":
    main()
