"""Figure 4: response-time CDFs and means for the five server workloads as
spindle speed rises in +5,000 RPM steps.

The paper's absolute means (its traces are proprietary; ours are synthetic
stand-ins): Openmail {54.54, 25.93, 18.61, 15.35}, OLTP {5.66, 4.48, 3.91,
3.57}, Search-Engine {16.22, 10.72, 8.63, 7.55}, TPC-C {6.50, 3.23, 2.46,
2.06}, TPC-H {4.91, 3.25, 2.64, 2.32} ms.  The reproduced *shape*: means
fall monotonically with RPM, +5K buys ~20-50%, +10K lands in the paper's
30-60% band, and the whole CDF shifts left.
"""

import pytest
from conftest import run_once

from repro.reporting import format_table
from repro.simulation.statistics import PAPER_CDF_BINS_MS
from repro.workloads import workload

PAPER_MEANS = {
    "openmail": (54.54, 25.93, 18.61, 15.35),
    "oltp": (5.66, 4.48, 3.91, 3.57),
    "search_engine": (16.22, 10.72, 8.63, 7.55),
    "tpcc": (6.50, 3.23, 2.46, 2.06),
    "tpch": (4.91, 3.25, 2.64, 2.32),
}

REQUESTS = 6000


@pytest.mark.parametrize("name", sorted(PAPER_MEANS))
def test_figure4(benchmark, emit, name):
    spec = workload(name)

    def run():
        trace = spec.generate(num_requests=REQUESTS, seed=1)
        reports = []
        for rpm in spec.rpm_sweep():
            reports.append(spec.build_system(rpm).run_trace(trace))
        return reports

    reports = run_once(benchmark, run)
    means = [r.mean_response_ms() for r in reports]
    paper = PAPER_MEANS[name]

    rows = []
    for rpm, mean, paper_mean, report in zip(
        spec.rpm_sweep(), means, paper, reports
    ):
        rows.append(
            [
                f"{rpm:.0f}",
                f"{mean:.2f}",
                f"{paper_mean:.2f}",
                f"{(means[0] - mean) / means[0] * 100:.1f}%",
                f"{(paper[0] - paper_mean) / paper[0] * 100:.1f}%",
                f"{max(report.disk_utilizations):.2f}",
            ]
        )
    table = format_table(
        ["RPM", "mean ours", "mean paper", "gain ours", "gain paper", "util"],
        rows,
    )

    cdf_rows = []
    cdfs = [dict(r.stats.cdf()) for r in reports]
    for edge in PAPER_CDF_BINS_MS:
        cdf_rows.append(
            [f"<= {edge:g}"] + [f"{cdf[edge]:.3f}" for cdf in cdfs]
        )
    cdf_table = format_table(
        ["bin ms"] + [f"{rpm:.0f}" for rpm in spec.rpm_sweep()], cdf_rows
    )
    emit(f"figure4_{name}", f"{spec.display_name}\n{table}\n\nCDF:\n{cdf_table}")

    # Shape assertions.
    assert means[0] > means[1] > means[2] > means[3]
    plus5_gain = (means[0] - means[1]) / means[0]
    plus10_gain = (means[0] - means[2]) / means[0]
    assert 0.15 <= plus5_gain <= 0.60
    assert 0.25 <= plus10_gain <= 0.70  # paper headline: 30-60% for +10K
    # Baseline mean within ~2x of the paper (synthetic traces).
    assert 0.4 <= means[0] / paper[0] <= 2.2
    # CDFs shift left monotonically.
    for earlier, later in zip(cdfs, cdfs[1:]):
        for edge in PAPER_CDF_BINS_MS:
            assert later[edge] >= earlier[edge] - 0.02
