"""Figure 6: the two dynamic-throttling scenarios as temperature traces.

(a) a design whose VCM-off temperature is inside the envelope: throttling
just gates requests; (b) a more aggressive design that must also drop to a
lower RPM while cooling.  Both produce the saw-tooth around the envelope
the paper sketches.
"""

from conftest import run_once

from repro.constants import THERMAL_ENVELOPE_C
from repro.dtm import (
    paper_scenario_vcm_and_rpm,
    paper_scenario_vcm_only,
    throttling_trace,
)
from repro.reporting import ascii_plot, format_table


def test_figure6(benchmark, emit):
    def run():
        return {
            "a_vcm_only": throttling_trace(
                paper_scenario_vcm_only(), t_cool_s=2.0, cycles=4, dt_s=0.02
            ),
            "b_vcm_and_rpm": throttling_trace(
                paper_scenario_vcm_and_rpm(), t_cool_s=2.0, cycles=4, dt_s=0.02
            ),
        }

    traces = run_once(benchmark, run)

    sections = []
    for label, trace in traces.items():
        plot = ascii_plot(
            [("air", trace.times_s, trace.air_c)],
            width=64,
            height=10,
            title=f"scenario {label}: air temperature (C) vs time (s), "
            f"envelope {THERMAL_ENVELOPE_C}",
        )
        throttled_s = sum(
            t1 - t0
            for t0, t1, flag in zip(trace.times_s, trace.times_s[1:], trace.throttled[1:])
            if flag
        )
        stats = format_table(
            ["metric", "value"],
            [
                ["peak air C", f"{max(trace.air_c):.3f}"],
                ["min air C", f"{min(trace.air_c):.3f}"],
                ["throttled s", f"{throttled_s:.1f}"],
                ["total s", f"{trace.times_s[-1]:.1f}"],
            ],
        )
        sections.append(plot + "\n" + stats)
    emit("figure6_scenarios", "\n\n".join(sections))

    for label, trace in traces.items():
        # Saw-tooth around the envelope: peaks at it, dips below it.
        assert max(trace.air_c) <= THERMAL_ENVELOPE_C + 0.1
        assert min(trace.air_c) < THERMAL_ENVELOPE_C - 0.01
        assert any(trace.throttled) and not all(trace.throttled)
    # Scenario (b) cools deeper (RPM drop removes windage too).
    assert min(traces["b_vcm_and_rpm"].air_c) < min(traces["a_vcm_only"].air_c)
