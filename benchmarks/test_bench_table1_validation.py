"""Table 1: capacity and IDR model validation against 13 real drives.

Regenerates the paper's validation table — datasheet values, the paper's
model outputs, and this library's model outputs — and checks the error
bands the paper claims (capacity within ~12%, IDR within ~15% for most
drives).
"""

from conftest import run_once

from repro.drives import PAPER_MODEL_PREDICTIONS, TABLE1_DRIVES
from repro.reporting import format_table


def _build_rows():
    rows = []
    for drive in TABLE1_DRIVES:
        paper_cap, paper_idr = PAPER_MODEL_PREDICTIONS[drive.model]
        rows.append(
            [
                drive.model,
                drive.year,
                f"{drive.rpm:.0f}",
                f"{drive.datasheet_capacity_gb:.0f}",
                f"{drive.modeled_capacity_paper_gb():.1f}",
                f"{paper_cap:.1f}",
                f"{drive.datasheet_idr_mb_per_s:.1f}",
                f"{drive.modeled_idr_mb_per_s():.1f}",
                f"{paper_idr:.1f}",
            ]
        )
    return rows


def test_table1(benchmark, emit):
    rows = run_once(benchmark, _build_rows)
    table = format_table(
        [
            "model",
            "year",
            "RPM",
            "cap ds",
            "cap ours",
            "cap paper",
            "IDR ds",
            "IDR ours",
            "IDR paper",
        ],
        rows,
    )
    emit("table1_validation", table)

    # Shape checks: our model tracks the paper's model tightly.
    for drive in TABLE1_DRIVES:
        paper_cap, paper_idr = PAPER_MODEL_PREDICTIONS[drive.model]
        assert abs(drive.modeled_capacity_paper_gb() - paper_cap) / paper_cap < 0.03
        if drive.model != "IBM Ultrastar 36Z15":  # known inconsistent row
            assert abs(drive.modeled_idr_mb_per_s() - paper_idr) / paper_idr < 0.03
