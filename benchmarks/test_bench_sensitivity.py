"""Robustness benchmark: do the paper's headline results survive
perturbations of the calibrated constants and windage exponents?"""

from conftest import run_once

from repro.reporting import format_table
from repro.thermal import (
    calibration_sensitivity,
    exponent_sensitivity,
    headline_robust,
)


def test_calibration_sensitivity(benchmark, emit):
    points = run_once(
        benchmark, lambda: calibration_sensitivity(scales=(0.8, 0.9, 1.0, 1.1, 1.2))
    )
    rows = [
        [
            p.parameter,
            f"{p.scale:.1f}",
            f"{p.fitted_spm_w:.2f}",
            f"{p.envelope_rpm_16:.0f}",
            str(p.shortfall_year),
        ]
        for p in points
    ]
    from repro.thermal import fixed_loss_margin_w

    margin = fixed_loss_margin_w()
    emit(
        "sensitivity_calibration",
        format_table(
            ["parameter", "scale", "refit SPM W", '1.6" envelope RPM', "shortfall year"],
            rows,
        )
        + "\n(each perturbation is re-fit to the Cheetah anchor; the roadmap"
        + "\nfalls off the 40% curve under every one of them)"
        + f"\nfixed-loss margin at the envelope design: {margin:.2f} W",
    )
    assert headline_robust(points)
    # The extrapolated 1.6" envelope RPM stays in a moderate band.
    rpms = [p.envelope_rpm_16 for p in points]
    assert max(rpms) / min(rpms) < 1.6
    # Shortfall year moves by at most ~3 years.
    years = [p.shortfall_year for p in points]
    assert max(years) - min(years) <= 3


def test_exponent_sensitivity(benchmark, emit):
    results = run_once(benchmark, exponent_sensitivity)
    rows = [
        [r["rpm_exponent"], r["diameter_exponent"], f"{r['envelope_rpm_26']:.0f}"]
        for r in results
    ]
    emit(
        "sensitivity_exponents",
        format_table(["RPM exp", "diameter exp", '2.6" envelope RPM'], rows)
        + "\n(the anchor at 0.91 W / 15,098 RPM / 2.6\" pins the curve, so the"
        "\nenvelope RPM for the 2.6\" design barely moves)",
    )
    rpms = [r["envelope_rpm_26"] for r in results]
    # Anchor invariance: all within a few percent of each other.
    assert max(rpms) / min(rpms) < 1.05
