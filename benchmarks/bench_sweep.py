#!/usr/bin/env python3
"""Sweep-throughput benchmark: the PR1 performance trajectory anchor.

Times the two sweeps the ROADMAP cares about — the Figure 2 thermal
roadmap (3 platter counts x 11 years) and a Figure 4 trace replay ladder —
through the serial path and the parallel sweep runner, plus the
response-time statistics hot path (cached sorted view vs the seed's
re-sort-per-query behaviour).  Results land in a machine-readable
``BENCH_PR1.json`` (schema documented in DESIGN.md) so later PRs can track
the perf trajectory.

Usage:
    PYTHONPATH=src python benchmarks/bench_sweep.py [--quick]
        [--output BENCH_PR1.json] [--workers N]

The parallel-speedup figures are bounded by the host's core count; the
acceptance criterion (>= 3x on the Figure 2 sweep) applies on hosts with
>= 4 cores, and the JSON records ``host.cpu_count`` so that conditionality
is visible in the artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import List, Optional

ROOT = Path(__file__).resolve().parents[1]
if str(ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(ROOT / "src"))

SCHEMA = "repro.bench_sweep/1"

#: Schema of the PR6 fast-engine artifact (``BENCH_PR6.json``).
FASTPATH_SCHEMA = "repro.bench_fastpath/1"


def _time(func):
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start


def bench_figure2(workers: Optional[int], quick: bool) -> dict:
    """Serial vs parallel Figure 2 roadmap sweep.

    One pass over the paper's grid is only tens of milliseconds, so a
    single-shot parallel timing would measure process-pool startup, not
    sweep throughput.  The task list therefore repeats the 3-platter-count
    sweep ``repeats`` times (every repetition does full work — no caching
    crosses task boundaries) and both paths run the identical list.
    """
    from repro.simulation.sweep import (
        ROADMAP_YEARS,
        RoadmapTask,
        _run_roadmap_task,
        resolve_workers,
        run_sweep,
    )

    platter_counts = (1, 2, 4)
    years = ROADMAP_YEARS[:3] if quick else ROADMAP_YEARS
    repeats = 2 if quick else 10
    tasks = [
        RoadmapTask(platter_count=count, years=years) for count in platter_counts
    ] * repeats
    serial, serial_s = _time(lambda: run_sweep(tasks, _run_roadmap_task, workers=1))
    resolved = resolve_workers(workers, len(tasks))
    parallel, parallel_s = _time(
        lambda: run_sweep(tasks, _run_roadmap_task, workers=resolved)
    )
    return {
        "platter_counts": list(platter_counts),
        "years": len(years),
        "repeats": repeats,
        "points": sum(len(points) for points in serial[: len(platter_counts)]),
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "workers": resolved,
        "speedup": serial_s / parallel_s if parallel_s > 0 else None,
        "parallel_identical": serial == parallel,
    }


def bench_figure4(workers: Optional[int], quick: bool) -> dict:
    """Serial vs parallel replay of one Figure 4 RPM ladder."""
    from repro.simulation.sweep import resolve_workers, sweep_workloads

    name = "tpcc"
    requests = 600 if quick else 6000
    serial, serial_s = _time(
        lambda: sweep_workloads([name], requests=requests, workers=1)
    )
    resolved = resolve_workers(workers, len(serial))
    parallel, parallel_s = _time(
        lambda: sweep_workloads([name], requests=requests, workers=resolved)
    )
    return {
        "workload": name,
        "requests": requests,
        "rpm_steps": len(serial),
        "mean_ms": [round(r.mean_ms, 6) for r in serial],
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "workers": resolved,
        "speedup": serial_s / parallel_s if parallel_s > 0 else None,
        "parallel_identical": serial == parallel,
    }


def bench_stats_hot_path(quick: bool) -> dict:
    """Cached sorted view vs the seed's re-sort-per-query statistics.

    Emulates the per-request reporting loop: one percentile query every
    ``stride`` samples added, over ``n`` samples total.  The "resort"
    branch is the seed implementation verbatim (sort all samples on every
    query); the "cached" branch is today's ResponseTimeStats.
    """
    import math
    import random

    from repro.simulation.statistics import ResponseTimeStats

    n = 1000 if quick else 4000
    stride = 10
    rng = random.Random(7)
    samples = [rng.expovariate(0.1) for _ in range(n)]

    def seed_percentile(data: List[float], q: float) -> float:
        data = sorted(data)  # the seed re-sorted on every call
        rank = q / 100 * (len(data) - 1)
        lo, hi = math.floor(rank), math.ceil(rank)
        if lo == hi:
            return data[lo]
        frac = rank - lo
        return data[lo] * (1 - frac) + data[hi] * frac

    def run_resort():
        acc: List[float] = []
        out = 0.0
        for i, s in enumerate(samples):
            acc.append(s)
            if (i + 1) % stride == 0:
                out = seed_percentile(acc, 95)
        return out

    def run_cached():
        stats = ResponseTimeStats()
        out = 0.0
        for i, s in enumerate(samples):
            stats.add(s)
            if (i + 1) % stride == 0:
                out = stats.percentile_ms(95)
        return out

    resort_result, resort_s = _time(run_resort)
    cached_result, cached_s = _time(run_cached)
    return {
        "samples": n,
        "queries": n // stride,
        "resort_s": resort_s,
        "cached_s": cached_s,
        "speedup": resort_s / cached_s if cached_s > 0 else None,
        "identical": abs(resort_result - cached_result) < 1e-12,
    }


def bench_fastpath_analytic(quick: bool) -> dict:
    """Exact vs analytic engine on a qualifying 99-point roadmap ladder.

    Single-core on both sides: the claim is about the *loop itself*, not
    parallelism.  The exact side is sampled (``exact_points`` rungs) and
    extrapolated to the full ladder — running all 99 exact points would
    just multiply a measured constant — while the analytic engine runs
    the whole ladder for real.  Accuracy is checked on the sampled rungs
    against the documented tolerance.
    """
    from repro.simulation.fastpath import ANALYTIC_MEAN_RTOL
    from repro.simulation.sweep import sweep_workloads

    name = "oltp"
    requests = 600 if quick else 4000
    points = 12 if quick else 99
    exact_points = 4 if quick else 8
    rpms = [6000.0 + 200.0 * i for i in range(points)]
    exact, exact_s = _time(
        lambda: sweep_workloads([name], rpms=rpms[:exact_points],
                                requests=requests, workers=0)
    )
    analytic, analytic_s = _time(
        lambda: sweep_workloads([name], rpms=rpms, requests=requests,
                                workers=0, engine="analytic")
    )
    exact_full_s = exact_s * (points / exact_points)
    rel_errs = [
        abs(a.mean_ms - e.mean_ms) / e.mean_ms
        for e, a in zip(exact, analytic[:exact_points])
    ]
    return {
        "workload": name,
        "requests": requests,
        "rpm_points": points,
        "exact_points_measured": exact_points,
        "exact_serial_s": exact_s,
        "exact_serial_extrapolated_s": exact_full_s,
        "analytic_serial_s": analytic_s,
        "speedup": exact_full_s / analytic_s if analytic_s > 0 else None,
        "engines": sorted({r.engine for r in analytic}),
        "mean_rel_err_max": max(rel_errs),
        "mean_rtol": ANALYTIC_MEAN_RTOL,
        "within_tolerance": max(rel_errs) <= ANALYTIC_MEAN_RTOL,
    }


def bench_fastpath_vectorized(quick: bool) -> dict:
    """Exact vs vectorized engine on one RPM ladder, byte-identity gated."""
    import dataclasses

    from repro.simulation.sweep import results_json_bytes, sweep_workloads

    name = "oltp"
    requests = 600 if quick else 4000
    rpms = [9000.0, 12000.0, 15000.0, 18000.0, 21000.0, 24000.0]
    exact, exact_s = _time(
        lambda: sweep_workloads([name], rpms=rpms, requests=requests, workers=0)
    )
    fast, fast_s = _time(
        lambda: sweep_workloads([name], rpms=rpms, requests=requests,
                                workers=0, engine="vectorized")
    )
    normalized = [dataclasses.replace(r, engine="exact") for r in fast]
    return {
        "workload": name,
        "requests": requests,
        "rpm_points": len(rpms),
        "exact_serial_s": exact_s,
        "vectorized_serial_s": fast_s,
        "speedup": exact_s / fast_s if fast_s > 0 else None,
        "engines": sorted({r.engine for r in fast}),
        "byte_identical": results_json_bytes(normalized) == results_json_bytes(exact),
    }


def run_fastpath_bench(
    quick: bool = False, output: Optional[Path] = None
) -> dict:
    """Run the PR6 fast-engine benchmarks and (optionally) write the JSON."""
    report = {
        "schema": FASTPATH_SCHEMA,
        "pr": 6,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "quick": quick,
        "host": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "analytic_sweep": bench_fastpath_analytic(quick),
        "vectorized_replay": bench_fastpath_vectorized(quick),
        "notes": (
            "single-core comparisons; the >=10x criterion applies to "
            "analytic_sweep.speedup on the full (non-quick) ladder"
        ),
    }
    if output is not None:
        output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return report


def run_bench(
    quick: bool = False, workers: Optional[int] = None, output: Optional[Path] = None
) -> dict:
    """Run every benchmark and (optionally) write the JSON artifact."""
    report = {
        "schema": SCHEMA,
        "pr": 1,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "quick": quick,
        "host": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "figure2_roadmap": bench_figure2(workers, quick),
        "figure4_replay": bench_figure4(workers, quick),
        "stats_hot_path": bench_stats_hot_path(quick),
        "notes": (
            "parallel speedup is bounded by host cores; the >=3x Figure 2 "
            "criterion applies on hosts with >= 4 cores"
        ),
    }
    if output is not None:
        output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="miniature sweep for smoke testing"
    )
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument(
        "--fastpath",
        action="store_true",
        help="run the PR6 fast-engine benchmarks (writes BENCH_PR6.json)",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="where to write the JSON artifact "
        "(default BENCH_PR1.json, or BENCH_PR6.json with --fastpath)",
    )
    args = parser.parse_args(argv)
    if args.output is None:
        args.output = ROOT / ("BENCH_PR6.json" if args.fastpath else "BENCH_PR1.json")
    if args.fastpath:
        report = run_fastpath_bench(quick=args.quick, output=args.output)
        ana = report["analytic_sweep"]
        vec = report["vectorized_replay"]
        print(f"analytic sweep  : exact({ana['exact_points_measured']} of "
              f"{ana['rpm_points']} pts) {ana['exact_serial_s']:.3f}s -> "
              f"{ana['exact_serial_extrapolated_s']:.3f}s full ladder  "
              f"analytic {ana['analytic_serial_s']:.3f}s  "
              f"speedup {ana['speedup']:.1f}x  "
              f"within_tolerance={ana['within_tolerance']}")
        print(f"vectorized      : exact {vec['exact_serial_s']:.3f}s  "
              f"vectorized {vec['vectorized_serial_s']:.3f}s  "
              f"speedup {vec['speedup']:.2f}x  "
              f"byte_identical={vec['byte_identical']}")
        print(f"wrote {args.output}")
        ok = vec["byte_identical"] and ana["within_tolerance"]
        return 0 if ok else 1
    report = run_bench(quick=args.quick, workers=args.workers, output=args.output)
    fig2 = report["figure2_roadmap"]
    fig4 = report["figure4_replay"]
    stats = report["stats_hot_path"]
    print(f"figure2 roadmap : serial {fig2['serial_s']:.3f}s  "
          f"parallel({fig2['workers']}) {fig2['parallel_s']:.3f}s  "
          f"speedup {fig2['speedup']:.2f}x  identical={fig2['parallel_identical']}")
    print(f"figure4 replay  : serial {fig4['serial_s']:.3f}s  "
          f"parallel({fig4['workers']}) {fig4['parallel_s']:.3f}s  "
          f"speedup {fig4['speedup']:.2f}x  identical={fig4['parallel_identical']}")
    print(f"stats hot path  : resort {stats['resort_s']:.3f}s  "
          f"cached {stats['cached_s']:.3f}s  speedup {stats['speedup']:.2f}x")
    print(f"wrote {args.output}")
    ok = fig2["parallel_identical"] and fig4["parallel_identical"]
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
