"""Fleet extension: rack-coupled environments, fleet DTM and the
AFR/availability rollup over a 2-rack / 24-drive fleet.

Not a figure from the paper — the paper simulates one drive at a time.
This benchmark exercises the fleet composition layer the repo adds on
top: exhaust recirculation pre-heats downstream enclosures, the fleet
DTM coordinator walks breached drives down the multi-speed ladder until
the rack meets the envelope, and the 2^(dT/15) failure law converts the
resulting temperatures into AFR/availability.
"""

from conftest import run_once

from repro.constants import THERMAL_ENVELOPE_C
from repro.fleet import (
    FleetDTMPolicy,
    ReliabilityParams,
    TieringPolicy,
    build_rack_tasks,
    fleet_summary,
    rack_profile,
    uniform_fleet,
)
from repro.fleet.sweep import _run_rack_task
from repro.reporting import format_table


def _run_fleet():
    fleet = uniform_fleet(
        racks=2,
        enclosures_per_rack=4,
        drives_per_enclosure=3,
        airflow_m3_per_s=0.018,
        cooling_budget_w=200.0,
        recirculation=0.25,
    )
    tasks = build_rack_tasks(
        fleet,
        policy=FleetDTMPolicy(),
        reliability=ReliabilityParams(),
        tiering=TieringPolicy(extents=48, seed=7),
    )
    return fleet, [_run_rack_task(task) for task in tasks]


def test_fleet_rollup(benchmark, emit):
    fleet, results = run_once(benchmark, _run_fleet)

    rows = []
    for result in results:
        rows.append(
            [
                result.rack,
                result.drive_count,
                "yes" if result.converged else "NO",
                result.rounds,
                len(result.throttle_events),
                f"{result.capacity_fraction:.3f}",
                f"{result.total_heat_w:.1f}",
                f"{result.max_internal_c:.2f}",
                f"{result.expected_annual_failures:.3f}",
                f"{result.availability:.6f}",
            ]
        )
    table = format_table(
        [
            "rack",
            "drives",
            "conv",
            "rounds",
            "steps",
            "cap",
            "heat W",
            "max C",
            "EAF",
            "avail",
        ],
        rows,
    )
    summary = fleet_summary(results)
    emit(
        "fleet_2rack_rollup",
        table
        + (
            f"\nfleet: capacity {summary['capacity_fraction']:.3f}, "
            f"availability {summary['availability']:.6f}, "
            f"EAF {summary['expected_annual_failures']:.3f}, "
            f"tiering saved {summary['tiering_saved_power_w']:.2f} W"
        ),
    )

    # Structural claims of the fleet model:
    # DTM converges this topology under the envelope while an uncoordinated
    # rack (everything at top rung) violates it.
    for rack, result in zip(fleet.racks, results):
        assert result.converged
        assert result.max_internal_c <= THERMAL_ENVELOPE_C + 1e-9
        assert rack_profile(rack).max_internal_c > THERMAL_ENVELOPE_C
        # Throttling costs capacity but not all of it.
        assert result.throttle_events
        assert 0.5 < result.capacity_fraction < 1.0
    # Both racks are identical, so the rollup is drive-weighted cleanly.
    assert summary["racks"] == 2
    assert summary["drives"] == 24
    assert summary["converged"]
    assert 0.0 < summary["availability"] < 1.0
    assert summary["tiering_saved_power_w"] > 0.0
