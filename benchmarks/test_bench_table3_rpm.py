"""Table 3: the RPM needed to stay on the 40% IDR growth curve, and the
steady temperature that RPM produces, for 2.6"/2.1"/1.6" single-platter
designs from 2002 to 2012.
"""

from conftest import run_once

from repro.reporting import format_table
from repro.scaling import required_rpm_table

#: The paper's Table 3 (year, size) -> (IDR_density, RPM, temperature).
PAPER_TABLE3 = {
    (2002, 2.6): (128.14, 15098, 45.24),
    (2003, 2.6): (166.53, 16263, 45.47),
    (2004, 2.6): (189.85, 19972, 46.46),
    (2005, 2.6): (216.37, 24534, 48.26),
    (2006, 2.6): (246.66, 30130, 51.48),
    (2007, 2.6): (281.19, 37001, 57.18),
    (2008, 2.6): (320.47, 45452, 67.27),
    (2009, 2.6): (365.34, 55819, 85.04),
    (2010, 2.6): (300.23, 95094, 223.01),
    (2011, 2.6): (342.13, 116826, 360.40),
    (2012, 2.6): (390.03, 143470, 602.98),
    (2002, 2.1): (103.50, 18692, 43.56),
    (2005, 2.1): (174.81, 30367, 45.61),
    (2012, 2.1): (315.02, 177629, 430.93),
    (2002, 1.6): (78.86, 24533, 41.64),
    (2005, 1.6): (133.19, 39857, 42.93),
    (2012, 1.6): (240.11, 233050, 279.75),
}


def test_table3(benchmark, emit):
    cells = run_once(benchmark, required_rpm_table)
    rows = []
    for cell in cells:
        key = (cell.year, cell.diameter_in)
        paper = PAPER_TABLE3.get(key)
        rows.append(
            [
                cell.year,
                f'{cell.diameter_in}"',
                f"{cell.target_idr_mb_s:.0f}",
                f"{cell.idr_density_mb_s:.1f}",
                f"{cell.required_rpm:.0f}",
                f"{cell.steady_temp_c:.2f}",
                "in" if cell.within_envelope else "OUT",
                f"{paper[1]:.0f}" if paper else "",
                f"{paper[2]:.2f}" if paper else "",
            ]
        )
    table = format_table(
        [
            "year",
            "media",
            "IDR req",
            "IDR dens",
            "RPM ours",
            "T ours",
            "envelope",
            "RPM paper",
            "T paper",
        ],
        rows,
    )
    emit("table3_required_rpm", table)

    by_key = {(c.year, c.diameter_in): c for c in cells}
    for key, (paper_idr_density, paper_rpm, paper_temp) in PAPER_TABLE3.items():
        cell = by_key[key]
        assert abs(cell.required_rpm - paper_rpm) / paper_rpm < 0.01
        assert abs(cell.idr_density_mb_s - paper_idr_density) / paper_idr_density < 0.01
        assert abs(cell.steady_temp_c - paper_temp) / paper_temp < 0.09

    # Structural claims of the paper's discussion:
    # ~7.7% RPM growth 2002->2003, ~23%/yr after the slowdown, ~70% at the
    # terabit transition.
    rpm = {y: by_key[(y, 2.6)].required_rpm for y in range(2002, 2013)}
    assert abs(rpm[2003] / rpm[2002] - 1.077) < 0.01
    assert abs(rpm[2006] / rpm[2005] - 1.23) < 0.02
    assert abs(rpm[2010] / rpm[2009] - 1.70) < 0.05
    # The envelope is violated everywhere for 2.6" from ~2004 on.
    assert not by_key[(2006, 2.6)].within_envelope
    assert by_key[(2005, 1.6)].within_envelope
