"""Figure 5: exploiting the thermal slack between the VCM-on envelope
design and VCM-off operation.

(a) the maximum achievable RPM per platter size with and without the VCM;
(b) the revised IDR roadmap when the slack is exploited.
"""

from conftest import run_once

from repro.dtm import slack_by_platter_size, slack_roadmap
from repro.reporting import format_table
from repro.scaling import PAPER_TRENDS


def test_figure5a(benchmark, emit):
    points = run_once(benchmark, slack_by_platter_size)
    rows = [
        [
            f'{p.diameter_in}"',
            f"{p.vcm_power_w:.2f}",
            f"{p.envelope_rpm:.0f}",
            f"{p.vcm_off_rpm:.0f}",
            f"{p.rpm_gain:.0f}",
            f"{p.rpm_gain_fraction * 100:.1f}%",
        ]
        for p in points
    ]
    emit(
        "figure5a_slack_rpm",
        format_table(
            ["media", "VCM W", "envelope RPM", "VCM-off RPM", "gain RPM", "gain %"],
            rows,
        )
        + "\n(paper: 2.6\" goes 15,020 -> 26,750 RPM)",
    )

    p26 = points[0]
    assert abs(p26.envelope_rpm - 15020) / 15020 < 0.02
    assert abs(p26.vcm_off_rpm - 26750) / 26750 < 0.08
    gains = [p.rpm_gain_fraction for p in points]
    assert gains == sorted(gains, reverse=True)  # slack shrinks with size


def test_figure5b(benchmark, emit):
    roadmap = run_once(benchmark, slack_roadmap)
    rows = []
    years = sorted({p.year for p in roadmap.envelope_design})
    for year in years:
        row = [year, f"{PAPER_TRENDS.target_idr_mb_s(year):.0f}"]
        for diameter in (2.6, 2.1, 1.6):
            base = next(
                p
                for p in roadmap.envelope_design
                if p.year == year and p.diameter_in == diameter
            )
            slack = next(
                p
                for p in roadmap.vcm_off
                if p.year == year and p.diameter_in == diameter
            )
            row.append(f"{base.max_idr_mb_s:.0f}/{slack.max_idr_mb_s:.0f}")
        rows.append(row)
    emit(
        "figure5b_slack_roadmap",
        format_table(
            ["year", "target", '2.6" base/slack', '2.1" base/slack', '1.6" base/slack'],
            rows,
        ),
    )

    # Paper claims: the 2.6" slack design meets the target until 2005-06;
    # slack exceeds the envelope design everywhere; the 2.6" slack design
    # beats the plain 2.1"; the late 1.6" gain is only ~5-7%.
    slack_26 = {
        p.year: p for p in roadmap.vcm_off if p.diameter_in == 2.6
    }
    assert slack_26[2005].meets_target or slack_26[2004].meets_target
    for base, slack in zip(roadmap.envelope_design, roadmap.vcm_off):
        assert slack.max_idr_mb_s > base.max_idr_mb_s
    plain_21 = {
        p.year: p for p in roadmap.envelope_design if p.diameter_in == 2.1
    }
    assert slack_26[2004].max_idr_mb_s > plain_21[2004].max_idr_mb_s
    late_gain = roadmap.idr_gain_fraction(2008, 1.6)
    assert 0.02 < late_gain < 0.12
