"""Figure 7: throttling ratio (t_heat / t_cool) vs the cooling interval for
the two throttling schemes.

The paper's curves decrease from ~1.7 (a) / ~1.9 (b) at sub-second t_cool
to ~0.5 at 8 s; ours decrease with the same shape from a higher level (our
calibrated network has a smaller fast-mode heating headroom at the DTM
engagement point — see EXPERIMENTS.md).  The paper's conclusion — fine
throttling granularity is needed to keep utilization high, and the
long-run utilization is bounded by energy balance — holds in both
measurement modes.
"""

from conftest import run_once

from repro.dtm import (
    paper_scenario_vcm_and_rpm,
    paper_scenario_vcm_only,
    throttle_cycle,
    throttling_ratio_curve,
)
from repro.reporting import format_table

T_COOLS = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0)


def _table(cycles):
    return format_table(
        ["t_cool s", "t_heat s", "ratio", "utilization"],
        [
            [f"{c.t_cool_s:.2f}", f"{c.t_heat_s:.2f}", f"{c.ratio:.2f}", f"{c.utilization:.2f}"]
            for c in cycles
        ],
    )


def test_figure7a(benchmark, emit):
    scenario = paper_scenario_vcm_only()
    cycles = run_once(
        benchmark, lambda: throttling_ratio_curve(scenario, T_COOLS, dt_s=0.02)
    )
    sustained = throttle_cycle(scenario, 1.0, dt_s=0.02, mode="sustained")
    emit(
        "figure7a_throttling_vcm_only",
        "VCM-only throttling, 2.6\" at 24,534 RPM\n"
        + _table(cycles)
        + f"\n\nsustained-mode (cyclic steady state) utilization at 1 s: "
        f"{sustained.utilization:.2f}",
    )

    ratios = [c.ratio for c in cycles]
    assert ratios == sorted(ratios, reverse=True)  # decreasing in t_cool
    assert ratios[0] / ratios[-1] > 3.0  # strong decay, as in the paper
    # The long-run (energy-balance) utilization is bounded well below 1.
    assert sustained.utilization < 0.5


def test_figure7b(benchmark, emit):
    scenario = paper_scenario_vcm_and_rpm()
    cycles = run_once(
        benchmark, lambda: throttling_ratio_curve(scenario, T_COOLS, dt_s=0.02)
    )
    emit(
        "figure7b_throttling_vcm_rpm",
        "VCM + RPM-drop throttling, 2.6\" at 37,001 -> 22,001 RPM\n" + _table(cycles),
    )

    ratios = [c.ratio for c in cycles]
    assert ratios == sorted(ratios, reverse=True)
    # Scenario (b) cools much deeper per cycle than (a).
    cycles_a = throttling_ratio_curve(
        paper_scenario_vcm_only(), (2.0,), dt_s=0.02
    )
    cycle_b = next(c for c in cycles if c.t_cool_s == 2.0)
    assert cycle_b.min_air_c < cycles_a[0].min_air_c
