"""Figure 2: the thermally constrained IDR and capacity roadmaps for 1-,
2- and 4-platter designs (six panels)."""

import pytest
from conftest import run_once

from repro.reporting import ascii_plot, format_table
from repro.scaling import (
    PAPER_TRENDS,
    first_shortfall_year,
    idr_series,
    thermal_roadmap,
)


@pytest.mark.parametrize("platter_count", [1, 2, 4])
def test_figure2(benchmark, emit, platter_count):
    points = run_once(
        benchmark, lambda: thermal_roadmap(platter_count=platter_count)
    )
    years = sorted({p.year for p in points})

    idr_plot = ascii_plot(
        [
            (
                f'{d}"',
                [y for y, _ in idr_series(points, d)],
                [v for _, v in idr_series(points, d)],
            )
            for d in (2.6, 2.1, 1.6)
        ]
        + [("40% CGR", years, [PAPER_TRENDS.target_idr_mb_s(y) for y in years])],
        width=64,
        height=14,
        logy=True,
        title=f"{platter_count}-platter IDR roadmap (MB/s, log)",
    )

    rows = []
    for year in years:
        row = [year]
        for diameter in (2.6, 2.1, 1.6):
            point = next(
                p for p in points if p.year == year and p.diameter_in == diameter
            )
            row.append(f"{point.max_idr_mb_s:.0f}{'*' if point.meets_target else ' '}")
            row.append(f"{point.capacity_gb:.1f}")
        rows.append(row)
    table = format_table(
        ["year", "2.6 IDR", "2.6 cap", "2.1 IDR", "2.1 cap", "1.6 IDR", "1.6 cap"],
        rows,
    )
    emit(
        f"figure2_roadmap_{platter_count}platter",
        idr_plot + "\n\n" + table + "\n(* = meets the 40% target)",
    )

    # Paper claims: the 40% CGR holds until ~2006 via the smallest media,
    # then falls off; the terabit ECC jump dents 2010.
    shortfall = first_shortfall_year(points)
    assert shortfall is not None and 2006 <= shortfall <= 2008
    for diameter in (2.6, 2.1, 1.6):
        series = dict(idr_series(points, diameter))
        assert series[2010] < series[2009]
        assert series[2011] > series[2010]
    # Capacity ordering: larger media holds more, every year.
    for year in years:
        caps = {
            p.diameter_in: p.capacity_gb for p in points if p.year == year
        }
        assert caps[2.6] > caps[2.1] > caps[1.6]


def test_figure2_shortfall_steeper_with_more_platters(benchmark, emit):
    def gap_2012(platter_count):
        points = thermal_roadmap(platter_count=platter_count, sizes=(1.6,))
        final = points[-1]
        return final.target_idr_mb_s - final.max_idr_mb_s

    gaps = run_once(benchmark, lambda: {n: gap_2012(n) for n in (1, 2, 4)})
    emit(
        "figure2_shortfall",
        format_table(
            ["platters", "2012 IDR gap (MB/s)"],
            [[n, f"{gap:.0f}"] for n, gap in gaps.items()],
        ),
    )
    # Despite the extra cooling budget, more platters fall further behind
    # (the paper: "the fall off ... is slightly steeper").
    assert gaps[4] > gaps[1]
    # The 1-platter gap is on the order of the paper's ~2,870 MB/s.
    assert 2000 < gaps[1] < 3500
