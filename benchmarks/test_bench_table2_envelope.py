"""Table 2: rated maximum operating temperatures and the thermal envelope.

The paper observes that rated limits are nearly invariant (50-55 C) across
years and RPMs, and anchors its envelope at 45.22 C = modeled internal air
of the dissected Cheetah 15K.3, which plus the ~10 C electronics adder
recovers the drive's 55 C rating.
"""

from conftest import run_once

from repro.constants import ELECTRONICS_DELTA_C, THERMAL_ENVELOPE_C
from repro.drives import TABLE2_DRIVES, cheetah15k3
from repro.reporting import format_table


def _build():
    rows = [
        [
            d.model,
            d.year,
            f"{d.rpm:.0f}",
            f"{d.wet_bulb_temp_c:.1f}",
            f"{d.max_operating_temp_c:.0f}",
        ]
        for d in TABLE2_DRIVES
    ]
    modeled = cheetah15k3.thermal_model().steady_air_c()
    return rows, modeled


def test_table2(benchmark, emit):
    rows, modeled = run_once(benchmark, _build)
    table = format_table(
        ["model", "year", "RPM", "wet-bulb C", "max oper C"], rows
    )
    summary = (
        f"{table}\n\n"
        f"modeled Cheetah 15K.3 internal air : {modeled:.2f} C\n"
        f"+ electronics adder ({ELECTRONICS_DELTA_C:.0f} C)        : "
        f"{modeled + ELECTRONICS_DELTA_C:.2f} C (rated max: 55 C)\n"
        f"thermal envelope used everywhere   : {THERMAL_ENVELOPE_C} C"
    )
    emit("table2_envelope", summary)

    assert modeled == round(THERMAL_ENVELOPE_C, 2) or abs(modeled - THERMAL_ENVELOPE_C) < 0.05
    # Rated limits nearly invariant across the drives.
    ratings = {d.max_operating_temp_c for d in TABLE2_DRIVES}
    assert ratings <= {50.0, 55.0}
    # Envelope + electronics recovers the 55 C class rating.
    assert abs((modeled + ELECTRONICS_DELTA_C) - 55.0) < 0.5
