"""Figure 1: warm-up transient of the modeled Cheetah 15K.3.

From a 28 C cold start with SPM and VCM always on, the internal air rises
to ~33 C within the first minute and settles at 45.22 C after about 48
minutes.
"""

from conftest import run_once

from repro.constants import AMBIENT_TEMPERATURE_C, THERMAL_ENVELOPE_C
from repro.drives import cheetah15k3
from repro.reporting import ascii_plot, format_table


def _run_transient():
    model = cheetah15k3.thermal_model()
    return model.transient(150 * 60, dt_s=0.5, record_every=120, from_ambient=True)


def test_figure1(benchmark, emit):
    result = run_once(benchmark, _run_transient)
    minutes = [t / 60 for t in result.times_s]
    air = result.series("air")

    plot = ascii_plot(
        [("air", minutes, air)],
        width=66,
        height=14,
        title="Cheetah 15K.3 internal air temperature vs time (minutes)",
    )
    samples = [0, 1, 2, 5, 10, 20, 30, 48, 90, 150]
    rows = []
    for minute in samples:
        index = min(range(len(minutes)), key=lambda i: abs(minutes[i] - minute))
        rows.append([f"{minutes[index]:.0f}", f"{air[index]:.2f}"])
    table = format_table(["minute", "air C"], rows)
    emit("figure1_transient", plot + "\n\n" + table)

    assert air[0] == AMBIENT_TEMPERATURE_C
    at_1min = air[min(range(len(minutes)), key=lambda i: abs(minutes[i] - 1.0))]
    assert 32.0 <= at_1min <= 36.0  # paper: ~33 C after the first minute
    assert abs(air[-1] - THERMAL_ENVELOPE_C) < 0.05  # steady state 45.22 C
    # Converged (within 0.05 C) between 30 and 70 minutes (paper: ~48).
    final = air[-1]
    converged_minute = next(
        m for m, a in zip(minutes, air) if abs(a - final) < 0.05
    )
    assert 30 <= converged_minute <= 70
