"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and emits the
rows/series it produced to ``benchmarks/results/<name>.txt`` (and stdout),
so the reproduction can be compared against the paper side by side —
EXPERIMENTS.md indexes these outputs.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def emit():
    """Write a named result artifact and echo it to stdout."""

    def _emit(name: str, text: str) -> Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n--- {name} ---")
        print(text)
        return path

    return _emit


def run_once(benchmark, func):
    """Run a heavy experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
