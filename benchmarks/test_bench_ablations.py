"""Ablation studies on the design choices DESIGN.md calls out.

* ZBR zone count: capacity/IDR sensitivity to zoning granularity.
* ECC transition sharpness: the paper's step model vs a gradual ramp.
* Request scheduler: FCFS vs SSTF vs LOOK under a random workload.
* Disk cache size: hit ratio and response time.
* RAID-5 stripe unit: small-write penalty vs parallelism.
"""

from conftest import run_once

from repro.capacity import CapacityModel, RecordingTechnology
from repro.capacity.ecc import smooth_ecc_bits_per_sector
from repro.geometry import Platter
from repro.performance import idr_mb_per_s
from repro.reporting import format_table
from repro.simulation import build_system
from repro.workloads import workload


def test_ablation_zone_count(benchmark, emit):
    tech = RecordingTechnology.from_kilo_units(593.19, 67.5)
    platter = Platter(diameter_in=2.6)

    def run():
        rows = []
        for zones in (1, 5, 15, 30, 50, 100):
            model = CapacityModel(platter, tech, zone_count=zones)
            rows.append(
                (
                    zones,
                    model.usable_capacity_gb(),
                    idr_mb_per_s(15000, model.surface.sectors_per_track_zone0),
                )
            )
        return rows

    rows = run_once(benchmark, run)
    emit(
        "ablation_zone_count",
        format_table(
            ["zones", "capacity GB", "IDR MB/s @15K"],
            [[z, f"{c:.2f}", f"{i:.1f}"] for z, c, i in rows],
        ),
    )
    capacities = [c for _, c, _ in rows]
    idrs = [i for _, _, i in rows]
    # More zones recover ZBR loss (capacity up) but zone 0 shrinks toward
    # the outermost tracks (IDR up too, since its min-perimeter track moves
    # outward).
    assert capacities == sorted(capacities)
    assert idrs == sorted(idrs)
    # A single zone wastes a large fraction of the media.
    assert capacities[0] < 0.8 * capacities[-1]


def test_ablation_ecc_transition(benchmark, emit):
    def run():
        rows = []
        for exponent in (11.6, 11.8, 11.95, 12.0, 12.05, 12.2, 12.4):
            density = 10**exponent
            step = 416 if density < 1e12 else 1440
            rows.append((exponent, step, smooth_ecc_bits_per_sector(density)))
        return rows

    rows = run_once(benchmark, run)
    emit(
        "ablation_ecc_transition",
        format_table(
            ["log10 density", "step bits", "smooth bits"],
            [[f"{e:.2f}", s, f"{m:.0f}"] for e, s, m in rows],
        )
        + "\n(the paper notes its 10%->35% step exaggerates the 2010 dip; the"
        "\nsmooth ramp spreads it over neighbouring years)",
    )
    smooth = [m for _, _, m in rows]
    assert smooth == sorted(smooth)
    # The smooth model removes the discontinuity at exactly 1 Tb/in^2.
    mid = dict((f"{e:.2f}", m) for e, _, m in rows)["12.00"]
    assert 416 < mid < 1440


def test_ablation_scheduler(benchmark, emit):
    spec = workload("search_engine").with_shape(mean_interarrival_ms=1.6)

    def run():
        trace = spec.generate(num_requests=3000, seed=2)
        means = {}
        for policy in ("fcfs", "sstf", "look"):
            system = build_system(
                disk_count=spec.disk_count,
                rpm=spec.base_rpm,
                disk_capacity_gb=spec.disk_capacity_gb,
                raid5=spec.raid5,
                stripe_unit_sectors=spec.stripe_unit_sectors,
                kbpi=spec.kbpi,
                ktpi=spec.ktpi,
                platters=spec.platters,
                scheduler_name=policy,
            )
            means[policy] = system.run_trace(trace).mean_response_ms()
        return means

    means = run_once(benchmark, run)
    emit(
        "ablation_scheduler",
        format_table(
            ["policy", "mean ms"], [[p, f"{m:.2f}"] for p, m in means.items()]
        ),
    )
    # Seek-aware policies beat FCFS under queueing.
    assert means["sstf"] <= means["fcfs"]
    assert means["look"] <= means["fcfs"] * 1.05


def test_ablation_cache_size(benchmark, emit):
    spec = workload("tpch")

    def run():
        trace = spec.generate(num_requests=2500, seed=3)
        rows = []
        for cache_mb in (0, 1, 4, 16):
            system = build_system(
                disk_count=spec.disk_count,
                rpm=spec.base_rpm,
                disk_capacity_gb=spec.disk_capacity_gb,
                raid5=False,
                stripe_unit_sectors=spec.stripe_unit_sectors,
                kbpi=spec.kbpi,
                ktpi=spec.ktpi,
                platters=spec.platters,
                cache_bytes=cache_mb * 1024 * 1024,
            )
            report = system.run_trace(trace)
            rows.append((cache_mb, report.cache_hit_ratio, report.mean_response_ms()))
        return rows

    rows = run_once(benchmark, run)
    emit(
        "ablation_cache_size",
        format_table(
            ["cache MB", "hit ratio", "mean ms"],
            [[c, f"{h:.3f}", f"{m:.2f}"] for c, h, m in rows],
        ),
    )
    by_cache = {c: (h, m) for c, h, m in rows}
    assert by_cache[0][0] == 0.0
    assert by_cache[4][0] > 0.15  # the sequential scans profit from read-ahead
    assert by_cache[4][1] < by_cache[0][1]  # and respond faster


def test_ablation_stripe_unit(benchmark, emit):
    spec = workload("tpcc")

    def run():
        trace = spec.generate(num_requests=2000, seed=4)
        rows = []
        for stripe in (8, 16, 64, 256):
            system = build_system(
                disk_count=spec.disk_count,
                rpm=spec.base_rpm,
                disk_capacity_gb=spec.disk_capacity_gb,
                raid5=True,
                stripe_unit_sectors=stripe,
                kbpi=spec.kbpi,
                ktpi=spec.ktpi,
                platters=spec.platters,
            )
            rows.append((stripe, system.run_trace(trace).mean_response_ms()))
        return rows

    rows = run_once(benchmark, run)
    emit(
        "ablation_stripe_unit",
        format_table(
            ["stripe sectors", "mean ms"], [[s, f"{m:.2f}"] for s, m in rows]
        ),
    )
    means = dict(rows)
    # Very large stripe units inflate the RAID-5 parity write footprint for
    # small requests.
    assert means[256] > means[16]
