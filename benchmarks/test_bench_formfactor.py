"""Section 4.2.2: the 2.5-inch form-factor enclosure study.

Housing the 2.6-inch media in the smaller enclosure halves the surface
available to shed heat: the design falls off the roadmap already in 2002
and needs roughly 15 C of extra cooling before it is comparable to the
3.5-inch enclosure.
"""

from conftest import run_once

from repro.reporting import format_table
from repro.scaling import extra_cooling_needed_c, formfactor_study


def test_formfactor(benchmark, emit):
    def run():
        comparison = formfactor_study(years=(2002, 2003, 2004))
        delta = extra_cooling_needed_c()
        return comparison, delta

    comparison, delta = run_once(benchmark, run)

    rows = []
    for large, small in zip(comparison.large, comparison.small):
        rows.append(
            [
                large.year,
                f"{large.max_idr_mb_s:.0f}",
                "yes" if large.meets_target else "no",
                f"{small.max_idr_mb_s:.0f}",
                "yes" if small.meets_target else "no",
                f"{large.target_idr_mb_s:.0f}",
            ]
        )
    table = format_table(
        ["year", '3.5" IDR', "on target", '2.5" IDR', "on target", "target"],
        rows,
    )
    emit(
        "formfactor_study",
        table
        + f"\n\nextra cooling needed for the 2.5\" enclosure to match: "
        f"{delta:.1f} C (paper: ~15 C)",
    )

    assert not comparison.small_meets_target_ever()
    assert 8.0 <= delta <= 25.0
    for large, small in zip(comparison.large, comparison.small):
        assert small.max_idr_mb_s < large.max_idr_mb_s
