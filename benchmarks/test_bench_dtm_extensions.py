"""Extension benchmarks: the §5.4 DTM design space.

The paper leaves DTM control policies to future work; these benches
compare the mechanisms it sketches on one average-case design (a 2.6-inch
drive at 26K RPM — far beyond the ~15K envelope design):

* reactive gating vs request spacing vs a DRPM ladder,
* the mirrored pair with alternating reads,
* the cache-disk pair (small fast platter fronting a big slow one),
* energy accounting across the RPM sweep.
"""

from conftest import run_once

from repro.constants import THERMAL_ENVELOPE_C
from repro.dtm import (
    AlternatingMirror,
    CacheDiskPair,
    LadderPolicy,
    PolicyManagedSystem,
    ReactiveGatePolicy,
    SpacingPolicy,
    drpm_profile,
    mirror_headroom_rpm,
)
from repro.reporting import format_table
from repro.simulation import power_report
from repro.thermal import DriveThermalModel, max_rpm_within_envelope
from repro.workloads import WorkloadShape, generate_trace, workload

RPM = 26000.0
#: Gate-only policies cannot recover above the VCM-off limit (~25.3K RPM:
#: the cooling-mode steady state would itself exceed the envelope — the
#: paper's scenario-(b) observation), so they manage a slightly tamer
#: average-case design; the DRPM ladder can hold the full 26K.
RPM_GATED = 24500.0


def _managed_run(policy, rpm=RPM_GATED):
    spec = workload("search_engine")
    system = spec.build_system(rpm=rpm)
    thermal = DriveThermalModel(platter_diameter_in=2.6, rpm=rpm, vcm_active=False)
    # Warm-start just below the envelope (a drive already in sustained
    # service): short traces cannot heat the minutes-scale casting mass,
    # so a cold start would never exercise the policies.
    thermal.set_vcm_duty(0.5)
    steady = thermal.network.steady_state()
    offset = (THERMAL_ENVELOPE_C - 0.1) - steady["air"]
    thermal.network.set_temperatures(
        {name: temp + offset for name, temp in steady.items()}
    )
    thermal.set_operating_state(vcm_active=True)
    managed = PolicyManagedSystem(system, thermal, policy, check_interval_ms=10.0)
    # Double the arrival rate so the seek duty genuinely pushes the
    # average-case design against the envelope.
    trace = spec.generate(num_requests=2500, seed=21, rate_scale=2.0)
    report = managed.run_trace(trace)
    return report, managed


def test_policy_comparison(benchmark, emit):
    def run():
        # The workload's seek duty pushes the 26K design past the envelope,
        # forcing every policy to act; resume thresholds sit above the
        # cooling-mode steady temperature (~44.9 C) so recovery is possible.
        policies = {
            "reactive gate": ReactiveGatePolicy(
                envelope_c=THERMAL_ENVELOPE_C,
                trigger_margin_c=0.02,
                resume_margin_c=0.20,
            ),
            "request spacing": SpacingPolicy(
                envelope_c=THERMAL_ENVELOPE_C, band_c=0.25, max_gap_ms=8.0
            ),
            "DRPM ladder": LadderPolicy(
                drpm_profile(RPM, levels=4, step_rpm=3000),
                envelope_c=THERMAL_ENVELOPE_C,
                band_c=0.25,
            ),
        }
        rows = {}
        for name, policy in policies.items():
            rpm = RPM if name == "DRPM ladder" else RPM_GATED
            report, managed = _managed_run(policy, rpm=rpm)
            rows[name] = (
                report.stats.mean_ms(),
                report.max_air_c,
                report.throttled_fraction,
                managed.rpm_changes,
            )
        return rows

    rows = run_once(benchmark, run)
    emit(
        "dtm_policy_comparison",
        format_table(
            ["policy", "mean ms", "max air C", "gated frac", "rpm changes"],
            [
                [name, f"{m:.2f}", f"{a:.3f}", f"{g:.3f}", c]
                for name, (m, a, g, c) in rows.items()
            ],
        ),
    )
    # Every policy respects the (tightened) limit with only transient
    # overshoot from the controller's sampling interval.
    for name, (mean, max_air, gated, changes) in rows.items():
        assert max_air < THERMAL_ENVELOPE_C + 0.6
        assert mean > 0
    # The ladder actually exercised the ladder.
    assert rows["DRPM ladder"][3] >= 1


def test_mirrored_pair(benchmark, emit):
    def run():
        mirror = AlternatingMirror(rpm=RPM, switch_period_ms=1000.0)
        shape = WorkloadShape(
            name="mirror-bench",
            mean_interarrival_ms=3.0,
            read_fraction=0.8,
            size_mix=((8, 0.6), (16, 0.4)),
        )
        trace = generate_trace(shape, 2500, mirror.geometry.logical_sectors, seed=22)
        report = mirror.run_trace(trace)
        headroom = mirror_headroom_rpm(2.6)
        return report, headroom

    report, headroom = run_once(benchmark, run)
    envelope_rpm = max_rpm_within_envelope(2.6)
    slack_rpm = max_rpm_within_envelope(2.6, vcm_active=False)
    emit(
        "dtm_mirroring",
        format_table(
            ["metric", "value"],
            [
                ["mean response ms", f"{report.stats.mean_ms():.2f}"],
                ["max air C", f"{report.max_air_c:.2f}"],
                ["read alternations", report.switches],
                ["mirror0 seek duty", f"{report.per_disk_seek_duty[0]:.3f}"],
                ["mirror1 seek duty", f"{report.per_disk_seek_duty[1]:.3f}"],
                ["envelope-design RPM", f"{envelope_rpm:.0f}"],
                ["half-duty mirror RPM", f"{headroom:.0f}"],
                ["full-slack RPM", f"{slack_rpm:.0f}"],
            ],
        ),
    )
    assert envelope_rpm < headroom < slack_rpm
    assert report.switches > 0


def test_cache_disk_pair(benchmark, emit):
    def run():
        shape = WorkloadShape(
            name="cache-bench",
            mean_interarrival_ms=5.0,
            read_fraction=0.9,
            size_mix=((8, 1.0),),
            hot_fraction=0.9,
            hot_region_fraction=0.001,
        )
        pair = CacheDiskPair()
        trace = generate_trace(shape, 2000, pair.logical_sectors, seed=23)
        cached = pair.run_trace(trace)
        lone = CacheDiskPair()
        lone.map.max_regions = 0  # big disk only
        lone_report = lone.run_trace(generate_trace(shape, 2000, lone.logical_sectors, seed=23))
        return cached, lone_report

    cached, lone = run_once(benchmark, run)
    emit(
        "dtm_cache_disk",
        format_table(
            ["configuration", "mean ms", "hit ratio", "fast RPM", "slow RPM"],
            [
                [
                    "cache-disk pair",
                    f"{cached.stats.mean_ms():.2f}",
                    f"{cached.hit_ratio:.2f}",
                    f"{cached.fast_rpm:.0f}",
                    f"{cached.slow_rpm:.0f}",
                ],
                [
                    "big disk alone",
                    f"{lone.stats.mean_ms():.2f}",
                    f"{lone.hit_ratio:.2f}",
                    "-",
                    f"{lone.slow_rpm:.0f}",
                ],
            ],
        ),
    )
    assert cached.fast_rpm > 2 * cached.slow_rpm
    assert cached.hit_ratio > 0.4
    assert cached.stats.mean_ms() < lone.stats.mean_ms()


def test_energy_accounting(benchmark, emit):
    spec = workload("oltp")

    def run():
        trace = spec.generate(num_requests=2000, seed=24)
        rows = []
        for rpm in spec.rpm_sweep(3):
            system = spec.build_system(rpm)
            report = system.run_trace(trace)
            power = power_report(
                system.disks[0], report.simulated_ms, diameter_in=spec.diameter_in,
                platter_count=spec.platters,
            )
            rows.append(
                (rpm, report.mean_response_ms(), power.average_w, power.seek_duty)
            )
        return rows

    rows = run_once(benchmark, run)
    emit(
        "dtm_energy_vs_rpm",
        format_table(
            ["RPM", "mean ms", "avg W/disk", "seek duty"],
            [[f"{r:.0f}", f"{m:.2f}", f"{w:.2f}", f"{d:.3f}"] for r, m, w, d in rows],
        )
        + "\n(the performance of higher RPM is bought with superlinear power"
        "\n— the thermal story of the paper in energy terms)",
    )
    watts = [w for _, _, w, _ in rows]
    means = [m for _, m, _, _ in rows]
    assert watts == sorted(watts)
    assert means == sorted(means, reverse=True)
    # Windage superlinearity: +10K RPM from base should more than double
    # nothing less than the windage-dominated growth trend.
    assert watts[2] > watts[0] * 1.2
