"""Extension benchmark: array-level thermal coupling and reliability.

Quantifies two paper arguments that the single-drive experiments only
gesture at:

* the workload study's 4-24 disk arrays share cooling air, so downstream
  drives bind the common RPM well below the single-drive envelope limit
  (after Huang & Chung [28]);
* DTM used purely to run cooler buys reliability directly — "even a
  fifteen degree Celsius rise ... can double the failure rate" [2]
  (the paper's closing argument, §6).
"""

from conftest import run_once

from repro.constants import THERMAL_ENVELOPE_C
from repro.reporting import format_table
from repro.thermal import (
    array_envelope_rpm,
    dtm_reliability_gain,
    failure_acceleration,
    max_rpm_within_envelope,
    serial_array_profile,
)


def test_array_thermal(benchmark, emit):
    def run():
        profile = serial_array_profile(8, 12000, airflow_m3_per_s=0.05)
        limits = {
            depth: array_envelope_rpm(depth, airflow_m3_per_s=0.2)
            for depth in (1, 2, 4, 8)
        }
        return profile, limits

    profile, limits = run_once(benchmark, run)
    rows = [
        [p.index, f"{p.local_ambient_c:.2f}", f"{p.internal_air_c:.2f}", f"{p.max_rpm:.0f}"]
        for p in profile
    ]
    limit_rows = [[depth, f"{rpm:.0f}"] for depth, rpm in limits.items()]
    emit(
        "array_thermal",
        "8-slot serial airflow at 12K RPM (0.05 m^3/s):\n"
        + format_table(["slot", "local ambient C", "internal air C", "slot max RPM"], rows)
        + "\n\ncommon in-envelope RPM vs chain depth (0.2 m^3/s):\n"
        + format_table(["disks in chain", "common max RPM"], limit_rows),
    )

    ambients = [p.local_ambient_c for p in profile]
    assert ambients == sorted(ambients)
    single = max_rpm_within_envelope(2.6)
    assert limits[8] < limits[4] < limits[2] <= limits[1] <= single * 1.01


def test_reliability(benchmark, emit):
    def run():
        duties = (1.0, 0.5, 0.3, 0.1)
        gains = {duty: dtm_reliability_gain(duty=duty) for duty in duties}
        return gains

    gains = run_once(benchmark, run)
    rows = []
    for duty, gain in gains.items():
        rows.append(
            [
                f"{duty:.1f}",
                f"{gain.cool_c:.2f}",
                f"{failure_acceleration(gain.cool_c):.2f}",
                f"{gain.failure_ratio:.2f}",
            ]
        )
    emit(
        "reliability_dtm",
        "envelope design pinned at "
        f"{THERMAL_ENVELOPE_C} C (failure acceleration "
        f"{failure_acceleration(THERMAL_ENVELOPE_C):.2f}x ambient):\n"
        + format_table(
            ["VCM duty", "managed air C", "accel vs ambient", "failure ratio vs envelope"],
            rows,
        )
        + "\n(running at real duty cycles instead of the worst case buys"
        "\nreliability directly — the paper's closing argument for DTM)",
    )

    # Lower duty -> cooler -> more reliable, monotonically.
    ratios = [gains[d].failure_ratio for d in (1.0, 0.5, 0.3, 0.1)]
    assert ratios == sorted(ratios)
    assert ratios[0] >= 0.99  # full duty is the envelope itself
    assert ratios[-1] > 1.05  # light duty buys measurable reliability
