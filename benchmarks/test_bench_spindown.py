"""Extension benchmark: classic spin-down power management vs staying on.

The related-work context (§2): laptop-style spin-down trades energy for
spin-up latency, and the paper notes it is hard to apply to servers (short
idle periods, mechanical stress).  This bench quantifies the trade-off on
a bursty workload: the energy saved and the latency paid across idle
timeouts — the backdrop against which multi-speed/DTM approaches were
proposed.
"""

from conftest import run_once

from repro.dtm import SpinManagedDisk, SpinPolicy
from repro.reporting import format_table
from repro.simulation import EventQueue, standard_disk
from repro.workloads import Trace, TraceRecord


def _bursty_trace(bursts=20, per_burst=12, gap_ms=8000.0):
    records = []
    t = 0.0
    lba = 0
    for _ in range(bursts):
        for _ in range(per_burst):
            records.append(TraceRecord(t, lba % 3_000_000, 8, False))
            t += 6.0
            lba += 77_777
        t += gap_ms
    return Trace(name="bursty-archive", records=records)


def _managed(idle_timeout_ms):
    events = EventQueue()
    disk = standard_disk(
        name="pm",
        events=events,
        diameter_in=2.6,
        platters=1,
        kbpi=500,
        ktpi=30,
        rpm=10000,
    )
    return SpinManagedDisk(disk, SpinPolicy(idle_timeout_ms=idle_timeout_ms))


def test_spindown_tradeoff(benchmark, emit):
    def run():
        rows = []
        for timeout in (None, 4000.0, 1000.0, 250.0):
            managed = _managed(timeout)
            report = managed.run_trace(_bursty_trace())
            rows.append(
                (
                    "always-on" if timeout is None else f"{timeout:.0f} ms",
                    report.energy_j,
                    report.stats.mean_ms(),
                    report.stats.max_ms(),
                    report.spin_ups,
                    report.standby_fraction,
                )
            )
        return rows

    rows = run_once(benchmark, run)
    emit(
        "spindown_tradeoff",
        format_table(
            ["idle timeout", "energy J", "mean ms", "max ms", "spin-ups", "standby frac"],
            [
                [label, f"{e:.0f}", f"{m:.2f}", f"{mx:.0f}", s, f"{f:.2f}"]
                for label, e, m, mx, s, f in rows
            ],
        )
        + "\n(aggressive timeouts save energy but every burst leader pays a"
        "\nmulti-second spin-up — why the paper's server line moved to"
        "\nmulti-speed disks and DTM instead)",
    )

    by_label = {label: (e, m, mx, s, f) for label, e, m, mx, s, f in rows}
    energy_on = by_label["always-on"][0]
    energy_eager = by_label["250 ms"][0]
    assert energy_eager < 0.7 * energy_on  # real energy savings
    assert by_label["250 ms"][2] > 1500.0  # but multi-second worst case
    assert by_label["always-on"][2] < 500.0
    # More aggressive timeouts spin down at least as often.
    assert by_label["250 ms"][3] >= by_label["4000 ms"][3]
