"""Figure 3: roadmap sensitivity to the external cooling system (baseline,
5 C cooler, 10 C cooler ambients)."""

from conftest import run_once

from repro.reporting import format_table
from repro.scaling import cooling_study, roadmap_extension_years


def test_figure3(benchmark, emit):
    scenarios = run_once(benchmark, cooling_study)

    rows = []
    for delta, scenario in sorted(scenarios.items()):
        row = [f"-{delta:.0f} C", f"{scenario.ambient_c:.1f}"]
        for diameter in (2.6, 2.1, 1.6):
            last = scenario.last_year_meeting_target(diameter)
            row.append(str(last) if last else "never")
        rows.append(row)
    table = format_table(
        ["cooling", "ambient C", '2.6" last', '2.1" last', '1.6" last'], rows
    )

    extension_rows = []
    for diameter in (2.6, 2.1, 1.6):
        extensions = roadmap_extension_years(scenarios, diameter)
        extension_rows.append(
            [f'{diameter}"', f"+{extensions[5.0]}", f"+{extensions[10.0]}"]
        )
    extension_table = format_table(
        ["media", "5 C cooler", "10 C cooler"], extension_rows
    )
    emit(
        "figure3_cooling",
        table + "\n\nroadmap extension (years):\n" + extension_table,
    )

    # Paper: ~1 extra year for 5 C, ~2 for 10 C (1.6" media); the 2.6"
    # size recovers some years with 5 C of cooling; no scenario survives
    # the terabit transition.
    extensions_16 = roadmap_extension_years(scenarios, 1.6)
    assert 0 <= extensions_16[5.0] <= 2
    assert 1 <= extensions_16[10.0] <= 3
    base_26 = scenarios[0.0].last_year_meeting_target(2.6) or 2001
    cooled_26 = scenarios[5.0].last_year_meeting_target(2.6) or 2001
    assert cooled_26 >= base_26
    for scenario in scenarios.values():
        assert scenario.first_shortfall_year() is not None
        assert scenario.first_shortfall_year() <= 2010
