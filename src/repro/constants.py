"""Paper-level constants.

These are the handful of numbers the paper states directly and that every
experiment shares: the thermal envelope, the validation ambient temperature,
the recording-overhead constants, and the roadmap's target growth rates.
Module-specific constants (material properties, trend tables) live next to
the code that uses them.
"""

from __future__ import annotations

# --- Thermal design (paper §3.3) -------------------------------------------

#: Maximum internal drive-air temperature for reliable operation, in Celsius.
#: Obtained by the paper from the Cheetah 15K.3 model with VCM and SPM always
#: on (45.22 C), excluding on-board electronics (which add ~10 C toward the
#: rated 55 C maximum operating temperature).
THERMAL_ENVELOPE_C = 45.22

#: External wet-bulb ambient temperature assumed for the envelope, Celsius.
AMBIENT_TEMPERATURE_C = 28.0

#: Temperature electronics add inside a real enclosure (Huang & Chung, [28]).
ELECTRONICS_DELTA_C = 10.0

#: Finite-difference resolution the paper found sufficient (600 steps/min).
FD_STEPS_PER_MINUTE = 600
FD_TIME_STEP_S = 60.0 / FD_STEPS_PER_MINUTE  # = 0.1 s

# --- Recording model (paper §3.1) ------------------------------------------

#: Stroke efficiency: fraction of the radial band usable for data tracks.
STROKE_EFFICIENCY = 2.0 / 3.0

#: Inner radius as a fraction of outer radius (rule of thumb, paper §3.1).
INNER_RADIUS_RATIO = 0.5

#: Zone counts used in the paper's two studies.
VALIDATION_ZONES = 30  # Table 1 validation
ROADMAP_ZONES = 50  # Table 3 / roadmap experiments

#: ECC bits per 512-byte sector (Wood [49]): ~10% below 1 Tb/in^2, 35% above.
ECC_BITS_SUBTERABIT = 416
ECC_BITS_TERABIT = 1440

#: Areal density (bits per square inch) where the terabit ECC regime begins.
TERABIT_AREAL_DENSITY = 1.0e12

# --- Roadmap targets (paper §4) ---------------------------------------------

#: Industry IDR compound annual growth-rate target.
IDR_TARGET_CGR = 0.40

#: Viscous dissipation exponents (paper §3.3, citing [9, 41]).
VISCOUS_RPM_EXPONENT = 2.8
VISCOUS_DIAMETER_EXPONENT = 4.8

#: Calibration anchor for viscous dissipation: the paper reports 0.91 W for
#: the 2002 single-platter 2.6-inch configuration spinning at 15,098 RPM.
VISCOUS_ANCHOR_WATTS = 0.91
VISCOUS_ANCHOR_RPM = 15098.0
VISCOUS_ANCHOR_DIAMETER_IN = 2.6
VISCOUS_ANCHOR_PLATTERS = 1

# --- Roadmap span ------------------------------------------------------------

ROADMAP_FIRST_YEAR = 2002
ROADMAP_LAST_YEAR = 2012

#: Platter sizes (diameter, inches) explored by the roadmap.
ROADMAP_PLATTER_SIZES_IN = (2.6, 2.1, 1.6)

#: Platter counts representing low/medium/high capacity market segments.
ROADMAP_PLATTER_COUNTS = (1, 2, 4)
