"""Seek-time model (paper §3.2).

The paper leverages the Worthington et al. three-parameter model: the
track-to-track, average, and full-stroke seek times from the datasheet, with
linear interpolation in seek distance between those anchors.  For future
drives of a given platter size, the three parameters themselves come from a
linear interpolation over real devices of different platter sizes (the seek
arc shrinks with the platter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import ReproError


@dataclass(frozen=True)
class SeekParameters:
    """The three datasheet seek anchors, in milliseconds.

    Attributes:
        track_to_track_ms: single-cylinder seek time.
        average_ms: average seek time (random uniform requests).
        full_stroke_ms: end-to-end seek time.
    """

    track_to_track_ms: float
    average_ms: float
    full_stroke_ms: float

    def __post_init__(self) -> None:
        if not 0 < self.track_to_track_ms <= self.average_ms <= self.full_stroke_ms:
            raise ReproError(
                "seek anchors must satisfy 0 < track_to_track <= average <= full_stroke; "
                f"got {self.track_to_track_ms}, {self.average_ms}, {self.full_stroke_ms}"
            )


class SeekModel:
    """Piecewise-linear seek-time curve over cylinder distance.

    The average seek time is pinned at the mean random-seek distance, which
    for a uniformly used band of ``cylinders`` tracks is ``cylinders / 3``.

    Args:
        parameters: the three seek anchors.
        cylinders: number of cylinders the actuator sweeps.
    """

    def __init__(self, parameters: SeekParameters, cylinders: int) -> None:
        if cylinders < 2:
            raise ReproError(f"need at least 2 cylinders for seeks, got {cylinders}")
        self.parameters = parameters
        self.cylinders = cylinders
        self._avg_distance = max(cylinders / 3.0, 2.0)
        self._full_distance = float(cylinders - 1)

    def seek_time_ms(self, distance: int) -> float:
        """Seek time for a cylinder distance, in milliseconds.

        Args:
            distance: absolute cylinder distance; 0 means no seek.
        """
        if distance < 0:
            raise ReproError(f"seek distance cannot be negative, got {distance}")
        if distance == 0:
            return 0.0
        if distance >= self._full_distance:
            return self.parameters.full_stroke_ms
        p = self.parameters
        if distance <= self._avg_distance:
            span = self._avg_distance - 1.0
            if span <= 0:
                return p.average_ms
            frac = (distance - 1.0) / span
            return p.track_to_track_ms + frac * (p.average_ms - p.track_to_track_ms)
        span = self._full_distance - self._avg_distance
        frac = (distance - self._avg_distance) / span
        return p.average_ms + frac * (p.full_stroke_ms - p.average_ms)

    def average_seek_ms(self) -> float:
        """The model's value at the mean random-seek distance.

        The curve pins the ``average_ms`` anchor exactly at the mean
        random-seek distance (``cylinders / 3``), so this *is* that anchor.
        Evaluating ``seek_time_ms`` at a rounded integer distance instead —
        as an earlier revision did — re-interpolates the piecewise-linear
        curve at up to half a cylinder away from the anchor, drifting off
        ``average_ms`` noticeably for small cylinder counts.
        """
        return self.parameters.average_ms

    def seek_time_ms_batch(self, distances: "Sequence[int]") -> "object":
        """Vectorized :meth:`seek_time_ms` over an array of distances.

        Requires numpy (the exact simulation path never calls this).  The
        returned ``float64`` array is *bitwise* identical to calling
        :meth:`seek_time_ms` element by element: every branch evaluates
        the same IEEE-754 expression, in the same operation order, as the
        scalar method — the fast-path differential suite asserts this
        exhaustively.
        """
        import numpy as np

        d = np.asarray(distances, dtype=np.float64)
        if d.size and float(d.min()) < 0:
            raise ReproError("seek distance cannot be negative")
        p = self.parameters
        span_lo = self._avg_distance - 1.0
        if span_lo <= 0:
            lower = np.full_like(d, p.average_ms)
        else:
            frac_lo = (d - 1.0) / span_lo
            lower = p.track_to_track_ms + frac_lo * (p.average_ms - p.track_to_track_ms)
        span_hi = self._full_distance - self._avg_distance
        with np.errstate(divide="ignore", invalid="ignore"):
            # span_hi can be <= 0 for tiny disks; every distance then falls
            # in the full-stroke clamp below, masking this branch entirely.
            frac_hi = (d - self._avg_distance) / span_hi
            upper = p.average_ms + frac_hi * (p.full_stroke_ms - p.average_ms)
        out = np.where(d <= self._avg_distance, lower, upper)
        out = np.where(d >= self._full_distance, p.full_stroke_ms, out)
        # distance 0 means "no seek" — an exact sentinel, not a tolerance
        out = np.where(d == 0.0, 0.0, out)  # thermolint: disable=TL002
        return out


#: Seek anchors measured on real server drives of various platter sizes
#: (datasheet values for the drives of Table 1 and their relatives), used to
#: interpolate anchors for arbitrary future platter sizes, as the paper does.
_PLATTER_SEEK_TABLE: Sequence[Tuple[float, SeekParameters]] = (
    (1.6, SeekParameters(track_to_track_ms=0.30, average_ms=2.40, full_stroke_ms=5.0)),
    (2.1, SeekParameters(track_to_track_ms=0.35, average_ms=3.00, full_stroke_ms=6.2)),
    (2.6, SeekParameters(track_to_track_ms=0.40, average_ms=3.60, full_stroke_ms=7.5)),
    (3.0, SeekParameters(track_to_track_ms=0.50, average_ms=4.20, full_stroke_ms=8.8)),
    (3.3, SeekParameters(track_to_track_ms=0.60, average_ms=4.70, full_stroke_ms=10.0)),
    (3.7, SeekParameters(track_to_track_ms=0.80, average_ms=7.40, full_stroke_ms=16.0)),
)


def seek_parameters_for_platter(diameter_in: float) -> SeekParameters:
    """Interpolate the three seek anchors for a platter diameter.

    Linear interpolation between the table entries; clamped at the table
    boundaries (the paper likewise refuses to extrapolate below 1.6 inches).

    Args:
        diameter_in: platter diameter in inches.
    """
    if diameter_in <= 0:
        raise ReproError(f"diameter must be positive, got {diameter_in}")
    table = _PLATTER_SEEK_TABLE
    if diameter_in <= table[0][0]:
        return table[0][1]
    if diameter_in >= table[-1][0]:
        return table[-1][1]
    for (d_lo, p_lo), (d_hi, p_hi) in zip(table, table[1:]):
        if d_lo <= diameter_in <= d_hi:
            frac = (diameter_in - d_lo) / (d_hi - d_lo)

            def lerp(a: float, b: float) -> float:
                return a + frac * (b - a)

            return SeekParameters(
                track_to_track_ms=lerp(p_lo.track_to_track_ms, p_hi.track_to_track_ms),
                average_ms=lerp(p_lo.average_ms, p_hi.average_ms),
                full_stroke_ms=lerp(p_lo.full_stroke_ms, p_hi.full_stroke_ms),
            )
    raise ReproError(f"failed to interpolate seek anchors for {diameter_in}")  # pragma: no cover


def seek_model_for_platter(diameter_in: float, cylinders: int) -> SeekModel:
    """Convenience: a :class:`SeekModel` for a platter size and track count."""
    return SeekModel(seek_parameters_for_platter(diameter_in), cylinders)
