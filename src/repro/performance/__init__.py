"""Performance model: seek curves, internal data rate, rotational timing."""

from repro.performance.extraction import (
    SeekSample,
    extract_seek_curve,
    extraction_error,
)
from repro.performance.idr import (
    idr_mb_per_s,
    media_rate_mb_per_s,
    required_rpm_for_idr,
    surface_idr_mb_per_s,
)
from repro.performance.rotation import (
    angle_at,
    average_rotational_latency_ms,
    full_rotation_ms,
    wait_for_angle_ms,
)
from repro.performance.seek import (
    SeekModel,
    SeekParameters,
    seek_model_for_platter,
    seek_parameters_for_platter,
)

__all__ = [
    "SeekSample",
    "extract_seek_curve",
    "extraction_error",
    "SeekModel",
    "SeekParameters",
    "seek_model_for_platter",
    "seek_parameters_for_platter",
    "idr_mb_per_s",
    "media_rate_mb_per_s",
    "required_rpm_for_idr",
    "surface_idr_mb_per_s",
    "angle_at",
    "average_rotational_latency_ms",
    "full_rotation_ms",
    "wait_for_angle_ms",
]
