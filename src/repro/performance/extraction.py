"""On-line extraction of drive parameters (after Worthington et al. [50]).

The paper's seek model comes from Worthington, Ganger, Patt & Wilkes, who
extracted seek curves from live SCSI drives by issuing measured probe
accesses.  This module does the same against a :class:`SimulatedDisk`,
closing the validation loop: the curve extracted from the simulator's
*behaviour* must match the analytic model it was built from.

The technique: for each probe distance, issue a single-sector read at the
current cylinder (to land the head deterministically), then one at the
target cylinder, and time the second access.  Repeating at several
rotational offsets and taking the *minimum* strips the rotational-latency
component, leaving seek + settle + overhead + one sector of transfer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Sequence

from repro.errors import SimulationError
from repro.simulation.request import Request

if TYPE_CHECKING:  # pragma: no cover - break the disk<->performance cycle
    from repro.simulation.disk import SimulatedDisk


@dataclass(frozen=True)
class SeekSample:
    """One extracted point of the seek curve.

    Attributes:
        distance: cylinder distance probed.
        seek_ms: extracted seek time (rotational component stripped,
            fixed overheads subtracted).
    """

    distance: int
    seek_ms: float


def _service_time(disk: SimulatedDisk, lba: int) -> float:
    """Issue a synchronous single-sector uncached read; return service ms."""
    start = disk.events.now_ms
    done: List[float] = []
    previous = disk.on_complete
    disk.on_complete = lambda r, t: done.append(t)
    try:
        disk.submit(Request(arrival_ms=start, lba=lba, sectors=1))
        disk.events.run()
    finally:
        disk.on_complete = previous
    if not done:
        raise SimulationError("probe request never completed")
    return done[-1] - start


def extract_seek_curve(
    disk: SimulatedDisk,
    distances: Sequence[int],
    rotational_probes: int = 8,
) -> List[SeekSample]:
    """Extract the seek curve from a simulated disk's observed behaviour.

    Args:
        disk: the disk to probe; its cache is disabled during extraction.
        distances: cylinder distances to measure.
        rotational_probes: probes per distance; the minimum over probes
            strips the rotational latency (more probes = tighter bound).

    Returns:
        One :class:`SeekSample` per requested distance.
    """
    if rotational_probes < 1:
        raise SimulationError("need at least one rotational probe")
    layout = disk.layout
    cache = disk.cache
    disk.cache = None  # probes must always hit the media

    def best_access_ms(distance: int) -> float:
        """Min service time over rotational offsets for a probe distance."""
        best = float("inf")
        spt = layout.sectors_per_track_at(distance)
        for probe in range(rotational_probes):
            # Park deterministically at cylinder 0...
            _service_time(disk, layout.lba_of(0, 0, 0))
            # ...then probe the target at a varied sector offset; the
            # minimum over offsets strips the rotational component.
            sector = (probe * spt) // rotational_probes
            best = min(best, _service_time(disk, layout.lba_of(distance, 0, sector)))
        return best

    try:
        # Fixed per-access floor (overhead + one-sector transfer), measured
        # with the *same* probe pattern at zero distance so the rotational
        # residue cancels in the subtraction.
        floor = best_access_ms(0)
        samples: List[SeekSample] = []
        for distance in distances:
            if not 0 <= distance < layout.cylinders:
                raise SimulationError(
                    f"distance {distance} outside [0, {layout.cylinders})"
                )
            samples.append(
                SeekSample(
                    distance=distance,
                    seek_ms=max(best_access_ms(distance) - floor, 0.0),
                )
            )
        return samples
    finally:
        disk.cache = cache


def extraction_error(
    disk: SimulatedDisk, samples: Sequence[SeekSample]
) -> float:
    """Worst absolute deviation (ms) between extracted samples and the
    disk's analytic seek model (0-distance samples excluded — their cost
    is pure rotational residue)."""
    worst = 0.0
    for sample in samples:
        if sample.distance == 0:
            continue
        analytic = disk.seek_model.seek_time_ms(sample.distance)
        worst = max(worst, abs(sample.seek_ms - analytic))
    return worst
