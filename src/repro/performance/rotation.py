"""Rotational timing helpers.

The simulator tracks the platter's angular position to compute exact
rotational delays; these helpers centralize the revolution arithmetic.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.units import rotation_time_ms


def full_rotation_ms(rpm: float) -> float:
    """One revolution, in milliseconds."""
    return rotation_time_ms(rpm)


def average_rotational_latency_ms(rpm: float) -> float:
    """Expected latency to a random angular target: half a revolution."""
    return rotation_time_ms(rpm) / 2.0


def angle_at(time_ms: float, rpm: float, phase: float = 0.0) -> float:
    """Fractional angular position of the platter at a time.

    Args:
        time_ms: absolute simulation time in milliseconds.
        rpm: spindle speed.
        phase: fractional position at time 0, in [0, 1).

    Returns:
        Position in revolutions, wrapped to [0, 1).
    """
    if time_ms < 0:
        raise ReproError(f"time cannot be negative, got {time_ms}")
    period = rotation_time_ms(rpm)
    return (phase + time_ms / period) % 1.0


def wait_for_angle_ms(now_ms: float, target_angle: float, rpm: float, phase: float = 0.0) -> float:
    """Time to wait from ``now_ms`` until the head is over ``target_angle``.

    Args:
        now_ms: current simulation time in milliseconds.
        target_angle: target angular position in revolutions, [0, 1).
        rpm: spindle speed.
        phase: platter phase at time 0.

    Returns:
        Non-negative wait in milliseconds, strictly less than one revolution.
    """
    if not 0.0 <= target_angle < 1.0:
        raise ReproError(f"target angle must be in [0, 1), got {target_angle}")
    period = rotation_time_ms(rpm)
    current = angle_at(now_ms, rpm, phase)
    delta = (target_angle - current) % 1.0
    if delta >= 1.0:
        # Float artifact: (-epsilon) % 1.0 can return exactly 1.0; the head
        # is already on target.
        delta = 0.0
    return delta * period
