"""Internal data rate (paper §3.2, eq. 4).

The maximum IDR is delivered by the outermost zone, which stores the most
sectors per track while the angular velocity is constant:

    IDR [MB/s] = (rpm / 60) * (n_tz0 * 512) / 2^20

The inverse — the RPM required to hit a target IDR at a given zone-0 sector
count — drives the roadmap's step 2.
"""

from __future__ import annotations

from repro.capacity.zones import ZonedSurface
from repro.errors import ReproError
from repro.units import BYTES_PER_SECTOR, MIB


def idr_mb_per_s(rpm: float, sectors_per_track_zone0: int) -> float:
    """Maximum internal data rate in MB/s (2**20 bytes).

    Args:
        rpm: spindle speed in rotations per minute.
        sectors_per_track_zone0: sectors per track in the outermost zone.
    """
    if rpm <= 0:
        raise ReproError(f"rpm must be positive, got {rpm}")
    if sectors_per_track_zone0 < 1:
        raise ReproError(
            f"zone-0 sector count must be >= 1, got {sectors_per_track_zone0}"
        )
    bytes_per_rev = sectors_per_track_zone0 * BYTES_PER_SECTOR
    return (rpm / 60.0) * bytes_per_rev / MIB


def required_rpm_for_idr(target_idr_mb_per_s: float, sectors_per_track_zone0: int) -> float:
    """RPM needed to reach a target IDR (inverse of :func:`idr_mb_per_s`)."""
    if target_idr_mb_per_s <= 0:
        raise ReproError(f"target IDR must be positive, got {target_idr_mb_per_s}")
    if sectors_per_track_zone0 < 1:
        raise ReproError(
            f"zone-0 sector count must be >= 1, got {sectors_per_track_zone0}"
        )
    bytes_per_rev = sectors_per_track_zone0 * BYTES_PER_SECTOR
    return target_idr_mb_per_s * MIB * 60.0 / bytes_per_rev


def surface_idr_mb_per_s(surface: ZonedSurface, rpm: float) -> float:
    """IDR of a laid-out surface at a spindle speed."""
    return idr_mb_per_s(rpm, surface.sectors_per_track_zone0)


def media_rate_mb_per_s(surface: ZonedSurface, rpm: float, track: int) -> float:
    """Sustained media rate while reading a specific track's zone, MB/s.

    Inner zones transfer slower than zone 0; the storage simulator uses this
    to compute per-request transfer times.
    """
    zone = surface.zone_of_track(track)
    return idr_mb_per_s(rpm, zone.sectors_per_track)
