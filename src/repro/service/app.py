"""The asyncio HTTP server wrapping the job manager.

Stdlib only: ``asyncio.start_server`` plus a minimal HTTP/1.1 layer
(request line, headers, ``Content-Length`` bodies; one request per
connection, ``Connection: close``).  The event loop never computes — it
parses, routes and serializes; every sweep runs in the manager's worker
threads, and the loop only ever blocks on sockets and short sleeps, so
one service instance multiplexes many tenants over one shared store.

Lifecycle: :meth:`ServiceApp.run` binds, installs SIGTERM/SIGINT
handlers (where the platform supports them) and serves until a signal
arrives; then it stops accepting, drains the manager (running jobs stop
at their next completed task — everything completed is already
persisted through ``on_result``) and returns.  A restarted replica
resumes interrupted jobs from the store at zero recompute cost.

Deployment note: point several replicas at one store directory
(``--store-dir`` on a shared filesystem) and give jobs the
``shared-store`` backend — the claim protocol partitions tasks across
replicas dynamically, and every replica serves every result.
"""

from __future__ import annotations

import asyncio
import signal
from typing import Any, Dict, Optional

from repro.service.jobs import JobManager
from repro.service.routes import (
    MAX_BODY_BYTES,
    Request,
    Response,
    build_router,
    dispatch,
    error_response,
)

__all__ = ["ServiceApp", "run_service"]

_STATUS_TEXT = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ServiceApp:
    """One service instance: HTTP front, job manager, drain choreography.

    Args:
        store: shared :class:`repro.store.ResultStore`.
        telemetry: optional :class:`repro.telemetry.Telemetry` backing
            ``/metrics``.
        host / port: bind address; port 0 asks the OS for an ephemeral
            port (read the resolved one from :attr:`port` after
            :meth:`start`).
        backend / workers / retries / task_timeout_s: manager defaults.
        drain_timeout_s: how long :meth:`shutdown` waits for running
            jobs to stop at their next task boundary.
        metric_labels: constant labels stamped on every ``/metrics``
            sample (e.g. an instance id).
    """

    def __init__(
        self,
        store: Any,
        telemetry: Optional[Any] = None,
        host: str = "127.0.0.1",
        port: int = 8765,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        retries: int = 1,
        task_timeout_s: Optional[float] = None,
        drain_timeout_s: float = 30.0,
        metric_labels: Optional[Dict[str, str]] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.drain_timeout_s = drain_timeout_s
        self.metric_labels = metric_labels
        self.manager = JobManager(
            store,
            telemetry=telemetry,
            backend=backend,
            workers=workers,
            retries=retries,
            task_timeout_s=task_timeout_s,
        )
        self.router = build_router()
        self._server: Optional[asyncio.AbstractServer] = None
        # Created inside the running loop (start()): binding an
        # asyncio.Event at construction time breaks on 3.9, where it
        # captures whatever loop exists *then*.
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # -- HTTP plumbing -------------------------------------------------------

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Request]:
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise ValueError(f"malformed request line: {request_line!r}")
        method, path, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise ValueError(f"request body too large ({length} bytes)")
        body = await reader.readexactly(length) if length else b""
        return Request(method=method, path=path, headers=headers, body=body)

    @staticmethod
    def _head(response: Response, chunked: bool) -> bytes:
        reason = _STATUS_TEXT.get(response.status, "Unknown")
        lines = [
            f"HTTP/1.1 {response.status} {reason}",
            f"Content-Type: {response.content_type}",
            "Connection: close",
        ]
        if chunked:
            lines.append("Transfer-Encoding: chunked")
        else:
            lines.append(f"Content-Length: {len(response.body)}")
        for name, value in response.headers.items():
            lines.append(f"{name}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await self._read_request(reader)
            except ValueError as exc:
                await self._write_response(
                    writer, error_response(str(exc), status=400)
                )
                return
            except asyncio.IncompleteReadError:
                return
            if request is None:
                return
            try:
                response = await dispatch(self, request)
            except Exception as exc:  # pragma: no cover - defensive
                response = error_response(
                    f"internal error: {type(exc).__name__}", status=500
                )
            await self._write_response(writer, response)
        except (ConnectionError, BrokenPipeError):  # client went away
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    async def _write_response(
        self, writer: asyncio.StreamWriter, response: Response
    ) -> None:
        if response.stream is None:
            writer.write(self._head(response, chunked=False) + response.body)
            await writer.drain()
            return
        writer.write(self._head(response, chunked=True))
        await writer.drain()
        async for chunk in response.stream:
            if not chunk:
                continue
            writer.write(f"{len(chunk):x}\r\n".encode("latin-1"))
            writer.write(chunk)
            writer.write(b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; resolves :attr:`port` when it was 0."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT trigger a graceful drain (no-op off-POSIX)."""
        loop = asyncio.get_running_loop()
        stop = self._stop
        assert stop is not None
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                return

    def request_stop(self) -> None:
        """Programmatic equivalent of SIGTERM; safe from any thread."""
        loop, stop = self._loop, self._stop
        if loop is None or stop is None:
            raise RuntimeError("service not started")
        loop.call_soon_threadsafe(stop.set)

    async def shutdown(self) -> None:
        """Stop accepting, then drain the manager in a worker thread."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, self.manager.drain, self.drain_timeout_s
        )

    async def run(self) -> None:
        """Serve until a stop signal, then drain.  The whole lifecycle."""
        await self.start()
        self.install_signal_handlers()
        assert self._stop is not None
        await self._stop.wait()
        await self.shutdown()


def run_service(
    store: Any,
    telemetry: Optional[Any] = None,
    host: str = "127.0.0.1",
    port: int = 8765,
    port_file: Optional[str] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    retries: int = 1,
    task_timeout_s: Optional[float] = None,
    drain_timeout_s: float = 30.0,
) -> int:
    """Blocking entry point behind ``repro serve``.

    ``port_file`` (written after bind) lets scripts using an ephemeral
    port (``--port 0``) discover where the service actually listens.
    """
    app = ServiceApp(
        store,
        telemetry=telemetry,
        host=host,
        port=port,
        backend=backend,
        workers=workers,
        retries=retries,
        task_timeout_s=task_timeout_s,
        drain_timeout_s=drain_timeout_s,
    )

    async def main() -> None:
        await app.start()
        print(f"repro service listening on http://{app.host}:{app.port}")
        if port_file:
            with open(port_file, "w", encoding="utf-8") as handle:
                handle.write(f"{app.port}\n")
        app.install_signal_handlers()
        assert app._stop is not None
        await app._stop.wait()
        print("drain requested; stopping intake and finishing in-flight tasks")
        await app.shutdown()
        print("drained; completed tasks are persisted in the store")

    asyncio.run(main())
    return 0
