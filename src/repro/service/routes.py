"""HTTP routes for the sweep job service.

A deliberately small request/response model over the stdlib: the app
layer parses one HTTP/1.1 request into a :class:`Request`, the router
matches ``METHOD /path`` against the table below, and the handler
returns a :class:`Response` — either a complete body or an async
chunk iterator (the ``/events`` stream).

Routes:

====== ============================ ===========================================
Method Path                         Meaning
====== ============================ ===========================================
POST   /v1/jobs                     submit a sweep config (idempotent on key)
GET    /v1/jobs                     list job summaries
GET    /v1/jobs/{id}                job state machine + per-task progress
GET    /v1/jobs/{id}/events         chunked progress event stream (JSONL)
GET    /v1/results/{key}            canonical JSON bytes under a content key
GET    /metrics                     Prometheus text exposition
GET    /healthz                     liveness (503 while draining)
====== ============================ ===========================================

Every JSON error body is ``{"error": ...}`` with the status carried by
:class:`repro.errors.ServiceError`.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import (
    Any,
    AsyncIterator,
    Awaitable,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
)

from repro.errors import ReproError, ServiceError

__all__ = [
    "Request",
    "Response",
    "Router",
    "build_router",
    "json_response",
    "EVENT_POLL_S",
]

#: How often the event stream re-checks a job for fresh events.  Small
#: enough to feel live, large enough not to spin the lock.
EVENT_POLL_S = 0.05

#: Largest request body the service accepts (a sweep config is tiny).
MAX_BODY_BYTES = 1 << 20

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: Dict[str, str]
    body: bytes

    def json(self) -> Any:
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from exc


@dataclass
class Response:
    """One response: either ``body`` or a chunked ``stream``."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)
    stream: Optional[AsyncIterator[bytes]] = None


def json_response(payload: Any, status: int = 200) -> Response:
    """A sorted-keys JSON response (deterministic wire bytes)."""
    body = (
        json.dumps(payload, sort_keys=True, allow_nan=False) + "\n"
    ).encode("utf-8")
    return Response(status=status, body=body)


def error_response(message: str, status: int) -> Response:
    return json_response({"error": message}, status=status)


Handler = Callable[[Any, Request, Tuple[str, ...]], Awaitable[Response]]


class Router:
    """Exact-prefix route table with positional path parameters."""

    def __init__(self) -> None:
        #: (method, segments) -> handler; a ``None`` segment is a
        #: parameter slot captured into the handler's ``params`` tuple.
        self._routes: List[Tuple[str, Tuple[Optional[str], ...], Handler]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        segments = tuple(
            None if part == "{}" else part
            for part in pattern.strip("/").split("/")
        )
        self._routes.append((method, segments, handler))

    def resolve(
        self, method: str, path: str
    ) -> Tuple[Optional[Handler], Tuple[str, ...], bool]:
        """(handler, params, path_known) for one request line."""
        parts = tuple(p for p in path.split("?")[0].strip("/").split("/"))
        path_known = False
        for route_method, segments, handler in self._routes:
            if len(segments) != len(parts):
                continue
            params: List[str] = []
            for segment, part in zip(segments, parts):
                if segment is None:
                    if not part:
                        break
                    params.append(part)
                elif segment != part:
                    break
            else:
                path_known = True
                if route_method == method:
                    return handler, tuple(params), True
        return None, (), path_known


async def handle_submit(app: Any, request: Request, params: Tuple[str, ...]) -> Response:
    job, deduped = app.manager.submit(request.json())
    document = job.document()
    document["deduplicated"] = deduped
    return json_response(document, status=200 if deduped else 201)


async def handle_list_jobs(
    app: Any, request: Request, params: Tuple[str, ...]
) -> Response:
    jobs = [
        {
            "id": job.id,
            "key": job.key,
            "state": job.state,
            "backend": job.backend,
            "created_s": job.created_s,
        }
        for job in app.manager.jobs()
    ]
    jobs.sort(key=lambda j: j["id"])
    return json_response({"jobs": jobs})


async def handle_get_job(
    app: Any, request: Request, params: Tuple[str, ...]
) -> Response:
    job = app.manager.get(params[0])
    return json_response(job.document())


async def handle_job_events(
    app: Any, request: Request, params: Tuple[str, ...]
) -> Response:
    job_id = params[0]
    app.manager.get(job_id)  # 404 before the stream starts

    async def stream() -> AsyncIterator[bytes]:
        cursor = 0
        while True:
            events, terminal = app.manager.events_since(job_id, cursor)
            for event in events:
                yield (
                    json.dumps(event, sort_keys=True, allow_nan=False) + "\n"
                ).encode("utf-8")
            cursor += len(events)
            if terminal and not events:
                return
            if not events:
                await asyncio.sleep(EVENT_POLL_S)

    return Response(
        content_type="application/x-ndjson", stream=stream()
    )


async def handle_results(
    app: Any, request: Request, params: Tuple[str, ...]
) -> Response:
    body = app.manager.results_bytes(params[0])
    return Response(body=body, content_type="application/json")


async def handle_metrics(
    app: Any, request: Request, params: Tuple[str, ...]
) -> Response:
    text = app.manager.metrics_text(labels=app.metric_labels)
    return Response(
        body=text.encode("utf-8"), content_type=PROMETHEUS_CONTENT_TYPE
    )


async def handle_healthz(
    app: Any, request: Request, params: Tuple[str, ...]
) -> Response:
    if app.manager.draining:
        return json_response({"status": "draining"}, status=503)
    return json_response({"status": "ok"})


def build_router() -> Router:
    """The service's route table."""
    router = Router()
    router.add("POST", "/v1/jobs", handle_submit)
    router.add("GET", "/v1/jobs", handle_list_jobs)
    router.add("GET", "/v1/jobs/{}", handle_get_job)
    router.add("GET", "/v1/jobs/{}/events", handle_job_events)
    router.add("GET", "/v1/results/{}", handle_results)
    router.add("GET", "/metrics", handle_metrics)
    router.add("GET", "/healthz", handle_healthz)
    return router


async def dispatch(app: Any, request: Request) -> Response:
    """Route one request, mapping library errors to wire errors."""
    handler, params, path_known = app.router.resolve(
        request.method, request.path
    )
    if handler is None:
        if path_known:
            return error_response(
                f"method {request.method} not allowed here", status=405
            )
        return error_response(f"no such route: {request.path}", status=404)
    try:
        return await handler(app, request, params)
    except ServiceError as exc:
        return error_response(str(exc), status=exc.status)
    except ReproError as exc:
        return error_response(str(exc), status=400)
