"""Job lifecycle for the sweep service: queueing, dedup, drain.

The manager is the synchronous heart the async HTTP layer talks to.  It
owns one worker thread per *backend name* (serial jobs queue behind
serial jobs, process-pool jobs behind process-pool jobs), and every job
runs through :func:`repro.simulation.resilience.run_sweep_cached` over
the shared :class:`repro.store.ResultStore` — which is where all the
multi-tenant economics come from:

* **Dedup across tenants.**  A submission's identity is its canonical
  config key (:func:`repro.service.schemas.job_config_key`).  A second
  tenant posting the same config while the first job is queued, running
  or done gets the *same* job back (``service.dedup_hits``), so a hot
  config posted by N clients costs one computation.  Only a *failed* job
  is re-runnable: resubmitting its config starts a fresh attempt.
* **Restart-free resume.**  Every completed task is persisted through
  ``on_result`` the moment it lands, so a drained or killed service
  loses only in-flight attempts; resubmitting the job after restart
  replays the finished tasks as store hits with zero recomputation.
* **Byte-identity with the CLI.**  The per-task keys and codec are the
  same ones ``repro sweep workload`` uses, and the finished job document
  is the same :data:`repro.simulation.sweep.RESULTS_SCHEMA` document —
  fetched via ``/v1/results/<key>`` it is byte-for-byte what
  ``--results-out`` writes.

Graceful drain: :meth:`JobManager.drain` stops intake (submissions get a
503), asks running jobs to stop at their next completed task (the
``on_result`` hook raises :class:`JobDrained`, which unwinds through the
resilience loop and shuts the backend down), and joins the workers.
Tasks that completed before the drain are already in the store.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ServiceError
from repro.service.schemas import (
    EVENT_SCHEMA,
    JOB_SCHEMA,
    SweepJobConfig,
    job_config_key,
    parse_job_request,
)

__all__ = [
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JOB_DONE",
    "JOB_FAILED",
    "SERVICE_RESULTS_KIND",
    "Job",
    "JobDrained",
    "JobManager",
]

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"

#: Kind tag on the assembled results document persisted under the job's
#: config key (informational; the key namespace is what separates it
#: from per-task entries).
SERVICE_RESULTS_KIND = "service.sweep_results/1"

TASK_PENDING = "pending"
TASK_DONE = "done"
TASK_CACHED = "cached"
TASK_FAILED = "failed"


class JobDrained(Exception):
    """Control-flow signal: the manager asked a running job to stop.

    Raised from the ``on_result`` hook so it unwinds through the
    resilience loop (whose ``finally`` shuts the backend down) after the
    just-landed task has been persisted — nothing computed is lost.
    """


class Job:
    """One submitted sweep and its observable lifecycle."""

    def __init__(
        self,
        job_id: str,
        key: str,
        config: SweepJobConfig,
        task_keys: List[str],
        task_labels: List[str],
        backend: str,
    ) -> None:
        self.id = job_id
        self.key = key
        self.config = config
        self.task_keys = task_keys
        self.task_labels = task_labels
        self.backend = backend
        self.state = JOB_QUEUED
        self.error: Optional[str] = None
        self.created_s = time.time()
        self.started_s: Optional[float] = None
        self.finished_s: Optional[float] = None
        self.task_states: List[str] = [TASK_PENDING] * len(task_keys)
        self.cached_hits = 0
        self.store_hits = 0
        self.store_misses = 0
        #: Monotonic event log consumed by the ``/events`` stream.
        self.events: List[Dict[str, Any]] = []

    @property
    def terminal(self) -> bool:
        return self.state in (JOB_DONE, JOB_FAILED)

    @property
    def done_tasks(self) -> int:
        return sum(
            1 for s in self.task_states if s in (TASK_DONE, TASK_CACHED)
        )

    def document(self) -> Dict[str, Any]:
        """The wire form ``GET /v1/jobs/<id>`` returns."""
        config = self.config.material_config()
        config["kind"] = self.config.request_kind
        config["backend"] = self.backend
        config["retries"] = self.config.retries
        return {
            "schema": JOB_SCHEMA,
            "id": self.id,
            "key": self.key,
            "state": self.state,
            "error": self.error,
            "backend": self.backend,
            "created_s": self.created_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
            "config": config,
            "results_key": self.key,
            "progress": {
                "total": len(self.task_keys),
                "done": self.done_tasks,
                "cached": self.cached_hits,
                "failed": sum(1 for s in self.task_states if s == TASK_FAILED),
            },
            "tasks": [
                {
                    "index": index,
                    "label": self.task_labels[index],
                    "key": self.task_keys[index],
                    "state": self.task_states[index],
                }
                for index in range(len(self.task_keys))
            ],
        }


class JobManager:
    """Thread-safe job registry + per-backend worker threads.

    Args:
        store: the shared :class:`repro.store.ResultStore` (required —
            dedup across tenants and restart-free resume both live in
            it).
        telemetry: optional :class:`repro.telemetry.Telemetry`;
            ``service.*`` counters land in its registry next to the
            ``store.*`` / ``sweep.*`` ones.
        backend: default backend name for jobs that don't pick one
            (None = ``$REPRO_SWEEP_BACKEND`` or the process pool).
        workers: default worker count forwarded to the sweep.
        retries: default per-task retry budget.
        task_timeout_s: per-task deadline forwarded to the sweep.
    """

    def __init__(
        self,
        store: Any,
        telemetry: Optional[Any] = None,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        retries: int = 1,
        task_timeout_s: Optional[float] = None,
    ) -> None:
        from repro.telemetry import maybe

        self.store = store
        self.telemetry = telemetry
        self._tel = maybe(telemetry)
        self._default_backend = backend
        self._default_workers = workers
        self._default_retries = retries
        self._task_timeout_s = task_timeout_s
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._by_key: Dict[str, str] = {}
        self._seq = 0
        self._queues: Dict[str, "queue.Queue[Optional[Job]]"] = {}
        self._threads: Dict[str, threading.Thread] = {}
        self._draining = threading.Event()
        self._workload_jobs: Dict[str, int] = {}
        store.bind_telemetry(telemetry)

    # -- submission ----------------------------------------------------------

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self._tel is not None:
            self._tel.count(name, amount)

    def submit(self, payload: Any) -> Tuple[Job, bool]:
        """Validate + enqueue one submission; returns ``(job, deduped)``.

        Idempotent on the config key: an identical config whose job is
        queued, running or done returns that job (``deduped=True``).  A
        failed job does not absorb resubmissions — the new submission
        gets a fresh job (completed tasks still resume free from the
        store).
        """
        if self._draining.is_set():
            raise ServiceError("service is draining", status=503)
        config = parse_job_request(payload)
        from repro.errors import ReproError
        from repro.simulation.backends import resolve_backend_name

        try:
            backend = resolve_backend_name(
                config.backend
                if config.backend is not None
                else self._default_backend
            )
            tasks = config.build_tasks()
        except ServiceError:
            raise
        except ReproError as exc:
            # Unknown workload/engine/backend names, invalid fault or
            # fleet-topology plans.
            raise ServiceError(str(exc)) from exc
        key = job_config_key(config)
        task_key = config.sweep_plumbing()["task_key"]
        task_keys = [task_key(task) for task in tasks]
        task_labels = [task.label() for task in tasks]
        with self._cond:
            existing_id = self._by_key.get(key)
            if existing_id is not None:
                existing = self._jobs[existing_id]
                if existing.state != JOB_FAILED:
                    self._count("service.dedup_hits")
                    return existing, True
            self._seq += 1
            job = Job(
                job_id=f"job-{self._seq:06d}-{key[:8]}",
                key=key,
                config=config,
                task_keys=task_keys,
                task_labels=task_labels,
                backend=backend,
            )
            self._jobs[job.id] = job
            self._by_key[key] = job.id
            for name in set(config.workloads):
                self._workload_jobs[name] = self._workload_jobs.get(name, 0) + 1
            self._append_event(job, "job_queued")
            self._count("service.jobs.submitted")
            self._ensure_worker(backend).put(job)
        return job, False

    def _ensure_worker(self, backend: str) -> "queue.Queue[Optional[Job]]":
        """The submission queue for ``backend``, starting its thread."""
        q = self._queues.get(backend)
        if q is None:
            q = queue.Queue()
            self._queues[backend] = q
            thread = threading.Thread(
                target=self._worker_loop,
                args=(backend, q),
                name=f"repro-service-{backend}",
                daemon=True,
            )
            self._threads[backend] = thread
            thread.start()
        return q

    # -- execution -----------------------------------------------------------

    def _worker_loop(
        self, backend: str, q: "queue.Queue[Optional[Job]]"
    ) -> None:
        while True:
            job = q.get()
            if job is None:  # drain sentinel
                return
            if self._draining.is_set():
                self._finish(job, JOB_FAILED, "drained before start")
                continue
            try:
                self._run_job(job)
            except Exception as exc:  # pragma: no cover - defensive
                self._finish(job, JOB_FAILED, f"internal error: {exc!r}")

    def _run_job(self, job: Job) -> None:
        from repro.simulation.resilience import run_sweep_cached

        plumbing = job.config.sweep_plumbing()
        with self._cond:
            job.state = JOB_RUNNING
            job.started_s = time.time()
            self._append_event(job, "job_running")

        def on_result(envelope: Any) -> None:
            with self._cond:
                state = TASK_CACHED if envelope.cached else TASK_DONE
                job.task_states[envelope.index] = state
                if envelope.cached:
                    job.cached_hits += 1
                self._append_event(
                    job,
                    "task_done",
                    index=envelope.index,
                    label=job.task_labels[envelope.index],
                    key=job.task_keys[envelope.index],
                    cached=bool(envelope.cached),
                )
            if self._draining.is_set():
                # The landed task is already persisted; stop here so the
                # backend unwinds and the process can exit promptly.
                raise JobDrained(job.id)

        tasks = job.config.build_tasks()
        workers = plumbing["plan_workers"](
            tasks,
            job.config.workers
            if job.config.workers is not None
            else self._default_workers,
        )
        try:
            report = run_sweep_cached(
                tasks,
                plumbing["worker"],
                self.store,
                plumbing["task_key"],
                plumbing["encode"],
                plumbing["decode"],
                kind=plumbing["task_kind"],
                workers=workers,
                retries=job.config.retries,
                timeout_s=self._task_timeout_s,
                telemetry=self.telemetry,
                backend=job.backend,
                on_result=on_result,
            )
        except JobDrained:
            self._count("service.jobs.drained")
            self._finish(job, JOB_FAILED, "drained")
            return
        except Exception as exc:
            self._finish(job, JOB_FAILED, f"{type(exc).__name__}: {exc}")
            return
        with self._cond:
            job.store_hits = report.store_hits
            job.store_misses = report.store_misses
        failed = [e for e in report.envelopes if not e.ok]
        if failed:
            with self._cond:
                for envelope in failed:
                    job.task_states[envelope.index] = TASK_FAILED
            first = failed[0]
            self._finish(
                job,
                JOB_FAILED,
                f"{len(failed)} task(s) failed "
                f"(first: {first.error_type}: {first.error_message})",
            )
            return
        results = report.results()
        try:
            self.store.put(
                job.key,
                plumbing["document"](results),
                kind=SERVICE_RESULTS_KIND,
            )
        except Exception:
            # Same contract as task persists: the assembled document is
            # reconstructible from the per-task entries, so a failing
            # put degrades the fetch path, never the job.
            self.store.note_put_failed()
        self._finish(job, JOB_DONE, None)

    def _finish(self, job: Job, state: str, error: Optional[str]) -> None:
        with self._cond:
            job.state = state
            job.error = error
            job.finished_s = time.time()
            event = "job_done" if state == JOB_DONE else "job_failed"
            self._append_event(job, event, error=error)
            if state == JOB_DONE:
                self._count("service.jobs.completed")
            else:
                self._count("service.jobs.failed")

    def _append_event(self, job: Job, kind: str, **fields: Any) -> None:
        """Append one event (caller holds the lock) and wake waiters."""
        event: Dict[str, Any] = {
            "schema": EVENT_SCHEMA,
            "seq": len(job.events),
            "job": job.id,
            "event": kind,
            "state": job.state,
            "time_s": time.time(),
        }
        event.update(fields)
        job.events.append(event)
        self._cond.notify_all()

    # -- observation ---------------------------------------------------------

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"no such job: {job_id}", status=404)
        return job

    def jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def events_since(self, job_id: str, cursor: int) -> Tuple[List[Dict[str, Any]], bool]:
        """Events after ``cursor`` plus whether the job is terminal."""
        job = self.get(job_id)
        with self._lock:
            return list(job.events[cursor:]), job.terminal

    def wait_for_job(self, job_id: str, timeout_s: float = 60.0) -> Job:
        """Block until the job is terminal (test/CLI convenience)."""
        job = self.get(job_id)
        deadline = time.monotonic() + timeout_s
        with self._cond:
            while not job.terminal:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ServiceError(
                        f"job {job_id} still {job.state} after {timeout_s} s",
                        status=504,
                    )
                self._cond.wait(remaining)
        return job

    def results_bytes(self, key: str) -> bytes:
        """The stored payload under ``key`` as canonical JSON bytes.

        For a job's config key this is the :data:`RESULTS_SCHEMA`
        document, byte-identical to ``repro sweep workload
        --results-out`` for the same config.  If the assembled document
        was evicted but every per-task entry survives, it is rebuilt
        from them (and re-persisted) transparently.
        """
        from repro.errors import StoreError
        from repro.store import stable_json

        try:
            self.store._check_key(key)
        except StoreError as exc:
            raise ServiceError(str(exc), status=400) from exc
        payload = self.store.get(key)
        if payload is None:
            payload = self._rebuild_results(key)
        if payload is None:
            raise ServiceError(f"no result under key {key}", status=404)
        self._count("service.results_served")
        return (stable_json(payload) + "\n").encode("utf-8")

    def _rebuild_results(self, key: str) -> Optional[Any]:
        """Reassemble a job's results document from its per-task entries."""
        with self._lock:
            job_id = self._by_key.get(key)
            job = self._jobs.get(job_id) if job_id is not None else None
            task_keys = list(job.task_keys) if job is not None else None
        if task_keys is None or job is None or job.state != JOB_DONE:
            return None
        parts = [self.store.get(task_key) for task_key in task_keys]
        if any(part is None for part in parts):
            return None
        document = job.config.sweep_plumbing()["document_from_payloads"](parts)
        try:
            self.store.put(key, document, kind=SERVICE_RESULTS_KIND)
        except Exception:
            self.store.note_put_failed()
        return document

    def metrics_text(self, labels: Optional[Dict[str, str]] = None) -> str:
        """The Prometheus exposition for ``GET /metrics``.

        Registry metrics (``service.*``, ``store.*``, ``sweep.*``) carry
        the optional constant ``labels``; per-workload job counts are
        appended as properly-escaped labelled samples.
        """
        from repro.reporting.telemetry_export import (
            format_sample,
            registry_to_prometheus,
        )

        if self._tel is None:
            return ""
        text = registry_to_prometheus(self._tel.registry, labels=labels)
        with self._lock:
            counts = sorted(self._workload_jobs.items())
        if counts:
            name = "repro_service_jobs_by_workload_total"
            lines = [
                f"# HELP {name} jobs submitted per workload",
                f"# TYPE {name} counter",
            ]
            for workload, count in counts:
                sample_labels = dict(labels or {})
                sample_labels["workload"] = workload
                lines.append(format_sample(name, sample_labels, float(count)))
            text += "\n".join(lines) + "\n"
        return text

    # -- drain ---------------------------------------------------------------

    def drain(self, timeout_s: float = 30.0) -> None:
        """Stop intake, stop running jobs at their next task, join workers.

        Everything completed before (and during) the drain is already in
        the store; a restarted service resumes the interrupted jobs free
        on resubmission.
        """
        self._draining.set()
        with self._lock:
            queues = list(self._queues.values())
            threads = list(self._threads.values())
        for q in queues:
            q.put(None)
        deadline = time.monotonic() + timeout_s
        for thread in threads:
            remaining = max(0.1, deadline - time.monotonic())
            thread.join(remaining)

    @property
    def draining(self) -> bool:
        return self._draining.is_set()
