"""The multi-tenant sweep job service (``repro serve``).

A stdlib-only asyncio HTTP/JSON front over the machinery the rest of
the library already provides: canonical config keys
(:mod:`repro.store.canonical`) for cross-tenant dedup, the pluggable
execution backends (:mod:`repro.simulation.backends`) for compute, the
resilient cached sweep loop (:mod:`repro.simulation.resilience`) for
retries + persistence, and the Prometheus exporter for ``/metrics``.

Layers, bottom up:

* :mod:`repro.service.schemas` — wire-protocol validation and the job
  config key (the dedup identity).
* :mod:`repro.service.jobs` — :class:`JobManager`: per-backend worker
  threads, job state machine, progress events, graceful drain.
* :mod:`repro.service.routes` — the HTTP route table and handlers.
* :mod:`repro.service.app` — the asyncio server, signal handling, and
  the blocking :func:`run_service` entry point the CLI calls.

See ``docs/service.md`` for the API reference and deployment notes.
"""

from repro.service.app import ServiceApp, run_service
from repro.service.jobs import Job, JobManager
from repro.service.schemas import (
    SERVICE_JOB_KIND,
    SweepJobConfig,
    job_config_key,
    parse_job_request,
)

__all__ = [
    "ServiceApp",
    "run_service",
    "Job",
    "JobManager",
    "SweepJobConfig",
    "SERVICE_JOB_KIND",
    "job_config_key",
    "parse_job_request",
]
