"""Wire-protocol schemas for the sweep job service.

A job submission is a JSON object describing one workload sweep — the
same knobs ``repro sweep workload`` takes.  Parsing is *strict*: unknown
fields are rejected with a 400 instead of ignored, because every
accepted field either enters the job's canonical config key or is an
explicitly-listed execution knob.  Silently dropping a typo'd field
("rqeuests") would hand the tenant a dedup hit for a sweep they did not
ask for.

Two layers of keys:

* **Job config key** (:func:`job_config_key`) — BLAKE2b over the
  *material* sweep fields only, kind :data:`SERVICE_JOB_KIND`.  This is
  the dedup identity: two tenants posting the same sweep share one job.
  Execution knobs (``backend``, ``retries``, ``workers``) never enter
  it, the same contract the store layer keeps for task keys.
* **Task keys** — the per-(workload, RPM) content keys from
  :func:`repro.simulation.sweep.workload_task_key`, identical to what
  the CLI computes; results land in the shared store under them, which
  is what makes a service result byte-identical to a CLI run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ServiceError

__all__ = [
    "SERVICE_JOB_KIND",
    "JOB_SCHEMA",
    "EVENT_SCHEMA",
    "SweepJobConfig",
    "parse_job_request",
    "job_config_key",
]

#: Kind tag salted into every job config key.  Bump the suffix when the
#: material field set changes meaning.
SERVICE_JOB_KIND = "service.sweep_job/1"

#: Schema tag on every job document the service returns.
JOB_SCHEMA = "repro.service.job/1"

#: Schema tag on every progress event in the ``/events`` stream.
EVENT_SCHEMA = "repro.service.event/1"


@dataclass(frozen=True)
class SweepJobConfig:
    """One validated sweep submission.

    Material fields (everything except ``backend``/``retries``/
    ``workers``) define the job's dedup identity and must mirror
    :func:`repro.simulation.sweep.build_workload_tasks` exactly — a
    field accepted here but not forwarded there would produce
    same-key-different-results, the one unforgivable store bug.
    """

    workloads: Tuple[str, ...]
    rpms: Optional[Tuple[float, ...]] = None
    rpm_steps: int = 4
    requests: int = 6000
    seed: int = 1
    keep_samples: bool = False
    engine: str = "exact"
    inject_faults: bool = False
    fault_seed: int = 0
    media_rate: float = 0.01
    servo_rate: float = 0.0
    # Execution knobs — never part of the config key.
    backend: Optional[str] = None
    retries: int = 1
    workers: Optional[int] = None

    def material_config(self) -> Dict[str, Any]:
        """The key-entering field subset, in canonical form."""
        return {
            "workloads": list(self.workloads),
            "rpms": list(self.rpms) if self.rpms is not None else None,
            "rpm_steps": self.rpm_steps,
            "requests": self.requests,
            "seed": self.seed,
            "keep_samples": self.keep_samples,
            "engine": self.engine,
            "inject_faults": self.inject_faults,
            "fault_seed": self.fault_seed if self.inject_faults else None,
            "media_rate": self.media_rate if self.inject_faults else None,
            "servo_rate": self.servo_rate if self.inject_faults else None,
        }

    def fault_config(self) -> Optional[Any]:
        """The FaultConfig this job injects (None when injection is off)."""
        if not self.inject_faults:
            return None
        from repro.faults import FaultConfig

        return FaultConfig(
            seed=self.fault_seed,
            media_rate=self.media_rate,
            servo_rate=self.servo_rate,
        )

    def build_tasks(self) -> List[Any]:
        """The task grid, validated exactly like the CLI builds it."""
        from repro.simulation.sweep import build_workload_tasks

        return build_workload_tasks(
            self.workloads,
            rpms=self.rpms,
            rpm_steps=self.rpm_steps,
            requests=self.requests,
            seed=self.seed,
            keep_samples=self.keep_samples,
            fault_config=self.fault_config(),
            engine=self.engine,
        )


def job_config_key(config: SweepJobConfig) -> str:
    """The job's canonical dedup key (material fields only)."""
    from repro.store import config_key

    return config_key(SERVICE_JOB_KIND, config.material_config())


_FIELD_TYPES: Dict[str, Tuple[type, ...]] = {
    "workloads": (list,),
    "rpms": (list, type(None)),
    "rpm_steps": (int,),
    "requests": (int,),
    "seed": (int,),
    "keep_samples": (bool,),
    "engine": (str,),
    "inject_faults": (bool,),
    "fault_seed": (int,),
    "media_rate": (int, float),
    "servo_rate": (int, float),
    "backend": (str, type(None)),
    "retries": (int,),
    "workers": (int, type(None)),
}


def parse_job_request(payload: Any) -> SweepJobConfig:
    """Validate one ``POST /v1/jobs`` body into a :class:`SweepJobConfig`.

    Raises :class:`ServiceError` (status 400) on anything malformed:
    wrong top-level type, unknown fields, wrong field types, empty or
    non-string workload lists, non-positive counts.  Workload/engine
    *names* are validated later by ``build_tasks`` (the catalog owns
    them), still before the job is queued.
    """
    if not isinstance(payload, Mapping):
        raise ServiceError("job request must be a JSON object")
    unknown = sorted(set(payload) - set(_FIELD_TYPES))
    if unknown:
        raise ServiceError(
            f"unknown job field(s): {', '.join(unknown)} "
            f"(accepted: {', '.join(sorted(_FIELD_TYPES))})"
        )
    if "workloads" not in payload:
        raise ServiceError("job request needs a 'workloads' list")
    for name, types in _FIELD_TYPES.items():
        if name not in payload:
            continue
        value = payload[name]
        # bool is an int subclass; don't let true/false sneak into counts.
        if isinstance(value, bool) and bool not in types:
            raise ServiceError(f"field {name!r} has the wrong type")
        if not isinstance(value, types):
            raise ServiceError(f"field {name!r} has the wrong type")
    workloads = payload["workloads"]
    if not workloads or not all(
        isinstance(w, str) and w for w in workloads
    ):
        raise ServiceError("'workloads' must be a non-empty list of names")
    rpms = payload.get("rpms")
    if rpms is not None:
        if not rpms or not all(
            isinstance(r, (int, float)) and not isinstance(r, bool) for r in rpms
        ):
            raise ServiceError("'rpms' must be a non-empty list of numbers")
        rpms = tuple(float(r) for r in rpms)
    config = SweepJobConfig(
        workloads=tuple(workloads),
        rpms=rpms,
        rpm_steps=int(payload.get("rpm_steps", 4)),
        requests=int(payload.get("requests", 6000)),
        seed=int(payload.get("seed", 1)),
        keep_samples=bool(payload.get("keep_samples", False)),
        engine=str(payload.get("engine", "exact")),
        inject_faults=bool(payload.get("inject_faults", False)),
        fault_seed=int(payload.get("fault_seed", 0)),
        media_rate=float(payload.get("media_rate", 0.01)),
        servo_rate=float(payload.get("servo_rate", 0.0)),
        backend=payload.get("backend"),
        retries=int(payload.get("retries", 1)),
        workers=payload.get("workers"),
    )
    if config.rpm_steps <= 0:
        raise ServiceError("'rpm_steps' must be positive")
    if config.requests <= 0:
        raise ServiceError("'requests' must be positive")
    if config.retries < 0:
        raise ServiceError("'retries' must be >= 0")
    if config.workers is not None and config.workers < 0:
        raise ServiceError("'workers' must be >= 0")
    return config
