"""Wire-protocol schemas for the sweep job service.

A job submission is a JSON object describing one sweep.  The optional
``kind`` field selects the job family: ``workload_sweep`` (the default —
the same knobs ``repro sweep workload`` takes) or ``fleet_sweep`` (the
knobs ``repro fleet`` takes).  Parsing is *strict*: unknown fields are
rejected with a 400 instead of ignored, because every accepted field
either enters the job's canonical config key or is an explicitly-listed
execution knob.  Silently dropping a typo'd field ("rqeuests") would
hand the tenant a dedup hit for a sweep they did not ask for.

Two layers of keys:

* **Job config key** (:func:`job_config_key`) — BLAKE2b over the
  *material* sweep fields only, kind :data:`SERVICE_JOB_KIND`.  This is
  the dedup identity: two tenants posting the same sweep share one job.
  Execution knobs (``backend``, ``retries``, ``workers``) never enter
  it, the same contract the store layer keeps for task keys.
* **Task keys** — the per-(workload, RPM) content keys from
  :func:`repro.simulation.sweep.workload_task_key`, identical to what
  the CLI computes; results land in the shared store under them, which
  is what makes a service result byte-identical to a CLI run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.constants import AMBIENT_TEMPERATURE_C, THERMAL_ENVELOPE_C
from repro.errors import ServiceError

__all__ = [
    "SERVICE_JOB_KIND",
    "SERVICE_FLEET_JOB_KIND",
    "JOB_SCHEMA",
    "EVENT_SCHEMA",
    "SweepJobConfig",
    "FleetJobConfig",
    "parse_job_request",
    "job_config_key",
]

#: Kind tag salted into every job config key.  Bump the suffix when the
#: material field set changes meaning.
SERVICE_JOB_KIND = "service.sweep_job/1"

#: Kind tag salted into fleet job config keys — a separate namespace, so
#: a fleet job can never collide with a workload job.
SERVICE_FLEET_JOB_KIND = "service.fleet_job/1"

#: Schema tag on every job document the service returns.
JOB_SCHEMA = "repro.service.job/1"

#: Schema tag on every progress event in the ``/events`` stream.
EVENT_SCHEMA = "repro.service.event/1"


@dataclass(frozen=True)
class SweepJobConfig:
    """One validated sweep submission.

    Material fields (everything except ``backend``/``retries``/
    ``workers``) define the job's dedup identity and must mirror
    :func:`repro.simulation.sweep.build_workload_tasks` exactly — a
    field accepted here but not forwarded there would produce
    same-key-different-results, the one unforgivable store bug.
    """

    #: Wire-protocol job family this config parses from.
    request_kind = "workload_sweep"
    #: Config-key kind tag (the dedup namespace).
    job_kind = SERVICE_JOB_KIND

    workloads: Tuple[str, ...]
    rpms: Optional[Tuple[float, ...]] = None
    rpm_steps: int = 4
    requests: int = 6000
    seed: int = 1
    keep_samples: bool = False
    engine: str = "exact"
    inject_faults: bool = False
    fault_seed: int = 0
    media_rate: float = 0.01
    servo_rate: float = 0.0
    # Execution knobs — never part of the config key.
    backend: Optional[str] = None
    retries: int = 1
    workers: Optional[int] = None

    def material_config(self) -> Dict[str, Any]:
        """The key-entering field subset, in canonical form."""
        return {
            "workloads": list(self.workloads),
            "rpms": list(self.rpms) if self.rpms is not None else None,
            "rpm_steps": self.rpm_steps,
            "requests": self.requests,
            "seed": self.seed,
            "keep_samples": self.keep_samples,
            "engine": self.engine,
            "inject_faults": self.inject_faults,
            "fault_seed": self.fault_seed if self.inject_faults else None,
            "media_rate": self.media_rate if self.inject_faults else None,
            "servo_rate": self.servo_rate if self.inject_faults else None,
        }

    def fault_config(self) -> Optional[Any]:
        """The FaultConfig this job injects (None when injection is off)."""
        if not self.inject_faults:
            return None
        from repro.faults import FaultConfig

        return FaultConfig(
            seed=self.fault_seed,
            media_rate=self.media_rate,
            servo_rate=self.servo_rate,
        )

    def build_tasks(self) -> List[Any]:
        """The task grid, validated exactly like the CLI builds it."""
        from repro.simulation.sweep import build_workload_tasks

        return build_workload_tasks(
            self.workloads,
            rpms=self.rpms,
            rpm_steps=self.rpm_steps,
            requests=self.requests,
            seed=self.seed,
            keep_samples=self.keep_samples,
            fault_config=self.fault_config(),
            engine=self.engine,
        )

    def sweep_plumbing(self) -> Dict[str, Any]:
        """The task-level machinery the job manager fans this job out with.

        Same worker/key/codec the CLI uses — which is the whole
        byte-identity story: a service result under a task key is
        indistinguishable from a CLI-computed one.
        ``document_from_payloads`` rebuilds the full results document
        from the raw per-task store entries (the eviction-recovery
        path).
        """
        from repro.simulation.sweep import (
            RESULTS_SCHEMA,
            WORKLOAD_TASK_KIND,
            _run_workload_task,
            plan_sweep_workers,
            results_document,
            workload_result_from_payload,
            workload_result_to_payload,
            workload_task_key,
        )

        return {
            "task_kind": WORKLOAD_TASK_KIND,
            "worker": _run_workload_task,
            "task_key": workload_task_key,
            "encode": workload_result_to_payload,
            "decode": workload_result_from_payload,
            "document": results_document,
            "document_from_payloads": lambda parts: {
                "schema": RESULTS_SCHEMA,
                "results": list(parts),
            },
            # All-analytic sweeps are forced serial (cheaper than a pool).
            "plan_workers": plan_sweep_workers,
        }


@dataclass(frozen=True)
class FleetJobConfig:
    """One validated fleet-sweep submission (``kind: fleet_sweep``).

    The material fields mirror ``repro fleet``'s topology/policy flags
    and :func:`repro.fleet.uniform_fleet` exactly; fault and tiering
    knobs fold to None in :meth:`material_config` when their feature is
    off, matching :func:`repro.fleet.fleet_task_key`'s normalization so
    the job-level and task-level dedup agree about what is material.
    """

    request_kind = "fleet_sweep"
    job_kind = SERVICE_FLEET_JOB_KIND

    racks: int = 2
    enclosures_per_rack: int = 4
    drives_per_enclosure: int = 3
    airflow_m3_per_s: float = 0.018
    cooling_budget_w: float = 300.0
    diameter_in: float = 2.6
    platter_count: int = 1
    vcm_duty: float = 0.5
    inlet_c: float = AMBIENT_TEMPERATURE_C
    recirculation: float = 0.2
    envelope_c: float = THERMAL_ENVELOPE_C
    rpm_levels: Tuple[float, ...] = (9600.0, 12000.0, 15000.0)
    max_rounds: int = 64
    base_afr: float = 0.02
    reference_c: float = 40.0
    mttr_hours: float = 12.0
    tiering_extents: int = 0
    tiering_seed: int = 0
    tiering_target_utilization: float = 0.7
    inject_faults: bool = False
    fault_seed: int = 0
    media_rate: float = 0.01
    servo_rate: float = 0.0
    accesses_per_drive: int = 256
    # Execution knobs — never part of the config key.
    backend: Optional[str] = None
    retries: int = 1
    workers: Optional[int] = None

    @property
    def workloads(self) -> Tuple[str, ...]:
        """Fleet jobs replay no named workloads (metrics plumbing)."""
        return ()

    def material_config(self) -> Dict[str, Any]:
        """The key-entering field subset, in canonical form."""
        tiered = self.tiering_extents > 0
        return {
            "racks": self.racks,
            "enclosures_per_rack": self.enclosures_per_rack,
            "drives_per_enclosure": self.drives_per_enclosure,
            "airflow_m3_per_s": self.airflow_m3_per_s,
            "cooling_budget_w": self.cooling_budget_w,
            "diameter_in": self.diameter_in,
            "platter_count": self.platter_count,
            "vcm_duty": self.vcm_duty,
            "inlet_c": self.inlet_c,
            "recirculation": self.recirculation,
            "envelope_c": self.envelope_c,
            "rpm_levels": list(self.rpm_levels),
            "max_rounds": self.max_rounds,
            "base_afr": self.base_afr,
            "reference_c": self.reference_c,
            "mttr_hours": self.mttr_hours,
            "tiering_extents": self.tiering_extents,
            "tiering_seed": self.tiering_seed if tiered else None,
            "tiering_target_utilization": (
                self.tiering_target_utilization if tiered else None
            ),
            "inject_faults": self.inject_faults,
            "fault_seed": self.fault_seed if self.inject_faults else None,
            "media_rate": self.media_rate if self.inject_faults else None,
            "servo_rate": self.servo_rate if self.inject_faults else None,
            "accesses_per_drive": (
                self.accesses_per_drive if self.inject_faults else None
            ),
        }

    def fault_config(self) -> Optional[Any]:
        """The FaultConfig this job injects (None when injection is off)."""
        if not self.inject_faults:
            return None
        from repro.faults import FaultConfig

        return FaultConfig(
            seed=self.fault_seed,
            media_rate=self.media_rate,
            servo_rate=self.servo_rate,
        )

    def build_tasks(self) -> List[Any]:
        """One rack task per rack, validated exactly like the CLI."""
        from repro.fleet import (
            FleetDTMPolicy,
            ReliabilityParams,
            TieringPolicy,
            build_rack_tasks,
            uniform_fleet,
        )

        fleet = uniform_fleet(
            racks=self.racks,
            enclosures_per_rack=self.enclosures_per_rack,
            drives_per_enclosure=self.drives_per_enclosure,
            airflow_m3_per_s=self.airflow_m3_per_s,
            cooling_budget_w=self.cooling_budget_w,
            diameter_in=self.diameter_in,
            platter_count=self.platter_count,
            vcm_duty=self.vcm_duty,
            inlet_c=self.inlet_c,
            recirculation=self.recirculation,
            envelope_c=self.envelope_c,
        )
        return build_rack_tasks(
            fleet,
            policy=FleetDTMPolicy(
                rpm_levels=self.rpm_levels,
                envelope_c=self.envelope_c,
                max_rounds=self.max_rounds,
            ),
            reliability=ReliabilityParams(
                base_afr=self.base_afr,
                reference_c=self.reference_c,
                mttr_hours=self.mttr_hours,
            ),
            tiering=TieringPolicy(
                extents=self.tiering_extents,
                seed=self.tiering_seed,
                target_utilization=self.tiering_target_utilization,
            ),
            fault_config=self.fault_config(),
            accesses_per_drive=self.accesses_per_drive,
        )

    def sweep_plumbing(self) -> Dict[str, Any]:
        """Fleet task machinery — same shape as the workload plumbing."""
        from repro.fleet.sweep import (
            FLEET_TASK_KIND,
            _run_rack_task,
            fleet_results_document,
            fleet_task_key,
            rack_result_from_payload,
            rack_result_to_payload,
        )

        return {
            "task_kind": FLEET_TASK_KIND,
            "worker": _run_rack_task,
            "task_key": fleet_task_key,
            "encode": rack_result_to_payload,
            "decode": rack_result_from_payload,
            "document": fleet_results_document,
            # The fleet document carries a computed summary, so the
            # rebuild decodes payloads back to results and re-derives it
            # (pure arithmetic — byte-identical to the original).
            "document_from_payloads": lambda parts: fleet_results_document(
                [rack_result_from_payload(p) for p in parts]
            ),
            # Rack tasks always simulate; no engine-based worker plan.
            "plan_workers": lambda tasks, workers: workers,
        }


def job_config_key(config: Any) -> str:
    """The job's canonical dedup key (material fields only).

    The config class's ``job_kind`` tag namespaces the key, so the two
    job families can never collide even on coincidentally-equal
    material dictionaries.
    """
    from repro.store import config_key

    return config_key(config.job_kind, config.material_config())


_FIELD_TYPES: Dict[str, Tuple[type, ...]] = {
    "kind": (str,),
    "workloads": (list,),
    "rpms": (list, type(None)),
    "rpm_steps": (int,),
    "requests": (int,),
    "seed": (int,),
    "keep_samples": (bool,),
    "engine": (str,),
    "inject_faults": (bool,),
    "fault_seed": (int,),
    "media_rate": (int, float),
    "servo_rate": (int, float),
    "backend": (str, type(None)),
    "retries": (int,),
    "workers": (int, type(None)),
}


_FLEET_FIELD_TYPES: Dict[str, Tuple[type, ...]] = {
    "kind": (str,),
    "racks": (int,),
    "enclosures_per_rack": (int,),
    "drives_per_enclosure": (int,),
    "airflow_m3_per_s": (int, float),
    "cooling_budget_w": (int, float),
    "diameter_in": (int, float),
    "platter_count": (int,),
    "vcm_duty": (int, float),
    "inlet_c": (int, float),
    "recirculation": (int, float),
    "envelope_c": (int, float),
    "rpm_levels": (list, type(None)),
    "max_rounds": (int,),
    "base_afr": (int, float),
    "reference_c": (int, float),
    "mttr_hours": (int, float),
    "tiering_extents": (int,),
    "tiering_seed": (int,),
    "tiering_target_utilization": (int, float),
    "inject_faults": (bool,),
    "fault_seed": (int,),
    "media_rate": (int, float),
    "servo_rate": (int, float),
    "accesses_per_drive": (int,),
    "backend": (str, type(None)),
    "retries": (int,),
    "workers": (int, type(None)),
}


def _check_fields(
    payload: Mapping[str, Any], types: Dict[str, Tuple[type, ...]]
) -> None:
    """Strict field validation shared by both job families."""
    unknown = sorted(set(payload) - set(types))
    if unknown:
        raise ServiceError(
            f"unknown job field(s): {', '.join(unknown)} "
            f"(accepted: {', '.join(sorted(types))})"
        )
    for name, accepted in types.items():
        if name not in payload:
            continue
        value = payload[name]
        # bool is an int subclass; don't let true/false sneak into counts.
        if isinstance(value, bool) and bool not in accepted:
            raise ServiceError(f"field {name!r} has the wrong type")
        if not isinstance(value, accepted):
            raise ServiceError(f"field {name!r} has the wrong type")


def parse_job_request(payload: Any) -> Any:
    """Validate one ``POST /v1/jobs`` body into a job config.

    The ``kind`` field selects the family: ``workload_sweep`` (default,
    → :class:`SweepJobConfig`) or ``fleet_sweep`` (→
    :class:`FleetJobConfig`).  Raises :class:`ServiceError` (status 400)
    on anything malformed: wrong top-level type, unknown kinds or
    fields, wrong field types, empty or non-string workload lists,
    non-positive counts.  Workload/engine/topology *semantics* are
    validated later by ``build_tasks`` (the owning layer), still before
    the job is queued.
    """
    if not isinstance(payload, Mapping):
        raise ServiceError("job request must be a JSON object")
    kind = payload.get("kind", "workload_sweep")
    if not isinstance(kind, str):
        raise ServiceError("field 'kind' has the wrong type")
    if kind == "fleet_sweep":
        return _parse_fleet_request(payload)
    if kind != "workload_sweep":
        raise ServiceError(
            f"unknown job kind {kind!r} "
            "(accepted: workload_sweep, fleet_sweep)"
        )
    unknown = sorted(set(payload) - set(_FIELD_TYPES))
    if unknown:
        raise ServiceError(
            f"unknown job field(s): {', '.join(unknown)} "
            f"(accepted: {', '.join(sorted(_FIELD_TYPES))})"
        )
    if "workloads" not in payload:
        raise ServiceError("job request needs a 'workloads' list")
    for name, types in _FIELD_TYPES.items():
        if name not in payload:
            continue
        value = payload[name]
        # bool is an int subclass; don't let true/false sneak into counts.
        if isinstance(value, bool) and bool not in types:
            raise ServiceError(f"field {name!r} has the wrong type")
        if not isinstance(value, types):
            raise ServiceError(f"field {name!r} has the wrong type")
    workloads = payload["workloads"]
    if not workloads or not all(
        isinstance(w, str) and w for w in workloads
    ):
        raise ServiceError("'workloads' must be a non-empty list of names")
    rpms = payload.get("rpms")
    if rpms is not None:
        if not rpms or not all(
            isinstance(r, (int, float)) and not isinstance(r, bool) for r in rpms
        ):
            raise ServiceError("'rpms' must be a non-empty list of numbers")
        rpms = tuple(float(r) for r in rpms)
    config = SweepJobConfig(
        workloads=tuple(workloads),
        rpms=rpms,
        rpm_steps=int(payload.get("rpm_steps", 4)),
        requests=int(payload.get("requests", 6000)),
        seed=int(payload.get("seed", 1)),
        keep_samples=bool(payload.get("keep_samples", False)),
        engine=str(payload.get("engine", "exact")),
        inject_faults=bool(payload.get("inject_faults", False)),
        fault_seed=int(payload.get("fault_seed", 0)),
        media_rate=float(payload.get("media_rate", 0.01)),
        servo_rate=float(payload.get("servo_rate", 0.0)),
        backend=payload.get("backend"),
        retries=int(payload.get("retries", 1)),
        workers=payload.get("workers"),
    )
    if config.rpm_steps <= 0:
        raise ServiceError("'rpm_steps' must be positive")
    if config.requests <= 0:
        raise ServiceError("'requests' must be positive")
    if config.retries < 0:
        raise ServiceError("'retries' must be >= 0")
    if config.workers is not None and config.workers < 0:
        raise ServiceError("'workers' must be >= 0")
    return config


def _parse_fleet_request(payload: Mapping[str, Any]) -> FleetJobConfig:
    """Validate a ``kind: fleet_sweep`` body into a :class:`FleetJobConfig`.

    Only wire-level shape is checked here; topology/policy semantics
    (positive airflow, ascending ladder, ...) are enforced by the frozen
    fleet dataclasses when ``build_tasks`` runs — still at submission
    time, surfaced as a 400.
    """
    _check_fields(payload, _FLEET_FIELD_TYPES)
    rpm_levels = payload.get("rpm_levels")
    if rpm_levels is not None:
        if not rpm_levels or not all(
            isinstance(r, (int, float)) and not isinstance(r, bool)
            for r in rpm_levels
        ):
            raise ServiceError("'rpm_levels' must be a non-empty list of numbers")
        rpm_levels = tuple(float(r) for r in rpm_levels)
    else:
        rpm_levels = (9600.0, 12000.0, 15000.0)
    config = FleetJobConfig(
        racks=int(payload.get("racks", 2)),
        enclosures_per_rack=int(payload.get("enclosures_per_rack", 4)),
        drives_per_enclosure=int(payload.get("drives_per_enclosure", 3)),
        airflow_m3_per_s=float(payload.get("airflow_m3_per_s", 0.018)),
        cooling_budget_w=float(payload.get("cooling_budget_w", 300.0)),
        diameter_in=float(payload.get("diameter_in", 2.6)),
        platter_count=int(payload.get("platter_count", 1)),
        vcm_duty=float(payload.get("vcm_duty", 0.5)),
        inlet_c=float(payload.get("inlet_c", AMBIENT_TEMPERATURE_C)),
        recirculation=float(payload.get("recirculation", 0.2)),
        envelope_c=float(payload.get("envelope_c", THERMAL_ENVELOPE_C)),
        rpm_levels=rpm_levels,
        max_rounds=int(payload.get("max_rounds", 64)),
        base_afr=float(payload.get("base_afr", 0.02)),
        reference_c=float(payload.get("reference_c", 40.0)),
        mttr_hours=float(payload.get("mttr_hours", 12.0)),
        tiering_extents=int(payload.get("tiering_extents", 0)),
        tiering_seed=int(payload.get("tiering_seed", 0)),
        tiering_target_utilization=float(
            payload.get("tiering_target_utilization", 0.7)
        ),
        inject_faults=bool(payload.get("inject_faults", False)),
        fault_seed=int(payload.get("fault_seed", 0)),
        media_rate=float(payload.get("media_rate", 0.01)),
        servo_rate=float(payload.get("servo_rate", 0.0)),
        accesses_per_drive=int(payload.get("accesses_per_drive", 256)),
        backend=payload.get("backend"),
        retries=int(payload.get("retries", 1)),
        workers=payload.get("workers"),
    )
    if config.racks <= 0:
        raise ServiceError("'racks' must be positive")
    if config.retries < 0:
        raise ServiceError("'retries' must be >= 0")
    if config.workers is not None and config.workers < 0:
        raise ServiceError("'workers' must be >= 0")
    return config
