"""Command-line interface.

Exposes the library's main queries without writing Python::

    python -m repro validate                 # Table 1 model validation
    python -m repro envelope -d 2.6 -p 1     # max in-envelope RPM
    python -m repro transient -m 90          # Figure 1 warm-up curve
    python -m repro roadmap -p 1 --cooling 5 # Figure 2/3 roadmap
    python -m repro workload tpcc -n 4000    # Figure 4 RPM sweep
    python -m repro throttle --rpm-high 24534 --t-cool 0.5,1,2,4
    python -m repro slack                    # Figure 5a
    python -m repro sweep roadmap -p 1,2,4   # parallel Figure 2 sweep
    python -m repro sweep workload tpcc,oltp # parallel Figure 4 sweep
    python -m repro sweep workload tpcc --telemetry --telemetry-out tel.json
    python -m repro sweep workload tpcc --inject-faults --partial-results
    python -m repro sweep workload tpcc --store      # memoized sweep
    python -m repro sweep workload tpcc --store --resume sweep_manifest.json
    python -m repro sweep workload tpcc --backend shared-store  # peer-coordinated
    python -m repro fleet --racks 4 --drives 12   # rack-coupled fleet + DTM + AFR
    python -m repro store stats              # result-store inventory
    python -m repro store verify             # integrity-check every entry
    python -m repro trace tpcc -n 2000       # instrumented replay + sparklines
    python -m repro faults tpcc --media-rate 0.02   # fault-injected replay
    python -m repro lint src/repro           # thermolint static analysis

Every command prints an aligned plain-text table.
"""

from __future__ import annotations

import argparse
import sys
from types import ModuleType
from typing import List, Optional, Sequence

from repro.constants import AMBIENT_TEMPERATURE_C, THERMAL_ENVELOPE_C
from repro.errors import ReproError
from repro.reporting import format_table


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.drives import PAPER_MODEL_PREDICTIONS, TABLE1_DRIVES

    rows = []
    for drive in TABLE1_DRIVES:
        paper_cap, paper_idr = PAPER_MODEL_PREDICTIONS[drive.model]
        rows.append(
            [
                drive.model,
                f"{drive.datasheet_capacity_gb:.0f}",
                f"{drive.modeled_capacity_paper_gb():.1f}",
                f"{paper_cap:.1f}",
                f"{drive.datasheet_idr_mb_per_s:.1f}",
                f"{drive.modeled_idr_mb_per_s():.1f}",
                f"{paper_idr:.1f}",
            ]
        )
    print(
        format_table(
            ["model", "cap ds", "cap ours", "cap paper", "IDR ds", "IDR ours", "IDR paper"],
            rows,
        )
    )
    return 0


def _cmd_envelope(args: argparse.Namespace) -> int:
    from repro.thermal import max_rpm_within_envelope, steady_air_temperature_c

    rpm = max_rpm_within_envelope(
        args.diameter,
        platter_count=args.platters,
        envelope_c=args.envelope,
        ambient_c=args.ambient,
        vcm_active=not args.vcm_off,
    )
    temp = steady_air_temperature_c(
        args.diameter,
        rpm,
        platter_count=args.platters,
        ambient_c=args.ambient,
        vcm_active=not args.vcm_off,
    )
    print(
        format_table(
            ["media", "platters", "VCM", "max RPM", "steady air C", "envelope C"],
            [
                [
                    f'{args.diameter}"',
                    args.platters,
                    "off" if args.vcm_off else "on",
                    f"{rpm:.0f}",
                    f"{temp:.2f}",
                    f"{args.envelope:.2f}",
                ]
            ],
        )
    )
    return 0


def _cmd_transient(args: argparse.Namespace) -> int:
    from repro.drives import cheetah15k3

    model = cheetah15k3.thermal_model(ambient_c=args.ambient)
    result = model.transient(
        args.minutes * 60.0, dt_s=0.5, record_every=120, from_ambient=True
    )
    rows = []
    for t, air in zip(result.times_s, result.series("air")):
        minute = t / 60.0
        if minute.is_integer() and int(minute) % max(args.minutes // 15, 1) == 0:
            rows.append([f"{minute:.0f}", f"{air:.2f}"])
    print(format_table(["minute", "air C"], rows))
    print(f"steady state: {result.final('air'):.2f} C")
    return 0


def _cmd_roadmap(args: argparse.Namespace) -> int:
    from repro.scaling import PAPER_TRENDS, cooling_budget_ambient_c, thermal_roadmap

    ambient = (
        cooling_budget_ambient_c(args.platters) - args.cooling
        if args.cooling
        else None
    )
    points = thermal_roadmap(platter_count=args.platters, ambient_c=ambient)
    years = sorted({p.year for p in points})
    rows = []
    for year in years:
        row: List = [year, f"{PAPER_TRENDS.target_idr_mb_s(year):.0f}"]
        for diameter in (2.6, 2.1, 1.6):
            point = next(
                p for p in points if p.year == year and p.diameter_in == diameter
            )
            marker = "*" if point.meets_target else " "
            row.append(f"{point.max_idr_mb_s:.0f}{marker}")
            row.append(f"{point.capacity_gb:.1f}")
        rows.append(row)
    print(
        format_table(
            ["year", "target", '2.6"', "cap", '2.1"', "cap", '1.6"', "cap"], rows
        )
    )
    print("(* = meets the 40% IDR growth target)")
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.workloads import workload

    spec = workload(args.name)
    trace = spec.generate(num_requests=args.requests, seed=args.seed)
    rows = []
    for rpm in spec.rpm_sweep(args.steps):
        report = spec.build_system(rpm).run_trace(trace)
        rows.append(
            [
                f"{rpm:.0f}",
                f"{report.stats.mean_ms():.2f}",
                f"{report.stats.median_ms():.2f}",
                f"{report.stats.percentile_ms(95):.2f}",
                f"{max(report.disk_utilizations):.2f}",
            ]
        )
    print(f"{spec.display_name}: {len(trace)} requests")
    print(format_table(["RPM", "mean ms", "median ms", "p95 ms", "util"], rows))
    return 0


def _cmd_throttle(args: argparse.Namespace) -> int:
    from repro.dtm import ThrottlingScenario, throttle_cycle

    scenario = ThrottlingScenario(
        diameter_in=args.diameter,
        rpm_high=args.rpm_high,
        rpm_low=args.rpm_low,
    )
    rows = []
    for t_cool in args.t_cool:
        cycle = throttle_cycle(scenario, t_cool, dt_s=0.02, mode=args.mode)
        rows.append(
            [
                f"{cycle.t_cool_s:.2f}",
                f"{cycle.t_heat_s:.2f}",
                f"{cycle.ratio:.2f}",
                f"{cycle.utilization:.2f}",
            ]
        )
    print(
        f"throttling {args.diameter}\" at {args.rpm_high:.0f} RPM"
        + (f" (low level {args.rpm_low:.0f})" if args.rpm_low else "")
    )
    print(format_table(["t_cool s", "t_heat s", "ratio", "utilization"], rows))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """One instrumented replay: metrics, event trace, probe sparklines."""
    import json

    from repro.reporting import (
        probes_to_csv,
        registry_to_prometheus,
        render_probe_sparklines,
        to_json,
    )
    from repro.telemetry import Telemetry
    from repro.workloads import workload

    spec = workload(args.name)
    tel = Telemetry(
        trace_capacity=args.trace_capacity, probe_interval_ms=args.interval
    )
    trace = spec.generate(num_requests=args.requests, seed=args.seed)
    report = spec.build_system(args.rpm, telemetry=tel).run_trace(trace)

    if args.output:
        if args.format == "json":
            payload = to_json(tel)
        elif args.format == "csv":
            payload = probes_to_csv(tel.probes)
        else:
            payload = registry_to_prometheus(tel.registry)
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(payload)
            if not payload.endswith("\n"):
                handle.write("\n")
        print(f"wrote {args.format} telemetry to {args.output}")

    print(
        f"{spec.display_name}: {report.requests} requests over "
        f"{report.simulated_ms / 1000.0:.1f} s simulated, "
        f"mean {report.stats.mean_ms():.2f} ms"
    )
    print()
    print(render_probe_sparklines(tel.probes, ascii_only=args.ascii))
    print()
    rows = []
    for name, snap in sorted(tel.registry.as_dict().items()):
        if snap["kind"] == "counter" or snap["kind"] == "gauge":
            rows.append([name, snap["kind"], f"{snap['value']:g}"])
        elif snap["kind"] == "histogram":
            mean = snap["mean"]
            rows.append(
                [
                    name,
                    "histogram",
                    f"n={snap['count']} mean={mean:.3f}" if mean is not None else "n=0",
                ]
            )
        else:
            rows.append(
                [name, "timer", f"{snap['elapsed_s']:.4f}s/{snap['starts']}"]
            )
    print(format_table(["metric", "kind", "value"], rows))
    print()
    recorded, dropped = tel.trace.recorded, tel.trace.dropped
    print(
        f"event trace: {recorded} recorded, {dropped} dropped "
        f"(capacity {args.trace_capacity}); last {args.limit}:"
    )
    tail = tel.trace.events(kind=args.kind, limit=args.limit)
    for event in tail:
        fields = " ".join(
            f"{k}={v:g}" if isinstance(v, float) else f"{k}={v}"
            for k, v in sorted(event.fields.items())
        )
        print(f"  {event.time_ms:10.2f}ms {event.kind:16s} {event.subject:8s} {fields}")
    if args.format == "json" and not args.output:
        print()
        print(json.dumps(tel.trace.counts_by_kind(), indent=2, sort_keys=True))
    return 0


def _fault_config_from(args: argparse.Namespace):
    """Build a FaultConfig from CLI flags (None when injection is off)."""
    if not getattr(args, "inject_faults", False):
        return None
    from repro.faults import FaultConfig

    return FaultConfig(
        seed=args.fault_seed,
        media_rate=args.media_rate,
        servo_rate=args.servo_rate,
    )


def _backend_from(args: argparse.Namespace) -> Optional[str]:
    """The resolved backend name, or None when nothing selects one.

    ``--backend`` wins over ``REPRO_SWEEP_BACKEND``; both validate here,
    in the parent, so a typo'd env var fails fast with the full name
    list instead of from inside a sweep.
    """
    import os

    from repro.simulation.backends import BACKEND_ENV_VAR, resolve_backend_name

    explicit = getattr(args, "backend", None)
    if explicit is None and not os.environ.get(BACKEND_ENV_VAR, "").strip():
        return None
    return resolve_backend_name(explicit)


def _store_from(args: argparse.Namespace, backend: Optional[str] = None):
    """Build the ResultStore the flags ask for (None when caching is off).

    The ``shared-store`` backend implies ``--store``: it coordinates
    through the store directory, so its accounting must be visible.
    """
    use_store = bool(
        getattr(args, "store", False)
        or getattr(args, "store_dir", None)
        or getattr(args, "resume", None)
        or backend == "shared-store"
    )
    if not use_store:
        return None
    from repro.store import ResultStore

    return ResultStore(root=args.store_dir)


def _check_resume_manifest(path: str, task_keys: List[str]) -> None:
    """Validate a ``--resume`` manifest against this sweep's task keys.

    The manifest is advisory — resume itself is just the store serving
    hits — but resuming against the *wrong* configuration silently
    recomputes everything, so a key mismatch is a hard error naming the
    actual problem.
    """
    import json

    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ReproError(f"cannot read resume manifest {path}: {exc}") from exc
    store_section = manifest.get("store") if isinstance(manifest, dict) else None
    if not isinstance(store_section, dict) or "task_keys" not in store_section:
        raise ReproError(
            f"resume manifest {path} has no store section; it was written "
            "by a sweep that ran without --store"
        )
    previous = store_section["task_keys"]
    if previous != task_keys:
        raise ReproError(
            f"resume manifest {path} describes a different sweep "
            f"({len(previous)} task(s), this run has {len(task_keys)}; "
            "keys differ) — same workloads, RPM ladder, request count, "
            "seed and fault plan are required"
        )
    print(
        f"resuming from {path}: {manifest.get('tasks_ok', '?')}/"
        f"{manifest.get('tasks_total', '?')} task(s) previously completed"
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.simulation.sweep import sweep_roadmap, sweep_workloads

    backend = _backend_from(args)
    if args.axis == "roadmap":
        # scaling pulls in the thermal network (and numpy); only the
        # roadmap axis needs it, and the workload axis must stay
        # importable on numpy-less hosts (exact engine).
        from repro.scaling import PAPER_TRENDS

        by_count = sweep_roadmap(
            platter_counts=args.platters, workers=args.workers, backend=backend
        )
        for count, points in by_count.items():
            years = sorted({p.year for p in points})
            rows = []
            for year in years:
                row: List = [year, f"{PAPER_TRENDS.target_idr_mb_s(year):.0f}"]
                for diameter in (2.6, 2.1, 1.6):
                    point = next(
                        p
                        for p in points
                        if p.year == year and p.diameter_in == diameter
                    )
                    marker = "*" if point.meets_target else " "
                    row.append(f"{point.max_idr_mb_s:.0f}{marker}")
                    row.append(f"{point.capacity_gb:.1f}")
                rows.append(row)
            print(f"{count}-platter roadmap:")
            print(
                format_table(
                    ["year", "target", '2.6"', "cap", '2.1"', "cap", '1.6"', "cap"],
                    rows,
                )
            )
            print()
        print("(* = meets the 40% IDR growth target)")
        return 0

    telemetry = bool(args.telemetry or args.telemetry_out)
    fault_config = _fault_config_from(args)
    store = _store_from(args, backend)
    partial = bool(args.partial_results or args.resume)
    task_kwargs = dict(
        names=args.names,
        rpm_steps=args.steps,
        requests=args.requests,
        seed=args.seed,
        telemetry=telemetry,
        probe_interval_ms=args.probe_interval,
        fault_config=fault_config,
        engine=args.engine,
    )
    with_holes = None
    if partial or store is not None:
        from repro.simulation.sweep import (
            build_workload_tasks,
            sweep_workloads_resilient,
            workload_task_key,
        )

        tasks = build_workload_tasks(**task_kwargs)
        if args.resume:
            _check_resume_manifest(
                args.resume, [workload_task_key(t) for t in tasks]
            )
        with_holes, run_report = sweep_workloads_resilient(
            workers=args.workers,
            retries=args.retries,
            timeout_s=args.task_timeout,
            store=store,
            backend=backend,
            **task_kwargs,
        )
        if not partial:
            run_report.raise_on_failure()
        results = [r for r in with_holes if r is not None]
        write_manifest = partial and (
            run_report.failed or args.manifest_out or store is not None
        )
        if write_manifest:
            import json

            manifest = run_report.manifest(
                task_labels=[t.label() for t in tasks]
            )
            out = args.manifest_out or "sweep_manifest.json"
            with open(out, "w", encoding="utf-8") as handle:
                json.dump(
                    manifest, handle, indent=2, sort_keys=True, allow_nan=False
                )
                handle.write("\n")
            print(
                f"{run_report.ok_count}/{len(run_report.envelopes)} sweep "
                f"points completed; manifest written to {out}"
            )
        if run_report.backend:
            print(f"backend: {run_report.backend}")
        if store is not None:
            print(
                f"store: {run_report.store_hits} hit(s), "
                f"{run_report.store_misses} miss(es), "
                f"{store.corrupt} corrupt — {store.root}"
            )
    else:
        results = sweep_workloads(
            workers=args.workers, backend=backend, **task_kwargs
        )
    if args.results_out:
        from repro.simulation.sweep import results_json_bytes

        payload_results = with_holes if with_holes is not None else results
        with open(args.results_out, "wb") as binary:
            binary.write(results_json_bytes(payload_results))
        print(f"wrote canonical results for {len(results)} points to {args.results_out}")
    if telemetry:
        import json

        from repro.reporting.telemetry_export import _finite

        payload = {
            "schema": "repro.sweep_telemetry/1",
            "points": [
                {
                    "workload": r.workload,
                    "rpm": r.rpm,
                    "requests": r.requests,
                    "seed": r.seed,
                    "mean_ms": r.mean_ms,
                    "fault_summary": r.fault_summary,
                    "telemetry": r.telemetry,
                }
                for r in results
            ],
        }
        out = args.telemetry_out or "sweep_telemetry.json"
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(
                _finite(payload), handle, indent=2, sort_keys=True,
                allow_nan=False,
            )
            handle.write("\n")
        print(f"wrote telemetry for {len(results)} sweep points to {out}")
    headers = ["workload", "RPM", "mean ms", "median ms", "p95 ms", "util", "hit"]
    rows = [
        [
            r.workload,
            f"{r.rpm:.0f}",
            f"{r.mean_ms:.2f}",
            f"{r.median_ms:.2f}",
            f"{r.p95_ms:.2f}",
            f"{r.max_utilization:.2f}",
            f"{r.cache_hit_ratio:.2f}",
        ]
        for r in results
    ]
    if args.engine != "exact":
        # Surface which engine actually answered (fallbacks show "exact").
        headers.append("engine")
        for row, r in zip(rows, results):
            row.append(r.engine)
    if fault_config is not None:
        headers.append("faults")
        for row, r in zip(rows, results):
            injected = (r.fault_summary or {}).get("total_injected", 0)
            row.append(f"{injected:.0f}")
    print(format_table(headers, rows))
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    """Fleet sweep: one content-keyed task per rack over the backends."""
    from repro.fleet import (
        FleetDTMPolicy,
        ReliabilityParams,
        TieringPolicy,
        build_rack_tasks,
        fleet_results_json_bytes,
        fleet_summary,
        fleet_task_key,
        run_fleet_sweep,
        uniform_fleet,
    )

    backend = _backend_from(args)
    fault_config = _fault_config_from(args)
    store = _store_from(args, backend)
    partial = bool(args.partial_results or args.resume)
    fleet = uniform_fleet(
        racks=args.racks,
        enclosures_per_rack=args.enclosures,
        drives_per_enclosure=args.drives,
        airflow_m3_per_s=args.airflow,
        cooling_budget_w=args.cooling_budget,
        diameter_in=args.diameter,
        platter_count=args.platters,
        vcm_duty=args.vcm_duty,
        inlet_c=args.inlet,
        recirculation=args.recirculation,
        envelope_c=args.envelope,
    )
    tasks = build_rack_tasks(
        fleet,
        policy=FleetDTMPolicy(
            rpm_levels=tuple(args.rpm_levels), envelope_c=args.envelope
        ),
        reliability=ReliabilityParams(
            base_afr=args.base_afr,
            reference_c=args.reference_c,
            mttr_hours=args.mttr_hours,
        ),
        tiering=TieringPolicy(
            extents=args.tiering_extents,
            seed=args.tiering_seed,
            target_utilization=args.tiering_utilization,
        ),
        fault_config=fault_config,
        accesses_per_drive=args.accesses,
    )
    if args.resume:
        _check_resume_manifest(args.resume, [fleet_task_key(t) for t in tasks])
    results, report = run_fleet_sweep(
        tasks,
        workers=args.workers,
        retries=args.retries,
        timeout_s=args.task_timeout,
        store=store,
        backend=backend,
    )
    if not partial:
        report.raise_on_failure()
    write_manifest = partial and (
        report.failed or args.manifest_out or store is not None
    )
    if write_manifest:
        import json

        manifest = report.manifest(task_labels=[t.label() for t in tasks])
        out = args.manifest_out or "fleet_manifest.json"
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True, allow_nan=False)
            handle.write("\n")
        print(
            f"{report.ok_count}/{len(report.envelopes)} rack(s) completed; "
            f"manifest written to {out}"
        )
    if report.backend:
        print(f"backend: {report.backend}")
    if store is not None:
        print(
            f"store: {report.store_hits} hit(s), "
            f"{report.store_misses} miss(es), "
            f"{store.corrupt} corrupt — {store.root}"
        )
    if args.results_out:
        with open(args.results_out, "wb") as binary:
            binary.write(fleet_results_json_bytes(results))
        healthy_count = sum(1 for r in results if r is not None)
        print(
            f"wrote canonical fleet results for {healthy_count} rack(s) "
            f"to {args.results_out}"
        )
    headers = [
        "rack", "drives", "conv", "rounds", "steps", "cap",
        "heat W", "max C", "EAF", "avail",
    ]
    rows = []
    for task, result in zip(tasks, results):
        if result is None:
            rows.append([task.rack.name, f"{task.rack.drive_count}"]
                        + ["-"] * (len(headers) - 2))
            continue
        rows.append(
            [
                result.rack,
                f"{result.drive_count}",
                "yes" if result.converged else "NO",
                f"{result.rounds}",
                f"{len(result.throttle_events)}",
                f"{result.capacity_fraction:.3f}",
                f"{result.total_heat_w:.1f}",
                f"{result.max_internal_c:.2f}",
                f"{result.expected_annual_failures:.3f}",
                f"{result.availability:.6f}",
            ]
        )
    print(format_table(headers, rows))
    summary = fleet_summary(results)
    if summary is not None:
        print(
            f"fleet: {summary['drives']} drive(s) in {summary['racks']} "
            f"rack(s), capacity {summary['capacity_fraction']:.3f}, "
            f"availability {summary['availability']:.6f}, "
            f"expected annual failures "
            f"{summary['expected_annual_failures']:.3f}"
        )
        if args.tiering_extents > 0:
            print(
                f"tiering: saved {summary['tiering_saved_power_w']:.2f} W "
                f"across the fleet"
            )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the multi-tenant sweep job service until SIGTERM/SIGINT.

    The service always runs over a result store — cross-tenant dedup
    and restart-free resume both live there — so ``--store-dir`` (or
    ``$REPRO_STORE_DIR``) names the shared directory; see
    docs/service.md for the API and deployment notes.
    """
    from repro.service import run_service
    from repro.store import ResultStore
    from repro.telemetry import Telemetry

    telemetry = Telemetry()
    store = ResultStore(root=args.store_dir, telemetry=telemetry)
    return run_service(
        store,
        telemetry=telemetry,
        host=args.host,
        port=args.port,
        port_file=args.port_file,
        backend=args.backend,
        workers=args.workers,
        retries=args.retries,
        task_timeout_s=args.task_timeout,
        drain_timeout_s=args.drain_timeout,
    )


def _cmd_slack(args: argparse.Namespace) -> int:
    from repro.dtm import slack_by_platter_size

    rows = [
        [
            f'{p.diameter_in}"',
            f"{p.vcm_power_w:.2f}",
            f"{p.envelope_rpm:.0f}",
            f"{p.vcm_off_rpm:.0f}",
            f"{p.rpm_gain_fraction * 100:.1f}%",
        ]
        for p in slack_by_platter_size()
    ]
    print(format_table(["media", "VCM W", "envelope RPM", "VCM-off RPM", "gain"], rows))
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    """One fault-injected replay: response-time impact + fault breakdown."""
    from repro.faults import FaultConfig
    from repro.workloads import workload

    config = FaultConfig(
        seed=args.fault_seed,
        media_rate=args.media_rate,
        servo_rate=args.servo_rate,
        remap_fraction=args.remap_fraction,
        max_ecc_retries=args.max_ecc_retries,
    )
    spec = workload(args.name)
    trace = spec.generate(num_requests=args.requests, seed=args.seed)
    rpm = args.rpm if args.rpm is not None else spec.base_rpm
    healthy = spec.build_system(rpm).run_trace(trace)
    faulty = spec.build_system(rpm, fault_config=config).run_trace(trace)
    summary = faulty.fault_summary or {}

    print(
        f"{spec.display_name} at {rpm:.0f} RPM, {len(trace)} requests, "
        f"media rate {config.media_rate:g}, servo rate {config.servo_rate:g}, "
        f"fault seed {config.seed}"
    )
    print(
        format_table(
            ["run", "mean ms", "median ms", "p95 ms", "max ms"],
            [
                [
                    label,
                    f"{r.stats.mean_ms():.2f}",
                    f"{r.stats.median_ms():.2f}",
                    f"{r.stats.percentile_ms(95):.2f}",
                    f"{r.stats.max_ms():.2f}",
                ]
                for label, r in (("healthy", healthy), ("injected", faulty))
            ],
        )
    )
    print()
    print(
        format_table(
            ["fault", "count"],
            [
                ["media retries", f"{summary.get('media_retries', 0):.0f}"],
                ["media remaps", f"{summary.get('media_remaps', 0):.0f}"],
                ["servo faults", f"{summary.get('servo_faults', 0):.0f}"],
                ["ECC re-reads", f"{summary.get('ecc_retries', 0):.0f}"],
                ["total injected", f"{summary.get('total_injected', 0):.0f}"],
                ["extra latency ms", f"{summary.get('extra_ms', 0.0):.1f}"],
            ],
        )
    )
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    """Result-store maintenance: stats / gc / verify."""
    from repro.store import ResultStore

    store = ResultStore(root=args.store_dir)
    if args.action == "stats":
        stats = store.stats()
        print(
            format_table(
                ["store", "entries", "bytes", "cap bytes", "quarantined"],
                [
                    [
                        stats.root,
                        f"{stats.entries}",
                        f"{stats.total_bytes}",
                        f"{stats.max_bytes}",
                        f"{stats.quarantined}",
                    ]
                ],
            )
        )
        return 0
    if args.action == "gc":
        evicted = store.gc(max_bytes=args.max_bytes)
        stats = store.stats()
        print(
            f"evicted {evicted} entr{'y' if evicted == 1 else 'ies'}; "
            f"{stats.entries} left ({stats.total_bytes} bytes) in {stats.root}"
        )
        return 0
    # verify
    report = store.verify()
    print(
        f"checked {report.checked} entr"
        f"{'y' if report.checked == 1 else 'ies'}: "
        f"{report.ok} ok, {report.corrupt} corrupt"
    )
    for key in report.quarantined_keys:
        print(f"  quarantined {key}")
    return 1 if report.corrupt else 0


def _load_thermolint() -> "ModuleType":
    """Import the thermolint package, falling back to the in-repo tools/ dir.

    thermolint ships in ``tools/`` (it is a development gate, not a runtime
    dependency), so an installed ``repro`` won't have it on the path; when
    running from a checkout we add ``tools/`` ourselves.
    """
    try:
        import thermolint
    except ImportError:
        from pathlib import Path

        tools_dir = Path(__file__).resolve().parents[2] / "tools"
        if not (tools_dir / "thermolint").is_dir():
            raise ReproError(
                "thermolint is not importable and no tools/thermolint directory "
                "was found next to this checkout"
            ) from None
        sys.path.insert(0, str(tools_dir))
        import thermolint
    return thermolint


def _cmd_lint(args: argparse.Namespace) -> int:
    thermolint = _load_thermolint()
    from thermolint.cli import main as thermolint_main

    argv: List[str] = list(args.paths)
    argv += ["--format", args.format]
    if args.select:
        argv += ["--select", ",".join(args.select)]
    if args.ignore:
        argv += ["--ignore", ",".join(args.ignore)]
    if args.statistics:
        argv.append("--statistics")
    if args.deep:
        argv.append("--deep")
    if args.project_root is not None:
        argv += ["--project-root", args.project_root]
    if args.baseline is not None:
        argv += ["--baseline", args.baseline]
    if args.no_baseline:
        argv.append("--no-baseline")
    if args.update_baseline:
        argv.append("--update-baseline")
    if args.update_keyed_manifest:
        argv.append("--update-keyed-manifest")
    if args.cache_dir is not None:
        argv += ["--cache-dir", args.cache_dir]
    if args.no_cache:
        argv.append("--no-cache")
    return thermolint_main(argv)


def _float_list(text: str) -> List[float]:
    try:
        return [float(part) for part in text.split(",") if part]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _int_list(text: str) -> List[int]:
    try:
        return [int(part) for part in text.split(",") if part]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _name_list(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Disk-drive thermal roadmap reproduction (ISCA 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("validate", help="Table 1: model vs 13 real drives")

    p = sub.add_parser("envelope", help="max RPM inside the thermal envelope")
    p.add_argument("-d", "--diameter", type=float, default=2.6, help="platter inches")
    p.add_argument("-p", "--platters", type=int, default=1)
    p.add_argument("--envelope", type=float, default=THERMAL_ENVELOPE_C)
    p.add_argument("--ambient", type=float, default=AMBIENT_TEMPERATURE_C)
    p.add_argument("--vcm-off", action="store_true", help="exploit idle slack")

    p = sub.add_parser("transient", help="Figure 1 warm-up transient")
    p.add_argument("-m", "--minutes", type=int, default=90)
    p.add_argument("--ambient", type=float, default=AMBIENT_TEMPERATURE_C)

    p = sub.add_parser("roadmap", help="Figure 2 thermally-limited roadmap")
    p.add_argument("-p", "--platters", type=int, default=1)
    p.add_argument(
        "--cooling", type=float, default=0.0, help="extra ambient cooling in C"
    )

    p = sub.add_parser("workload", help="Figure 4 RPM sweep for one workload")
    p.add_argument(
        "name",
        choices=["openmail", "oltp", "search_engine", "tpcc", "tpch"],
    )
    p.add_argument("-n", "--requests", type=int, default=4000)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--steps", type=int, default=4, help="RPM ladder length")

    p = sub.add_parser("throttle", help="Figure 7 throttling ratios")
    p.add_argument("-d", "--diameter", type=float, default=2.6)
    p.add_argument("--rpm-high", type=float, required=True)
    p.add_argument("--rpm-low", type=float, default=None)
    p.add_argument(
        "--t-cool", type=_float_list, default=[0.5, 1.0, 2.0, 4.0, 8.0],
        help="comma-separated cooling intervals in seconds",
    )
    p.add_argument("--mode", choices=["paper", "sustained"], default="paper")

    sub.add_parser("slack", help="Figure 5a thermal slack by platter size")

    p = sub.add_parser("lint", help="thermolint determinism/unit-safety static analysis")
    p.add_argument(
        "paths",
        nargs="*",
        default=[],
        help=(
            "files or directories to lint (default: src/repro); with --deep "
            "these only filter reported findings"
        ),
    )
    p.add_argument("--format", choices=["text", "json", "sarif"], default="text")
    p.add_argument(
        "--select", type=_name_list, default=None, help="comma-separated rule ids"
    )
    p.add_argument(
        "--ignore", type=_name_list, default=None, help="comma-separated rule ids"
    )
    p.add_argument("--statistics", action="store_true")
    p.add_argument(
        "--deep",
        action="store_true",
        help="project-wide pass: call graph, keyed-zone taint rules TL007-TL013",
    )
    p.add_argument("--project-root", default=None, help="repository root for --deep")
    p.add_argument("--baseline", default=None, help="baseline file for --deep")
    p.add_argument(
        "--no-baseline", action="store_true", help="ignore any baseline file"
    )
    p.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the deep baseline to current findings and exit",
    )
    p.add_argument(
        "--update-keyed-manifest",
        action="store_true",
        help="regenerate the keyed-zone schema-drift manifest and exit",
    )
    p.add_argument("--cache-dir", default=None, help="deep summary cache directory")
    p.add_argument(
        "--no-cache", action="store_true", help="disable the deep summary cache"
    )

    p = sub.add_parser(
        "sweep", help="parallel sweep over roadmap or workload configurations"
    )
    sweep_sub = p.add_subparsers(dest="axis", required=True)
    ps = sweep_sub.add_parser("roadmap", help="Figure 2 sweep over platter counts")
    ps.add_argument(
        "-p",
        "--platters",
        type=_int_list,
        default=[1, 2, 4],
        help="comma-separated platter counts",
    )
    ps.add_argument("-w", "--workers", type=int, default=None, help="process count")
    ps.add_argument(
        "--backend",
        choices=("serial", "process"),
        default=None,
        help="execution backend (default $REPRO_SWEEP_BACKEND or process; "
        "roadmap tasks have no content keys, so shared-store does not apply)",
    )
    ps = sweep_sub.add_parser(
        "workload", help="Figure 4 sweep over (workload, RPM) points"
    )
    ps.add_argument(
        "names",
        type=_name_list,
        help="comma-separated workload names (e.g. tpcc,oltp)",
    )
    ps.add_argument("-n", "--requests", type=int, default=4000)
    ps.add_argument("--seed", type=int, default=1)
    ps.add_argument("--steps", type=int, default=4, help="RPM ladder length")
    ps.add_argument("-w", "--workers", type=int, default=None, help="process count")
    ps.add_argument(
        "--backend",
        choices=("serial", "process", "shared-store"),
        default=None,
        help="execution backend (default $REPRO_SWEEP_BACKEND or process); "
        "shared-store coordinates with peer processes through the result "
        "store and implies --store",
    )
    ps.add_argument(
        "--engine",
        choices=("exact", "vectorized", "analytic", "auto"),
        default="exact",
        help="simulation engine: the event-driven simulator (exact), the "
        "byte-identical vectorized replay, the closed-form queueing "
        "estimator (analytic), or the fastest qualifying one (auto); "
        "see docs/fastpath.md",
    )
    ps.add_argument(
        "--telemetry",
        action="store_true",
        help="instrument every replay and write per-point telemetry JSON",
    )
    ps.add_argument(
        "--telemetry-out",
        default=None,
        metavar="PATH",
        help="telemetry JSON path (implies --telemetry; "
        "default sweep_telemetry.json)",
    )
    ps.add_argument(
        "--probe-interval",
        type=float,
        default=100.0,
        help="time-series sampling interval in simulated ms",
    )
    ps.add_argument(
        "--inject-faults",
        action="store_true",
        help="inject deterministic drive faults into every replay",
    )
    ps.add_argument(
        "--media-rate",
        type=float,
        default=0.01,
        help="per-media-access media-error probability (with --inject-faults)",
    )
    ps.add_argument(
        "--servo-rate",
        type=float,
        default=0.0,
        help="per-media-access servo-fault probability (with --inject-faults)",
    )
    ps.add_argument(
        "--fault-seed", type=int, default=0, help="fault-injection seed"
    )
    ps.add_argument(
        "--partial-results",
        action="store_true",
        help="survive failing sweep points: keep healthy results and write "
        "a failure manifest instead of aborting",
    )
    ps.add_argument(
        "--manifest-out",
        default=None,
        metavar="PATH",
        help="failure-manifest JSON path (with --partial-results; "
        "default sweep_manifest.json, written only on failures unless set)",
    )
    ps.add_argument(
        "--retries",
        type=int,
        default=2,
        help="extra attempts per failed sweep task (with --partial-results)",
    )
    ps.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task wall-clock deadline (with --partial-results)",
    )
    ps.add_argument(
        "--store",
        action="store_true",
        help="serve completed points from the content-addressed result "
        "store and persist new ones (see `repro store`)",
    )
    ps.add_argument(
        "--store-dir",
        default=None,
        metavar="PATH",
        help="result-store directory (implies --store; default "
        "$REPRO_STORE_DIR or ~/.cache/repro)",
    )
    ps.add_argument(
        "--resume",
        default=None,
        metavar="MANIFEST",
        help="resume a previous --store run from its manifest (implies "
        "--store and --partial-results; completed tasks become hits)",
    )
    ps.add_argument(
        "--results-out",
        default=None,
        metavar="PATH",
        help="write canonical result JSON (repro.sweep_results/2) here",
    )

    p = sub.add_parser(
        "fleet",
        help="fleet-scale sweep: racks of thermally coupled enclosures with "
        "fleet DTM, tiering and AFR/availability reporting",
    )
    p.add_argument("--racks", type=int, default=2, help="rack count")
    p.add_argument(
        "--enclosures", type=int, default=4, help="enclosures per rack"
    )
    p.add_argument("--drives", type=int, default=3, help="drives per enclosure")
    p.add_argument(
        "--airflow",
        type=float,
        default=0.018,
        help="enclosure cooling airflow in m^3/s",
    )
    p.add_argument(
        "--cooling-budget",
        type=float,
        default=300.0,
        help="per-enclosure cooling budget in W",
    )
    p.add_argument(
        "-d", "--diameter", type=float, default=2.6, help="platter diameter (in)"
    )
    p.add_argument(
        "-p", "--platters", type=int, default=1, help="platters per drive"
    )
    p.add_argument(
        "--vcm-duty", type=float, default=0.5, help="seek activity in [0, 1]"
    )
    p.add_argument(
        "--inlet",
        type=float,
        default=AMBIENT_TEMPERATURE_C,
        help="cold-aisle supply temperature (C)",
    )
    p.add_argument(
        "--recirculation",
        type=float,
        default=0.2,
        help="fraction of upstream exhaust rise reaching downstream inlets",
    )
    p.add_argument(
        "--envelope",
        type=float,
        default=THERMAL_ENVELOPE_C,
        help="thermal envelope the fleet DTM enforces (C)",
    )
    p.add_argument(
        "--rpm-levels",
        type=_float_list,
        default=[9600.0, 12000.0, 15000.0],
        help="comma-separated multi-speed ladder, ascending",
    )
    p.add_argument(
        "--base-afr",
        type=float,
        default=0.02,
        help="annualized failure rate at the reference temperature",
    )
    p.add_argument(
        "--reference-c",
        type=float,
        default=40.0,
        help="reference temperature of --base-afr (C)",
    )
    p.add_argument(
        "--mttr-hours", type=float, default=12.0, help="mean time to repair"
    )
    p.add_argument(
        "--tiering-extents",
        type=int,
        default=0,
        help="extents to tier per rack (0 = tiering off)",
    )
    p.add_argument(
        "--tiering-seed", type=int, default=0, help="extent-heat seed"
    )
    p.add_argument(
        "--tiering-utilization",
        type=float,
        default=0.7,
        help="balanced-layout utilization target in (0, 1]",
    )
    p.add_argument(
        "--inject-faults",
        action="store_true",
        help="replay deterministic per-drive media/servo faults",
    )
    p.add_argument(
        "--media-rate",
        type=float,
        default=0.01,
        help="per-media-access media-error probability (with --inject-faults)",
    )
    p.add_argument(
        "--servo-rate",
        type=float,
        default=0.0,
        help="per-media-access servo-fault probability (with --inject-faults)",
    )
    p.add_argument(
        "--fault-seed", type=int, default=0, help="fault-injection seed"
    )
    p.add_argument(
        "--accesses",
        type=int,
        default=256,
        help="fault-replayed media accesses per drive (with --inject-faults)",
    )
    p.add_argument("-w", "--workers", type=int, default=None, help="process count")
    p.add_argument(
        "--backend",
        choices=("serial", "process", "shared-store"),
        default=None,
        help="execution backend (default $REPRO_SWEEP_BACKEND or process); "
        "shared-store coordinates with peer processes through the result "
        "store and implies --store",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=2,
        help="extra attempts per failed rack task",
    )
    p.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-rack wall-clock deadline",
    )
    p.add_argument(
        "--partial-results",
        action="store_true",
        help="survive failing racks: keep healthy results and write a "
        "failure manifest instead of aborting",
    )
    p.add_argument(
        "--manifest-out",
        default=None,
        metavar="PATH",
        help="failure-manifest JSON path (with --partial-results; "
        "default fleet_manifest.json, written only on failures unless set)",
    )
    p.add_argument(
        "--store",
        action="store_true",
        help="serve completed racks from the content-addressed result "
        "store and persist new ones (see `repro store`)",
    )
    p.add_argument(
        "--store-dir",
        default=None,
        metavar="PATH",
        help="result-store directory (implies --store; default "
        "$REPRO_STORE_DIR or ~/.cache/repro)",
    )
    p.add_argument(
        "--resume",
        default=None,
        metavar="MANIFEST",
        help="resume a previous --store run from its manifest (implies "
        "--store and --partial-results; completed racks become hits)",
    )
    p.add_argument(
        "--results-out",
        default=None,
        metavar="PATH",
        help="write canonical fleet results JSON (repro.fleet_results/1) here",
    )

    p = sub.add_parser(
        "serve", help="multi-tenant sweep job service (HTTP/JSON over the store)"
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port",
        type=int,
        default=8765,
        help="bind port (0 = OS-assigned ephemeral port)",
    )
    p.add_argument(
        "--port-file",
        default=None,
        metavar="PATH",
        help="write the bound port here after startup (for --port 0 scripts)",
    )
    p.add_argument(
        "--store-dir",
        default=None,
        metavar="PATH",
        help="result-store directory shared by tenants/replicas "
        "(default $REPRO_STORE_DIR or ~/.cache/repro)",
    )
    p.add_argument(
        "--backend",
        choices=["serial", "process", "shared-store"],
        default=None,
        help="default execution backend for jobs that don't pick one",
    )
    p.add_argument(
        "-w", "--workers", type=int, default=None,
        help="default worker count per job",
    )
    p.add_argument(
        "--retries", type=int, default=1,
        help="default extra attempts per failed sweep task",
    )
    p.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task wall-clock deadline",
    )
    p.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="max seconds to wait for running jobs on SIGTERM",
    )

    p = sub.add_parser(
        "store", help="content-addressed result-store maintenance"
    )
    store_sub = p.add_subparsers(dest="action", required=True)
    for action, blurb in (
        ("stats", "entry count, size and quarantine inventory"),
        ("gc", "evict least-recently-used entries down to the size cap"),
        ("verify", "integrity-check every entry, quarantining failures"),
    ):
        ps2 = store_sub.add_parser(action, help=blurb)
        ps2.add_argument(
            "--store-dir",
            default=None,
            metavar="PATH",
            help="store directory (default $REPRO_STORE_DIR or ~/.cache/repro)",
        )
        if action == "gc":
            ps2.add_argument(
                "--max-bytes",
                type=int,
                default=None,
                help="override the size cap for this collection",
            )

    p = sub.add_parser(
        "faults", help="fault-injected replay: healthy vs injected comparison"
    )
    p.add_argument(
        "name",
        choices=["openmail", "oltp", "search_engine", "tpcc", "tpch"],
    )
    p.add_argument("-n", "--requests", type=int, default=2000)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--rpm", type=float, default=None, help="override spindle speed")
    p.add_argument("--fault-seed", type=int, default=0)
    p.add_argument(
        "--media-rate",
        type=float,
        default=0.01,
        help="per-media-access media-error probability",
    )
    p.add_argument(
        "--servo-rate",
        type=float,
        default=0.005,
        help="per-media-access servo-fault probability",
    )
    p.add_argument(
        "--remap-fraction",
        type=float,
        default=0.25,
        help="fraction of media errors escalating to a sector remap",
    )
    p.add_argument(
        "--max-ecc-retries",
        type=int,
        default=3,
        help="worst-case ECC re-read attempts per media error",
    )

    p = sub.add_parser(
        "trace", help="instrumented single replay: metrics, trace, sparklines"
    )
    p.add_argument(
        "name",
        choices=["openmail", "oltp", "search_engine", "tpcc", "tpch"],
    )
    p.add_argument("-n", "--requests", type=int, default=2000)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--rpm", type=float, default=None, help="override spindle speed")
    p.add_argument(
        "--interval",
        type=float,
        default=100.0,
        help="probe sampling interval in simulated ms",
    )
    p.add_argument(
        "--trace-capacity",
        type=int,
        default=65536,
        help="event-trace ring-buffer capacity",
    )
    p.add_argument(
        "--limit", type=int, default=10, help="trace-tail events to print"
    )
    p.add_argument(
        "--kind", default=None, help="only show trace events of this kind"
    )
    p.add_argument(
        "--format",
        choices=["json", "csv", "prom"],
        default="json",
        help="export format for --output",
    )
    p.add_argument(
        "-o", "--output", default=None, metavar="PATH", help="write telemetry here"
    )
    p.add_argument(
        "--ascii", action="store_true", help="ASCII sparklines (no unicode blocks)"
    )
    return parser


_HANDLERS = {
    "validate": _cmd_validate,
    "envelope": _cmd_envelope,
    "transient": _cmd_transient,
    "roadmap": _cmd_roadmap,
    "workload": _cmd_workload,
    "throttle": _cmd_throttle,
    "slack": _cmd_slack,
    "sweep": _cmd_sweep,
    "fleet": _cmd_fleet,
    "serve": _cmd_serve,
    "store": _cmd_store,
    "trace": _cmd_trace,
    "faults": _cmd_faults,
    "lint": _cmd_lint,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
