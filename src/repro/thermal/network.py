"""Lumped-parameter thermal network with finite-difference integration.

The drive thermal model is a small network of isothermal nodes (internal
air, spindle stack, base+cover, VCM+arms) connected by thermal conductances
to each other and to a fixed-temperature ambient, with heat injected at
nodes.  The governing equations are linear:

    C_i dT_i/dt = Q_i + sum_j G_ij (T_j - T_i) + G_i,amb (T_amb - T_i)

We integrate with backward (implicit) Euler, which is unconditionally stable
even though the air node's capacitance is orders of magnitude below the
castings' — exactly the stiffness that makes explicit stepping at the
paper's 600 steps/min delicate.  Steady state solves the same linear system
with the time derivative zeroed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ThermalError


@dataclass(frozen=True)
class ThermalNode:
    """One isothermal node.

    Attributes:
        name: unique node label.
        capacitance_j_per_k: lumped heat capacity; must be positive (use a
            small value for near-massless nodes such as air).
    """

    name: str
    capacitance_j_per_k: float

    def __post_init__(self) -> None:
        if self.capacitance_j_per_k <= 0:
            raise ThermalError(
                f"node {self.name!r}: capacitance must be positive, "
                f"got {self.capacitance_j_per_k}"
            )


@dataclass
class TransientResult:
    """A recorded transient: times and per-node temperature histories."""

    times_s: List[float] = field(default_factory=list)
    temperatures: Dict[str, List[float]] = field(default_factory=dict)

    def series(self, node: str) -> List[float]:
        """Temperature history of one node."""
        if node not in self.temperatures:
            raise ThermalError(f"no recorded node {node!r}")
        return self.temperatures[node]

    def final(self, node: str) -> float:
        """Last recorded temperature of a node."""
        series = self.series(node)
        if not series:
            raise ThermalError("transient recorded no samples")
        return series[-1]

    def time_to_reach(self, node: str, threshold: float, rising: bool = True) -> Optional[float]:
        """First recorded time the node crosses a threshold, or None."""
        for t, temp in zip(self.times_s, self.series(node)):
            if (rising and temp >= threshold) or (not rising and temp <= threshold):
                return t
        return None


class ThermalNetwork:
    """A linear thermal RC network with a fixed-temperature ambient.

    Args:
        nodes: the network's nodes, order defining the state vector.
        ambient_c: ambient (boundary) temperature in Celsius.
    """

    def __init__(self, nodes: Sequence[ThermalNode], ambient_c: float) -> None:
        if not nodes:
            raise ThermalError("network needs at least one node")
        names = [node.name for node in nodes]
        if len(set(names)) != len(names):
            raise ThermalError(f"duplicate node names: {names}")
        self.nodes = list(nodes)
        self.ambient_c = float(ambient_c)
        self._index = {node.name: i for i, node in enumerate(self.nodes)}
        n = len(self.nodes)
        self._g_internal = np.zeros((n, n))
        self._g_ambient = np.zeros(n)
        self._heat = np.zeros(n)
        self.temperatures = np.full(n, self.ambient_c, dtype=float)

    # -- construction -------------------------------------------------------------

    def node_index(self, name: str) -> int:
        """Index of a node in the state vector."""
        try:
            return self._index[name]
        except KeyError:
            raise ThermalError(
                f"unknown node {name!r}; nodes: {sorted(self._index)}"
            ) from None

    def connect(self, a: str, b: str, conductance_w_per_k: float) -> None:
        """Add (accumulate) a conductance between two nodes."""
        if conductance_w_per_k <= 0:
            raise ThermalError(f"conductance must be positive, got {conductance_w_per_k}")
        i, j = self.node_index(a), self.node_index(b)
        if i == j:
            raise ThermalError(f"cannot connect node {a!r} to itself")
        self._g_internal[i, j] += conductance_w_per_k
        self._g_internal[j, i] += conductance_w_per_k

    def connect_ambient(self, node: str, conductance_w_per_k: float) -> None:
        """Add a conductance from a node to the fixed ambient."""
        if conductance_w_per_k <= 0:
            raise ThermalError(f"conductance must be positive, got {conductance_w_per_k}")
        self._g_ambient[self.node_index(node)] += conductance_w_per_k

    def set_conductance(self, a: str, b: str, conductance_w_per_k: float) -> None:
        """Overwrite the conductance between two nodes (for mode changes)."""
        if conductance_w_per_k <= 0:
            raise ThermalError(f"conductance must be positive, got {conductance_w_per_k}")
        i, j = self.node_index(a), self.node_index(b)
        self._g_internal[i, j] = conductance_w_per_k
        self._g_internal[j, i] = conductance_w_per_k

    def set_heat(self, node: str, watts: float) -> None:
        """Set the heat injected at a node (may be zero, not negative)."""
        if watts < 0:
            raise ThermalError(f"heat input cannot be negative, got {watts}")
        self._heat[self.node_index(node)] = watts

    def heat(self, node: str) -> float:
        """Currently injected heat at a node, watts."""
        return float(self._heat[self.node_index(node)])

    def total_heat_w(self) -> float:
        """Total heat injected across all nodes, watts."""
        return float(self._heat.sum())

    # -- state --------------------------------------------------------------------

    def temperature(self, node: str) -> float:
        """Current temperature of a node, Celsius."""
        return float(self.temperatures[self.node_index(node)])

    def set_temperatures(self, values: Dict[str, float]) -> None:
        """Set current temperatures of some or all nodes."""
        for name, value in values.items():
            self.temperatures[self.node_index(name)] = value

    def reset(self, temperature_c: Optional[float] = None) -> None:
        """Reset all node temperatures (default: to ambient)."""
        value = self.ambient_c if temperature_c is None else temperature_c
        self.temperatures.fill(value)

    # -- solvers ------------------------------------------------------------------

    def _system_matrix(self) -> np.ndarray:
        """The conduction matrix A where A T = Q + G_amb T_amb at steady state."""
        diag = self._g_internal.sum(axis=1) + self._g_ambient
        return np.diag(diag) - self._g_internal

    def steady_state(self) -> Dict[str, float]:
        """Steady-state temperatures for the current heats/conductances."""
        a = self._system_matrix()
        rhs = self._heat + self._g_ambient * self.ambient_c
        if np.all(self._g_ambient == 0):
            raise ThermalError(
                "network has no path to ambient; steady state would be unbounded"
            )
        try:
            solution = np.linalg.solve(a, rhs)
        except np.linalg.LinAlgError as exc:  # pragma: no cover - defensive
            raise ThermalError(f"singular thermal network: {exc}") from exc
        return {node.name: float(solution[i]) for i, node in enumerate(self.nodes)}

    def step(self, dt_s: float) -> None:
        """Advance the transient state by one backward-Euler step."""
        if dt_s <= 0:
            raise ThermalError(f"time step must be positive, got {dt_s}")
        c = np.array([node.capacitance_j_per_k for node in self.nodes])
        a = np.diag(c / dt_s) + self._system_matrix()
        rhs = (c / dt_s) * self.temperatures + self._heat + self._g_ambient * self.ambient_c
        self.temperatures = np.linalg.solve(a, rhs)

    def simulate(
        self,
        duration_s: float,
        dt_s: float,
        record_every: int = 1,
        on_step: Optional[Callable[[float, "ThermalNetwork"], None]] = None,
        stop_when: Optional[Callable[[float, "ThermalNetwork"], bool]] = None,
    ) -> TransientResult:
        """Integrate for a duration, recording node temperatures.

        Args:
            duration_s: total simulated time.
            dt_s: integration step (paper: 0.1 s = 600 steps/min).
            record_every: record one sample every N steps.
            on_step: optional callback after each step (time, network),
                letting callers mutate heats mid-flight (DTM policies).
            stop_when: optional early-exit predicate evaluated after each
                step; when true, integration stops.

        Returns:
            The recorded transient, always including the initial state and
            the final state.
        """
        if duration_s <= 0:
            raise ThermalError(f"duration must be positive, got {duration_s}")
        if record_every < 1:
            raise ThermalError(f"record_every must be >= 1, got {record_every}")
        result = TransientResult(
            temperatures={node.name: [] for node in self.nodes}
        )

        def record(t: float) -> None:
            result.times_s.append(t)
            for i, node in enumerate(self.nodes):
                result.temperatures[node.name].append(float(self.temperatures[i]))

        record(0.0)
        steps = int(round(duration_s / dt_s))
        time = 0.0
        for k in range(1, steps + 1):
            self.step(dt_s)
            time = k * dt_s
            if on_step is not None:
                on_step(time, self)
            if k % record_every == 0 or k == steps:
                record(time)
            if stop_when is not None and stop_when(time, self):
                if result.times_s[-1] != time:
                    record(time)
                break
        return result

    # -- introspection ------------------------------------------------------------

    def conductances(self) -> Iterable[Tuple[str, str, float]]:
        """Yield (node_a, node_b, G) for every internal connection."""
        n = len(self.nodes)
        for i in range(n):
            for j in range(i + 1, n):
                g = self._g_internal[i, j]
                if g > 0:
                    yield (self.nodes[i].name, self.nodes[j].name, float(g))
