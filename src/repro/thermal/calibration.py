"""Calibration of the thermal model against the Cheetah 15K.3 anchor.

The paper validates its adapted Clauss-Eibeck model by dissecting a Seagate
Cheetah 15K.3 (single 2.6-inch platter in a 3.5-inch enclosure, 15K RPM),
running it with SPM and VCM always on from a 28 C ambient, and observing a
45.22 C steady internal-air temperature reached in about 48 minutes.

We mirror that: all conductances come from geometry + correlations, and the
one genuinely unobservable input — the spindle motor's electrical/bearing
loss — is fit so the reference configuration lands exactly on 45.22 C.
Because the network is linear in heat inputs, the fit needs just two
evaluations.
"""

from __future__ import annotations

from dataclasses import replace

from repro.constants import AMBIENT_TEMPERATURE_C, THERMAL_ENVELOPE_C
from repro.errors import ThermalError
from repro.thermal.model import DriveThermalModel, ThermalCalibration

#: The reference configuration the paper dissected and measured.
REFERENCE_DIAMETER_IN = 2.6
REFERENCE_PLATTERS = 1
REFERENCE_RPM = 15000.0


def reference_model(calibration: ThermalCalibration) -> DriveThermalModel:
    """The Cheetah 15K.3 validation configuration under a calibration."""
    return DriveThermalModel(
        platter_diameter_in=REFERENCE_DIAMETER_IN,
        platter_count=REFERENCE_PLATTERS,
        rpm=REFERENCE_RPM,
        ambient_c=AMBIENT_TEMPERATURE_C,
        vcm_active=True,
        calibration=calibration,
    )


def fit_spm_power(
    base: ThermalCalibration,
    target_air_c: float = THERMAL_ENVELOPE_C,
) -> ThermalCalibration:
    """Fit the spindle-motor loss so the reference drive hits the target.

    The steady air temperature is affine in the SPM power, so two probe
    evaluations determine the fit exactly.

    Args:
        base: calibration whose other constants are kept.
        target_air_c: target steady internal-air temperature.

    Returns:
        A copy of ``base`` with ``spm_power_w`` replaced by the fitted value.

    Raises:
        ThermalError: if the fit would need a non-positive motor power
            (meaning the other constants are inconsistent with the anchor).
    """
    probe_low, probe_high = 5.0, 15.0
    t_low = reference_model(replace(base, spm_power_w=probe_low)).steady_air_c()
    t_high = reference_model(replace(base, spm_power_w=probe_high)).steady_air_c()
    slope = (t_high - t_low) / (probe_high - probe_low)
    if slope <= 0:
        raise ThermalError("steady temperature did not increase with SPM power")
    fitted = probe_low + (target_air_c - t_low) / slope
    if fitted <= 0:
        raise ThermalError(
            f"fit requires non-physical SPM power {fitted:.2f} W; "
            "other calibration constants are inconsistent with the anchor"
        )
    return replace(base, spm_power_w=fitted)


def calibrated() -> ThermalCalibration:
    """Re-derive the default calibration from scratch.

    Equal (to float precision) to
    :data:`repro.thermal.model.DEFAULT_CALIBRATION` once that constant's
    pinned ``spm_power_w`` is the fitted value; the test suite asserts this
    so the pinned constant can never drift from the fitting procedure.
    """
    return fit_spm_power(ThermalCalibration())
