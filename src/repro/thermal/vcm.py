"""Voice-coil motor power vs platter size.

Seeking a bigger platter needs a stronger (and farther-swinging) actuator.
The authors used a private correlation from Sri-Jayantha [44]; the paper
publishes three points we anchor to exactly — 3.9 W at 2.6 in, 2.28 W at
2.1 in, 0.618 W at 1.6 in — plus the ratios "roughly 2x for 95 mm vs 65 mm
and 4x vs 47 mm", which fix the behaviour at larger sizes.  We interpolate
log-linearly (piecewise power law) between anchors and clamp outside them.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from repro.errors import ThermalError

#: (platter diameter in inches, VCM power in watts).  The 1.6/2.1/2.6 points
#: are stated in the paper (§3.3 and §5.2); 3.3 and 3.7 extend the curve
#: using the Sri-Jayantha ratios relative to the 2.6-inch anchor.
VCM_POWER_ANCHORS: Sequence[Tuple[float, float]] = (
    (1.6, 0.618),
    (2.1, 2.28),
    (2.6, 3.9),
    (3.3, 6.2),
    (3.7, 7.8),
)


def vcm_power_w(diameter_in: float) -> float:
    """Seek-mode VCM power for a platter diameter, in watts.

    Piecewise log-log interpolation through :data:`VCM_POWER_ANCHORS`,
    clamped at the end points (the paper likewise declines to extrapolate
    below 1.6 inches for lack of correlations).
    """
    if diameter_in <= 0:
        raise ThermalError(f"diameter must be positive, got {diameter_in}")
    anchors = VCM_POWER_ANCHORS
    if diameter_in <= anchors[0][0]:
        return anchors[0][1]
    if diameter_in >= anchors[-1][0]:
        return anchors[-1][1]
    for (d_lo, p_lo), (d_hi, p_hi) in zip(anchors, anchors[1:]):
        if d_lo <= diameter_in <= d_hi:
            frac = (math.log(diameter_in) - math.log(d_lo)) / (
                math.log(d_hi) - math.log(d_lo)
            )
            return math.exp(math.log(p_lo) + frac * (math.log(p_hi) - math.log(p_lo)))
    raise ThermalError(f"failed to interpolate VCM power for {diameter_in}")  # pragma: no cover
