"""Array-level thermal coupling (after Huang & Chung [28]).

The paper's workloads run on 4-24 disk arrays, and it cites work on
temperature-aware disk-array design.  In a typical array chassis, cooling
air flows over the drives in series: each drive dumps its heat into the
stream, so downstream drives see a hotter effective ambient and must obey
a tighter internal budget.

We model the stream with an energy balance: air heated by drive ``i``
rises by ``Q_i / (rho * c_p * V)`` where ``V`` is the volumetric airflow.
Each drive then runs the standard single-drive model at its local ambient.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.constants import AMBIENT_TEMPERATURE_C, THERMAL_ENVELOPE_C
from repro.errors import EnvelopeError, ThermalError
from repro.materials import AIR
from repro.thermal.envelope import max_rpm_within_envelope, steady_air_temperature_c
from repro.thermal.model import ThermalCalibration
from repro.thermal.vcm import vcm_power_w
from repro.thermal.viscous import viscous_power_w


@dataclass(frozen=True)
class ArrayPosition:
    """Thermal state of one slot in the airflow path.

    Attributes:
        index: position along the airflow (0 = coolest, at the inlet).
        local_ambient_c: air temperature entering this slot.
        internal_air_c: drive's steady internal air temperature.
        max_rpm: highest RPM this slot supports inside the envelope.
    """

    index: int
    local_ambient_c: float
    internal_air_c: float
    max_rpm: float

    @property
    def within_envelope(self) -> bool:
        return self.internal_air_c <= THERMAL_ENVELOPE_C + 1e-9


def drive_heat_w(
    rpm: float,
    diameter_in: float,
    platter_count: int = 1,
    vcm_duty: float = 1.0,
    spm_power_w: Optional[float] = None,
) -> float:
    """Total heat one drive dumps into the cooling stream, watts."""
    if not 0.0 <= vcm_duty <= 1.0:
        raise ThermalError("vcm duty must be in [0, 1]")
    if spm_power_w is None:
        from repro.thermal.model import DEFAULT_CALIBRATION

        spm_power_w = DEFAULT_CALIBRATION.spm_power_w
    return (
        viscous_power_w(rpm, diameter_in, platter_count)
        + spm_power_w
        + vcm_duty * vcm_power_w(diameter_in)
    )


def airflow_temperature_rise_c(heat_w: float, airflow_m3_per_s: float) -> float:
    """Temperature rise of the cooling stream after absorbing ``heat_w``."""
    if airflow_m3_per_s <= 0:
        raise ThermalError("airflow must be positive")
    return heat_w / (AIR.density * AIR.specific_heat * airflow_m3_per_s)


def serial_array_profile(
    disk_count: int,
    rpm: float,
    diameter_in: float = 2.6,
    platter_count: int = 1,
    inlet_c: float = AMBIENT_TEMPERATURE_C,
    airflow_m3_per_s: float = 0.01,
    vcm_duty: float = 1.0,
    calibration: Optional[ThermalCalibration] = None,
) -> List[ArrayPosition]:
    """Per-slot thermal profile of a serially cooled array.

    Args:
        disk_count: drives along the airflow path.
        rpm: common spindle speed.
        diameter_in / platter_count: drive geometry.
        inlet_c: air temperature entering the chassis.
        airflow_m3_per_s: cooling airflow (0.01 m^3/s ~ a strong 1U fan).
        vcm_duty: seek activity assumed when computing the dumped heat and
            the drive's internal temperature.
        calibration: thermal calibration.
    """
    if disk_count < 1:
        raise ThermalError("need at least one disk")
    positions: List[ArrayPosition] = []
    local_ambient = inlet_c
    heat = drive_heat_w(rpm, diameter_in, platter_count, vcm_duty)
    for index in range(disk_count):
        internal = steady_air_temperature_c(
            diameter_in,
            rpm,
            platter_count=platter_count,
            ambient_c=local_ambient,
            vcm_active=vcm_duty > 0,
            calibration=calibration,
        )
        if vcm_duty not in (0.0, 1.0):
            # Fractional duty: interpolate between the VCM-on/off extremes
            # (the network is linear in the VCM heat).
            off = steady_air_temperature_c(
                diameter_in,
                rpm,
                platter_count=platter_count,
                ambient_c=local_ambient,
                vcm_active=False,
                calibration=calibration,
            )
            internal = off + vcm_duty * (internal - off)
        try:
            limit = max_rpm_within_envelope(
                diameter_in,
                platter_count=platter_count,
                ambient_c=local_ambient,
                vcm_active=vcm_duty > 0,
                calibration=calibration,
            )
        except EnvelopeError:
            limit = 0.0
        positions.append(
            ArrayPosition(
                index=index,
                local_ambient_c=local_ambient,
                internal_air_c=internal,
                max_rpm=limit,
            )
        )
        local_ambient += airflow_temperature_rise_c(heat, airflow_m3_per_s)
    return positions


def array_envelope_rpm(
    disk_count: int,
    diameter_in: float = 2.6,
    platter_count: int = 1,
    inlet_c: float = AMBIENT_TEMPERATURE_C,
    airflow_m3_per_s: float = 0.01,
    vcm_duty: float = 1.0,
    calibration: Optional[ThermalCalibration] = None,
    tolerance_rpm: float = 25.0,
) -> float:
    """Highest common RPM keeping *every* slot inside the envelope.

    The last (hottest) slot binds; because its local ambient itself rises
    with RPM (more windage upstream), this is solved by bisection over the
    whole-array profile rather than a single-drive query.

    Raises:
        EnvelopeError: if even a minimal spindle speed overheats the
            downstream slots.
    """

    def worst_internal(rpm: float) -> float:
        profile = serial_array_profile(
            disk_count,
            rpm,
            diameter_in=diameter_in,
            platter_count=platter_count,
            inlet_c=inlet_c,
            airflow_m3_per_s=airflow_m3_per_s,
            vcm_duty=vcm_duty,
            calibration=calibration,
        )
        return max(p.internal_air_c for p in profile)

    low, high = 5000.0, 500000.0
    if worst_internal(low) > THERMAL_ENVELOPE_C:
        raise EnvelopeError(
            f"a {disk_count}-disk serial array overheats its downstream "
            f"slots even at {low:.0f} RPM with this airflow"
        )
    if worst_internal(high) <= THERMAL_ENVELOPE_C:
        return high
    while high - low > tolerance_rpm:
        mid = 0.5 * (low + high)
        if worst_internal(mid) <= THERMAL_ENVELOPE_C:
            low = mid
        else:
            high = mid
    return low
