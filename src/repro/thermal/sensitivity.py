"""Sensitivity of the roadmap's headline results to modeling choices.

The paper's conclusions rest on a handful of empirical constants: the
windage exponents (RPM^2.8, D^4.8), the convection coefficients, and the
calibrated spindle loss.  The calibration anchor (the dissected Cheetah
15K.3 at 45.22 C) is a *measurement*, so a fair perturbation study varies
the uncertain constants and re-fits the spindle loss to the anchor each
time, then asks how far the *extrapolations* move: the maximum in-envelope
RPM of the small (1.6-inch) future design and the roadmap's shortfall
year.  This is the robustness argument behind "one cannot deny the sharp
drop off ... because of the thermal envelope" (paper §6).

A note on margins: the envelope design is tight by construction — the
fixed (non-windage) losses sit ~1 W below the envelope heat budget, so
*unfit* perturbations of cooling or motor loss by ±10% make the anchored
design infeasible outright.  That tightness is itself a finding the bench
reports.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.constants import THERMAL_ENVELOPE_C
from repro.errors import ThermalError
from repro.scaling.roadmap import first_shortfall_year, thermal_roadmap
from repro.thermal.calibration import fit_spm_power
from repro.thermal.envelope import max_rpm_within_envelope
from repro.thermal.model import DEFAULT_CALIBRATION, ThermalCalibration


@dataclass(frozen=True)
class SensitivityPoint:
    """One perturbation of the model (re-fit to the anchor).

    Attributes:
        parameter: which constant was perturbed.
        scale: multiplicative perturbation applied.
        fitted_spm_w: spindle loss re-fit to the Cheetah anchor.
        envelope_rpm_16: max in-envelope RPM for the 1.6-inch single-platter
            design (the roadmap's extrapolated workhorse).
        shortfall_year: first roadmap year no studied size meets the 40%
            target (None if never).
    """

    parameter: str
    scale: float
    fitted_spm_w: float
    envelope_rpm_16: float
    shortfall_year: Optional[int]


def _evaluate(parameter: str, scale: float, calibration: ThermalCalibration) -> SensitivityPoint:
    refit = fit_spm_power(calibration)
    rpm16 = max_rpm_within_envelope(1.6, calibration=refit)
    points = thermal_roadmap(platter_count=1, calibration=refit)
    return SensitivityPoint(
        parameter=parameter,
        scale=scale,
        fitted_spm_w=refit.spm_power_w,
        envelope_rpm_16=rpm16,
        shortfall_year=first_shortfall_year(points),
    )


def calibration_sensitivity(
    scales: Sequence[float] = (0.8, 0.9, 1.0, 1.1, 1.2),
    base: ThermalCalibration = DEFAULT_CALIBRATION,
) -> List[SensitivityPoint]:
    """Perturb each uncertain constant, re-fit to the anchor, re-run the
    headline queries.  Returns one point per (parameter, scale)."""
    perturbations: Dict[str, Callable[[float], ThermalCalibration]] = {
        "airflow_quality": lambda s: replace(
            base, airflow_quality=base.airflow_quality * s
        ),
        "stack_convection_scale": lambda s: replace(
            base, stack_convection_scale=base.stack_convection_scale * s
        ),
        "internal_wall_scale": lambda s: replace(
            base, internal_wall_scale=base.internal_wall_scale * s
        ),
        "vcm_pivot_g_w_per_k": lambda s: replace(
            base, vcm_pivot_g_w_per_k=base.vcm_pivot_g_w_per_k * s
        ),
        "spindle_bearing_g_w_per_k": lambda s: replace(
            base, spindle_bearing_g_w_per_k=base.spindle_bearing_g_w_per_k * s
        ),
    }
    points: List[SensitivityPoint] = []
    for name, perturb in perturbations.items():
        for scale in scales:
            points.append(_evaluate(name, scale, perturb(scale)))
    return points


def fixed_loss_margin_w(base: ThermalCalibration = DEFAULT_CALIBRATION) -> float:
    """Extra fixed (non-windage) heat the design could absorb at minimum
    windage before hitting the envelope.

    Evaluated at 5,000 RPM (windage nearly gone): the gap between the
    envelope and the steady air temperature, divided by the air's
    sensitivity to stack heat.  A small value (~1 W) quantifies how tight
    the envelope design is — and why unfit ±10% perturbations of cooling
    or motor loss are infeasible outright.
    """
    from repro.thermal.envelope import steady_air_temperature_c
    from repro.thermal.calibration import (
        REFERENCE_DIAMETER_IN,
        REFERENCE_PLATTERS,
    )
    from repro.thermal.model import DriveThermalModel

    low_rpm = 5000.0
    air = steady_air_temperature_c(
        REFERENCE_DIAMETER_IN, low_rpm, platter_count=REFERENCE_PLATTERS,
        calibration=base,
    )
    model = DriveThermalModel(
        platter_diameter_in=REFERENCE_DIAMETER_IN,
        platter_count=REFERENCE_PLATTERS,
        rpm=low_rpm,
        calibration=base,
    )
    model.network.set_heat("stack", base.spm_power_w + 1.0)
    slope = model.steady_air_c() - air
    if slope <= 0:
        raise ThermalError("steady temperature did not respond to stack heat")
    return (THERMAL_ENVELOPE_C - air) / slope


def exponent_sensitivity(
    rpm_exponents: Sequence[float] = (2.6, 2.8, 3.0),
    diameter_exponents: Sequence[float] = (4.6, 4.8, 5.0),
    envelope_c: float = THERMAL_ENVELOPE_C,
) -> List[dict]:
    """Vary the windage exponents (the paper quotes 2.8/4.8, with 2.8/4.6
    mentioned in its introduction) and report the envelope RPM shift.

    Because :func:`repro.thermal.viscous.viscous_power_w` pins the anchor
    point (0.91 W at 15,098 RPM, 2.6 in), changing the exponent rotates the
    power curve about that anchor: the 2.6-inch limit barely moves, while
    designs farther from the anchor shift more.
    """
    from repro.geometry.enclosure import FORM_FACTOR_35
    from repro.thermal.model import DriveThermalModel
    from repro.thermal.viscous import viscous_power_w

    results = []
    for rpm_exp in rpm_exponents:
        for dia_exp in diameter_exponents:
            def air_at(rpm: float, diameter: float = 2.6) -> float:
                model = DriveThermalModel(
                    platter_diameter_in=diameter,
                    rpm=rpm,
                    enclosure=FORM_FACTOR_35,
                )
                model.network.set_heat(
                    "air",
                    viscous_power_w(
                        rpm,
                        diameter,
                        1,
                        rpm_exponent=rpm_exp,
                        diameter_exponent=dia_exp,
                    ),
                )
                return model.network.steady_state()["air"]

            low, high = 5000.0, 500000.0
            if air_at(low) > envelope_c:
                raise ThermalError("perturbed model infeasible at bracket floor")
            while high - low > 5.0:
                mid = 0.5 * (low + high)
                if air_at(mid) <= envelope_c:
                    low = mid
                else:
                    high = mid
            results.append(
                {
                    "rpm_exponent": rpm_exp,
                    "diameter_exponent": dia_exp,
                    "envelope_rpm_26": low,
                }
            )
    return results


def headline_robust(points: Sequence[SensitivityPoint]) -> bool:
    """Whether the paper's headline survives every perturbation: the
    roadmap still falls off the 40% curve before its end."""
    return all(
        p.shortfall_year is not None and p.shortfall_year <= 2012 for p in points
    )
