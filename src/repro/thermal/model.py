"""Drive thermal model (paper §3.3).

Following Clauss & Eibeck, the drive is divided into four components — the
internal air, the spindle-motor assembly (hub + platters), the base and
cover, and the VCM with the disk arms — exchanging heat by convection with
the air and conduction through mounting points, with the only escape path
being the base/cover's convection to the externally cooled ambient air.

Heat sources:

* windage (viscous dissipation) into the internal air — ``N * RPM^2.8 *
  D^4.8`` scaling anchored at the paper's 0.91 W point;
* spindle-motor electrical/bearing losses into the stack node;
* VCM power into the actuator node while seeking (``vcm_active``).

Conductances come from geometry and standard correlations with calibration
factors fit once against the dissected Cheetah 15K.3 (see
:mod:`repro.thermal.calibration`); the same calibrated model is used for
every configuration in the roadmap.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - cycle broken at runtime
    from repro.telemetry.probes import ProbeSet

from repro.constants import AMBIENT_TEMPERATURE_C, FD_TIME_STEP_S
from repro.errors import ThermalError
from repro.geometry.actuator import Actuator, actuator_for_platter
from repro.geometry.enclosure import FORM_FACTOR_35, Enclosure
from repro.geometry.platter import Platter
from repro.geometry.stack import DiskStack
from repro.materials import AIR
from repro.thermal.correlations import (
    enclosed_air_internal_h,
    external_forced_h,
    rotating_disk_h,
)
from repro.thermal.network import ThermalNetwork, ThermalNode, TransientResult
from repro.thermal.vcm import vcm_power_w
from repro.thermal.viscous import viscous_power_w

#: Node names of the four-component model.
NODE_AIR = "air"
NODE_STACK = "stack"
NODE_BASE = "base"
NODE_VCM = "vcm"


@dataclass(frozen=True)
class ThermalCalibration:
    """Calibration constants of the thermal model.

    Fit once against the Cheetah 15K.3 anchor (45.22 C steady internal air
    at 15K RPM, 2.6-inch platter, 3.5-inch enclosure, 28 C ambient, VCM on);
    see :mod:`repro.thermal.calibration` for the fitting procedure.

    Attributes:
        stack_convection_scale: multiplier on the free-rotating-disk
            correlation to account for the enclosed, co-rotating stack.
        internal_wall_scale: multiplier on the air/casting interior
            coefficient.
        airflow_quality: multiplier on the external forced-convection
            coefficient (1.0 = the paper's baseline cooling system).
        spindle_bearing_g_w_per_k: conduction from stack to base through the
            spindle bearing.
        vcm_pivot_g_w_per_k: conduction from the actuator to the base
            through the pivot and magnet mounts.
        spm_power_w: spindle-motor electrical + bearing loss injected into
            the stack while spinning (fit parameter).
        chassis_extra_mass_kg: non-casting structural mass (motor stator,
            electronics, connectors) lumped into the base node.
    """

    stack_convection_scale: float = 2.3
    internal_wall_scale: float = 1.3
    airflow_quality: float = 1.0
    spindle_bearing_g_w_per_k: float = 0.5
    vcm_pivot_g_w_per_k: float = 0.6
    spm_power_w: float = 10.453827990672547
    chassis_extra_mass_kg: float = 0.35

    def with_spm_power(self, watts: float) -> "ThermalCalibration":
        """Copy with a different spindle-motor loss."""
        return replace(self, spm_power_w=watts)

    def with_airflow_quality(self, quality: float) -> "ThermalCalibration":
        """Copy with a different external-cooling effectiveness."""
        return replace(self, airflow_quality=quality)


class DriveThermalModel:
    """Four-node thermal model of one disk drive.

    Args:
        platter_diameter_in: media diameter in inches.
        platter_count: platters in the stack.
        rpm: initial spindle speed.
        enclosure: drive enclosure (default 3.5-inch form factor).
        ambient_c: cooled external air temperature.
        vcm_active: whether the actuator is seeking (VCM dissipating).
        calibration: calibration constants (default: fitted values).
        spinning: whether the spindle motor is on (False = spun down).
    """

    def __init__(
        self,
        platter_diameter_in: float,
        platter_count: int = 1,
        rpm: float = 15000.0,
        enclosure: Enclosure = FORM_FACTOR_35,
        ambient_c: float = AMBIENT_TEMPERATURE_C,
        vcm_active: bool = True,
        calibration: Optional[ThermalCalibration] = None,
        spinning: bool = True,
    ) -> None:
        if rpm < 0:
            raise ThermalError(f"rpm cannot be negative, got {rpm}")
        self.calibration = calibration or DEFAULT_CALIBRATION
        self.platter = Platter(diameter_in=platter_diameter_in)
        if not enclosure.can_house_platter(platter_diameter_in):
            raise ThermalError(
                f"{enclosure.name} enclosure cannot house a "
                f"{platter_diameter_in}-inch platter"
            )
        self.stack = DiskStack(platter=self.platter, count=platter_count)
        self.actuator: Actuator = actuator_for_platter(self.platter, self.stack.surfaces)
        self.enclosure = enclosure
        self.rpm = float(rpm)
        self.vcm_active = bool(vcm_active)
        self.spinning = bool(spinning)

        self.network = self._build_network(ambient_c)
        self._apply_operating_state()

    # -- construction -------------------------------------------------------------

    def _build_network(self, ambient_c: float) -> ThermalNetwork:
        cal = self.calibration
        displaced = (
            self.stack.count * self.platter.volume_m3()
            + 3.14159 * self.stack.hub_radius_m**2 * self.stack.hub_height_m
        )
        air_volume = self.enclosure.internal_air_volume_m3(displaced)
        air_capacitance = max(air_volume * AIR.volumetric_heat_capacity(), 0.05)
        base_capacitance = (
            self.enclosure.heat_capacity_j_per_k()
            + cal.chassis_extra_mass_kg * 896.0
        )
        nodes = [
            ThermalNode(NODE_AIR, air_capacitance),
            ThermalNode(NODE_STACK, self.stack.heat_capacity_j_per_k()),
            ThermalNode(NODE_BASE, base_capacitance),
            ThermalNode(NODE_VCM, self.actuator.heat_capacity_j_per_k()),
        ]
        network = ThermalNetwork(nodes, ambient_c=ambient_c)
        # Placeholder conductances; _apply_operating_state overwrites the
        # speed-dependent ones and these constants stay as set here.
        network.connect(NODE_AIR, NODE_STACK, 1.0)
        network.connect(NODE_AIR, NODE_BASE, 1.0)
        network.connect(NODE_AIR, NODE_VCM, 1.0)
        network.connect(NODE_STACK, NODE_BASE, cal.spindle_bearing_g_w_per_k)
        network.connect(NODE_VCM, NODE_BASE, cal.vcm_pivot_g_w_per_k)
        external_g = (
            external_forced_h(cal.airflow_quality) * self.enclosure.external_area_m2()
        )
        network.connect_ambient(NODE_BASE, external_g)
        return network

    def _apply_operating_state(self) -> None:
        cal = self.calibration
        rpm = self.rpm if self.spinning else 0.0

        stack_h = cal.stack_convection_scale * rotating_disk_h(
            rpm, self.platter.outer_radius_m
        )
        g_stack_air = stack_h * self.stack.convective_area_m2()
        wall_h = cal.internal_wall_scale * enclosed_air_internal_h(rpm)
        g_air_base = wall_h * self.enclosure.external_area_m2()
        arm_h = cal.stack_convection_scale * rotating_disk_h(
            rpm, max(self.actuator.arm_length_m, 1e-3)
        )
        g_vcm_air = arm_h * self.actuator.convective_area_m2()

        self.network.set_conductance(NODE_AIR, NODE_STACK, max(g_stack_air, 1e-3))
        self.network.set_conductance(NODE_AIR, NODE_BASE, max(g_air_base, 1e-3))
        self.network.set_conductance(NODE_AIR, NODE_VCM, max(g_vcm_air, 1e-3))

        self.network.set_heat(
            NODE_AIR,
            viscous_power_w(rpm, self.platter.diameter_in, self.stack.count)
            if rpm > 0
            else 0.0,
        )
        self.network.set_heat(NODE_STACK, cal.spm_power_w if self.spinning else 0.0)
        self.network.set_heat(
            NODE_VCM, self.vcm_power_w() if self.vcm_active else 0.0
        )

    # -- operating state ------------------------------------------------------------

    def vcm_power_w(self) -> float:
        """Seek-mode VCM power for this platter size, watts."""
        return vcm_power_w(self.platter.diameter_in)

    def set_operating_state(
        self,
        rpm: Optional[float] = None,
        vcm_active: Optional[bool] = None,
        spinning: Optional[bool] = None,
    ) -> None:
        """Change spindle speed / VCM / spin state; temperatures persist."""
        if rpm is not None:
            if rpm < 0:
                raise ThermalError(f"rpm cannot be negative, got {rpm}")
            self.rpm = float(rpm)
        if vcm_active is not None:
            self.vcm_active = bool(vcm_active)
        if spinning is not None:
            self.spinning = bool(spinning)
        self._apply_operating_state()

    def set_vcm_duty(self, duty: float) -> None:
        """Set a fractional VCM activity level.

        DTM controllers observe how busy the actuator actually is (the
        fraction of time spent seeking) and scale the VCM heat accordingly,
        instead of the binary worst-case on/off of ``vcm_active``.

        Args:
            duty: fraction of time the VCM is energized, in [0, 1].
        """
        if not 0.0 <= duty <= 1.0:
            raise ThermalError(f"duty must be in [0, 1], got {duty}")
        self.network.set_heat(NODE_VCM, self.vcm_power_w() * duty)

    def set_ambient(self, ambient_c: float) -> None:
        """Change the cooled external air temperature."""
        self.network.ambient_c = float(ambient_c)

    @property
    def ambient_c(self) -> float:
        """Current external ambient temperature."""
        return self.network.ambient_c

    # -- queries -------------------------------------------------------------------

    def steady_state(self) -> Dict[str, float]:
        """Steady-state temperatures of all four nodes, Celsius."""
        return self.network.steady_state()

    def steady_air_c(self) -> float:
        """Steady-state internal-air temperature, Celsius."""
        return self.steady_state()[NODE_AIR]

    def settle(self) -> None:
        """Jump the transient state to steady state."""
        self.network.set_temperatures(self.steady_state())

    def air_c(self) -> float:
        """Current (transient) internal-air temperature."""
        return self.network.temperature(NODE_AIR)

    def transient(
        self,
        duration_s: float,
        dt_s: float = FD_TIME_STEP_S,
        record_every: int = 1,
        from_ambient: bool = False,
    ) -> TransientResult:
        """Integrate the transient response.

        Args:
            duration_s: simulated duration in seconds.
            dt_s: time step (default the paper's 600 steps/min).
            record_every: sample decimation for the returned series.
            from_ambient: if True, reset all nodes to ambient first (the
                paper's Figure 1 warm-up experiment).
        """
        if from_ambient:
            self.network.reset()
        return self.network.simulate(duration_s, dt_s, record_every=record_every)

    def total_power_w(self) -> float:
        """Total heat currently dissipated inside the drive, watts."""
        return self.network.total_heat_w()

    # -- telemetry ------------------------------------------------------------------

    def attach_probes(self, probes: "ProbeSet", prefix: str = "thermal") -> None:
        """Register this model's observables on a telemetry probe set.

        Adds one time-series probe per thermal node (transient
        temperature), plus spindle speed and total dissipated power —
        the quantities the paper's transient figures (1, 6) plot.  The
        probe set's owner decides the sampling cadence; the model itself
        never schedules anything.

        Args:
            probes: the probe set to register on.
            prefix: name prefix (``<prefix>.air_c`` etc.).
        """
        for node in (NODE_AIR, NODE_STACK, NODE_BASE, NODE_VCM):
            probes.add(
                f"{prefix}.{node}_c",
                (lambda n=node: self.network.temperature(n)),
                unit="C",
            )
        probes.add(f"{prefix}.rpm", lambda: self.rpm, unit="rpm")
        probes.add(f"{prefix}.power_w", self.total_power_w, unit="W")


#: Calibration fitted so the reference Cheetah 15K.3 model (2.6-inch single
#: platter, 15K RPM, 3.5-inch enclosure, 28 C ambient, VCM+SPM always on)
#: settles at the paper's 45.22 C internal-air steady state.  Derived by
#: :func:`repro.thermal.calibration.fit_spm_power`; the value is pinned here
#: so every experiment shares one calibration.
DEFAULT_CALIBRATION = ThermalCalibration()
