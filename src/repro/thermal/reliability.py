"""Temperature-driven drive reliability (paper §1 and §6).

"Even a fifteen degree Celsius rise from the ambient temperature can
double the failure rate of a disk drive" (Anderson, Dykes & Riedel [2]).
The paper's closing argument is that DTM is worthwhile even ignoring
performance: running cooler directly buys reliability.

We model the failure-rate dependence as the exponential the doubling rule
implies — an Arrhenius-style acceleration factor of ``2^(dT / 15)`` — and
expose helpers that score operating points and DTM policies by their
relative failure rate and MTBF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.constants import AMBIENT_TEMPERATURE_C, THERMAL_ENVELOPE_C
from repro.errors import ThermalError

#: Temperature rise that doubles the failure rate (Anderson et al. [2]).
DOUBLING_DELTA_C = 15.0


def failure_acceleration(
    temperature_c: float,
    reference_c: float = AMBIENT_TEMPERATURE_C,
    doubling_delta_c: float = DOUBLING_DELTA_C,
) -> float:
    """Failure-rate multiplier at a temperature, relative to a reference.

    ``2 ** ((T - T_ref) / 15)``: +15 C doubles, -15 C halves.

    Args:
        temperature_c: operating temperature.
        reference_c: the baseline the multiplier is expressed against.
        doubling_delta_c: degrees per failure-rate doubling.
    """
    if doubling_delta_c <= 0:
        raise ThermalError("doubling delta must be positive")
    return 2.0 ** ((temperature_c - reference_c) / doubling_delta_c)


def relative_mtbf(
    temperature_c: float,
    reference_c: float = AMBIENT_TEMPERATURE_C,
    doubling_delta_c: float = DOUBLING_DELTA_C,
) -> float:
    """MTBF at a temperature relative to the reference (inverse of the
    failure acceleration)."""
    return 1.0 / failure_acceleration(temperature_c, reference_c, doubling_delta_c)


@dataclass(frozen=True)
class ReliabilityComparison:
    """Reliability effect of operating cooler.

    Attributes:
        hot_c / cool_c: the two operating temperatures compared.
        failure_ratio: hot failure rate / cool failure rate (>1 means the
            cooler point is more reliable).
    """

    hot_c: float
    cool_c: float

    @property
    def failure_ratio(self) -> float:
        return failure_acceleration(self.hot_c, reference_c=self.cool_c)

    @property
    def mtbf_gain_fraction(self) -> float:
        """Relative MTBF improvement from running at the cooler point."""
        return self.failure_ratio - 1.0


def dtm_reliability_gain(
    envelope_c: float = THERMAL_ENVELOPE_C,
    managed_mean_c: Optional[float] = None,
    duty: float = 0.5,
    diameter_in: float = 2.6,
    rpm: Optional[float] = None,
) -> ReliabilityComparison:
    """Reliability gain of DTM used purely to run cooler (paper §6).

    Compares a worst-case design pinned at the envelope against a DTM-
    managed drive whose average temperature reflects its true VCM duty.

    Args:
        envelope_c: the worst-case operating temperature.
        managed_mean_c: average temperature under DTM; if None it is
            computed from the thermal model at ``duty``.
        duty: VCM duty cycle used when computing the managed temperature.
        diameter_in: platter size for the computed case.
        rpm: spindle speed for the computed case (default: the envelope
            design's maximum).
    """
    if managed_mean_c is None:
        from repro.thermal.envelope import max_rpm_within_envelope
        from repro.thermal.model import DriveThermalModel

        if not 0.0 <= duty <= 1.0:
            raise ThermalError("duty must be in [0, 1]")
        speed = rpm if rpm is not None else max_rpm_within_envelope(diameter_in)
        model = DriveThermalModel(
            platter_diameter_in=diameter_in, rpm=speed, vcm_active=True
        )
        model.set_vcm_duty(duty)
        managed_mean_c = model.steady_state()["air"]
    return ReliabilityComparison(hot_c=envelope_c, cool_c=managed_mean_c)


def fleet_failure_rate(
    temperatures_c: Sequence[float],
    reference_c: float = AMBIENT_TEMPERATURE_C,
) -> float:
    """Aggregate relative failure rate of a fleet of drives (sum of the
    members' acceleration factors) — RAID arrays care about the first
    failure, whose rate is the sum."""
    if not temperatures_c:
        raise ThermalError("fleet must have at least one drive")
    return sum(failure_acceleration(t, reference_c) for t in temperatures_c)
