"""Viscous dissipation (windage) inside the drive.

The drag of the air sheared between the spinning platters and the enclosure
dissipates power into the internal air.  Per the paper (citing Clauss [9] and
Schirle & Lieu [41]) this windage is linear in the number of platters, grows
with the 2.8-th power of the RPM, and the 4.8-th power of the platter
diameter.  The proportionality constant is anchored to the paper's reported
0.91 W for the 2002 single-platter 2.6-inch design at 15,098 RPM.
"""

from __future__ import annotations

from repro.constants import (
    VISCOUS_ANCHOR_DIAMETER_IN,
    VISCOUS_ANCHOR_PLATTERS,
    VISCOUS_ANCHOR_RPM,
    VISCOUS_ANCHOR_WATTS,
    VISCOUS_DIAMETER_EXPONENT,
    VISCOUS_RPM_EXPONENT,
)
from repro.errors import ThermalError


def viscous_power_w(
    rpm: float,
    diameter_in: float,
    platters: int = 1,
    rpm_exponent: float = VISCOUS_RPM_EXPONENT,
    diameter_exponent: float = VISCOUS_DIAMETER_EXPONENT,
) -> float:
    """Windage power dissipated into the internal air, in watts.

    Args:
        rpm: spindle speed.
        diameter_in: platter diameter in inches.
        platters: number of platters in the stack.
        rpm_exponent: speed exponent (paper: 2.8).
        diameter_exponent: diameter exponent (paper: 4.8).

    Returns:
        Dissipated power in watts; 0 for rpm == 0 (spun down).
    """
    if rpm < 0:
        raise ThermalError(f"rpm cannot be negative, got {rpm}")
    if diameter_in <= 0:
        raise ThermalError(f"diameter must be positive, got {diameter_in}")
    if platters < 1:
        raise ThermalError(f"platter count must be >= 1, got {platters}")
    if rpm == 0:
        return 0.0
    anchor_per_platter = VISCOUS_ANCHOR_WATTS / VISCOUS_ANCHOR_PLATTERS
    speed_ratio = rpm / VISCOUS_ANCHOR_RPM
    size_ratio = diameter_in / VISCOUS_ANCHOR_DIAMETER_IN
    return (
        anchor_per_platter
        * platters
        * speed_ratio**rpm_exponent
        * size_ratio**diameter_exponent
    )


def windage_torque_nm(rpm: float, diameter_in: float, platters: int = 1) -> float:
    """Aerodynamic drag torque the spindle motor must overcome, N·m.

    P = tau * omega, so tau = P / omega.  Useful for spindle-motor sizing
    sanity checks and the multi-speed transition model.
    """
    if rpm <= 0:
        raise ThermalError(f"rpm must be positive for torque, got {rpm}")
    from repro.units import rpm_to_rad_per_sec

    power = viscous_power_w(rpm, diameter_in, platters)
    return power / rpm_to_rad_per_sec(rpm)


def rpm_for_viscous_power(
    power_w: float,
    diameter_in: float,
    platters: int = 1,
) -> float:
    """Invert :func:`viscous_power_w`: the RPM that dissipates ``power_w``."""
    if power_w <= 0:
        raise ThermalError(f"power must be positive, got {power_w}")
    anchor_per_platter = VISCOUS_ANCHOR_WATTS / VISCOUS_ANCHOR_PLATTERS
    size_ratio = diameter_in / VISCOUS_ANCHOR_DIAMETER_IN
    base = power_w / (anchor_per_platter * platters * size_ratio**VISCOUS_DIAMETER_EXPONENT)
    return VISCOUS_ANCHOR_RPM * base ** (1.0 / VISCOUS_RPM_EXPONENT)
