"""Thermal model: lumped network, correlations, calibration and envelope."""

from repro.thermal.calibration import calibrated, fit_spm_power, reference_model
from repro.thermal.correlations import (
    conduction_g,
    enclosed_air_internal_h,
    external_forced_h,
    rotating_disk_h,
    rotational_reynolds,
    series_g,
)
from repro.thermal.array import (
    ArrayPosition,
    airflow_temperature_rise_c,
    array_envelope_rpm,
    drive_heat_w,
    serial_array_profile,
)
from repro.thermal.reliability import (
    DOUBLING_DELTA_C,
    ReliabilityComparison,
    dtm_reliability_gain,
    failure_acceleration,
    fleet_failure_rate,
    relative_mtbf,
)
from repro.thermal.sensitivity import (
    SensitivityPoint,
    calibration_sensitivity,
    exponent_sensitivity,
    fixed_loss_margin_w,
    headline_robust,
)
from repro.thermal.envelope import (
    max_rpm_within_envelope,
    steady_air_temperature_c,
    thermal_slack_c,
)
from repro.thermal.model import (
    DEFAULT_CALIBRATION,
    NODE_AIR,
    NODE_BASE,
    NODE_STACK,
    NODE_VCM,
    DriveThermalModel,
    ThermalCalibration,
)
from repro.thermal.network import ThermalNetwork, ThermalNode, TransientResult
from repro.thermal.vcm import VCM_POWER_ANCHORS, vcm_power_w
from repro.thermal.viscous import (
    rpm_for_viscous_power,
    viscous_power_w,
    windage_torque_nm,
)

__all__ = [
    "DEFAULT_CALIBRATION",
    "DriveThermalModel",
    "ThermalCalibration",
    "ThermalNetwork",
    "ThermalNode",
    "TransientResult",
    "NODE_AIR",
    "NODE_BASE",
    "NODE_STACK",
    "NODE_VCM",
    "calibrated",
    "fit_spm_power",
    "reference_model",
    "max_rpm_within_envelope",
    "SensitivityPoint",
    "calibration_sensitivity",
    "fixed_loss_margin_w",
    "ArrayPosition",
    "serial_array_profile",
    "array_envelope_rpm",
    "airflow_temperature_rise_c",
    "drive_heat_w",
    "DOUBLING_DELTA_C",
    "failure_acceleration",
    "relative_mtbf",
    "ReliabilityComparison",
    "dtm_reliability_gain",
    "fleet_failure_rate",
    "exponent_sensitivity",
    "headline_robust",
    "steady_air_temperature_c",
    "thermal_slack_c",
    "rotating_disk_h",
    "rotational_reynolds",
    "enclosed_air_internal_h",
    "external_forced_h",
    "conduction_g",
    "series_g",
    "vcm_power_w",
    "VCM_POWER_ANCHORS",
    "viscous_power_w",
    "rpm_for_viscous_power",
    "windage_torque_nm",
]
