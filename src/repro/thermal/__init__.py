"""Thermal model: lumped network, correlations, calibration and envelope.

Exports resolve lazily (PEP 562): the solver modules depend on numpy,
and eager imports here would drag that dependency into every consumer of
the numpy-free leaves (``reliability``, ``vcm``, ``viscous``) — the
fault injectors and the simulator's power accounting among them.
"""

import importlib
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - static-analysis imports only
    from repro.thermal.array import (  # noqa: F401
        ArrayPosition,
        airflow_temperature_rise_c,
        array_envelope_rpm,
        drive_heat_w,
        serial_array_profile,
    )
    from repro.thermal.calibration import (  # noqa: F401
        calibrated,
        fit_spm_power,
        reference_model,
    )
    from repro.thermal.correlations import (  # noqa: F401
        conduction_g,
        enclosed_air_internal_h,
        external_forced_h,
        rotating_disk_h,
        rotational_reynolds,
        series_g,
    )
    from repro.thermal.envelope import (  # noqa: F401
        max_rpm_within_envelope,
        steady_air_temperature_c,
        thermal_slack_c,
    )
    from repro.thermal.model import (  # noqa: F401
        DEFAULT_CALIBRATION,
        NODE_AIR,
        NODE_BASE,
        NODE_STACK,
        NODE_VCM,
        DriveThermalModel,
        ThermalCalibration,
    )
    from repro.thermal.network import (  # noqa: F401
        ThermalNetwork,
        ThermalNode,
        TransientResult,
    )
    from repro.thermal.reliability import (  # noqa: F401
        DOUBLING_DELTA_C,
        ReliabilityComparison,
        dtm_reliability_gain,
        failure_acceleration,
        fleet_failure_rate,
        relative_mtbf,
    )
    from repro.thermal.sensitivity import (  # noqa: F401
        SensitivityPoint,
        calibration_sensitivity,
        exponent_sensitivity,
        fixed_loss_margin_w,
        headline_robust,
    )
    from repro.thermal.vcm import VCM_POWER_ANCHORS, vcm_power_w  # noqa: F401
    from repro.thermal.viscous import (  # noqa: F401
        rpm_for_viscous_power,
        viscous_power_w,
        windage_torque_nm,
    )

#: export name -> defining submodule, used by the lazy ``__getattr__``.
_EXPORTS = {
    "calibrated": "calibration",
    "fit_spm_power": "calibration",
    "reference_model": "calibration",
    "conduction_g": "correlations",
    "enclosed_air_internal_h": "correlations",
    "external_forced_h": "correlations",
    "rotating_disk_h": "correlations",
    "rotational_reynolds": "correlations",
    "series_g": "correlations",
    "ArrayPosition": "array",
    "airflow_temperature_rise_c": "array",
    "array_envelope_rpm": "array",
    "drive_heat_w": "array",
    "serial_array_profile": "array",
    "DOUBLING_DELTA_C": "reliability",
    "ReliabilityComparison": "reliability",
    "dtm_reliability_gain": "reliability",
    "failure_acceleration": "reliability",
    "fleet_failure_rate": "reliability",
    "relative_mtbf": "reliability",
    "SensitivityPoint": "sensitivity",
    "calibration_sensitivity": "sensitivity",
    "exponent_sensitivity": "sensitivity",
    "fixed_loss_margin_w": "sensitivity",
    "headline_robust": "sensitivity",
    "max_rpm_within_envelope": "envelope",
    "steady_air_temperature_c": "envelope",
    "thermal_slack_c": "envelope",
    "DEFAULT_CALIBRATION": "model",
    "NODE_AIR": "model",
    "NODE_BASE": "model",
    "NODE_STACK": "model",
    "NODE_VCM": "model",
    "DriveThermalModel": "model",
    "ThermalCalibration": "model",
    "ThermalNetwork": "network",
    "ThermalNode": "network",
    "TransientResult": "network",
    "VCM_POWER_ANCHORS": "vcm",
    "vcm_power_w": "vcm",
    "viscous_power_w": "viscous",
    "rpm_for_viscous_power": "viscous",
    "windage_torque_nm": "viscous",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    submodule = _EXPORTS.get(name)
    if submodule is not None:
        module = importlib.import_module(f"repro.thermal.{submodule}")
        value = getattr(module, name)
        globals()[name] = value  # cache: __getattr__ runs once per name
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(__all__))
