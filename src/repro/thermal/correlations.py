"""Convective heat-transfer correlations.

The Clauss-Eibeck model the paper adapts uses empirical correlations for the
heat-transfer coefficients of the drive's solid components.  We implement the
standard free-rotating-disk correlations (laminar Nu ~ Re^0.5, turbulent
Nu ~ Re^0.8) for the spinning stack and fixed representative coefficients for
the stationary surfaces; a calibration multiplier (fit once against the
dissected Cheetah 15K.3, see :mod:`repro.thermal.calibration`) absorbs the
difference between a free disk and a closely-enclosed co-rotating stack.
"""

from __future__ import annotations

from repro.errors import ThermalError
from repro.materials import AIR, Fluid
from repro.units import rpm_to_rad_per_sec

#: Rotational Reynolds number where disk boundary layers transition.
ROTATING_DISK_TRANSITION_RE = 2.8e5


def rotational_reynolds(rpm: float, radius_m: float, fluid: Fluid = AIR) -> float:
    """Rotational Reynolds number Re = omega r^2 / nu."""
    if rpm < 0:
        raise ThermalError(f"rpm cannot be negative, got {rpm}")
    if radius_m <= 0:
        raise ThermalError(f"radius must be positive, got {radius_m}")
    omega = rpm_to_rad_per_sec(rpm)
    return omega * radius_m**2 / fluid.kinematic_viscosity


def rotating_disk_h(rpm: float, radius_m: float, fluid: Fluid = AIR) -> float:
    """Average convection coefficient over a rotating disk face, W/(m^2 K).

    Laminar: Nu = 0.33 Re^0.5; turbulent: Nu = 0.015 Re^0.8 (standard
    free-disk correlations, e.g. Incropera).  For a stationary disk (rpm=0)
    we fall back to a natural-convection floor so the model stays defined
    when the spindle is stopped.
    """
    if radius_m <= 0:
        raise ThermalError(f"radius must be positive, got {radius_m}")
    natural_floor = 5.0
    if rpm <= 0:
        return natural_floor
    re = rotational_reynolds(rpm, radius_m, fluid)
    if re < ROTATING_DISK_TRANSITION_RE:
        nusselt = 0.33 * re**0.5
    else:
        nusselt = 0.015 * re**0.8
    h = nusselt * fluid.conductivity / radius_m
    return max(h, natural_floor)


def enclosed_air_internal_h(
    rpm: float,
    reference_rpm: float = 15000.0,
    speed_exponent: float = 0.0,
) -> float:
    """Coefficient between internal air and the enclosure walls, W/(m^2 K).

    A 25 W/(m^2 K) reference, typical for drive-interior recirculation over
    the casting walls.  The paper's published temperatures imply an
    air-to-ambient resistance that is nearly independent of spindle speed
    (their steady temperature is almost exactly affine in the windage
    power across a 10x RPM range), so the default keeps the wall-side
    coefficient speed-independent; ``speed_exponent`` lets sensitivity
    studies restore a power-law speed dependence.
    """
    base = 25.0
    floor = 5.0
    if rpm <= 0:
        return floor
    if reference_rpm <= 0:
        raise ThermalError("reference rpm must be positive")
    return max(base * (rpm / reference_rpm) ** speed_exponent, floor)


def external_forced_h(airflow_quality: float = 1.0) -> float:
    """Coefficient between the enclosure and the cooled outside air.

    Server enclosures see fan-driven airflow; 30 W/(m^2 K) is representative
    of a few m/s over a small casting.  ``airflow_quality`` scales it for
    cooling-system studies (1.0 = the paper's baseline system).
    """
    if airflow_quality <= 0:
        raise ThermalError(f"airflow quality must be positive, got {airflow_quality}")
    return 30.0 * airflow_quality


def conduction_g(conductivity: float, area_m2: float, thickness_m: float) -> float:
    """Plane-wall conduction conductance k A / L, W/K."""
    if conductivity <= 0 or area_m2 <= 0 or thickness_m <= 0:
        raise ThermalError("conduction parameters must be positive")
    return conductivity * area_m2 / thickness_m


def series_g(*conductances: float) -> float:
    """Series combination of thermal conductances (like parallel resistors)."""
    if not conductances:
        raise ThermalError("need at least one conductance")
    total_resistance = 0.0
    for g in conductances:
        if g <= 0:
            raise ThermalError(f"conductances must be positive, got {g}")
        total_resistance += 1.0 / g
    return 1.0 / total_resistance
