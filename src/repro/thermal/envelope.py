"""Thermal envelope queries: maximum RPM and thermal slack.

The roadmap's central question — how fast may this design spin without its
steady internal-air temperature exceeding the envelope? — is a 1-D root
find over a monotonically increasing function of RPM, solved by bisection.
"""

from __future__ import annotations

from typing import Optional

from repro.constants import AMBIENT_TEMPERATURE_C, THERMAL_ENVELOPE_C
from repro.errors import EnvelopeError
from repro.geometry.enclosure import FORM_FACTOR_35, Enclosure
from repro.thermal.model import DriveThermalModel, ThermalCalibration


def steady_air_temperature_c(
    platter_diameter_in: float,
    rpm: float,
    platter_count: int = 1,
    ambient_c: float = AMBIENT_TEMPERATURE_C,
    vcm_active: bool = True,
    enclosure: Enclosure = FORM_FACTOR_35,
    calibration: Optional[ThermalCalibration] = None,
) -> float:
    """Steady-state internal-air temperature of a design, Celsius."""
    model = DriveThermalModel(
        platter_diameter_in=platter_diameter_in,
        platter_count=platter_count,
        rpm=rpm,
        ambient_c=ambient_c,
        vcm_active=vcm_active,
        enclosure=enclosure,
        calibration=calibration,
    )
    return model.steady_air_c()


def max_rpm_within_envelope(
    platter_diameter_in: float,
    platter_count: int = 1,
    envelope_c: float = THERMAL_ENVELOPE_C,
    ambient_c: float = AMBIENT_TEMPERATURE_C,
    vcm_active: bool = True,
    enclosure: Enclosure = FORM_FACTOR_35,
    calibration: Optional[ThermalCalibration] = None,
    rpm_low: float = 5000.0,
    rpm_high: float = 500000.0,
    tolerance_rpm: float = 1.0,
) -> float:
    """Highest RPM whose steady air temperature stays within the envelope.

    Args:
        platter_diameter_in: media diameter, inches.
        platter_count: platters in the stack.
        envelope_c: thermal envelope (max internal-air temperature).
        ambient_c: cooled external ambient temperature.
        vcm_active: whether the VCM is assumed always on (worst case) —
            setting False exposes the thermal slack of §5.2.
        enclosure: drive enclosure.
        calibration: thermal calibration (default: fitted).
        rpm_low, rpm_high: bisection bracket.
        tolerance_rpm: bracket width at which bisection stops.

    Raises:
        EnvelopeError: if even ``rpm_low`` exceeds the envelope (the design
            cannot be built for this envelope at all).
    """

    def air_at(rpm: float) -> float:
        return steady_air_temperature_c(
            platter_diameter_in,
            rpm,
            platter_count=platter_count,
            ambient_c=ambient_c,
            vcm_active=vcm_active,
            enclosure=enclosure,
            calibration=calibration,
        )

    if air_at(rpm_low) > envelope_c:
        raise EnvelopeError(
            f"{platter_diameter_in}-inch x{platter_count} design exceeds the "
            f"{envelope_c:.2f} C envelope even at {rpm_low:.0f} RPM "
            f"(ambient {ambient_c:.1f} C)"
        )
    if air_at(rpm_high) <= envelope_c:
        return rpm_high
    low, high = rpm_low, rpm_high
    while high - low > tolerance_rpm:
        mid = 0.5 * (low + high)
        if air_at(mid) <= envelope_c:
            low = mid
        else:
            high = mid
    return low


def thermal_slack_c(
    platter_diameter_in: float,
    rpm: float,
    platter_count: int = 1,
    envelope_c: float = THERMAL_ENVELOPE_C,
    ambient_c: float = AMBIENT_TEMPERATURE_C,
    vcm_active: bool = False,
    enclosure: Enclosure = FORM_FACTOR_35,
    calibration: Optional[ThermalCalibration] = None,
) -> float:
    """Thermal slack: envelope minus the steady temperature at an operating
    point (paper §5.2; by default with the VCM off, i.e. an idle or fully
    sequential workload).  Positive slack means headroom to ramp the RPM.
    """
    steady = steady_air_temperature_c(
        platter_diameter_in,
        rpm,
        platter_count=platter_count,
        ambient_c=ambient_c,
        vcm_active=vcm_active,
        enclosure=enclosure,
        calibration=calibration,
    )
    return envelope_c - steady
