"""Platter geometry.

A platter is described by its outer diameter (the figure quoted in drive
datasheets, e.g. "2.6 inch media") and a thickness.  Following the paper, the
inner (spindle-clamp) radius is half the outer radius and the recordable band
occupies the stroke-efficiency fraction of the radial span between them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro import units
from repro.constants import INNER_RADIUS_RATIO
from repro.errors import GeometryError
from repro.materials import ALUMINUM, Material


@dataclass(frozen=True)
class Platter:
    """Geometry of a single recording platter.

    Attributes:
        diameter_in: outer diameter of the media in inches.
        thickness_m: platter thickness in meters (typical server media
            is 0.8-1.27 mm).
        material: platter substrate material (aluminum by default).
    """

    diameter_in: float
    thickness_m: float = 1.0e-3
    material: Material = field(default=ALUMINUM)

    def __post_init__(self) -> None:
        if self.diameter_in <= 0:
            raise GeometryError(f"platter diameter must be positive, got {self.diameter_in}")
        if self.thickness_m <= 0:
            raise GeometryError(f"platter thickness must be positive, got {self.thickness_m}")

    # -- radii ---------------------------------------------------------------

    @property
    def outer_radius_in(self) -> float:
        """Outer radius in inches."""
        return self.diameter_in / 2.0

    @property
    def inner_radius_in(self) -> float:
        """Inner (clamp) radius in inches; half the outer per the paper."""
        return self.outer_radius_in * INNER_RADIUS_RATIO

    @property
    def outer_radius_m(self) -> float:
        """Outer radius in meters."""
        return units.inches_to_meters(self.outer_radius_in)

    @property
    def inner_radius_m(self) -> float:
        """Inner radius in meters."""
        return units.inches_to_meters(self.inner_radius_in)

    @property
    def radial_band_in(self) -> float:
        """Radial span (outer - inner radius) available for tracks, inches."""
        return self.outer_radius_in - self.inner_radius_in

    # -- areas / volume / mass -------------------------------------------------

    def annulus_area_in2(self) -> float:
        """Recordable annulus area per surface, in square inches."""
        return math.pi * (self.outer_radius_in**2 - self.inner_radius_in**2)

    def face_area_m2(self) -> float:
        """One full face area (disc, no annulus subtraction) in m^2."""
        return math.pi * self.outer_radius_m**2

    def volume_m3(self) -> float:
        """Platter solid volume in m^3 (annular disc)."""
        ring = math.pi * (self.outer_radius_m**2 - self.inner_radius_m**2)
        return ring * self.thickness_m

    def mass_kg(self) -> float:
        """Platter mass in kg."""
        return self.volume_m3() * self.material.density

    def heat_capacity_j_per_k(self) -> float:
        """Lumped heat capacity of the platter, J/K."""
        return self.mass_kg() * self.material.specific_heat
