"""Drive geometry: platters, stacks, enclosures and actuators."""

from repro.geometry.actuator import Actuator, actuator_for_platter
from repro.geometry.enclosure import (
    FORM_FACTOR_25,
    FORM_FACTOR_35,
    FORM_FACTORS,
    Enclosure,
    form_factor,
)
from repro.geometry.platter import Platter
from repro.geometry.stack import DiskStack

__all__ = [
    "Actuator",
    "actuator_for_platter",
    "Enclosure",
    "form_factor",
    "FORM_FACTORS",
    "FORM_FACTOR_25",
    "FORM_FACTOR_35",
    "Platter",
    "DiskStack",
]
