"""Drive enclosure (form factor) geometry.

The enclosure matters thermally through (i) the base/cover area available to
convect heat to the outside air and (ii) the thermal mass of the castings.
The paper studies the standard 3.5-inch form factor and a smaller 2.5-inch
form factor (3.96 x 2.75 inches, per the StorageReview reference [45]) that
can still house a 2.6-inch platter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import units
from repro.errors import GeometryError
from repro.materials import ALUMINUM, Material


@dataclass(frozen=True)
class Enclosure:
    """Rectangular drive enclosure.

    Attributes:
        name: form-factor label (e.g. ``"3.5-inch"``).
        length_in: longest horizontal dimension, inches.
        width_in: other horizontal dimension, inches.
        height_in: enclosure height, inches.
        wall_thickness_m: casting wall thickness, meters.
        material: casting material.
    """

    name: str
    length_in: float
    width_in: float
    height_in: float
    wall_thickness_m: float = 3.0e-3
    material: Material = field(default=ALUMINUM)

    def __post_init__(self) -> None:
        for field_name in ("length_in", "width_in", "height_in", "wall_thickness_m"):
            if getattr(self, field_name) <= 0:
                raise GeometryError(f"{field_name} must be positive")

    # -- derived metric dimensions ---------------------------------------------

    @property
    def length_m(self) -> float:
        """Enclosure length in meters."""
        return units.inches_to_meters(self.length_in)

    @property
    def width_m(self) -> float:
        """Enclosure width in meters."""
        return units.inches_to_meters(self.width_in)

    @property
    def height_m(self) -> float:
        """Enclosure height in meters."""
        return units.inches_to_meters(self.height_in)

    # -- thermal quantities -----------------------------------------------------

    def footprint_area_m2(self) -> float:
        """Base (or cover) plan area, m^2."""
        return self.length_m * self.width_m

    def external_area_m2(self) -> float:
        """Total outside surface area (base + cover + four sides), m^2."""
        top_bottom = 2.0 * self.footprint_area_m2()
        sides = 2.0 * self.height_m * (self.length_m + self.width_m)
        return top_bottom + sides

    def internal_air_volume_m3(self, displaced_volume_m3: float = 0.0) -> float:
        """Approximate internal air volume after subtracting internals, m^3.

        Args:
            displaced_volume_m3: volume occupied by the stack, actuator and
                motor internals, subtracted from the cavity volume.
        """
        inner_l = max(self.length_m - 2 * self.wall_thickness_m, 0.0)
        inner_w = max(self.width_m - 2 * self.wall_thickness_m, 0.0)
        inner_h = max(self.height_m - 2 * self.wall_thickness_m, 0.0)
        cavity = inner_l * inner_w * inner_h
        return max(cavity - displaced_volume_m3, 1.0e-7)

    def casting_mass_kg(self) -> float:
        """Mass of base + cover castings (shell approximation), kg."""
        shell_volume = self.external_area_m2() * self.wall_thickness_m
        return shell_volume * self.material.density

    def heat_capacity_j_per_k(self) -> float:
        """Lumped heat capacity of the castings, J/K."""
        return self.casting_mass_kg() * self.material.specific_heat

    def can_house_platter(self, platter_diameter_in: float) -> bool:
        """Whether a platter of the given diameter fits inside the walls."""
        wall_in = units.meters_to_inches(self.wall_thickness_m)
        return platter_diameter_in <= self.width_in - 2 * wall_in


#: Standard 3.5-inch server form factor (low-profile, 1-inch height).
FORM_FACTOR_35 = Enclosure(name="3.5-inch", length_in=5.75, width_in=4.0, height_in=1.0)

#: 2.5-inch form factor per StorageReview [45]: 3.96 x 2.75 inches.  The
#: paper notes this can still house a 2.6-inch platter.
FORM_FACTOR_25 = Enclosure(
    name="2.5-inch", length_in=3.96, width_in=2.75, height_in=0.75,
    wall_thickness_m=1.5e-3,
)

#: Lookup by label used in drive specifications.
FORM_FACTORS = {
    "3.5": FORM_FACTOR_35,
    "2.5": FORM_FACTOR_25,
}


def form_factor(label: str) -> Enclosure:
    """Return the named form factor.

    Args:
        label: ``"3.5"`` or ``"2.5"``.

    Raises:
        GeometryError: if the label is unknown.
    """
    try:
        return FORM_FACTORS[label]
    except KeyError:
        known = ", ".join(sorted(FORM_FACTORS))
        raise GeometryError(f"unknown form factor {label!r} (known: {known})") from None
