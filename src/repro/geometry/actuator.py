"""Actuator (voice-coil motor and disk arms) geometry.

The VCM node in the thermal model lumps the coil, the E-block and the arms.
Arm length scales with platter size (the arm must sweep the data band), so we
parameterize the actuator on the platter it serves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import units
from repro.errors import GeometryError
from repro.geometry.platter import Platter
from repro.materials import ALUMINUM, Material


@dataclass(frozen=True)
class Actuator:
    """Voice-coil actuator serving a platter stack.

    Attributes:
        arm_length_m: pivot-to-head arm length, meters.
        arm_width_m: arm width, meters.
        arm_thickness_m: arm thickness, meters.
        arm_count: number of arms (one per surface plus structure).
        coil_mass_kg: mass of the voice coil and magnet-adjacent structure.
        material: arm material.
    """

    arm_length_m: float
    arm_width_m: float = 0.008
    arm_thickness_m: float = 0.5e-3
    arm_count: int = 2
    coil_mass_kg: float = 0.0015
    material: Material = field(default=ALUMINUM)

    def __post_init__(self) -> None:
        if self.arm_length_m <= 0:
            raise GeometryError("arm length must be positive")
        if self.arm_count < 1:
            raise GeometryError("arm count must be >= 1")
        if self.coil_mass_kg < 0:
            raise GeometryError("coil mass cannot be negative")

    def arm_mass_kg(self) -> float:
        """Mass of all arms, kg."""
        one = self.arm_length_m * self.arm_width_m * self.arm_thickness_m * self.material.density
        return self.arm_count * one

    def mass_kg(self) -> float:
        """Total actuator mass (arms + coil), kg."""
        return self.arm_mass_kg() + self.coil_mass_kg

    def heat_capacity_j_per_k(self) -> float:
        """Lumped heat capacity, J/K.

        The copper coil's specific heat (385 J/kg K) differs from aluminum's;
        we charge the coil at copper's value.  The default masses keep the
        actuator node's thermal time constant sub-second — VCM heat is
        dissipated in the few-gram coil and thin arms, which is what gives
        dynamic throttling its second-scale cool/heat dynamics (paper §5.3);
        steady-state results are independent of this capacitance.
        """
        copper_specific_heat = 385.0
        return (
            self.arm_mass_kg() * self.material.specific_heat
            + self.coil_mass_kg * copper_specific_heat
        )

    def convective_area_m2(self) -> float:
        """Area exchanging heat with internal air (both arm faces + coil), m^2."""
        arm_faces = 2.0 * self.arm_length_m * self.arm_width_m * self.arm_count
        coil_area = 6.0e-4
        return arm_faces + coil_area


def actuator_for_platter(platter: Platter, surfaces: int = 2) -> Actuator:
    """Build an actuator sized for the given platter.

    The arm must reach from a pivot outside the platter across the data band;
    a good approximation (measured on the dissected Cheetah 15K.3 in the
    paper) is an arm about 1.2x the platter radius.

    Args:
        platter: the platter the actuator sweeps.
        surfaces: number of recording surfaces (arms ~ one per surface).
    """
    arm_length = 1.2 * platter.outer_radius_m
    width = max(0.3 * units.inches_to_meters(platter.outer_radius_in), 0.004)
    return Actuator(
        arm_length_m=arm_length,
        arm_width_m=width,
        arm_count=max(surfaces, 1),
    )
