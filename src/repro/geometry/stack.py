"""Disk stack: the spindle-motor assembly of platters plus hub.

The thermal model treats the rotating stack (hub + platters) as a single
lumped node, so the quantities of interest are its total heat capacity and
the wetted surface area exchanging heat with the internal air.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import GeometryError
from repro.geometry.platter import Platter
from repro.materials import ALUMINUM, Material


@dataclass(frozen=True)
class DiskStack:
    """A spindle stack of identical platters.

    Attributes:
        platter: geometry of each platter.
        count: number of platters (each contributing two surfaces).
        hub_radius_m: radius of the spindle hub cylinder.
        hub_height_m: axial height of the hub.
        hub_material: hub material (aluminum).
        platter_spacing_m: axial gap between adjacent platters.
    """

    platter: Platter
    count: int = 1
    hub_radius_m: float = 0.009
    hub_height_m: float = 0.020
    hub_material: Material = field(default=ALUMINUM)
    platter_spacing_m: float = 2.5e-3

    def __post_init__(self) -> None:
        if self.count < 1:
            raise GeometryError(f"platter count must be >= 1, got {self.count}")
        if self.hub_radius_m <= 0 or self.hub_height_m <= 0:
            raise GeometryError("hub dimensions must be positive")
        if self.platter_spacing_m <= 0:
            raise GeometryError("platter spacing must be positive")

    @property
    def surfaces(self) -> int:
        """Number of recording surfaces (two per platter)."""
        return 2 * self.count

    def hub_mass_kg(self) -> float:
        """Spindle hub mass (solid cylinder approximation), kg."""
        volume = math.pi * self.hub_radius_m**2 * self.hub_height_m
        return volume * self.hub_material.density

    def mass_kg(self) -> float:
        """Total rotating mass: platters plus hub, kg."""
        return self.count * self.platter.mass_kg() + self.hub_mass_kg()

    def heat_capacity_j_per_k(self) -> float:
        """Lumped heat capacity of the rotating stack, J/K."""
        platters = self.count * self.platter.heat_capacity_j_per_k()
        hub = self.hub_mass_kg() * self.hub_material.specific_heat
        return platters + hub

    def convective_area_m2(self) -> float:
        """Wetted area exchanging heat with internal air, m^2.

        Both faces of every platter (annulus from hub radius to the outer
        edge) plus the rim, plus the exposed hub lateral surface.
        """
        r_out = self.platter.outer_radius_m
        r_hub = min(self.hub_radius_m, r_out)
        face = math.pi * (r_out**2 - r_hub**2)
        rim = 2.0 * math.pi * r_out * self.platter.thickness_m
        per_platter = 2.0 * face + rim
        hub_side = 2.0 * math.pi * self.hub_radius_m * self.hub_height_m
        return self.count * per_platter + hub_side
