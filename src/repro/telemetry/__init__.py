"""Simulator observability: metrics, structured traces, time-series probes.

The subsystem has three legs, bundled behind one :class:`Telemetry`
facade that instrumented components share:

* :class:`~repro.telemetry.registry.MetricsRegistry` — counters, gauges,
  histograms and phase timers;
* :class:`~repro.telemetry.trace.EventTrace` — a bounded ring buffer of
  structured simulation events;
* :class:`~repro.telemetry.probes.ProbeSet` — periodic time-series
  sampling of temperature, RPM, queue depth and utilization.

**Off by default, off means free.**  Instrumented components take an
``Optional[Telemetry]`` defaulting to ``None`` and guard every hook with
a single ``is not None`` check, so the untelemetered hot path pays one
pointer comparison per hook (asserted <2% end-to-end by the tier-1
overhead-guard test).  A :class:`Telemetry` object can also be *disabled*
(``enabled=False``) which turns its ``record``/``count``/``observe``
helpers into early returns, for callers that prefer unconditional calls.

Typical use::

    from repro.telemetry import Telemetry

    tel = Telemetry(probe_interval_ms=50.0)
    system = build_system(..., telemetry=tel)
    system.run_trace(trace)
    tel.registry.as_dict()          # metric snapshot
    tel.trace.events("cache_miss")  # structured events
    tel.probes.probe("disk0.queue_depth").series

Exporters (JSON / CSV / Prometheus text / ASCII sparklines) live in
:mod:`repro.reporting.telemetry_export` and
:mod:`repro.reporting.sparkline`.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.telemetry.probes import (
    DEFAULT_PROBE_INTERVAL_MS,
    Probe,
    ProbeSet,
)
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TelemetryError,
    Timer,
)
from repro.telemetry.trace import (
    DEFAULT_TRACE_CAPACITY,
    KNOWN_KINDS,
    EventTrace,
    TraceEvent,
)

__all__ = [
    "Telemetry",
    "TelemetryError",
    "maybe",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "EventTrace",
    "TraceEvent",
    "KNOWN_KINDS",
    "DEFAULT_TRACE_CAPACITY",
    "Probe",
    "ProbeSet",
    "DEFAULT_PROBE_INTERVAL_MS",
]


class Telemetry:
    """Facade bundling a registry, a trace and a probe set.

    Args:
        enabled: when False, the convenience helpers below are no-ops
            (components that hold a disabled Telemetry still skip work).
        trace_capacity: ring-buffer bound for the event trace.
        probe_interval_ms: sampling period for the probe set.
        probe_capacity: per-probe retained-sample bound.
    """

    def __init__(
        self,
        enabled: bool = True,
        trace_capacity: int = DEFAULT_TRACE_CAPACITY,
        probe_interval_ms: float = DEFAULT_PROBE_INTERVAL_MS,
        probe_capacity: int = 100_000,
    ) -> None:
        self.enabled = bool(enabled)
        self.registry = MetricsRegistry()
        self.trace = EventTrace(capacity=trace_capacity)
        self.probes = ProbeSet(
            interval_ms=probe_interval_ms, capacity=probe_capacity
        )

    # -- convenience helpers (honour the enabled flag) --------------------------

    def record(
        self, time_ms: float, kind: str, subject: str = "", **fields: Any
    ) -> None:
        """Record a trace event unless disabled."""
        if self.enabled:
            self.trace.record(time_ms, kind, subject, **fields)

    def count(self, name: str, amount: float = 1.0) -> None:
        """Increment a counter unless disabled."""
        if self.enabled:
            self.registry.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        """Observe a histogram sample unless disabled."""
        if self.enabled:
            self.registry.histogram(name).observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        """Set a gauge unless disabled."""
        if self.enabled:
            self.registry.gauge(name).set(value)

    def as_dict(self) -> dict:
        """Full JSON-serializable snapshot: metrics + trace + probes."""
        return {
            "schema": "repro.telemetry/1",
            "enabled": self.enabled,
            "metrics": self.registry.as_dict(),
            "trace": {
                "capacity": self.trace.capacity,
                "recorded": self.trace.recorded,
                "dropped": self.trace.dropped,
                "events": self.trace.as_dicts(),
            },
            "probes": self.probes.as_dict(),
        }


def maybe(telemetry: Optional[Telemetry]) -> Optional[Telemetry]:
    """Normalize an optional telemetry handle: disabled behaves like None.

    Instrumented components call this once at construction so their
    per-event guard stays a single ``is not None`` check.
    """
    if telemetry is not None and not telemetry.enabled:
        return None
    return telemetry
