"""Metric primitives: counters, gauges, histograms and phase timers.

The simulator's hot paths call these once per request (or more), so the
design goal is *near-zero overhead when telemetry is off*: every
instrumented component holds an ``Optional[Telemetry]`` that defaults to
``None``, and call sites guard with a single attribute check.  When
telemetry is on, the primitives themselves stay cheap — a counter
increment is one float add, a histogram observation is a bisect into a
fixed bucket ladder.

Metric names follow the Prometheus convention (``snake_case``, unit
suffix like ``_ms`` or ``_total`` where applicable) so the text exporter
in :mod:`repro.reporting.telemetry_export` can emit them verbatim.
"""

from __future__ import annotations

import bisect
import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ReproError


class TelemetryError(ReproError):
    """Raised on invalid telemetry configuration or use."""


#: Default histogram bucket upper bounds, milliseconds-flavoured: spans
#: cache-hit latencies (0.1 ms) through pathological queueing (10 s).
DEFAULT_BUCKETS_MS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 10000.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Increase the counter; negative increments are rejected."""
        if amount < 0:
            raise TelemetryError(f"counter {self.name}: cannot decrease by {amount}")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (queue depth, temperature, RPM)."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    Bucket ``counts[i]`` holds observations ``<= bounds[i]``; the final
    implicit bucket is ``+Inf``.  Cumulative counts (the Prometheus
    ``le`` form) are derived by the exporter, keeping ``observe`` O(log b).
    """

    __slots__ = ("name", "help", "bounds", "counts", "count", "sum", "min", "max")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS_MS,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise TelemetryError(f"histogram {name}: buckets must be ascending")
        self.name = name
        self.help = help
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)  # +Inf tail
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def cumulative(self) -> List[Tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, ending with (+Inf, count)."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out


class Timer:
    """Wall-clock phase timer: accumulates elapsed seconds per phase.

    Used as a context manager around coarse phases (trace generation,
    replay, export) — not per-request, where the clock call itself would
    distort the measurement.
    """

    __slots__ = ("name", "help", "elapsed_s", "starts", "_t0")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.elapsed_s = 0.0
        self.starts = 0
        self._t0: Optional[float] = None

    def __enter__(self) -> "Timer":
        self.starts += 1
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        if self._t0 is not None:
            self.elapsed_s += time.perf_counter() - self._t0
            self._t0 = None


class MetricsRegistry:
    """Namespace of metrics, created on first use and stable thereafter.

    ``counter()``/``gauge()``/``histogram()``/``timer()`` are
    get-or-create: repeated calls with the same name return the same
    object, so independent components can share a metric without
    coordination.  Re-registering a name as a different kind is an error.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[object]:
        return iter(self._metrics.values())

    def _get_or_create(self, name: str, kind: type, *args: object) -> object:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise TelemetryError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}"
                )
            return existing
        metric = kind(name, *args)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help)  # type: ignore[return-value]

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS_MS
    ) -> Histogram:
        return self._get_or_create(name, Histogram, help, buckets)  # type: ignore[return-value]

    def timer(self, name: str, help: str = "") -> Timer:
        return self._get_or_create(name, Timer, help)  # type: ignore[return-value]

    def get(self, name: str) -> Optional[object]:
        """Look up a metric without creating it."""
        return self._metrics.get(name)

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """Plain-data snapshot of every metric (JSON-serializable)."""
        out: Dict[str, Dict[str, object]] = {}
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, Counter):
                out[name] = {"kind": "counter", "value": metric.value}
            elif isinstance(metric, Gauge):
                out[name] = {"kind": "gauge", "value": metric.value}
            elif isinstance(metric, Histogram):
                out[name] = {
                    "kind": "histogram",
                    "count": metric.count,
                    "sum": metric.sum,
                    "min": metric.min if metric.count else None,
                    "max": metric.max if metric.count else None,
                    "mean": metric.mean(),
                    "buckets": [
                        {"le": bound, "count": cum}
                        for bound, cum in metric.cumulative()
                        if bound != float("inf")
                    ]
                    + [{"le": "+Inf", "count": metric.count}],
                }
            elif isinstance(metric, Timer):
                out[name] = {
                    "kind": "timer",
                    "elapsed_s": metric.elapsed_s,
                    "starts": metric.starts,
                }
        return out
