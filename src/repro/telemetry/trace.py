"""Structured simulation-event trace with bounded ring-buffer storage.

Every interesting transition in the simulator — request issue, dispatch,
completion, cache hit/miss, seek, RPM change, DTM controller decision —
can be recorded as a :class:`TraceEvent`: a timestamp, an event kind, a
subject (which disk / controller), and a small dict of kind-specific
fields.  Storage is a ring buffer: the trace never grows past its
configured capacity, old events are dropped oldest-first, and the number
of drops is counted so exporters can state when a trace is truncated.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple

from repro.telemetry.registry import TelemetryError

#: Canonical event kinds used by the built-in instrumentation.  The trace
#: accepts any string kind — this tuple documents (and tests pin) the ones
#: the simulator itself emits.
KNOWN_KINDS: Tuple[str, ...] = (
    "request_issue",      # logical request entered the system
    "request_dispatch",   # per-disk scheduler handed a request to the media
    "request_complete",   # per-disk request finished
    "logical_complete",   # array-level (logical) request finished
    "cache_hit",
    "cache_miss",
    "seek",               # head movement with a nonzero cylinder distance
    "rpm_change",         # spindle speed transition (multi-speed / DTM)
    "dtm_throttle",       # controller engaged throttling
    "dtm_resume",         # controller released throttling
    "dtm_check",          # periodic controller evaluation
    "dtm_emergency",      # controller hit the emergency-throttle path
    "fault_injected",     # fault injector charged a latency penalty
    "probe_sample",       # time-series probe fired (rarely traced)
)

DEFAULT_TRACE_CAPACITY = 65536


@dataclass(frozen=True)
class TraceEvent:
    """One recorded simulation event.

    Attributes:
        time_ms: simulated time of the event.
        kind: event kind (see :data:`KNOWN_KINDS`).
        subject: the component it happened on (e.g. ``"disk0"``).
        fields: kind-specific payload, JSON-serializable scalars only.
    """

    time_ms: float
    kind: str
    subject: str = ""
    fields: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"t_ms": self.time_ms, "kind": self.kind}
        if self.subject:
            out["subject"] = self.subject
        if self.fields:
            out.update(self.fields)
        return out


class EventTrace:
    """Bounded ring buffer of :class:`TraceEvent` records.

    Args:
        capacity: maximum events retained; older events are evicted
            oldest-first once the buffer is full.
    """

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY) -> None:
        if capacity < 1:
            raise TelemetryError(f"trace capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: Deque[TraceEvent] = deque(maxlen=capacity)
        self.recorded = 0  # total ever recorded, including dropped

    def record(
        self, time_ms: float, kind: str, subject: str = "", **fields: Any
    ) -> None:
        """Append an event, evicting the oldest if the ring is full."""
        self._ring.append(TraceEvent(time_ms, kind, subject, fields))
        self.recorded += 1

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._ring)

    @property
    def dropped(self) -> int:
        """Events evicted by the ring bound."""
        return self.recorded - len(self._ring)

    def events(
        self,
        kind: Optional[str] = None,
        subject: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[TraceEvent]:
        """Filtered view of the retained events, oldest first.

        Args:
            kind: keep only this event kind.
            subject: keep only this subject.
            limit: keep only the *newest* ``limit`` matches.
        """
        out = [
            e
            for e in self._ring
            if (kind is None or e.kind == kind)
            and (subject is None or e.subject == subject)
        ]
        if limit is not None:
            out = out[-limit:]
        return out

    def counts_by_kind(self) -> Dict[str, int]:
        """Histogram of retained events by kind."""
        counts: Dict[str, int] = {}
        for event in self._ring:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def clear(self) -> None:
        self._ring.clear()
        self.recorded = 0

    def as_dicts(self) -> List[Dict[str, Any]]:
        """The retained events as plain dicts (JSON-serializable)."""
        return [event.as_dict() for event in self._ring]
