"""Time-series probes: periodic sampling of simulator state.

A :class:`Probe` binds a name to a zero-argument sampling function
(temperature, RPM, queue depth, utilization, ...); a :class:`ProbeSet`
samples every registered probe at a fixed simulated-time interval,
storing bounded (time, value) series.

Probes are driven either *by the event queue* (``attach`` schedules a
self-rescheduling sampling event that politely stops once it is the only
thing left in the queue, so trace replays still drain) or *manually*
(``sample_all(now_ms)`` from a controller loop that already has a
periodic callback, as the DTM controllers do).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Tuple

from repro.telemetry.registry import TelemetryError

if TYPE_CHECKING:  # pragma: no cover - cycle broken at runtime
    from repro.simulation.events import EventQueue

DEFAULT_PROBE_INTERVAL_MS = 100.0
DEFAULT_PROBE_CAPACITY = 100_000


class Probe:
    """One named time series fed by a sampling function."""

    __slots__ = ("name", "unit", "sample_fn", "_series", "recorded")

    def __init__(
        self,
        name: str,
        sample_fn: Callable[[], float],
        unit: str = "",
        capacity: int = DEFAULT_PROBE_CAPACITY,
    ) -> None:
        if capacity < 1:
            raise TelemetryError(f"probe capacity must be >= 1, got {capacity}")
        self.name = name
        self.unit = unit
        self.sample_fn = sample_fn
        self._series: Deque[Tuple[float, float]] = deque(maxlen=capacity)
        self.recorded = 0

    def sample(self, now_ms: float) -> float:
        value = float(self.sample_fn())
        self._series.append((now_ms, value))
        self.recorded += 1
        return value

    @property
    def series(self) -> List[Tuple[float, float]]:
        """The retained (time_ms, value) samples, oldest first."""
        return list(self._series)

    @property
    def dropped(self) -> int:
        return self.recorded - len(self._series)

    def values(self) -> List[float]:
        return [v for _, v in self._series]

    def times_ms(self) -> List[float]:
        return [t for t, _ in self._series]

    def last(self) -> Optional[float]:
        return self._series[-1][1] if self._series else None


class ProbeSet:
    """A group of probes sampled together on a common clock.

    Args:
        interval_ms: simulated time between samples.
        capacity: per-probe retained sample bound.
    """

    def __init__(
        self,
        interval_ms: float = DEFAULT_PROBE_INTERVAL_MS,
        capacity: int = DEFAULT_PROBE_CAPACITY,
    ) -> None:
        if interval_ms <= 0:
            raise TelemetryError(
                f"probe interval must be positive, got {interval_ms}"
            )
        self.interval_ms = interval_ms
        self.capacity = capacity
        self._probes: Dict[str, Probe] = {}

    def add(
        self, name: str, sample_fn: Callable[[], float], unit: str = ""
    ) -> Probe:
        """Register a probe; re-registering a name replaces its sampler
        but keeps the accumulated series."""
        existing = self._probes.get(name)
        if existing is not None:
            existing.sample_fn = sample_fn
            return existing
        probe = Probe(name, sample_fn, unit=unit, capacity=self.capacity)
        self._probes[name] = probe
        return probe

    def __len__(self) -> int:
        return len(self._probes)

    def __contains__(self, name: str) -> bool:
        return name in self._probes

    def probe(self, name: str) -> Probe:
        try:
            return self._probes[name]
        except KeyError:
            raise TelemetryError(f"no probe named {name!r}") from None

    def probes(self) -> List[Probe]:
        return list(self._probes.values())

    def sample_all(self, now_ms: float) -> None:
        """Sample every registered probe at the given simulated time."""
        for probe in self._probes.values():
            probe.sample(now_ms)

    def attach(self, events: "EventQueue") -> None:
        """Drive sampling from an event queue.

        Schedules a self-rescheduling event at ``interval_ms``.  The
        sampler stops rescheduling once it observes an otherwise-empty
        queue (its own event has already been popped when the callback
        runs), so an attached probe set never keeps a replay alive.
        """

        def _tick(now_ms: float) -> None:
            self.sample_all(now_ms)
            if len(events) > 0:  # real work still pending
                events.schedule_after(self.interval_ms, _tick)

        events.schedule_after(self.interval_ms, _tick)

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """Plain-data snapshot of every series (JSON-serializable)."""
        out: Dict[str, Dict[str, object]] = {}
        for name, probe in sorted(self._probes.items()):
            out[name] = {
                "unit": probe.unit,
                "interval_ms": self.interval_ms,
                "dropped": probe.dropped,
                "times_ms": probe.times_ms(),
                "values": probe.values(),
            }
        return out
