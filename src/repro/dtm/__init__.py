"""Dynamic Thermal Management: slack exploitation, throttling, control."""

from repro.dtm.cache_disk import CacheDiskPair, CacheDiskReport
from repro.dtm.controller import (
    DTMPolicy,
    DTMReport,
    PolicyManagedSystem,
    ThermallyManagedSystem,
)
from repro.dtm.mirroring import AlternatingMirror, MirrorReport, mirror_headroom_rpm
from repro.dtm.policies import (
    ControlAction,
    LadderPolicy,
    ReactiveGatePolicy,
    SpacingPolicy,
    ThermalPolicy,
)
from repro.dtm.multispeed import (
    MultiSpeedProfile,
    drpm_profile,
    two_level_profile,
)
from repro.dtm.spindown import (
    PowerState,
    SpinManagedDisk,
    SpinPolicy,
    SpinReport,
)
from repro.dtm.slack import (
    SlackPoint,
    SlackRoadmap,
    slack_by_platter_size,
    slack_roadmap,
)
from repro.dtm.throttling import (
    ThrottleCycle,
    ThrottlingScenario,
    ThrottlingTrace,
    emergency_rpm_for,
    paper_scenario_vcm_and_rpm,
    paper_scenario_vcm_only,
    required_ratio_for_utilization,
    throttle_cycle,
    throttling_ratio_curve,
    throttling_trace,
)

__all__ = [
    "CacheDiskPair",
    "CacheDiskReport",
    "PolicyManagedSystem",
    "AlternatingMirror",
    "MirrorReport",
    "mirror_headroom_rpm",
    "ControlAction",
    "ThermalPolicy",
    "ReactiveGatePolicy",
    "SpacingPolicy",
    "LadderPolicy",
    "PowerState",
    "SpinManagedDisk",
    "SpinPolicy",
    "SpinReport",
    "SlackPoint",
    "SlackRoadmap",
    "slack_by_platter_size",
    "slack_roadmap",
    "ThrottlingScenario",
    "ThrottleCycle",
    "ThrottlingTrace",
    "emergency_rpm_for",
    "throttle_cycle",
    "throttling_ratio_curve",
    "throttling_trace",
    "paper_scenario_vcm_only",
    "paper_scenario_vcm_and_rpm",
    "required_ratio_for_utilization",
    "MultiSpeedProfile",
    "two_level_profile",
    "drpm_profile",
    "DTMPolicy",
    "DTMReport",
    "ThermallyManagedSystem",
]
