"""DTM control policies (the paper's §5.4 future-work directions).

The paper sketches several ways to control a drive designed for
average-case temperatures; this module implements them behind one
interface so they can be compared:

* :class:`ReactiveGatePolicy` — stop issuing requests near the envelope,
  resume below a hysteresis threshold (§5.3's throttling, as implemented
  by :class:`repro.dtm.controller.ThermallyManagedSystem`).
* :class:`SpacingPolicy` — instead of a hard gate, stretch the issue rate
  as temperature climbs through a warning band ("enhancing caching
  techniques to appropriately space out requests", §5.4).
* :class:`LadderPolicy` — a DRPM-style multi-speed disk that steps down
  the RPM ladder as temperature bands are crossed and continues serving
  at the lower speeds (Gurumurthi et al. [18]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.constants import THERMAL_ENVELOPE_C
from repro.dtm.multispeed import MultiSpeedProfile
from repro.errors import DTMError


@dataclass(frozen=True)
class ControlAction:
    """What the controller should do right now.

    Attributes:
        admit: whether new requests may be issued at all.
        issue_gap_ms: minimum spacing enforced between issued requests
            (0 = unconstrained).
        rpm: spindle-speed command, or None to leave it unchanged.
    """

    admit: bool = True
    issue_gap_ms: float = 0.0
    rpm: Optional[float] = None


class ThermalPolicy:
    """Interface: map the modeled air temperature to a control action."""

    def decide(self, air_c: float, now_ms: float) -> ControlAction:
        """Control decision for the current temperature."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable policy label."""
        return type(self).__name__


class ReactiveGatePolicy(ThermalPolicy):
    """Hard gate with hysteresis: the §5.3 throttling behaviour.

    Args:
        envelope_c: the thermal limit.
        trigger_margin_c: gate closes at ``envelope - trigger_margin``.
        resume_margin_c: gate reopens at ``envelope - resume_margin``.
        low_rpm: optional reduced speed while gated (scenario (b)).
        full_rpm: speed to restore on resume (required with ``low_rpm``).
    """

    def __init__(
        self,
        envelope_c: float = THERMAL_ENVELOPE_C,
        trigger_margin_c: float = 0.02,
        resume_margin_c: float = 0.10,
        low_rpm: Optional[float] = None,
        full_rpm: Optional[float] = None,
    ) -> None:
        if resume_margin_c <= trigger_margin_c:
            raise DTMError("resume margin must exceed trigger margin")
        if (low_rpm is None) != (full_rpm is None):
            raise DTMError("low_rpm and full_rpm must be given together")
        if low_rpm is not None and low_rpm >= full_rpm:
            raise DTMError("low_rpm must be below full_rpm")
        self.envelope_c = envelope_c
        self.trigger_c = envelope_c - trigger_margin_c
        self.resume_c = envelope_c - resume_margin_c
        self.low_rpm = low_rpm
        self.full_rpm = full_rpm
        self._gated = False

    def decide(self, air_c: float, now_ms: float) -> ControlAction:
        if not self._gated and air_c >= self.trigger_c:
            self._gated = True
        elif self._gated and air_c <= self.resume_c:
            self._gated = False
        if self._gated:
            return ControlAction(admit=False, rpm=self.low_rpm)
        return ControlAction(admit=True, rpm=self.full_rpm)


class SpacingPolicy(ThermalPolicy):
    """Proportional request spacing through a warning band.

    Below the band: unconstrained.  Inside it: the enforced inter-issue
    gap grows linearly up to ``max_gap_ms``.  At/above the trigger point:
    a hard gate (safety net).

    Args:
        envelope_c: the thermal limit.
        band_c: width of the warning band below the envelope.
        max_gap_ms: spacing enforced at the top of the band.
        trigger_margin_c: hard-gate threshold below the envelope.
    """

    def __init__(
        self,
        envelope_c: float = THERMAL_ENVELOPE_C,
        band_c: float = 1.0,
        max_gap_ms: float = 50.0,
        trigger_margin_c: float = 0.02,
    ) -> None:
        if band_c <= 0 or max_gap_ms <= 0:
            raise DTMError("band and max gap must be positive")
        if trigger_margin_c < 0 or trigger_margin_c >= band_c:
            raise DTMError("trigger margin must lie inside the band")
        self.envelope_c = envelope_c
        self.band_c = band_c
        self.max_gap_ms = max_gap_ms
        self.trigger_c = envelope_c - trigger_margin_c

    def decide(self, air_c: float, now_ms: float) -> ControlAction:
        if air_c >= self.trigger_c:
            return ControlAction(admit=False)
        band_floor = self.envelope_c - self.band_c
        if air_c <= band_floor:
            return ControlAction(admit=True, issue_gap_ms=0.0)
        fraction = (air_c - band_floor) / self.band_c
        return ControlAction(admit=True, issue_gap_ms=fraction * self.max_gap_ms)


class LadderPolicy(ThermalPolicy):
    """DRPM ladder: step down the speed levels as temperature rises.

    The profile's top level is used below the band; each equal-width slice
    of the band maps to the next level down.  Service continues at every
    level (requires ``serves_at_lower_levels``).

    Args:
        profile: the multi-speed profile (must serve at lower levels).
        envelope_c: the thermal limit.
        band_c: temperature band over which the ladder is traversed.
        trigger_margin_c: hard gate just below the envelope (last resort).
    """

    def __init__(
        self,
        profile: MultiSpeedProfile,
        envelope_c: float = THERMAL_ENVELOPE_C,
        band_c: float = 1.0,
        trigger_margin_c: float = 0.02,
    ) -> None:
        if not profile.serves_at_lower_levels:
            raise DTMError("LadderPolicy needs a profile that serves at lower levels")
        if band_c <= 0:
            raise DTMError("band must be positive")
        self.profile = profile
        self.envelope_c = envelope_c
        self.band_c = band_c
        self.trigger_c = envelope_c - trigger_margin_c

    def decide(self, air_c: float, now_ms: float) -> ControlAction:
        if air_c >= self.trigger_c:
            return ControlAction(admit=False, rpm=self.profile.bottom_rpm)
        band_floor = self.envelope_c - self.band_c
        levels = list(self.profile.rpm_levels)
        if air_c <= band_floor:
            return ControlAction(admit=True, rpm=levels[-1])
        fraction = (air_c - band_floor) / self.band_c
        steps_down = min(int(fraction * len(levels)), len(levels) - 1)
        return ControlAction(admit=True, rpm=levels[len(levels) - 1 - steps_down])
