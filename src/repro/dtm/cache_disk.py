"""The cache-disk configuration (paper §5.4).

"We could use two disks, each with a different platter size.  The larger
disk, due to its thermal limitations, would have a lower IDR than the
smaller one ... [which] could serve as a cache for the larger one" — in
the spirit of Hu & Yang's DCD cache-disks [27].

The small-platter disk can legally spin much faster inside the same
thermal envelope, so read hits on it are served with lower rotational
latency; misses go to the big disk and are promoted asynchronously.
Writes go to the big disk (write-through) and invalidate stale cache
regions.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional

from repro.constants import AMBIENT_TEMPERATURE_C, THERMAL_ENVELOPE_C
from repro.errors import DTMError
from repro.simulation.disk import SimulatedDisk, standard_disk
from repro.simulation.events import EventQueue
from repro.simulation.request import Request
from repro.simulation.statistics import ResponseTimeStats
from repro.thermal.envelope import max_rpm_within_envelope
from repro.thermal.model import ThermalCalibration
from repro.workloads.trace import Trace


@dataclass
class CacheDiskReport:
    """Outcome of a cache-disk run.

    Attributes:
        stats: logical response-time statistics.
        hits: reads served by the small fast disk.
        misses: reads served by the big disk.
        writes: writes (always to the big disk).
        fast_rpm / slow_rpm: the two spindle speeds used.
        simulated_ms: simulated duration.
    """

    stats: ResponseTimeStats
    hits: int
    misses: int
    writes: int
    fast_rpm: float
    slow_rpm: float
    simulated_ms: float

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _RegionMap:
    """LRU map of cached LBA regions (fixed-granularity extents)."""

    def __init__(self, capacity_sectors: int, region_sectors: int) -> None:
        if region_sectors <= 0 or capacity_sectors < region_sectors:
            raise DTMError("cache must hold at least one region")
        self.region_sectors = region_sectors
        self.max_regions = capacity_sectors // region_sectors
        self._regions: "OrderedDict[int, None]" = OrderedDict()

    def _span(self, lba: int, sectors: int) -> range:
        first = lba // self.region_sectors
        last = (lba + sectors - 1) // self.region_sectors
        return range(first, last + 1)

    def contains(self, lba: int, sectors: int) -> bool:
        regions = list(self._span(lba, sectors))
        if all(r in self._regions for r in regions):
            for r in regions:
                self._regions.move_to_end(r)
            return True
        return False

    def insert(self, lba: int, sectors: int) -> None:
        if self.max_regions == 0:
            return  # caching disabled
        for r in self._span(lba, sectors):
            if r in self._regions:
                self._regions.move_to_end(r)
            else:
                while len(self._regions) >= self.max_regions:
                    self._regions.popitem(last=False)
                self._regions[r] = None

    def invalidate(self, lba: int, sectors: int) -> None:
        for r in self._span(lba, sectors):
            self._regions.pop(r, None)


class CacheDiskPair:
    """A small fast disk caching a large slow disk inside one envelope.

    Both spindle speeds default to each platter size's maximum inside the
    thermal envelope — the configuration the paper proposes.

    Args:
        big_diameter_in / small_diameter_in: the two platter sizes.
        big_platters: platters in the backing disk.
        envelope_c / ambient_c: thermal constraints for the default RPMs.
        fast_rpm / slow_rpm: explicit speed overrides.
        region_sectors: promotion granularity.
        calibration: thermal calibration for the RPM search.
    """

    def __init__(
        self,
        big_diameter_in: float = 2.6,
        small_diameter_in: float = 1.6,
        big_platters: int = 2,
        kbpi: float = 570.0,
        ktpi: float = 64.0,
        envelope_c: float = THERMAL_ENVELOPE_C,
        ambient_c: float = AMBIENT_TEMPERATURE_C,
        fast_rpm: Optional[float] = None,
        slow_rpm: Optional[float] = None,
        region_sectors: int = 256,
        calibration: Optional[ThermalCalibration] = None,
    ) -> None:
        if small_diameter_in >= big_diameter_in:
            raise DTMError("the cache disk must be the smaller-platter one")
        self.slow_rpm = slow_rpm or max_rpm_within_envelope(
            big_diameter_in,
            platter_count=big_platters,
            envelope_c=envelope_c,
            ambient_c=ambient_c,
            calibration=calibration,
        )
        self.fast_rpm = fast_rpm or max_rpm_within_envelope(
            small_diameter_in,
            platter_count=1,
            envelope_c=envelope_c,
            ambient_c=ambient_c,
            calibration=calibration,
        )
        self.events = EventQueue()
        self.big: SimulatedDisk = standard_disk(
            name="big",
            events=self.events,
            diameter_in=big_diameter_in,
            platters=big_platters,
            kbpi=kbpi,
            ktpi=ktpi,
            rpm=self.slow_rpm,
        )
        self.small: SimulatedDisk = standard_disk(
            name="small",
            events=self.events,
            diameter_in=small_diameter_in,
            platters=1,
            kbpi=kbpi,
            ktpi=ktpi,
            rpm=self.fast_rpm,
        )
        self.map = _RegionMap(self.small.total_sectors, region_sectors)
        self.stats = ResponseTimeStats()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self._callbacks: dict = {}
        self.big.on_complete = self._dispatch
        self.small.on_complete = self._dispatch

    def _dispatch(self, request: Request, now: float) -> None:
        callback = self._callbacks.pop(request.request_id, None)
        if callback is not None:
            callback(request, now)

    @property
    def logical_sectors(self) -> int:
        """Logical space = the backing disk."""
        return self.big.total_sectors

    def _cache_lba(self, lba: int, sectors: int) -> int:
        """Backing LBA -> cache-disk LBA (direct wrap mapping, clamped so
        the access fits on the smaller disk)."""
        return lba % max(self.small.total_sectors - sectors, 1)

    # -- request handling ----------------------------------------------------------

    def submit(self, request: Request) -> None:
        """Route one logical request."""
        if request.end_lba > self.logical_sectors:
            raise DTMError("request exceeds the backing disk")
        done = lambda r, t: self._logical_done(request, t)  # noqa: E731
        if request.is_write:
            self.writes += 1
            self.map.invalidate(request.lba, request.sectors)
            child = Request(
                arrival_ms=request.arrival_ms,
                lba=request.lba,
                sectors=request.sectors,
                is_write=True,
                parent=request,
            )
            self._submit_to(self.big, child, done)
            return
        if self.map.contains(request.lba, request.sectors):
            self.hits += 1
            child = Request(
                arrival_ms=request.arrival_ms,
                lba=self._cache_lba(request.lba, request.sectors),
                sectors=request.sectors,
                parent=request,
            )
            self._submit_to(self.small, child, done)
            return
        self.misses += 1
        child = Request(
            arrival_ms=request.arrival_ms,
            lba=request.lba,
            sectors=request.sectors,
            parent=request,
        )

        def miss_done(r: Request, t: float) -> None:
            self._logical_done(request, t)
            # Asynchronous promotion: stage the region onto the fast disk.
            self.map.insert(request.lba, request.sectors)
            promote = Request(
                arrival_ms=t,
                lba=self._cache_lba(request.lba, request.sectors),
                sectors=request.sectors,
                is_write=True,
            )
            self._submit_to(self.small, promote, lambda *_: None)

        self._submit_to(self.big, child, miss_done)

    def _submit_to(
        self,
        disk: SimulatedDisk,
        request: Request,
        callback: Callable[[Request, float], None],
    ) -> None:
        self._callbacks[request.request_id] = callback
        disk.submit(request)

    def _logical_done(self, request: Request, now: float) -> None:
        request.completion_ms = now
        self.stats.add(request.response_time_ms)

    # -- replay ----------------------------------------------------------------------

    def run_trace(self, trace: Trace) -> CacheDiskReport:
        """Replay a trace through the pair."""
        for record in trace:
            request = Request(
                arrival_ms=record.time_ms,
                lba=record.lba,
                sectors=record.sectors,
                is_write=record.is_write,
            )
            self.events.schedule(record.time_ms, lambda t, r=request: self.submit(r))
        self.events.run()
        return CacheDiskReport(
            stats=self.stats,
            hits=self.hits,
            misses=self.misses,
            writes=self.writes,
            fast_rpm=self.fast_rpm,
            slow_rpm=self.slow_rpm,
            simulated_ms=self.events.now_ms,
        )
