"""Dynamic throttling (paper §5.3, Figures 6 and 7).

A drive designed for *average-case* temperatures spins faster than the
worst-case envelope allows.  When the internal air nears the envelope, the
drive throttles: it stops accepting seek-generating requests (VCM off) for
a cooling interval ``t_cool`` — and, in the more aggressive variant, also
drops to a lower RPM — then resumes at full speed and heats back toward the
envelope over ``t_heat``.

The figure of merit is the throttling ratio ``t_heat / t_cool``: values
above 1 mean the disk spends more time serving than cooling (utilization
above 50%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.constants import AMBIENT_TEMPERATURE_C, THERMAL_ENVELOPE_C
from repro.errors import DTMError
from repro.thermal.model import DriveThermalModel, ThermalCalibration

if TYPE_CHECKING:  # pragma: no cover - numpy imported lazily at runtime
    import numpy as np

    from repro.telemetry import Telemetry


@dataclass(frozen=True)
class ThrottlingScenario:
    """One throttling design point.

    Attributes:
        diameter_in: platter size.
        rpm_high: full-speed RPM (above what the envelope would allow).
        rpm_low: reduced RPM used while cooling; None means the VCM-only
            scheme of Figure 6(a), which keeps full speed while cooling.
        platter_count: platters in the stack.
        envelope_c: the thermal envelope.
        ambient_c: cooled external ambient.
        calibration: thermal calibration (default fitted).
    """

    diameter_in: float
    rpm_high: float
    rpm_low: Optional[float] = None
    platter_count: int = 1
    envelope_c: float = THERMAL_ENVELOPE_C
    ambient_c: float = AMBIENT_TEMPERATURE_C
    calibration: Optional[ThermalCalibration] = None

    def __post_init__(self) -> None:
        if self.rpm_high <= 0:
            raise DTMError(f"rpm_high must be positive, got {self.rpm_high}")
        if self.rpm_low is not None and not 0 < self.rpm_low < self.rpm_high:
            raise DTMError(
                f"rpm_low must be in (0, rpm_high), got {self.rpm_low}"
            )

    # -- mode steady states --------------------------------------------------------

    def _model(self, rpm: float, vcm_active: bool) -> DriveThermalModel:
        return DriveThermalModel(
            platter_diameter_in=self.diameter_in,
            platter_count=self.platter_count,
            rpm=rpm,
            ambient_c=self.ambient_c,
            vcm_active=vcm_active,
            calibration=self.calibration,
        )

    def heating_steady_air_c(self) -> float:
        """Steady air temperature at full speed with the VCM on."""
        return self._model(self.rpm_high, vcm_active=True).steady_air_c()

    def cooling_steady_air_c(self) -> float:
        """Steady air temperature in the cooling mode (VCM off, and the low
        RPM if the scenario has one)."""
        rpm = self.rpm_low if self.rpm_low is not None else self.rpm_high
        return self._model(rpm, vcm_active=False).steady_air_c()

    def validate(self) -> None:
        """Check the scenario is a genuine throttling situation.

        Raises:
            DTMError: if full-speed operation never reaches the envelope
                (no throttling needed) or if the cooling mode cannot get
                below it (throttling cannot work).
        """
        if self.heating_steady_air_c() <= self.envelope_c:
            raise DTMError(
                "full-speed steady temperature is within the envelope; "
                "no throttling is needed for this design"
            )
        if self.cooling_steady_air_c() >= self.envelope_c:
            raise DTMError(
                "cooling mode cannot get below the envelope; the design "
                "cannot be throttled into compliance"
            )


@dataclass(frozen=True)
class ThrottleCycle:
    """Measured outcome of one cool/heat throttling cycle.

    Attributes:
        t_cool_s: imposed cooling interval.
        t_heat_s: time to heat back to the envelope at full activity.
        min_air_c: air temperature at the end of the cooling interval.
    """

    t_cool_s: float
    t_heat_s: float
    min_air_c: float

    @property
    def ratio(self) -> float:
        """Throttling ratio t_heat / t_cool."""
        return self.t_heat_s / self.t_cool_s

    @property
    def utilization(self) -> float:
        """Fraction of time the disk serves requests: heat / (heat+cool)."""
        return self.t_heat_s / (self.t_heat_s + self.t_cool_s)


def _cooling_rpm(scenario: ThrottlingScenario) -> float:
    return scenario.rpm_low if scenario.rpm_low is not None else scenario.rpm_high


def _duty_averaged_state(scenario: ThrottlingScenario, duty: float) -> DriveThermalModel:
    """A model whose nodes sit at the duty-cycle-averaged steady field.

    In sustained throttled operation the slow nodes (base/cover especially,
    with a time constant of minutes) settle at the steady state of the
    *average* heat input — ``duty`` weighting the heating mode against the
    cooling mode — while the fast nodes (air, actuator) swing around it each
    cycle.  Starting cycles from this field reaches cyclic steady state in
    one or two settling cycles instead of hundreds.
    """
    from repro.thermal.viscous import viscous_power_w

    model = DriveThermalModel(
        platter_diameter_in=scenario.diameter_in,
        platter_count=scenario.platter_count,
        rpm=scenario.rpm_high,
        ambient_c=scenario.ambient_c,
        vcm_active=True,
        calibration=scenario.calibration,
    )
    visc_high = viscous_power_w(
        scenario.rpm_high, scenario.diameter_in, scenario.platter_count
    )
    visc_low = viscous_power_w(
        _cooling_rpm(scenario), scenario.diameter_in, scenario.platter_count
    )
    model.network.set_heat("air", duty * visc_high + (1.0 - duty) * visc_low)
    model.network.set_heat("vcm", duty * model.vcm_power_w())
    model.network.set_temperatures(model.network.steady_state())
    model.set_operating_state(rpm=scenario.rpm_high, vcm_active=True)
    return model


def _run_cool_leg(
    model: DriveThermalModel, scenario: ThrottlingScenario, t_cool_s: float, dt_s: float
) -> float:
    """Apply the cooling mode for ``t_cool_s``; returns the final air temp."""
    model.set_operating_state(rpm=_cooling_rpm(scenario), vcm_active=False)
    for _ in range(max(int(round(t_cool_s / dt_s)), 1)):
        model.network.step(dt_s)
    return model.air_c()


def _run_heat_leg(
    model: DriveThermalModel,
    scenario: ThrottlingScenario,
    dt_s: float,
    max_heat_s: float,
) -> float:
    """Heat at full activity until the envelope is reached; returns t_heat.

    Raises:
        DTMError: if the envelope is not reached within ``max_heat_s``.
    """
    model.set_operating_state(rpm=scenario.rpm_high, vcm_active=True)
    steps = int(max_heat_s / dt_s)
    for step in range(1, steps + 1):
        model.network.step(dt_s)
        if model.air_c() >= scenario.envelope_c:
            return step * dt_s
    raise DTMError(
        f"heating leg did not reach the envelope within {max_heat_s} s"
    )


_WARMUP_CACHE: dict = {}


def _warmup_crossing_temps(scenario: ThrottlingScenario, dt_s: float = 0.05) -> "np.ndarray":
    """Node temperatures when the air first touches the envelope.

    The paper's throttling experiment "sets the initial temperature to the
    thermal envelope"; the physical realization is the moment a drive
    warming up from ambient at full activity first reaches the envelope —
    exactly when a DTM controller would engage.  Cached per scenario.
    """
    import numpy as np

    key = (
        scenario.diameter_in,
        scenario.platter_count,
        scenario.rpm_high,
        scenario.envelope_c,
        scenario.ambient_c,
        id(scenario.calibration),
        dt_s,
    )
    cached = _WARMUP_CACHE.get(key)
    if cached is not None:
        return np.array(cached)
    model = DriveThermalModel(
        platter_diameter_in=scenario.diameter_in,
        platter_count=scenario.platter_count,
        rpm=scenario.rpm_high,
        ambient_c=scenario.ambient_c,
        vcm_active=True,
        calibration=scenario.calibration,
    )
    model.network.reset()
    elapsed = 0.0
    while model.air_c() < scenario.envelope_c:
        model.network.step(dt_s)
        elapsed += dt_s
        if elapsed > 4 * 3600:
            raise DTMError(
                "warm-up never reached the envelope; the design does not "
                "need throttling"
            )
    _WARMUP_CACHE[key] = tuple(model.network.temperatures)
    return np.array(_WARMUP_CACHE[key])


def _model_at_warmup_crossing(scenario: ThrottlingScenario) -> DriveThermalModel:
    model = DriveThermalModel(
        platter_diameter_in=scenario.diameter_in,
        platter_count=scenario.platter_count,
        rpm=scenario.rpm_high,
        ambient_c=scenario.ambient_c,
        vcm_active=True,
        calibration=scenario.calibration,
    )
    model.network.temperatures = _warmup_crossing_temps(scenario).copy()
    return model


def throttle_cycle(
    scenario: ThrottlingScenario,
    t_cool_s: float,
    dt_s: float = 0.01,
    max_heat_s: float = 600.0,
    mode: str = "paper",
    fixed_point_iterations: int = 6,
    duty_tolerance: float = 0.01,
) -> ThrottleCycle:
    """Measure the throttling ratio for one ``t_cool``.

    The cycle: cool for ``t_cool`` with the VCM off (and the low RPM if
    configured), then serve at full speed until the air touches the
    envelope again.  Two measurement modes:

    * ``"paper"`` — a single cycle from the state where the drive, warming
      up from ambient at full activity, first touches the envelope (the
      paper's "initial temperature set to the thermal envelope").  The
      still-cool castings lend transient headroom, as in Figure 7.
    * ``"sustained"`` — the cyclic steady state: the slow thermal state is
      warm-started at the duty-averaged field and the cycle is iterated to
      its fixed point.  This is the energy-balance-honest long-run ratio,
      which is bounded by the sustainable duty regardless of granularity.

    Args:
        scenario: the throttling design point (validated here).
        t_cool_s: cooling interval.
        dt_s: integration step (finer than the paper's 0.1 s because the
            air/actuator dynamics live on the second scale).
        max_heat_s: safety bound on each heating leg.
        mode: ``"paper"`` or ``"sustained"``.
        fixed_point_iterations: maximum duty-refinement iterations
            (sustained mode).
        duty_tolerance: convergence threshold on the duty estimate
            (sustained mode).

    Raises:
        DTMError: if the scenario is invalid or no bounded cycle exists.
    """
    if t_cool_s <= 0:
        raise DTMError(f"t_cool must be positive, got {t_cool_s}")
    if mode not in ("paper", "sustained"):
        raise DTMError(f"mode must be 'paper' or 'sustained', got {mode!r}")
    scenario.validate()
    if mode == "paper":
        model = _model_at_warmup_crossing(scenario)
        min_air = _run_cool_leg(model, scenario, t_cool_s, dt_s)
        t_heat = _run_heat_leg(model, scenario, dt_s, max_heat_s)
        return ThrottleCycle(t_cool_s=t_cool_s, t_heat_s=t_heat, min_air_c=min_air)
    # The cycle's air temperature peaks at the envelope, so the cyclic
    # steady state's *average* air sits strictly below it: the duty at
    # which the duty-averaged steady air equals the envelope is an upper
    # bound on the true duty.  The averaged air is affine in duty, so two
    # probes locate that bound.
    air_idle = _duty_averaged_state(scenario, 0.0).air_c()
    air_full = _duty_averaged_state(scenario, 1.0).air_c()
    duty_bound = (scenario.envelope_c - air_idle) / (air_full - air_idle)
    duty_bound = min(max(duty_bound - 0.005, 0.01), 0.99)
    duty = max(duty_bound - 0.05, 0.01)
    cycle: Optional[ThrottleCycle] = None
    for _ in range(fixed_point_iterations):
        model = _duty_averaged_state(scenario, duty)
        _position_at_envelope(model, scenario, dt_s, max_heat_s)
        # Settling cycle, then the measured cycle.
        _run_cool_leg(model, scenario, t_cool_s, dt_s)
        _run_heat_leg(model, scenario, dt_s, max_heat_s)
        min_air = _run_cool_leg(model, scenario, t_cool_s, dt_s)
        t_heat = _run_heat_leg(model, scenario, dt_s, max_heat_s)
        cycle = ThrottleCycle(t_cool_s=t_cool_s, t_heat_s=t_heat, min_air_c=min_air)
        if abs(cycle.utilization - duty) <= duty_tolerance:
            return cycle
        duty = min(0.5 * (duty + cycle.utilization), duty_bound)
    if cycle is None:  # pragma: no cover - loop always runs
        raise DTMError("fixed-point iteration did not run")
    return cycle


def _position_at_envelope(
    model: DriveThermalModel,
    scenario: ThrottlingScenario,
    dt_s: float,
    max_s: float,
) -> None:
    """Bring the air exactly to the envelope (the cycle's starting phase).

    The duty-averaged warm start places the *slow* nodes correctly but
    leaves the air at its cycle-average level; every cycle begins at the
    moment the air touches the envelope from below, so we heat (or cool)
    the fast state onto that point before measuring.

    Raises:
        DTMError: if the envelope cannot be reached within ``max_s``.
    """
    if model.air_c() >= scenario.envelope_c:
        model.set_operating_state(rpm=_cooling_rpm(scenario), vcm_active=False)
        for _ in range(int(max_s / dt_s)):
            model.network.step(dt_s)
            if model.air_c() <= scenario.envelope_c:
                return
        raise DTMError(
            f"could not cool onto the envelope within {max_s} s; the "
            "cooling mode may be too weak for this design"
        )
    model.set_operating_state(rpm=scenario.rpm_high, vcm_active=True)
    for _ in range(int(max_s / dt_s)):
        model.network.step(dt_s)
        if model.air_c() >= scenario.envelope_c:
            return
    raise DTMError(f"could not heat onto the envelope within {max_s} s")


def throttling_ratio_curve(
    scenario: ThrottlingScenario,
    t_cool_values_s: Sequence[float],
    dt_s: float = 0.01,
    mode: str = "paper",
) -> List[ThrottleCycle]:
    """Figure 7: the throttling ratio across a sweep of cooling intervals."""
    return [
        throttle_cycle(scenario, t, dt_s=dt_s, mode=mode) for t in t_cool_values_s
    ]


@dataclass
class ThrottlingTrace:
    """A multi-cycle throttling transient for Figure-6-style plots.

    Attributes:
        times_s: sample times.
        air_c: internal air temperature at each sample.
        throttled: whether the drive was in the cooling mode at each sample.
    """

    times_s: List[float]
    air_c: List[float]
    throttled: List[bool]


def throttling_trace(
    scenario: ThrottlingScenario,
    t_cool_s: float,
    cycles: int = 5,
    dt_s: float = 0.01,
    max_heat_s: float = 600.0,
    telemetry: Optional["Telemetry"] = None,
) -> ThrottlingTrace:
    """Simulate several throttle cycles, recording the air temperature.

    Visualizes the saw-tooth of Figure 6: cooling dips below the envelope
    followed by heating back up to it.

    When ``telemetry`` is given, the mode transitions land in its event
    trace (``dtm_throttle``/``dtm_resume`` with the air temperature at
    the switch) and the air series additionally feeds a ``throttle.air_c``
    probe, so the saw-tooth is visible through the standard exporters.
    """
    from repro.telemetry import maybe

    if cycles < 1:
        raise DTMError(f"cycles must be >= 1, got {cycles}")
    scenario.validate()
    tel = maybe(telemetry)
    # Start at the warm-up crossing, the moment DTM first engages.
    model = _model_at_warmup_crossing(scenario)
    cool_rpm = _cooling_rpm(scenario)
    trace = ThrottlingTrace(times_s=[0.0], air_c=[model.air_c()], throttled=[False])
    now = 0.0
    air_probe = (
        tel.probes.add("throttle.air_c", model.air_c, unit="C")
        if tel is not None
        else None
    )

    def _note(sample_now: float) -> None:
        if air_probe is not None:
            air_probe.sample(sample_now * 1000.0)

    _note(now)
    for _ in range(cycles):
        if tel is not None:
            tel.record(
                now * 1000.0, "dtm_throttle", "throttle", air_c=model.air_c()
            )
            tel.count("throttle.cycles")
        model.set_operating_state(rpm=cool_rpm, vcm_active=False)
        for _ in range(int(t_cool_s / dt_s)):
            model.network.step(dt_s)
            now += dt_s
            trace.times_s.append(now)
            trace.air_c.append(model.air_c())
            trace.throttled.append(True)
            _note(now)
        if tel is not None:
            tel.record(
                now * 1000.0, "dtm_resume", "throttle", air_c=model.air_c()
            )
        model.set_operating_state(rpm=scenario.rpm_high, vcm_active=True)
        heated = False
        for _ in range(int(max_heat_s / dt_s)):
            model.network.step(dt_s)
            now += dt_s
            trace.times_s.append(now)
            trace.air_c.append(model.air_c())
            trace.throttled.append(False)
            _note(now)
            if model.air_c() >= scenario.envelope_c:
                heated = True
                break
        if not heated:
            raise DTMError("heating leg never reached the envelope")
    return trace


def paper_scenario_vcm_only() -> ThrottlingScenario:
    """Figure 7(a): 2.6-inch disk pushed to 24,534 RPM (the 2005 target),
    throttled by turning the VCM off."""
    return ThrottlingScenario(diameter_in=2.6, rpm_high=24534.0)


def paper_scenario_vcm_and_rpm() -> ThrottlingScenario:
    """Figure 7(b): 2.6-inch disk pushed to 37,001 RPM (the 2007 target),
    throttled by turning the VCM off *and* dropping 15,000 RPM."""
    return ThrottlingScenario(diameter_in=2.6, rpm_high=37001.0, rpm_low=22001.0)


def emergency_rpm_for(
    thermal: DriveThermalModel,
    envelope_c: float,
    full_rpm: float,
    margin_c: float = 0.5,
    floor_rpm: float = 5000.0,
) -> float:
    """A derated spindle speed for the DTM emergency-throttle path.

    The fastest speed the drive can *cool* at: the highest RPM (capped at
    ``full_rpm``) whose steady internal-air temperature with the VCM off
    sits at least ``margin_c`` below the envelope.  When even the floor
    speed cannot cool the design, the floor is returned anyway — the
    emergency path degrades gracefully rather than erroring.

    Args:
        thermal: the managed drive's thermal model (geometry, enclosure
            and calibration are taken from it).
        envelope_c: the thermal envelope being protected.
        full_rpm: the drive's full operating speed (upper bound).
        margin_c: required headroom below the envelope at the derated
            steady state.
        floor_rpm: slowest speed the spindle can serve at.
    """
    from repro.errors import EnvelopeError
    from repro.thermal.envelope import max_rpm_within_envelope

    if full_rpm <= floor_rpm:
        return floor_rpm
    try:
        limit = max_rpm_within_envelope(
            thermal.platter.diameter_in,
            platter_count=thermal.stack.count,
            envelope_c=envelope_c - margin_c,
            ambient_c=thermal.ambient_c,
            vcm_active=False,
            enclosure=thermal.enclosure,
            calibration=thermal.calibration,
            rpm_low=floor_rpm,
            rpm_high=full_rpm,
        )
    except EnvelopeError:
        return floor_rpm
    return min(limit, full_rpm)


def required_ratio_for_utilization(utilization: float) -> float:
    """Throttling ratio needed to sustain a target utilization."""
    if not 0.0 < utilization < 1.0:
        raise DTMError(f"utilization must be in (0, 1), got {utilization}")
    return utilization / (1.0 - utilization)
